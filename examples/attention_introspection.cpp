// Scenario: model introspection. HOSR's attention layer (Eqs. 8-10)
// assigns each user a personalized weight per propagation depth; this
// example trains HOSR-3 and prints how those weights shift between
// socially sparse users (who need distant, high-order information) and
// well-connected hubs (for whom deep propagation mostly adds noise) —
// the mechanism behind the paper's Fig. 7.
//
// It also saves the trained user embeddings to disk and reloads them,
// demonstrating the checkpointing API.
//
// Build & run:  ./build/examples/attention_introspection
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/hosr.h"
#include "data/synthetic.h"
#include "models/trainer.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

int main() {
  using namespace hosr;

  auto dataset_or =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.05));
  if (!dataset_or.ok()) return 1;
  const data::Dataset& dataset = *dataset_or;
  util::Rng split_rng(3);
  auto split_or = data::SplitDataset(dataset, 0.2, &split_rng);
  if (!split_or.ok()) return 1;

  core::Hosr::Config config;
  config.embedding_dim = 10;
  config.num_layers = 3;
  core::Hosr model(split_or->train, config);

  models::TrainConfig train_config;
  train_config.epochs = 30;
  train_config.batch_size = 256;
  train_config.learning_rate = 0.0015f;
  train_config.weight_decay = 1e-5f;
  models::BprTrainer trainer(&model, &split_or->train.interactions,
                             train_config);
  trainer.Train();

  // Per-user attention weights over the 3 layers.
  const tensor::Matrix weights = model.AttentionWeights();

  // Users sorted by social degree; compare bottom and top deciles.
  std::vector<std::pair<uint32_t, uint32_t>> by_degree;  // (degree, user)
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    by_degree.emplace_back(dataset.social.Degree(u), u);
  }
  std::sort(by_degree.begin(), by_degree.end());
  const size_t decile = std::max<size_t>(1, by_degree.size() / 10);

  auto average_weights = [&](size_t begin, size_t end) {
    std::vector<double> avg(3, 0.0);
    for (size_t i = begin; i < end; ++i) {
      for (size_t l = 0; l < 3; ++l) avg[l] += weights(by_degree[i].second, l);
    }
    for (auto& w : avg) w /= static_cast<double>(end - begin);
    return avg;
  };
  const auto sparse_avg = average_weights(0, decile);
  const auto hub_avg =
      average_weights(by_degree.size() - decile, by_degree.size());

  std::printf("== HOSR-3 attention weights by social connectivity ==\n\n");
  std::printf("%-26s layer1  layer2  layer3\n", "");
  std::printf("%-26s %.4f  %.4f  %.4f  (degree <= %u)\n",
              "sparsest decile", sparse_avg[0], sparse_avg[1], sparse_avg[2],
              by_degree[decile - 1].first);
  std::printf("%-26s %.4f  %.4f  %.4f  (degree >= %u)\n",
              "best-connected decile", hub_avg[0], hub_avg[1], hub_avg[2],
              by_degree[by_degree.size() - decile].first);
  std::printf("\nsparse users lean harder on the deepest layer: "
              "%.3f vs %.3f\n\n", sparse_avg[2], hub_avg[2]);

  // Checkpoint the final user embeddings and verify the round trip.
  const tensor::Matrix embeddings = model.FinalUserEmbeddings();
  const std::string path = "/tmp/hosr_user_embeddings.bin";
  if (auto status = tensor::SaveMatrix(embeddings, path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto reloaded = tensor::LoadMatrix(path);
  if (!reloaded.ok() || !tensor::AllClose(*reloaded, embeddings, 0.0)) {
    std::fprintf(stderr, "checkpoint round trip failed\n");
    return 1;
  }
  std::printf("saved and verified %zux%zu user embeddings at %s\n",
              embeddings.rows(), embeddings.cols(), path.c_str());
  return 0;
}
