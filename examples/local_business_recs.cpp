// Scenario: a Yelp-style local-business site. Interactions are sparse
// (~16 per user), so many users are hard to model from their own history —
// the data-sparsity problem Sec. 2.1 motivates.
//
// This example trains the full model zoo once and breaks Recall@20 down by
// interaction-sparsity group (Fig. 6's protocol), demonstrating where
// high-order social modeling pays off.
//
// Build & run:  ./build/examples/local_business_recs
#include <cstdio>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/early_stopping.h"
#include "models/trainer.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hosr;

  auto dataset_or =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.06));
  if (!dataset_or.ok()) return 1;
  const data::Dataset& dataset = *dataset_or;
  util::Rng split_rng(11);
  auto split_or = data::SplitDataset(dataset, 0.2, &split_rng);
  if (!split_or.ok()) return 1;
  const data::Split& split = *split_or;

  std::printf("== Yelp-style local businesses: %u users, %u businesses, "
              "%.1f visits/user ==\n\n", dataset.num_users(),
              dataset.num_items(), dataset.Summarize().avg_interactions);

  const auto groups =
      eval::BuildSparsityGroups(split.train.interactions, split.test, 4);
  eval::Evaluator evaluator(&split.train.interactions, &split.test, 20);

  std::vector<std::string> header{"Model", "Overall"};
  for (const auto& group : groups) {
    header.push_back(group.Label() + " visits");
  }
  util::Table table(header);

  for (const std::string& name : {std::string("BPR"), std::string("TrustSVD"),
                                  std::string("HOSR")}) {
    core::ZooConfig zoo;
    zoo.embedding_dim = 10;
    zoo.seed = 11;
    auto model_or = core::MakeModel(name, split.train, zoo);
    if (!model_or.ok()) return 1;
    auto model = std::move(model_or).value();

    // Early-stop each model on a validation slice carved out of train —
    // the models converge at different speeds, and this keeps the test
    // split untouched during model selection.
    util::Rng carve_rng(11);
    auto carved =
        models::CarveValidation(split.train.interactions, 0.15, &carve_rng);
    if (!carved.ok()) return 1;
    eval::Evaluator validation(&carved->train_remainder, &carved->validation,
                               20);
    models::TrainConfig config;
    config.batch_size = 256;
    config.learning_rate = name == "HOSR" ? 0.001f
                           : name == "TrustSVD" ? 0.001f
                                                : 0.002f;
    config.weight_decay = 1e-5f;
    models::EarlyStoppingConfig es;
    es.max_epochs = 120;
    es.eval_stride = 10;
    es.patience = 3;
    models::TrainWithEarlyStopping(
        model.get(), &carved->train_remainder, config, es,
        [&](models::RankingModel* m) {
          return validation
              .Evaluate([&](const std::vector<uint32_t>& users) {
                return m->ScoreAllItems(users);
              })
              .recall;
        });

    auto scorer = [&](const std::vector<uint32_t>& users) {
      return model->ScoreAllItems(users);
    };
    std::vector<std::string> row{name,
                                 util::Table::Cell(
                                     evaluator.Evaluate(scorer).recall)};
    for (const auto& group : groups) {
      row.push_back(util::Table::Cell(
          evaluator.EvaluateUsers(scorer, group.users).recall));
    }
    table.AddRow(std::move(row));
  }

  std::printf("Recall@20 by user activity (sparsest group first):\n%s\n",
              table.ToText().c_str());
  std::printf("The gap between HOSR and the interaction-only baseline is "
              "widest for users with the fewest visits — high-order social "
              "context substitutes for missing interaction data.\n");
  return 0;
}
