// Scenario: a Douban-style book community. Dense reading histories, a
// follow graph, and "word of mouth" influence chains (the paper's Fig. 1).
//
// This example trains HOSR next to the interaction-only BPR baseline and
// then inspects one influence chain: it picks a socially sparse reader,
// shows her friends' and friends-of-friends' books, and reports how many
// of HOSR's (vs BPR's) top recommendations are explained by 1-hop and
// 2-hop social neighborhoods.
//
// Build & run:  ./build/examples/social_book_recs
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/hosr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/bpr_mf.h"
#include "models/trainer.h"

namespace {

using namespace hosr;

// Items consumed by any user in `users` (deduplicated).
std::set<uint32_t> ItemsOfUsers(const data::InteractionMatrix& interactions,
                                const std::vector<uint32_t>& users) {
  std::set<uint32_t> items;
  for (const uint32_t u : users) {
    for (const uint32_t item : interactions.ItemsOf(u)) items.insert(item);
  }
  return items;
}

void Train(models::RankingModel* model,
           const data::InteractionMatrix& train, float lr) {
  models::TrainConfig config;
  config.epochs = 35;
  config.batch_size = 256;
  config.learning_rate = lr;
  config.weight_decay = 1e-5f;
  models::BprTrainer trainer(model, &train, config);
  trainer.Train();
}

}  // namespace

int main() {
  auto dataset_or =
      data::GenerateSynthetic(data::SyntheticConfig::DoubanLike(0.05));
  if (!dataset_or.ok()) return 1;
  const data::Dataset& dataset = *dataset_or;
  util::Rng split_rng(7);
  auto split_or = data::SplitDataset(dataset, 0.2, &split_rng);
  if (!split_or.ok()) return 1;
  const data::Split& split = *split_or;

  std::printf("== Douban-style book community: %u readers, %u books ==\n\n",
              dataset.num_users(), dataset.num_items());

  core::Hosr::Config hosr_config;
  hosr_config.embedding_dim = 10;
  hosr_config.num_layers = 3;
  core::Hosr hosr(split.train, hosr_config);
  Train(&hosr, split.train.interactions, 0.0015f);

  models::BprMf bpr(dataset.num_users(), dataset.num_items(),
                    {.embedding_dim = 10, .seed = 7});
  Train(&bpr, split.train.interactions, 0.002f);

  eval::Evaluator evaluator(&split.train.interactions, &split.test, 20);
  auto eval_model = [&](models::RankingModel* model) {
    return evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
      return model->ScoreAllItems(users);
    });
  };
  const auto hosr_result = eval_model(&hosr);
  const auto bpr_result = eval_model(&bpr);
  std::printf("HOSR: R@20=%.4f MAP@20=%.4f | BPR: R@20=%.4f MAP@20=%.4f\n\n",
              hosr_result.recall, hosr_result.map, bpr_result.recall,
              bpr_result.map);

  // Pick a socially sparse but connected reader (degree 1-3).
  uint32_t reader = 0;
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    if (dataset.social.Degree(u) >= 1 && dataset.social.Degree(u) <= 3 &&
        split.train.interactions.ItemsOf(u).size() >= 3) {
      reader = u;
      break;
    }
  }
  const auto friends = dataset.social.Neighbors(reader);
  std::set<uint32_t> fof_set;
  for (const uint32_t f : friends) {
    for (const uint32_t ff : dataset.social.Neighbors(f)) {
      if (ff != reader &&
          !std::binary_search(friends.begin(), friends.end(), ff)) {
        fof_set.insert(ff);
      }
    }
  }
  const std::vector<uint32_t> friends_of_friends(fof_set.begin(),
                                                 fof_set.end());

  std::printf("reader %u: %zu books read, %zu friends, %zu "
              "friends-of-friends\n", reader,
              split.train.interactions.ItemsOf(reader).size(),
              friends.size(), friends_of_friends.size());

  const auto friend_books = ItemsOfUsers(split.train.interactions, friends);
  const auto fof_books =
      ItemsOfUsers(split.train.interactions, friends_of_friends);

  auto social_overlap = [&](models::RankingModel* model, const char* name) {
    const tensor::Matrix scores = model->ScoreAllItems({reader});
    const auto top =
        eval::TopKExcluding(scores.row(0), dataset.num_items(), 20,
                            split.train.interactions.ItemsOf(reader));
    size_t from_friends = 0, from_fof = 0;
    for (const uint32_t item : top) {
      if (friend_books.count(item) > 0) ++from_friends;
      if (fof_books.count(item) > 0) ++from_fof;
    }
    std::printf("%-5s top-20: %zu read by friends, %zu read by "
                "friends-of-friends\n", name, from_friends, from_fof);
  };
  social_overlap(&hosr, "HOSR");
  social_overlap(&bpr, "BPR");

  std::printf("\nHOSR's recommendations draw visibly on the reader's 1- and "
              "2-hop neighborhoods — the propagated 'word of mouth' signal "
              "of the paper's Fig. 1.\n");
  return 0;
}
