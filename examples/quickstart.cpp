// Quickstart: the smallest end-to-end use of the HOSR library.
//
//   1. generate a social-recommendation dataset (or load your own TSVs),
//   2. split 80/20,
//   3. train HOSR,
//   4. evaluate Recall@20 / MAP@20,
//   5. produce top-10 recommendations for one user.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hosr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/trainer.h"

int main() {
  using namespace hosr;

  // 1. A small Yelp-shaped dataset: long-tail social graph + implicit
  //    feedback with planted "word of mouth" correlation.
  data::SyntheticConfig data_config = data::SyntheticConfig::YelpLike(0.05);
  auto dataset_or = data::GenerateSynthetic(data_config);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  const data::Dataset& dataset = *dataset_or;
  const auto stats = dataset.Summarize();
  std::printf("dataset: %u users, %u items, %zu interactions, %zu social "
              "edges\n", stats.num_users, stats.num_items,
              stats.num_interactions, stats.num_social_edges);

  // 2. The paper's 80/20 protocol.
  util::Rng split_rng(42);
  auto split_or = data::SplitDataset(dataset, 0.2, &split_rng);
  if (!split_or.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 split_or.status().ToString().c_str());
    return 1;
  }
  const data::Split& split = *split_or;

  // 3. HOSR with the paper's defaults: 3 GCN layers over the social graph,
  //    attention aggregation, graph dropout 0.2.
  core::Hosr::Config model_config;
  model_config.embedding_dim = 10;
  model_config.num_layers = 3;
  core::Hosr model(split.train, model_config);

  models::TrainConfig train_config;
  train_config.epochs = 30;
  train_config.batch_size = 256;
  train_config.learning_rate = 0.0015f;
  train_config.weight_decay = 1e-5f;
  train_config.verbose = false;
  models::BprTrainer trainer(&model, &split.train.interactions,
                             train_config);
  std::printf("training %u epochs...\n", train_config.epochs);
  const auto history = trainer.Train();
  std::printf("final BPR loss: %.4f\n", history.back().avg_loss);

  // 4. Evaluate.
  eval::Evaluator evaluator(&split.train.interactions, &split.test, 20);
  const auto result =
      evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
        return model.ScoreAllItems(users);
      });
  std::printf("Recall@20 = %.4f   MAP@20 = %.4f   (over %zu test users)\n",
              result.recall, result.map, result.num_users);

  // 5. Top-10 recommendations for user 0 (training items masked).
  const uint32_t user = 0;
  const tensor::Matrix scores = model.ScoreAllItems({user});
  const auto top = eval::TopKExcluding(scores.row(0), dataset.num_items(),
                                       10, split.train.interactions.ItemsOf(user));
  std::printf("top-10 items for user %u:", user);
  for (const uint32_t item : top) std::printf(" %u", item);
  std::printf("\n");
  return 0;
}
