// Tests for the continuous-profiling + time-series telemetry layer
// (docs/OBSERVABILITY.md "Continuous profiling" / "Time-series telemetry"):
// the shared bucket-quantile helper and the /metricsz p50/p95/p99 summary
// fields, the SIGPROF sampling profiler (including the no-allocation
// contract of the signal handler, asserted through a global operator-new
// guard), the timeseries recorder's windowed counter/gauge/histogram
// points, the StatsReporter interval mode racing concurrent metric
// registration, and the /profilez + /timeseriez admin endpoints.
//
// This suite is part of the TSan build matrix (DESIGN.md "Build matrix"):
// the recorder/reporter races run fully instrumented there, while the
// SIGPROF-driven tests skip themselves (sanitizer runtimes flag `backtrace`
// in a signal handler as signal-unsafe even though glibc's is fine after
// the warm-up call).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "json_validator_test_util.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/reporter.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/fileio.h"

#if defined(__SANITIZE_THREAD__)
#define HOSR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HOSR_TSAN_BUILD 1
#endif
#endif

#ifdef HOSR_TSAN_BUILD
#define HOSR_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "SIGPROF handler paths are not TSan-instrumentable"
#else
#define HOSR_SKIP_UNDER_TSAN() (void)0
#endif

namespace {

// Counts every allocation attempted while the calling thread is inside the
// SIGPROF handler. The handler's async-signal-safety contract says this
// must stay zero no matter how hard the sampler and the allocator race.
std::atomic<uint64_t> g_handler_allocations{0};

}  // namespace

// GCC's flow analysis pairs the replaced operator new with the library
// default and flags the free() below as mismatched; both sides funnel
// through malloc/free here, so the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (hosr::obs::Profiler::InHandlerForTesting()) {
    g_handler_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { operator delete(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { operator delete(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept {
  operator delete(ptr);
}

#pragma GCC diagnostic pop

namespace hosr {

// External linkage on purpose (see the comment at the use sites): noinline
// so the frame stays visible to backtrace() rather than folding into the
// caller.
__attribute__((noinline)) double BurnCpu(double seconds) {
  const int64_t begin = obs::NowNanos();
  double acc = 0.0;
  while (obs::NowNanos() - begin < static_cast<int64_t>(seconds * 1e9)) {
    for (int i = 1; i < 1000; ++i) acc += std::sqrt(static_cast<double>(i));
  }
  return acc;
}

namespace {

using test_util::IsValidJson;

// --- QuantileFromBuckets --------------------------------------------------

std::vector<uint64_t> EmptyBuckets() {
  return std::vector<uint64_t>(obs::Histogram::kNumBuckets, 0);
}

TEST(QuantileFromBucketsTest, ZeroTotalReturnsZero) {
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(EmptyBuckets(), 0.5), 0.0);
}

TEST(QuantileFromBucketsTest, InterpolatesWithinSingleBucket) {
  auto buckets = EmptyBuckets();
  const int index = obs::Histogram::BucketFor(8.0);  // [8, 16)
  buckets[index] = 2;
  // rank(0.5) = 1 of 2 -> halfway through [8, 16).
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(buckets, 0.5), 12.0);
  // rank(1.0) = 2 of 2 -> the bucket's upper bound.
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(buckets, 1.0), 16.0);
}

TEST(QuantileFromBucketsTest, WalksAcrossBuckets) {
  auto buckets = EmptyBuckets();
  buckets[obs::Histogram::BucketFor(1.5)] = 90;    // [1, 2)
  buckets[obs::Histogram::BucketFor(1536.0)] = 10;  // [1024, 2048)
  // rank(0.5) = 50 of 100 -> fraction 50/90 through [1, 2).
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(buckets, 0.50),
                   1.0 + 50.0 / 90.0);
  // rank(0.95) = 95 -> fraction 5/10 through [1024, 2048).
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(buckets, 0.95), 1536.0);
  // rank(0.99) = 99 -> fraction 9/10 through [1024, 2048).
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(buckets, 0.99), 1945.6);
}

TEST(QuantileFromBucketsTest, BucketZeroFloorsAtZero) {
  auto buckets = EmptyBuckets();
  buckets[0] = 2;  // bucket 0 absorbs non-positive values and underflow
  const double p50 = obs::QuantileFromBuckets(buckets, 0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, obs::Histogram::BucketUpperBound(0));
}

// --- /metricsz p50/p95/p99 round trip -------------------------------------

// Pulls the first number after `"key": ` following `anchor` in `json`.
double NumberAfter(const std::string& json, const std::string& anchor,
                   const std::string& key) {
  const size_t at = json.find(anchor);
  EXPECT_NE(at, std::string::npos) << anchor << " not in " << json;
  const std::string marker = "\"" + key + "\": ";
  const size_t pos = json.find(marker, at);
  EXPECT_NE(pos, std::string::npos) << key << " not found after " << anchor;
  return std::strtod(json.c_str() + pos + marker.size(), nullptr);
}

TEST(MetricsQuantileTest, HistogramJsonCarriesQuantileSummaries) {
  obs::Registry::Global().ResetForTesting();
  auto& histogram = *obs::Registry::Global().GetHistogram("quantz/probe_ms");
  for (int i = 0; i < 90; ++i) histogram.Observe(1.5);
  for (int i = 0; i < 10; ++i) histogram.Observe(1536.0);

  const std::string json = obs::Registry::Global().ToJson();
  ASSERT_TRUE(IsValidJson(json)) << json;
  EXPECT_DOUBLE_EQ(NumberAfter(json, "quantz/probe_ms", "p50"),
                   1.0 + 50.0 / 90.0);
  EXPECT_DOUBLE_EQ(NumberAfter(json, "quantz/probe_ms", "p95"), 1536.0);
  EXPECT_DOUBLE_EQ(NumberAfter(json, "quantz/probe_ms", "p99"), 1945.6);
}

TEST(MetricsQuantileTest, EmptyHistogramOmitsQuantiles) {
  obs::Registry::Global().ResetForTesting();
  (void)obs::Registry::Global().GetHistogram("quantz/empty_ms");
  const std::string json = obs::Registry::Global().ToJson();
  ASSERT_TRUE(IsValidJson(json));
  const size_t at = json.find("quantz/empty_ms");
  ASSERT_NE(at, std::string::npos);
  const size_t entry_end = json.find("]}", at);
  EXPECT_EQ(json.substr(at, entry_end - at).find("\"p50\""),
            std::string::npos);
}

// --- Sampling profiler ----------------------------------------------------

// CPU-burning helper the sampler should catch. Declared below with
// external linkage — internal-linkage (anonymous-namespace) symbols never
// reach the dynamic symbol table, so dladdr could not name them.

TEST(ProfilerTest, ContinuousSessionCapturesStacks) {
  HOSR_SKIP_UNDER_TSAN();
  auto& profiler = obs::Profiler::Global();
  ASSERT_FALSE(profiler.running());
  obs::Profiler::Options options;
  options.hz = 499;
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_TRUE(profiler.running());
  // Double-start must refuse: ITIMER_PROF is a process-wide resource.
  EXPECT_FALSE(profiler.Start(options).ok());

  (void)BurnCpu(0.3);
  const auto snapshot = profiler.SnapshotNow();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(profiler.running()) << "snapshot must not stop the session";

  const obs::Profile profile = profiler.StopAndCollect();
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profile.samples, 0u);
  EXPECT_GT(profile.distinct_stacks, 0u);
  EXPECT_EQ(profile.hz, 499);
  ASSERT_FALSE(profile.collapsed.empty());
  // Collapsed format: every line is "frame;frame;...;leaf count".
  size_t line_begin = 0;
  while (line_begin < profile.collapsed.size()) {
    size_t line_end = profile.collapsed.find('\n', line_begin);
    ASSERT_NE(line_end, std::string::npos) << "unterminated collapsed line";
    const std::string line =
        profile.collapsed.substr(line_begin, line_end - line_begin);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::strtoull(line.c_str() + space + 1, nullptr, 10), 0u)
        << line;
    line_begin = line_end + 1;
  }
  EXPECT_TRUE(IsValidJson(profile.SummaryJson())) << profile.SummaryJson();
  // The CPU burner above must be attributable by symbol (requires the
  // -rdynamic link the build adds for dladdr).
  EXPECT_NE(profile.collapsed.find("BurnCpu"), std::string::npos)
      << profile.collapsed;
}

TEST(ProfilerTest, StopWithoutStartReturnsEmptyProfile) {
  HOSR_SKIP_UNDER_TSAN();
  auto& profiler = obs::Profiler::Global();
  ASSERT_FALSE(profiler.running());
  const obs::Profile profile = profiler.StopAndCollect();
  EXPECT_EQ(profile.samples, 0u);
  EXPECT_FALSE(profiler.SnapshotNow().ok());
}

TEST(ProfilerTest, ConcurrentWindowsShareOneSession) {
  HOSR_SKIP_UNDER_TSAN();
  auto& profiler = obs::Profiler::Global();
  ASSERT_FALSE(profiler.running());
  std::atomic<bool> stop_burning{false};
  std::thread burner([&] {
    while (!stop_burning.load(std::memory_order_relaxed)) (void)BurnCpu(0.05);
  });
  constexpr int kWindows = 4;
  std::vector<std::thread> windows;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kWindows; ++i) {
    windows.emplace_back([&] {
      obs::Profiler::Options options;
      options.hz = 499;
      const auto profile =
          obs::Profiler::Global().CollectWindow(0.3, options);
      if (profile.ok() && profile.value().samples > 0) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : windows) t.join();
  stop_burning.store(true);
  burner.join();
  // Every concurrent request must come back with a real profile — joiners
  // receive the leader's window rather than failing on "already running".
  EXPECT_EQ(ok_count.load(), kWindows);
  EXPECT_FALSE(profiler.running());
}

TEST(ProfilerTest, HandlerPathNeverAllocates) {
  HOSR_SKIP_UNDER_TSAN();
  auto& profiler = obs::Profiler::Global();
  ASSERT_FALSE(profiler.running());
  g_handler_allocations.store(0);
  obs::Profiler::Options options;
  options.hz = 997;  // as hot as Start() allows, to maximize interleavings
  ASSERT_TRUE(profiler.Start(options).ok());
  // Allocator-heavy worker threads: every sample lands either inside
  // malloc/free or between them, so an allocating handler would both trip
  // the guard counter and (likely) deadlock on the allocator's own lock.
  constexpr int kWorkers = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      std::vector<std::string> junk;
      while (!stop.load(std::memory_order_relaxed)) {
        junk.emplace_back(64, 'x');
        if (junk.size() > 512) junk.clear();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& t : workers) t.join();
  const obs::Profile profile = profiler.StopAndCollect();
  EXPECT_GT(profile.samples, 0u);
  EXPECT_EQ(g_handler_allocations.load(), 0u)
      << "SIGPROF handler allocated memory";
}

// --- Timeseries recorder --------------------------------------------------

TEST(TimeseriesTest, CounterWindowReconstructsRate) {
  obs::Registry::Global().ResetForTesting();
  auto& recorder = obs::TimeseriesRecorder::Global();
  recorder.ResetForTesting();
  auto& counter = *obs::Registry::Global().GetCounter("tsq/events");
  counter.Increment(7);
  recorder.SnapshotOnceForTesting();  // baseline: absorbs pre-history
  counter.Increment(50);
  // Real elapsed time between snapshots: the JSON renders interval_s at
  // millisecond precision, so a zero-width window would round to 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  recorder.SnapshotOnceForTesting();

  const std::string json = recorder.ToJson("tsq/events");
  ASSERT_TRUE(IsValidJson(json)) << json;
  // Two points; the last one's delta is exactly the increments since the
  // baseline, and value (rate/s) times the measured interval reconstructs
  // that delta — the acceptance contract for /timeseriez windows.
  const size_t last = json.rfind("{\"age_s\"");
  ASSERT_NE(last, std::string::npos);
  const std::string point = json.substr(last);
  EXPECT_NE(point.find("\"delta\": 50"), std::string::npos) << point;
  const double rate = NumberAfter(json.substr(last), "age_s", "value");
  const double interval =
      NumberAfter(json.substr(last), "age_s", "interval_s");
  EXPECT_GT(interval, 0.0);
  // 5% slack covers the millisecond rounding of the rendered interval.
  EXPECT_NEAR(rate * interval, 50.0, 2.5);
}

TEST(TimeseriesTest, HistogramWindowsCarryQuantilesAndResetTolerance) {
  obs::Registry::Global().ResetForTesting();
  auto& recorder = obs::TimeseriesRecorder::Global();
  recorder.ResetForTesting();
  auto& histogram =
      *obs::Registry::Global().GetHistogram("tsq/probe_latency_ms");
  recorder.SnapshotOnceForTesting();  // baseline
  for (int i = 0; i < 90; ++i) histogram.Observe(1.5);
  for (int i = 0; i < 10; ++i) histogram.Observe(1536.0);
  recorder.SnapshotOnceForTesting();

  std::string json = recorder.ToJson("tsq/probe_latency_ms");
  ASSERT_TRUE(IsValidJson(json)) << json;
  size_t last = json.rfind("{\"age_s\"");
  ASSERT_NE(last, std::string::npos);
  EXPECT_NE(json.find("\"delta\": 100", last), std::string::npos);
  // Windowed quantiles come from the bucket-count deltas of this window
  // only, so they match the shared helper's direct answer.
  EXPECT_DOUBLE_EQ(NumberAfter(json.substr(last), "age_s", "p50"),
                   1.0 + 50.0 / 90.0);
  EXPECT_DOUBLE_EQ(NumberAfter(json.substr(last), "age_s", "p95"), 1536.0);

  // A Reset() between snapshots starts a new epoch instead of emitting a
  // garbage wraparound window.
  histogram.Reset();
  histogram.Observe(1.5);
  recorder.SnapshotOnceForTesting();
  json = recorder.ToJson("tsq/probe_latency_ms");
  last = json.rfind("{\"age_s\"");
  EXPECT_NE(json.find("\"delta\": 0", last), std::string::npos) << json;
}

TEST(TimeseriesTest, FiltersAndWindowCapApply) {
  obs::Registry::Global().ResetForTesting();
  auto& recorder = obs::TimeseriesRecorder::Global();
  recorder.ResetForTesting();
  obs::Registry::Global().GetCounter("tsq/keep_me")->Increment();
  obs::Registry::Global().GetCounter("other/drop_me")->Increment();
  recorder.SnapshotOnceForTesting();
  recorder.SnapshotOnceForTesting();
  recorder.SnapshotOnceForTesting();

  const std::string filtered = recorder.ToJson("tsq/");
  EXPECT_NE(filtered.find("tsq/keep_me"), std::string::npos);
  EXPECT_EQ(filtered.find("other/drop_me"), std::string::npos);

  // windows=1 keeps only the newest point per series.
  const std::string capped = recorder.ToJson("tsq/keep_me", 1);
  ASSERT_TRUE(IsValidJson(capped));
  size_t points = 0;
  for (size_t pos = capped.find("{\"age_s\""); pos != std::string::npos;
       pos = capped.find("{\"age_s\"", pos + 1)) {
    ++points;
  }
  EXPECT_EQ(points, 1u);
}

TEST(TimeseriesTest, StartStopCycleDumpsCrcArtifact) {
  obs::Registry::Global().ResetForTesting();
  auto& recorder = obs::TimeseriesRecorder::Global();
  recorder.ResetForTesting();
  ASSERT_FALSE(recorder.running());
  obs::TimeseriesRecorder::Options options;
  options.snapshot_interval_s = 0.05;
  ASSERT_TRUE(recorder.Start(options).ok());
  EXPECT_FALSE(recorder.Start(options).ok()) << "double start must refuse";
  obs::Registry::Global().GetCounter("tsq/cycle")->Increment(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  recorder.Stop();
  recorder.Stop();  // idempotent

  const std::string path = ::testing::TempDir() + "/timeseries_dump.json";
  ASSERT_TRUE(recorder.DumpToFile(path).ok());
  const auto contents = util::ReadFileVerifyCrc(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(IsValidJson(contents.value()));
  EXPECT_NE(contents.value().find("tsq/cycle"), std::string::npos);

  // The recorder must rearm cleanly (the serve_profile bench cycles it).
  ASSERT_TRUE(recorder.Start(options).ok());
  recorder.Stop();
}

// --- StatsReporter interval mode vs concurrent registration ---------------

TEST(StatsReporterRaceTest, IntervalSnapshotsRaceRegistration) {
  obs::Registry::Global().ResetForTesting();
  const std::string path = ::testing::TempDir() + "/reporter_race.json";
  obs::StatsReporter::Options options;
  options.interval_seconds = 0.005;  // snapshot as hot as possible
  options.metrics_path = path;
  obs::StatsReporter reporter(options);
  // Registration storm: new names force map inserts under the registry
  // mutex while the reporter thread iterates it for every snapshot. TSan
  // (DESIGN.md build matrix) verifies the locking discipline here.
  constexpr int kWorkers = 4;
  constexpr int kNamesPerWorker = 64;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < kNamesPerWorker; ++i) {
        char name[64];
        std::snprintf(name, sizeof(name), "race/w%d/m%d", w, i);
        obs::Registry::Global().GetCounter(name)->Increment();
        obs::Registry::Global()
            .GetHistogram(std::string("raceh/w") + std::to_string(w) +
                          "/m" + std::to_string(i))
            ->Observe(1.0 + i);
      }
    });
  }
  for (auto& t : workers) t.join();
  reporter.Stop();
  // Post-Stop artifact must hold every registration (shutdown-flush
  // guarantee) and still be well-formed JSON.
  const auto contents = util::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(IsValidJson(contents.value()));
  char last_name[64];
  std::snprintf(last_name, sizeof(last_name), "race/w%d/m%d", kWorkers - 1,
                kNamesPerWorker - 1);
  EXPECT_NE(contents.value().find(last_name), std::string::npos);
}

// --- Admin endpoints ------------------------------------------------------

TEST(AdminProfileEndpointsTest, TimeseriezServesFilteredJson) {
  obs::Registry::Global().ResetForTesting();
  obs::TimeseriesRecorder::Global().ResetForTesting();
  obs::Registry::Global().GetCounter("tsq/admin_probe")->Increment(3);
  obs::TimeseriesRecorder::Global().SnapshotOnceForTesting();
  obs::AdminServer admin(obs::AdminServer::Options{});
  ASSERT_TRUE(admin.Start().ok());
  const auto all = obs::AdminHttpGet(admin.port(), "/timeseriez");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().status_code, 200);
  EXPECT_TRUE(IsValidJson(all.value().body));
  EXPECT_NE(all.value().body.find("tsq/admin_probe"), std::string::npos);
  const auto filtered = obs::AdminHttpGet(
      admin.port(), "/timeseriez?metric=no_such_metric&windows=1");
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(IsValidJson(filtered.value().body));
  EXPECT_EQ(filtered.value().body.find("tsq/admin_probe"),
            std::string::npos);
  admin.Stop();
}

TEST(AdminProfileEndpointsTest, ProfilezServesCollapsedStacksAndSummary) {
  HOSR_SKIP_UNDER_TSAN();
  ASSERT_FALSE(obs::Profiler::Global().running());
  obs::AdminServer admin(obs::AdminServer::Options{});
  ASSERT_TRUE(admin.Start().ok());
  std::atomic<bool> stop_burning{false};
  std::thread burner([&] {
    while (!stop_burning.load(std::memory_order_relaxed)) (void)BurnCpu(0.05);
  });
  // HandlePath is the transport-independent handler core — the socket
  // client doesn't echo response headers back, so content_type is asserted
  // here.
  const obs::HttpResponse collapsed =
      admin.HandlePath("/profilez?seconds=0.3");
  const auto summary = obs::AdminHttpGet(
      admin.port(), "/profilez?seconds=0.3&format=summary");
  stop_burning.store(true);
  burner.join();
  EXPECT_EQ(collapsed.status_code, 200);
  EXPECT_EQ(collapsed.content_type, "text/plain");
  EXPECT_NE(collapsed.body.find(' '), std::string::npos);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().status_code, 200);
  EXPECT_TRUE(IsValidJson(summary.value().body)) << summary.value().body;
  EXPECT_NE(summary.value().body.find("\"samples\""), std::string::npos);
  EXPECT_FALSE(obs::Profiler::Global().running());
  admin.Stop();
}

}  // namespace
}  // namespace hosr
