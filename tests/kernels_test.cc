// Tests for hosr::kernels: dispatch resolution, SIMD-vs-scalar numerical
// agreement across shapes that exercise every remainder lane, and
// end-to-end ranking agreement between dispatch modes (one training epoch +
// ScoreAllItems). The whole file also runs under HOSR_FORCE_SCALAR=1 via
// the kernels_test_forced_scalar ctest entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/hosr.h"
#include "data/synthetic.h"
#include "eval/topk.h"
#include "kernels/kernels.h"
#include "models/trainer.h"
#include "obs/metrics.h"
#include "tensor/matrix.h"
#include "util/logging.h"
#include "util/random.h"

namespace hosr::kernels {
namespace {

// Dimensions that hit: sub-lane (1, 3, 7), exact one lane (8), one lane +
// remainder (9), odd multi-lane (31), the d=64 serving sweet spot, and a
// 16-unrolled + 8-lane + scalar-tail mix (100).
const size_t kDims[] = {1, 3, 7, 8, 9, 31, 64, 100};

std::vector<float> RandomVec(size_t n, util::Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

void ExpectRelClose(float expected, float actual, const char* what, size_t d) {
  const double mag =
      std::max(std::fabs(static_cast<double>(expected)),
               std::fabs(static_cast<double>(actual)));
  EXPECT_NEAR(expected, actual, 1e-5 * std::max(1.0, mag))
      << what << " at d=" << d;
}

bool SimdAvailable() { return Best().level != kLevelScalar; }

TEST(KernelDispatchTest, TablesAreComplete) {
  for (const KernelTable* t : {&Scalar(), &Best(), &Active()}) {
    EXPECT_NE(t->name, nullptr);
    EXPECT_NE(t->axpy, nullptr);
    EXPECT_NE(t->axpy2, nullptr);
    EXPECT_NE(t->dot, nullptr);
    EXPECT_NE(t->scale, nullptr);
    EXPECT_NE(t->reduce_max, nullptr);
    EXPECT_NE(t->score_block, nullptr);
  }
  EXPECT_EQ(Scalar().level, kLevelScalar);
  EXPECT_STREQ(Scalar().name, "scalar");
}

TEST(KernelDispatchTest, ActiveHonorsForceScalar) {
  if (ForcedScalar()) {
    EXPECT_EQ(Active().level, kLevelScalar)
        << "HOSR_FORCE_SCALAR set but Active() is " << Active().name;
  } else {
    EXPECT_EQ(Active().level, Best().level);
  }
}

TEST(KernelDispatchTest, DispatchLevelGaugeMatchesActive) {
  const KernelTable& active = Active();
  EXPECT_EQ(HOSR_GAUGE("kernels/dispatch_level").Get(),
            static_cast<double>(active.level));
}

TEST(KernelDispatchTest, SetActiveForTestingOverridesAndRestores) {
  const int normal_level = Active().level;
  SetActiveForTesting(&Scalar());
  EXPECT_EQ(Active().level, kLevelScalar);
  EXPECT_EQ(HOSR_GAUGE("kernels/dispatch_level").Get(), 0.0);
  SetActiveForTesting(nullptr);
  EXPECT_EQ(Active().level, normal_level);
}

// --- SIMD vs scalar agreement ------------------------------------------------

TEST(KernelEquivalenceTest, Axpy) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(101);
  for (const size_t d : kDims) {
    const auto x = RandomVec(d, &rng);
    const auto y0 = RandomVec(d, &rng);
    auto ys = y0, yb = y0;
    Scalar().axpy(d, 0.37f, x.data(), ys.data());
    Best().axpy(d, 0.37f, x.data(), yb.data());
    for (size_t i = 0; i < d; ++i) ExpectRelClose(ys[i], yb[i], "axpy", d);
  }
}

TEST(KernelEquivalenceTest, Axpy2) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(102);
  for (const size_t d : kDims) {
    const auto x0 = RandomVec(d, &rng);
    const auto x1 = RandomVec(d, &rng);
    const auto y0 = RandomVec(d, &rng);
    auto ys = y0, yb = y0;
    Scalar().axpy2(d, -1.1f, x0.data(), 0.63f, x1.data(), ys.data());
    Best().axpy2(d, -1.1f, x0.data(), 0.63f, x1.data(), yb.data());
    for (size_t i = 0; i < d; ++i) ExpectRelClose(ys[i], yb[i], "axpy2", d);
  }
}

TEST(KernelEquivalenceTest, Dot) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(103);
  for (const size_t d : kDims) {
    const auto a = RandomVec(d, &rng);
    const auto b = RandomVec(d, &rng);
    ExpectRelClose(Scalar().dot(d, a.data(), b.data()),
                   Best().dot(d, a.data(), b.data()), "dot", d);
  }
}

TEST(KernelEquivalenceTest, Scale) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(104);
  for (const size_t d : kDims) {
    const auto x0 = RandomVec(d, &rng);
    auto xs = x0, xb = x0;
    Scalar().scale(d, -2.5f, xs.data());
    Best().scale(d, -2.5f, xb.data());
    // Element-wise multiply has no reduction: exact equality.
    EXPECT_EQ(xs, xb) << "scale at d=" << d;
  }
}

TEST(KernelEquivalenceTest, ReduceMax) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(105);
  for (const size_t d : kDims) {
    const auto x = RandomVec(d, &rng);
    // Max selects an existing element: exact equality.
    EXPECT_EQ(Scalar().reduce_max(d, x.data()), Best().reduce_max(d, x.data()))
        << "reduce_max at d=" << d;
  }
}

TEST(KernelEquivalenceTest, ScoreBlock) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  util::Rng rng(106);
  for (const size_t d : kDims) {
    // Odd and even item counts exercise the paired loop and its remainder.
    for (const size_t items : {1u, 2u, 3u, 8u}) {
      const auto u = RandomVec(d, &rng);
      const auto rows = RandomVec(items * d, &rng);
      const auto bias = RandomVec(items, &rng);
      for (const bool with_bias : {false, true}) {
        std::vector<float> out_s(items), out_b(items);
        const float* bias_ptr = with_bias ? bias.data() : nullptr;
        const float max_s = Scalar().score_block(items, d, u.data(),
                                                 rows.data(), bias_ptr,
                                                 out_s.data());
        const float max_b = Best().score_block(items, d, u.data(), rows.data(),
                                               bias_ptr, out_b.data());
        for (size_t j = 0; j < items; ++j) {
          ExpectRelClose(out_s[j], out_b[j], "score_block", d);
        }
        ExpectRelClose(max_s, max_b, "score_block max", d);
        EXPECT_EQ(max_s, *std::max_element(out_s.begin(), out_s.end()));
        EXPECT_EQ(max_b, *std::max_element(out_b.begin(), out_b.end()));
      }
    }
  }
}

TEST(KernelEquivalenceTest, ScoreBlockMatchesDotExactly) {
  // Within one table, the blocked scoring path must replay the dot
  // kernel's reduction order bit-for-bit — the serving bit-identity
  // contract (ModelSnapshot::Score and tensor::Gemm use dot; the engine
  // scan uses score_block).
  util::Rng rng(107);
  for (const KernelTable* t : {&Scalar(), &Best()}) {
    for (const size_t d : kDims) {
      const size_t items = 5;
      const auto u = RandomVec(d, &rng);
      const auto rows = RandomVec(items * d, &rng);
      std::vector<float> out(items);
      t->score_block(items, d, u.data(), rows.data(), nullptr, out.data());
      for (size_t j = 0; j < items; ++j) {
        EXPECT_EQ(out[j], t->dot(d, u.data(), rows.data() + j * d))
            << t->name << " d=" << d << " item " << j;
      }
    }
  }
}

// --- End-to-end: both dispatch modes rank identically ------------------------

class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const KernelTable* table) {
    SetActiveForTesting(table);
  }
  ~ScopedKernelOverride() { SetActiveForTesting(nullptr); }
};

const data::Dataset& E2eDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "kernels-e2e";
    config.num_users = 80;
    config.num_items = 120;
    config.avg_interactions_per_user = 8;
    config.avg_relations_per_user = 5;
    config.seed = 1234;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

tensor::Matrix TrainOneEpochAndScore(const KernelTable* table) {
  ScopedKernelOverride override_guard(table);
  const data::Dataset& dataset = E2eDataset();
  core::Hosr::Config config;
  config.embedding_dim = 16;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 31;
  core::Hosr model(dataset, config);
  models::TrainConfig train_config;
  train_config.epochs = 1;
  train_config.batch_size = 64;
  train_config.learning_rate = 0.01f;
  train_config.seed = 7;
  models::BprTrainer trainer(&model, &dataset.interactions, train_config);
  trainer.Train();
  std::vector<uint32_t> users(dataset.num_users());
  std::iota(users.begin(), users.end(), 0);
  return model.ScoreAllItems(users);
}

TEST(KernelEndToEndTest, EpochAndScoreAllItemsRankIdenticallyBothModes) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD table on this CPU";
  const tensor::Matrix scalar_scores = TrainOneEpochAndScore(&Scalar());
  const tensor::Matrix simd_scores = TrainOneEpochAndScore(&Best());
  ASSERT_TRUE(scalar_scores.SameShape(simd_scores));

  const data::Dataset& dataset = E2eDataset();
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seen = dataset.interactions.ItemsOf(u);
    EXPECT_EQ(eval::TopK(scalar_scores.row(u), dataset.num_items(), 10, seen),
              eval::TopK(simd_scores.row(u), dataset.num_items(), 10, seen))
        << "user " << u;
    for (uint32_t j = 0; j < dataset.num_items(); ++j) {
      const float a = scalar_scores(u, j);
      const float b = simd_scores(u, j);
      const double mag = std::max(std::fabs(static_cast<double>(a)),
                                  std::fabs(static_cast<double>(b)));
      ASSERT_NEAR(a, b, 1e-3 * std::max(1.0, mag))
          << "user " << u << " item " << j;
    }
  }
}

}  // namespace
}  // namespace hosr::kernels
