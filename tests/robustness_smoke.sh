#!/usr/bin/env bash
# Robustness smoke test (wired as the `robustness_smoke` ctest), exercising
# the docs/ROBUSTNESS.md story end to end:
#   1. generate a tiny synthetic YelpLike dataset;
#   2. train with --train_state and an injected crash (cli.train_crash:once=2)
#      — the process must die with exit code 42 after epoch 2's state is on
#      disk;
#   3. resume with --resume and finish training + export a snapshot;
#   4. train the same config straight through in a second directory and
#      assert the resumed snapshot is BYTE-IDENTICAL to the uninterrupted
#      one (the kill-and-resume contract, end to end);
#   5. replay requests twice through hosr_serve with engine faults armed
#      (engine.score:p=0.2, --deadline_ms=5) and assert: every request
#      resolved, >0 degraded, >0 deadline_exceeded, and both runs report
#      identical outcome counts;
#   6. rebuild the fault + serve + obs-admin + net unit tests under
#      AddressSanitizer (-DHOSR_SANITIZE=address) and run them — the
#      obs_admin and net suites cover the live socket servers (admin HTTP
#      and the wire-protocol NetServer), the exemplar slots, and the
#      flight recorder under a sanitizer.
#
# Usage: robustness_smoke.sh <hosr_cli> <hosr_serve> <source_dir>
set -eu

CLI="$1"
SERVE="$2"
SRC="$3"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.02 --seed=3

# --- crash, resume, and bit-identity -----------------------------------------

set +e
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR --epochs=4 \
  --train_state="$WORK/state" --fault_spec=cli.train_crash:once=2 \
  > "$WORK/crash_run.log" 2>&1
CRASH_EXIT=$?
set -e
if [ "$CRASH_EXIT" -ne 42 ]; then
  echo "FAIL: injected crash should exit 42, got $CRASH_EXIT" >&2
  cat "$WORK/crash_run.log" >&2
  exit 1
fi
test -s "$WORK/state" || { echo "FAIL: no training state on disk" >&2; exit 1; }

"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR --epochs=4 \
  --train_state="$WORK/state" --resume --snapshot_out="$WORK/snap_resumed" \
  | tee "$WORK/resume_run.log"
grep -q "resumed from" "$WORK/resume_run.log" \
  || { echo "FAIL: resume did not pick up the checkpoint" >&2; exit 1; }

"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR --epochs=4 \
  --snapshot_out="$WORK/snap_straight" > /dev/null

cmp "$WORK/snap_resumed" "$WORK/snap_straight" \
  || { echo "FAIL: resumed training diverged from uninterrupted run" >&2; exit 1; }
echo "resume OK: crash at epoch 2, resumed snapshot bit-identical"

# --- deterministic degraded serving under injection --------------------------

for run in 1 2; do
  "$SERVE" --snapshot="$WORK/snap_resumed" --data="$WORK/data" \
    --num_requests=4000 --k=10 --zipf=0.9 --seed=5 \
    --fault_spec=engine.score:p=0.2 --deadline_ms=5 \
    --metrics_out="$WORK/metrics$run.json" \
    --summary_out="$WORK/summary$run.json" > /dev/null
done

python3 - "$WORK/summary1.json" "$WORK/summary2.json" "$WORK/metrics1.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    first = json.load(f)
with open(sys.argv[2]) as f:
    second = json.load(f)
with open(sys.argv[3]) as f:
    metrics = json.load(f)

outcomes = first["outcomes"]
# Every request resolved to exactly one outcome: nothing hung, nothing lost.
assert sum(outcomes.values()) == first["requests"] == 4000, first
assert outcomes["degraded"] > 0, outcomes
assert outcomes["deadline_exceeded"] > 0, outcomes
assert outcomes["error"] == 0, outcomes
assert first["faults_injected"] > 0, first
# Same seed, same spec: bit-identical outcome counts.
assert outcomes == second["outcomes"], (outcomes, second["outcomes"])
assert first["faults_injected"] == second["faults_injected"]

names = metrics["metrics"].keys()
assert "fault/injected" in names, sorted(names)
assert "serve/degraded" in names, sorted(names)
assert "serve/deadline_exceeded" in names, sorted(names)
print("fault replay OK: outcomes %s, faults_injected=%d"
      % (outcomes, first["faults_injected"]))
EOF

# --- fault + serve unit tests under AddressSanitizer -------------------------

cmake -B "$WORK/asan" -S "$SRC" -DHOSR_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$WORK/asan_configure.log" 2>&1 \
  || { cat "$WORK/asan_configure.log" >&2; exit 1; }
cmake --build "$WORK/asan" -j "$(nproc)" \
  --target fault_test serve_test robustness_test obs_admin_test net_test \
  > "$WORK/asan_build.log" 2>&1 \
  || { tail -50 "$WORK/asan_build.log" >&2; exit 1; }
"$WORK/asan/tests/fault_test" > "$WORK/asan_fault.log" 2>&1 \
  || { tail -50 "$WORK/asan_fault.log" >&2; exit 1; }
"$WORK/asan/tests/serve_test" > "$WORK/asan_serve.log" 2>&1 \
  || { tail -50 "$WORK/asan_serve.log" >&2; exit 1; }
"$WORK/asan/tests/robustness_test" > "$WORK/asan_robustness.log" 2>&1 \
  || { tail -50 "$WORK/asan_robustness.log" >&2; exit 1; }
"$WORK/asan/tests/obs_admin_test" > "$WORK/asan_obs_admin.log" 2>&1 \
  || { tail -50 "$WORK/asan_obs_admin.log" >&2; exit 1; }
"$WORK/asan/tests/net_test" > "$WORK/asan_net.log" 2>&1 \
  || { tail -50 "$WORK/asan_net.log" >&2; exit 1; }
echo "asan OK: fault_test + serve_test + robustness_test + obs_admin_test + net_test clean"

echo "robustness_smoke OK"
