#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "models/bpr_mf.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/admin_server.h"
#include "obs/flight.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/overload.h"
#include "serve/reload.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace hosr::serve {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("hosr_reload_" + name))
      .string();
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Two distinct-but-shape-compatible artifacts: same 40x60x6 universe,
// different factor values, so a swap is observable in every ranking.
ModelSnapshot MakeSnapshot(uint64_t seed) {
  models::BprMf::Config config;
  config.embedding_dim = 6;
  config.seed = seed;
  models::BprMf model(/*num_users=*/40, /*num_items=*/60, config);
  auto snapshot = BuildSnapshot(model);
  HOSR_CHECK(snapshot.ok());
  return std::move(snapshot).value();
}

void SaveTo(const std::string& path, uint64_t seed) {
  ASSERT_TRUE(SaveSnapshot(MakeSnapshot(seed), path).ok());
}

// --- cache generations -------------------------------------------------------

TEST(ResultCacheGenerationTest, StaleEntryEvictedOnGet) {
  ResultCache cache;
  cache.Advance(1);
  cache.Put(7, 10, {1, 2, 3}, /*generation=*/1);
  ASSERT_TRUE(cache.Get(7, 10, /*generation=*/1).has_value());

  cache.Advance(2);
  EXPECT_FALSE(cache.Get(7, 10, /*generation=*/2).has_value());
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.entries, 0u);  // evicted, not just skipped
  // The stale lookup is a miss, and a second lookup stays a (clean) miss.
  EXPECT_FALSE(cache.Get(7, 10, /*generation=*/2).has_value());
  EXPECT_EQ(cache.GetStats().stale_hits, 1u);
}

TEST(ResultCacheGenerationTest, LaggingPutIsDropped) {
  ResultCache cache;
  cache.Advance(1);
  cache.Advance(2);
  // A request that ranked under generation 1 but reached Put after the
  // swap must not poison the cache with pre-swap results.
  cache.Put(3, 10, {9, 8, 7}, /*generation=*/1);
  EXPECT_FALSE(cache.Get(3, 10, /*generation=*/2).has_value());
  EXPECT_EQ(cache.GetStats().stale_puts, 1u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheGenerationTest, UngenerationedCallersStillRoundTrip) {
  ResultCache cache;  // generation stays 0: pre-reload callers unchanged
  cache.Put(1, 5, {4, 2});
  auto hit = cache.Get(1, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<uint32_t>{4, 2}));
}

// --- circuit breaker ---------------------------------------------------------

CircuitBreaker::Options SmallBreaker(double open_ms) {
  CircuitBreaker::Options options;
  options.window = 16;
  options.min_samples = 8;
  options.trip_ratio = 0.5;
  options.open_ms = open_ms;
  options.half_open_probes = 2;
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinSamples) {
  CircuitBreaker breaker(SmallBreaker(/*open_ms=*/60000.0));
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(breaker.Admit());
    breaker.ReportOutcome(/*failed=*/true);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, TripsOnWindowedFailureRatio) {
  CircuitBreaker breaker(SmallBreaker(/*open_ms=*/60000.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(breaker.Admit());
    breaker.ReportOutcome(/*failed=*/true);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Admit());
  EXPECT_FALSE(breaker.Admit());
  const CircuitBreaker::Stats stats = breaker.GetStats();
  EXPECT_EQ(stats.trips, 1u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_GE(stats.failure_ratio, 0.5);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseAndClearTheWindow) {
  CircuitBreaker breaker(SmallBreaker(/*open_ms=*/0.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(breaker.Admit());
    breaker.ReportOutcome(/*failed=*/true);
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Zero cooldown: the next Admit() starts half-open probing.
  ASSERT_TRUE(breaker.Admit());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.ReportOutcome(/*failed=*/false);
  ASSERT_TRUE(breaker.Admit());
  breaker.ReportOutcome(/*failed=*/false);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Closing forgets the storm — the old failures cannot instantly re-trip.
  EXPECT_EQ(breaker.GetStats().samples, 0u);
  EXPECT_TRUE(breaker.Admit());
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreaker breaker(SmallBreaker(/*open_ms=*/0.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(breaker.Admit());
    breaker.ReportOutcome(/*failed=*/true);
  }
  ASSERT_TRUE(breaker.Admit());  // half-open probe
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.ReportOutcome(/*failed=*/true);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().trips, 2u);
}

TEST(QueueDelayEwmaTest, RecordSmoothsAndDecayHalves) {
  QueueDelayEwma ewma(/*alpha=*/0.5);
  EXPECT_EQ(ewma.value_ms(), 0.0);
  ewma.Record(10.0);
  EXPECT_DOUBLE_EQ(ewma.value_ms(), 10.0);  // first sample seeds the EWMA
  ewma.Record(20.0);
  EXPECT_DOUBLE_EQ(ewma.value_ms(), 15.0);
  ewma.Decay();
  EXPECT_DOUBLE_EQ(ewma.value_ms(), 7.5);
}

// --- SnapshotManager ---------------------------------------------------------

class SnapshotManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Disarm();
    obs::HealthTracker::Global().ResetForTesting();
    obs::FlightRecorder::Global().ResetForTesting();
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    SaveTo(path_, /*seed=*/11);
  }

  void TearDown() override {
    fault::FaultRegistry::Global().Disarm();
    obs::HealthTracker::Global().ResetForTesting();
    obs::FlightRecorder::Global().ResetForTesting();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  SnapshotManager::Options BaseOptions() {
    SnapshotManager::Options options;
    options.path = path_;
    options.poll_interval_s = 0.0;  // watcher off unless a test wants it
    return options;
  }

  std::string path_;
};

TEST_F(SnapshotManagerTest, CreateLoadsValidatesAndServes) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  const std::shared_ptr<const ServingState> state = (*manager)->Acquire();
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->version(), 1u);
  EXPECT_EQ(state->path(), path_);
  EXPECT_GT(state->load_unix_s(), 0);

  const InferenceEngine oracle(MakeSnapshot(11));
  EXPECT_EQ(state->engine().TopKForUser(0, 10), oracle.TopKForUser(0, 10));

  const SnapshotManager::Stats stats = (*manager)->GetStats();
  EXPECT_EQ(stats.active_version, 1u);
  EXPECT_EQ(stats.reloads_ok, 0u);
  EXPECT_EQ(stats.reloads_rejected, 0u);
}

TEST_F(SnapshotManagerTest, CreateRejectsEmptyPath) {
  SnapshotManager::Options options;
  EXPECT_EQ(SnapshotManager::Create(options).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotManagerTest, ReloadSwapsWhileOldStateStaysValid) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  const std::shared_ptr<const ServingState> old_state = (*manager)->Acquire();

  SaveTo(path_, /*seed=*/22);
  ASSERT_TRUE((*manager)->ReloadNow().ok());

  const std::shared_ptr<const ServingState> new_state = (*manager)->Acquire();
  EXPECT_EQ(new_state->version(), 2u);
  EXPECT_EQ((*manager)->GetStats().reloads_ok, 1u);

  // RCU guarantee: a request that acquired the old state mid-swap keeps a
  // fully working pipeline, answering from the old artifact.
  const InferenceEngine oracle_a(MakeSnapshot(11));
  const InferenceEngine oracle_b(MakeSnapshot(22));
  EXPECT_EQ(old_state->engine().TopKForUser(5, 10),
            oracle_a.TopKForUser(5, 10));
  EXPECT_EQ(new_state->engine().TopKForUser(5, 10),
            oracle_b.TopKForUser(5, 10));
}

TEST_F(SnapshotManagerTest, CorruptCandidateRejectedWithRollback) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  const std::string good = ReadRaw(path_);

  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  WriteRaw(path_, corrupt);

  const util::Status rejected = (*manager)->ReloadNow();
  EXPECT_FALSE(rejected.ok());
  const SnapshotManager::Stats after = (*manager)->GetStats();
  EXPECT_EQ(after.active_version, 1u);  // rollback: v1 keeps serving
  EXPECT_EQ(after.reloads_rejected, 1u);
  EXPECT_EQ(after.reject_streak, 1u);
  EXPECT_FALSE((*manager)->Acquire()->engine().TopKForUser(0, 10).empty());

  // The repaired artifact clears the streak.
  WriteRaw(path_, good);
  EXPECT_TRUE((*manager)->ReloadNow().ok());
  const SnapshotManager::Stats recovered = (*manager)->GetStats();
  EXPECT_EQ(recovered.active_version, 2u);
  EXPECT_EQ(recovered.reject_streak, 0u);
}

TEST_F(SnapshotManagerTest, UniverseShapeChangeRejected) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();

  models::BprMf::Config config;
  config.embedding_dim = 6;
  models::BprMf grown(/*num_users=*/41, /*num_items=*/60, config);
  auto candidate = BuildSnapshot(grown);
  ASSERT_TRUE(candidate.ok());
  ASSERT_TRUE(SaveSnapshot(*candidate, path_).ok());

  const util::Status rejected = (*manager)->ReloadNow();
  EXPECT_EQ(rejected.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*manager)->Acquire()->version(), 1u);
}

TEST_F(SnapshotManagerTest, NonFiniteScoresRejectedByProbeGate) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();

  // NaN factors survive the CRC (the file is internally consistent); only
  // the probe-query gate can catch semantic poison like this.
  ModelSnapshot poisoned = MakeSnapshot(22);
  float* row = poisoned.factors.user_factors.row(0);
  for (uint32_t d = 0; d < poisoned.dim(); ++d) {
    row[d] = std::numeric_limits<float>::quiet_NaN();
  }
  ASSERT_TRUE(SaveSnapshot(poisoned, path_).ok());

  const util::Status rejected = (*manager)->ReloadNow();
  EXPECT_EQ(rejected.code(), util::StatusCode::kDataLoss);
  EXPECT_EQ((*manager)->Acquire()->version(), 1u);
}

TEST_F(SnapshotManagerTest, LoadAndValidateFaultPointsReject) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  SaveTo(path_, /*seed=*/22);

  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("snapshot.load:p=1:code=io_error", /*seed=*/3)
                  .ok());
  EXPECT_EQ((*manager)->ReloadNow().code(), util::StatusCode::kIoError);
  EXPECT_EQ((*manager)->Acquire()->version(), 1u);

  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("reload.validate:p=1", /*seed=*/3)
                  .ok());
  EXPECT_EQ((*manager)->ReloadNow().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ((*manager)->Acquire()->version(), 1u);
  EXPECT_EQ((*manager)->GetStats().reloads_rejected, 2u);

  fault::FaultRegistry::Global().Disarm();
  EXPECT_TRUE((*manager)->ReloadNow().ok());
  EXPECT_EQ((*manager)->Acquire()->version(), 2u);
}

TEST_F(SnapshotManagerTest, RejectStreakDegradesHealthUntilRecovery) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_TRUE(obs::HealthTracker::Global().healthy());

  const std::string good = ReadRaw(path_);
  WriteRaw(path_, good.substr(0, good.size() / 2));  // truncated candidate

  EXPECT_FALSE((*manager)->ReloadNow().ok());
  EXPECT_TRUE(obs::HealthTracker::Global().healthy());  // one strike
  EXPECT_FALSE((*manager)->ReloadNow().ok());
  EXPECT_FALSE(obs::HealthTracker::Global().healthy());  // streak of two
  EXPECT_EQ(obs::HealthTracker::Global().reload_reject_streak(), 2u);

  WriteRaw(path_, good);
  EXPECT_TRUE((*manager)->ReloadNow().ok());
  EXPECT_TRUE(obs::HealthTracker::Global().healthy());
}

TEST_F(SnapshotManagerTest, RejectedReloadDumpsFlightRecorder) {
  const std::string dump_dir = TempPath("flight_dumps");
  std::filesystem::create_directories(dump_dir);
  obs::FlightRecorder::Options flight;
  flight.dir = dump_dir;
  flight.min_interval_seconds = 0.0;
  obs::FlightRecorder::Global().Arm(flight);

  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  WriteRaw(path_, "not a snapshot");
  ASSERT_FALSE((*manager)->ReloadNow().ok());

  EXPECT_GE(obs::FlightRecorder::Global().dump_count(), 1u);
  const std::string dump = obs::FlightRecorder::Global().last_dump_path();
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(std::filesystem::exists(dump));
  EXPECT_NE(ReadRaw(dump).find("reload rejected"), std::string::npos);

  std::error_code ec;
  std::filesystem::remove_all(dump_dir, ec);
}

TEST_F(SnapshotManagerTest, SwapAdvancesCacheGeneration) {
  ResultCache cache;
  SnapshotManager::Options options = BaseOptions();
  options.cache = &cache;
  auto manager = SnapshotManager::Create(std::move(options));
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_EQ(cache.generation(), 1u);

  cache.Put(2, 10, {1, 2, 3}, cache.generation());
  SaveTo(path_, /*seed=*/22);
  ASSERT_TRUE((*manager)->ReloadNow().ok());
  EXPECT_EQ(cache.generation(), 2u);
  EXPECT_FALSE(cache.Get(2, 10, cache.generation()).has_value());
}

TEST_F(SnapshotManagerTest, ListenerSeesEverySwapAndReject) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  std::vector<uint64_t> versions;
  std::vector<uint64_t> rejects;
  (*manager)->SetReloadListener([&](const SnapshotManager::Stats& stats) {
    versions.push_back(stats.active_version);
    rejects.push_back(stats.reloads_rejected);
  });
  ASSERT_EQ(versions.size(), 1u);  // installed listener fires immediately

  SaveTo(path_, /*seed=*/22);
  ASSERT_TRUE((*manager)->ReloadNow().ok());
  WriteRaw(path_, "garbage");
  ASSERT_FALSE((*manager)->ReloadNow().ok());
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[1], 2u);
  EXPECT_EQ(versions[2], 2u);  // reject leaves the version alone
  EXPECT_EQ(rejects[2], 1u);
}

TEST_F(SnapshotManagerTest, WatcherPicksUpAtomicallyReplacedFile) {
  SnapshotManager::Options options = BaseOptions();
  options.poll_interval_s = 0.02;
  auto manager = SnapshotManager::Create(std::move(options));
  ASSERT_TRUE(manager.ok()) << manager.status();
  (*manager)->StartWatcher();

  // Publish the way a deploy job would: write a sibling, then rename —
  // the watcher must never observe a half-written artifact.
  const std::string staging = path_ + ".staging";
  ASSERT_TRUE(SaveSnapshot(MakeSnapshot(22), staging).ok());
  std::filesystem::rename(staging, path_);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*manager)->Acquire()->version() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ((*manager)->Acquire()->version(), 2u);
  const InferenceEngine oracle_b(MakeSnapshot(22));
  EXPECT_EQ((*manager)->Acquire()->engine().TopKForUser(3, 10),
            oracle_b.TopKForUser(3, 10));
  (*manager)->Stop();
}

// The satellite-4 correctness property: under concurrent swapping, every
// reply is bit-identical to the ranking of exactly one of the two engines,
// and every issued request gets an answer.
TEST_F(SnapshotManagerTest, ConcurrentSwapsServeOnlyWholeSnapshots) {
  auto manager = SnapshotManager::Create(BaseOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  SnapshotManager* mgr = manager->get();

  const InferenceEngine oracle_a(MakeSnapshot(11));
  const InferenceEngine oracle_b(MakeSnapshot(22));
  constexpr uint32_t kK = 10;
  std::vector<std::vector<uint32_t>> expected_a;
  std::vector<std::vector<uint32_t>> expected_b;
  for (uint32_t user = 0; user < oracle_a.num_users(); ++user) {
    expected_a.push_back(oracle_a.TopKForUser(user, kK));
    expected_b.push_back(oracle_b.TopKForUser(user, kK));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> matched_a{0};
  std::atomic<uint64_t> matched_b{0};
  std::atomic<uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint32_t user = static_cast<uint32_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        requests.fetch_add(1, std::memory_order_relaxed);
        const std::shared_ptr<const ServingState> state = mgr->Acquire();
        const std::vector<uint32_t> got =
            state->engine().TopKForUser(user, kK);
        responses.fetch_add(1, std::memory_order_relaxed);
        if (got == expected_a[user]) {
          matched_a.fetch_add(1, std::memory_order_relaxed);
        } else if (got == expected_b[user]) {
          matched_b.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        user = (user + 7) % oracle_a.num_users();
      }
    });
  }

  // Six full swap cycles A -> B -> A ... while the readers hammer away.
  for (int cycle = 0; cycle < 6; ++cycle) {
    SaveTo(path_, cycle % 2 == 0 ? 22 : 11);
    ASSERT_TRUE(mgr->ReloadNow().ok()) << "cycle " << cycle;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(requests.load(), responses.load());
  EXPECT_EQ(torn.load(), 0u) << "a reply mixed two snapshot generations";
  EXPECT_GT(matched_a.load(), 0u);
  EXPECT_GT(matched_b.load(), 0u);
  EXPECT_EQ(mgr->Acquire()->version(), 7u);
}

// --- NetServer integration ---------------------------------------------------

class ReloadServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Disarm();
    obs::HealthTracker::Global().ResetForTesting();
    path_ = TempPath(std::string("srv_") + ::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name());
    SaveTo(path_, /*seed=*/11);
  }

  void TearDown() override {
    fault::FaultRegistry::Global().Disarm();
    obs::HealthTracker::Global().ResetForTesting();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  std::string path_;
};

TEST_F(ReloadServerTest, HotSwapUnderLiveTrafficDropsNothing) {
  ResultCache cache;
  SnapshotManager::Options manager_options;
  manager_options.path = path_;
  manager_options.poll_interval_s = 0.0;
  manager_options.cache = &cache;
  auto manager = SnapshotManager::Create(std::move(manager_options));
  ASSERT_TRUE(manager.ok()) << manager.status();

  net::NetServer::Options options;
  options.manager = manager->get();
  options.cache = &cache;
  options.worker_threads = 2;
  net::NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  const InferenceEngine oracle_a(MakeSnapshot(11));
  const InferenceEngine oracle_b(MakeSnapshot(22));

  auto before = client->Query(3, 10);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->items, oracle_a.TopKForUser(3, 10));
  auto cached = client->Query(3, 10);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->served_from_cache);

  SaveTo(path_, /*seed=*/22);
  ASSERT_TRUE((*manager)->ReloadNow().ok());

  // Same connection, same user: the swap must be visible immediately and
  // the pre-swap cache entry must not leak through.
  auto after = client->Query(3, 10);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->served_from_cache);
  EXPECT_EQ(after->items, oracle_b.TopKForUser(3, 10));
  for (size_t i = 0; i < after->items.size(); ++i) {
    EXPECT_EQ(after->scores[i], oracle_b.snapshot().Score(3, after->items[i]));
  }

  server.Stop();
  const net::NetServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_GE(cache.GetStats().stale_hits, 1u);
}

TEST_F(ReloadServerTest, BreakerShedsAtTheWireAndRecovers) {
  ModelSnapshot snapshot = MakeSnapshot(11);
  InferenceEngine engine(std::move(snapshot));
  HardenedOptions hardened;
  hardened.retry.max_attempts = 1;  // every failure surfaces immediately
  HardenedExecutor executor(&engine, hardened);

  CircuitBreaker::Options breaker_options;
  breaker_options.window = 8;
  breaker_options.min_samples = 4;
  breaker_options.trip_ratio = 0.5;
  breaker_options.open_ms = 60000.0;  // stays open for the whole test
  CircuitBreaker breaker(breaker_options);

  net::NetServer::Options options;
  options.engine = &engine;
  options.executor = &executor;
  options.breaker = &breaker;
  options.worker_threads = 1;
  net::NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  // With no degraded fallback an armed engine.score fault is a hard error
  // per request; four of them trip the breaker.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("engine.score:p=1", /*seed=*/5)
                  .ok());
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(client->Query(i, 10).ok());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Shed replies are application errors on a healthy connection: the
  // engine is never touched and the message names the breaker.
  fault::FaultRegistry::Global().Disarm();
  auto shed = client->Query(5, 10);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().ToString().find("circuit breaker"),
            std::string::npos);

  server.Stop();
  const net::NetServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.breaker_rejected, 1u);
  EXPECT_EQ(stats.requests, stats.responses);
}

TEST_F(ReloadServerTest, AdminReloadzTriggersAndReportsRejects) {
  SnapshotManager::Options manager_options;
  manager_options.path = path_;
  manager_options.poll_interval_s = 0.0;
  auto manager = SnapshotManager::Create(std::move(manager_options));
  ASSERT_TRUE(manager.ok()) << manager.status();
  SnapshotManager* mgr = manager->get();

  obs::AdminServer admin(obs::AdminServer::Options{.port = 0});
  admin.SetReloadHandler([mgr]() {
    obs::HttpResponse response;
    const util::Status status = mgr->ReloadNow();
    response.status_code = status.ok() ? 200 : 503;
    response.body = status.ok() ? "ok" : status.ToString();
    return response;
  });
  ASSERT_TRUE(admin.Start().ok());

  SaveTo(path_, /*seed=*/22);
  auto swapped = obs::AdminHttpPost(admin.port(), "/reloadz");
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_EQ(swapped->status_code, 200);
  EXPECT_EQ(mgr->Acquire()->version(), 2u);

  WriteRaw(path_, "definitely not a snapshot");
  auto rejected = obs::AdminHttpPost(admin.port(), "/reloadz");
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->status_code, 503);
  EXPECT_EQ(mgr->Acquire()->version(), 2u);

  // Wrong verb and unknown POST paths answer cleanly.
  auto get = obs::AdminHttpGet(admin.port(), "/reloadz");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status_code, 405);
  auto unknown = obs::AdminHttpPost(admin.port(), "/nope");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status_code, 404);

  admin.Stop();
}

TEST_F(ReloadServerTest, AdminPostWithoutHandlerIs404) {
  obs::AdminServer admin(obs::AdminServer::Options{.port = 0});
  ASSERT_TRUE(admin.Start().ok());
  auto response = obs::AdminHttpPost(admin.port(), "/reloadz");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 404);
  admin.Stop();
}

}  // namespace
}  // namespace hosr::serve
