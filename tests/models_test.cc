#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "models/deepinf.h"
#include "models/if_bpr.h"
#include "models/ncf.h"
#include "models/nscr.h"
#include "models/trainer.h"
#include "models/trust_svd.h"
#include "tensor/ops.h"

namespace hosr::models {
namespace {

// Small deterministic dataset shared by the model tests.
const data::Dataset& TestDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "model-test";
    config.num_users = 120;
    config.num_items = 150;
    config.avg_interactions_per_user = 8;
    config.avg_relations_per_user = 6;
    config.seed = 99;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

// --- Cross-model consistency: tape scores must match inference scores -------

class ModelConsistencyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelConsistencyTest, ScorePairsMatchesScoreAllItems) {
  const data::Dataset& dataset = TestDataset();
  core::ZooConfig zoo;
  zoo.embedding_dim = 6;
  zoo.hosr_graph_dropout = 0.0f;  // inference path must match exactly
  auto model_or = core::MakeModel(GetParam(), dataset, zoo);
  ASSERT_TRUE(model_or.ok());
  auto& model = *model_or.value();

  const std::vector<uint32_t> users{0, 5, 17, 44, 99};
  const std::vector<uint32_t> items{3, 10, 20, 77, 149};

  autograd::Tape tape;
  const autograd::Value pair_scores =
      model.ScorePairs(&tape, users, items, /*training=*/false);
  const tensor::Matrix all_scores = model.ScoreAllItems(users);

  ASSERT_EQ(pair_scores.rows(), users.size());
  ASSERT_EQ(all_scores.rows(), users.size());
  ASSERT_EQ(all_scores.cols(), dataset.num_items());
  for (size_t b = 0; b < users.size(); ++b) {
    EXPECT_NEAR(pair_scores.value()(b, 0), all_scores(b, items[b]), 1e-3)
        << GetParam() << " row " << b;
  }
}

TEST_P(ModelConsistencyTest, TrainingReducesLoss) {
  const data::Dataset& dataset = TestDataset();
  util::Rng split_rng(5);
  const auto split = data::SplitDataset(dataset, 0.2, &split_rng);
  ASSERT_TRUE(split.ok());

  core::ZooConfig zoo;
  zoo.embedding_dim = 6;
  auto model_or = core::MakeModel(GetParam(), split->train, zoo);
  ASSERT_TRUE(model_or.ok());
  auto& model = *model_or.value();

  TrainConfig config;
  config.epochs = 25;
  config.batch_size = 128;
  config.learning_rate = 0.005f;
  config.weight_decay = 1e-5f;
  config.seed = 3;
  BprTrainer trainer(&model, &split->train.interactions, config);
  const auto history = trainer.Train();
  ASSERT_EQ(history.size(), 25u);
  // Note: absolute loss levels differ across objectives (IF-BPR sums two
  // ranking terms), so assert relative improvement only.
  EXPECT_LT(history.back().avg_loss, 0.97 * history.front().avg_loss)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelConsistencyTest,
                         ::testing::ValuesIn(core::AllModelNames()));

// --- Gradient checks on miniature instances ----------------------------------

data::Dataset TinyDataset() {
  data::Dataset d;
  auto interactions = data::InteractionMatrix::FromInteractions(
      5, 6, {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 0}});
  HOSR_CHECK(interactions.ok());
  d.interactions = std::move(interactions).value();
  auto social =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HOSR_CHECK(social.ok());
  d.social = std::move(social).value();
  return d;
}

data::BprBatch TinyBatch() {
  data::BprBatch batch;
  batch.users = {0, 1, 4};
  batch.pos_items = {0, 2, 5};
  batch.neg_items = {3, 4, 1};
  return batch;
}

// `zero_tol` skips entries where both gradients are tiny; for ReLU models
// pass a larger value (kinks make tiny finite differences one-sided).
template <typename Model>
void CheckModelGradients(Model* model, double tol = 6e-2,
                         double zero_tol = 2e-3) {
  const data::BprBatch batch = TinyBatch();
  util::Rng rng(17);
  std::vector<autograd::Param*> params;
  for (size_t i = 0; i < model->params()->size(); ++i) {
    params.push_back(model->params()->at(i));
  }
  // Jitter every parameter slightly: zero-initialized biases otherwise put
  // ReLU pre-activations exactly on the kink, where the analytic gradient
  // (0) and the one-sided numeric gradient legitimately disagree.
  for (autograd::Param* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += rng.Gaussian(0.0f, 0.05f);
    }
  }
  // eps small enough to avoid ReLU-kink crossings; zero_tol masks entries
  // below float32 finite-difference noise.
  const auto result = autograd::CheckGradients(
      [&](autograd::Tape* tape) {
        util::Rng loss_rng(23);  // deterministic across evaluations
        return model->BuildLoss(tape, batch, &loss_rng);
      },
      params, /*eps=*/2e-3, tol, zero_tol);
  EXPECT_TRUE(result.passed) << "worst: " << result.worst_entry
                             << " rel err: " << result.max_relative_error;
}

TEST(ModelGradientsTest, BprMf) {
  const data::Dataset d = TinyDataset();
  BprMf model(d.num_users(), d.num_items(), {.embedding_dim = 3, .seed = 2});
  CheckModelGradients(&model);
}

// Directional gradient check for ReLU models: per-entry finite differences
// are ill-defined near kinks, but the analytic gradient must still predict
// the first-order loss drop along its own direction.
template <typename Model>
void CheckDirectionalGradient(Model* model, double tol = 0.25) {
  const data::BprBatch batch = TinyBatch();
  auto eval_loss = [&] {
    autograd::Tape tape;
    util::Rng loss_rng(23);
    return model->BuildLoss(&tape, batch, &loss_rng).value()(0, 0);
  };
  const double loss0 = eval_loss();
  model->params()->ZeroGrad();
  {
    autograd::Tape tape;
    util::Rng loss_rng(23);
    tape.Backward(model->BuildLoss(&tape, batch, &loss_rng));
  }
  double grad_norm_sq = 0.0;
  for (size_t i = 0; i < model->params()->size(); ++i) {
    grad_norm_sq += tensor::SquaredNorm(model->params()->at(i)->grad);
  }
  ASSERT_GT(grad_norm_sq, 0.0);
  const double eta = 1e-3 / std::sqrt(grad_norm_sq);
  for (size_t i = 0; i < model->params()->size(); ++i) {
    autograd::Param* p = model->params()->at(i);
    for (size_t j = 0; j < p->value.size(); ++j) {
      p->value.data()[j] -= static_cast<float>(eta) * p->grad.data()[j];
    }
  }
  const double actual_drop = loss0 - eval_loss();
  const double predicted_drop = eta * grad_norm_sq;
  EXPECT_NEAR(actual_drop / predicted_drop, 1.0, tol)
      << "loss0=" << loss0 << " drop=" << actual_drop
      << " predicted=" << predicted_drop;
}

TEST(ModelGradientsTest, Ncf) {
  const data::Dataset d = TinyDataset();
  Ncf::Config config;
  config.embedding_dim = 3;
  config.num_hidden_layers = 2;
  config.seed = 2;
  Ncf model(d.num_users(), d.num_items(), config);
  CheckDirectionalGradient(&model);
}

TEST(ModelGradientsTest, TrustSvd) {
  const data::Dataset d = TinyDataset();
  TrustSvd::Config config;
  config.embedding_dim = 3;
  config.seed = 2;
  TrustSvd model(d, config);
  CheckModelGradients(&model);
}

TEST(ModelGradientsTest, Nscr) {
  const data::Dataset d = TinyDataset();
  Nscr::Config config;
  config.embedding_dim = 3;
  config.num_hidden_layers = 2;
  config.seed = 2;
  Nscr model(d, config);
  CheckDirectionalGradient(&model);
}

TEST(ModelGradientsTest, IfBpr) {
  const data::Dataset d = TinyDataset();
  IfBpr::Config config;
  config.embedding_dim = 3;
  config.seed = 2;
  IfBpr model(d, config);
  CheckModelGradients(&model);
}

TEST(ModelGradientsTest, DeepInf) {
  const data::Dataset d = TinyDataset();
  DeepInf::Config config;
  config.embedding_dim = 3;
  config.num_layers = 2;
  config.sample_size = 3;
  config.seed = 2;
  DeepInf model(d, config);
  CheckDirectionalGradient(&model);
}

// --- Model-specific behaviors ---------------------------------------------------

TEST(BprMfTest, ShapesAndName) {
  BprMf model(10, 20, {.embedding_dim = 4, .seed = 1});
  EXPECT_EQ(model.name(), "BPR");
  EXPECT_EQ(model.num_users(), 10u);
  EXPECT_EQ(model.num_items(), 20u);
  EXPECT_EQ(model.user_embeddings().rows(), 10u);
  EXPECT_EQ(model.item_embeddings().cols(), 4u);
  EXPECT_EQ(model.params()->size(), 2u);
}

TEST(BprMfTest, ScoreIsDotProduct) {
  BprMf model(3, 3, {.embedding_dim = 2, .seed = 1});
  const auto& u = model.user_embeddings();
  const auto& v = model.item_embeddings();
  const tensor::Matrix scores = model.ScoreAllItems({1});
  const float expected = u(1, 0) * v(2, 0) + u(1, 1) * v(2, 1);
  EXPECT_NEAR(scores(0, 2), expected, 1e-5);
}

TEST(TrustSvdTest, SocialTermChangesScores) {
  // Against a plain-MF control with identical seeds, TrustSVD's effective
  // embedding must differ (social + implicit terms are added).
  const data::Dataset d = TinyDataset();
  TrustSvd::Config config;
  config.embedding_dim = 4;
  config.seed = 11;
  TrustSvd model(d, config);
  BprMf control(d.num_users(), d.num_items(),
                {.embedding_dim = 4, .seed = 11});
  const auto trust_scores = model.ScoreAllItems({0, 1});
  const auto mf_scores = control.ScoreAllItems({0, 1});
  EXPECT_FALSE(tensor::AllClose(trust_scores, mf_scores, 1e-6));
}

TEST(IfBprTest, ImplicitFriendsExcludeExplicitAndSelf) {
  const data::Dataset& dataset = TestDataset();
  IfBpr::Config config;
  config.embedding_dim = 4;
  config.seed = 3;
  IfBpr model(dataset, config);
  for (uint32_t u = 0; u < 40; ++u) {
    const auto explicit_friends = dataset.social.Neighbors(u);
    for (const uint32_t f : model.ImplicitFriends(u)) {
      EXPECT_NE(f, u);
      EXPECT_FALSE(std::binary_search(explicit_friends.begin(),
                                      explicit_friends.end(), f))
          << "user " << u << " implicit friend " << f;
    }
  }
}

TEST(IfBprTest, SocialItemsAreUnconsumedFriendItems) {
  const data::Dataset& dataset = TestDataset();
  IfBpr::Config config;
  config.embedding_dim = 4;
  config.seed = 3;
  IfBpr model(dataset, config);
  for (uint32_t u = 0; u < 40; ++u) {
    for (const uint32_t item : model.SocialItems(u)) {
      EXPECT_FALSE(dataset.interactions.Contains(u, item));
    }
  }
}

TEST(DeepInfTest, SampleSizeBoundsNeighborhood) {
  const data::Dataset& dataset = TestDataset();
  DeepInf::Config config;
  config.embedding_dim = 4;
  config.sample_size = 10;
  config.seed = 3;
  DeepInf model(dataset, config);
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    // sample + self loop.
    EXPECT_LE(model.SampledNeighborCount(u), 11u);
    EXPECT_GE(model.SampledNeighborCount(u), 1u);
  }
}

TEST(NcfTest, DistinctUsersGetDistinctScores) {
  const data::Dataset& dataset = TestDataset();
  Ncf::Config config;
  config.embedding_dim = 4;
  config.seed = 3;
  Ncf model(dataset.num_users(), dataset.num_items(), config);
  const auto scores = model.ScoreAllItems({0, 1});
  EXPECT_FALSE(tensor::AllClose(
      tensor::GatherRows(scores, {0}), tensor::GatherRows(scores, {1}), 1e-7));
}

// --- Trainer ---------------------------------------------------------------------

TEST(TrainerTest, ValidatesConfig) {
  TrainConfig config;
  config.epochs = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TrainConfig();
  config.learning_rate = -1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = TrainConfig();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(TrainerTest, EpochStatsProgress) {
  const data::Dataset& dataset = TestDataset();
  BprMf model(dataset.num_users(), dataset.num_items(),
              {.embedding_dim = 4, .seed = 5});
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  config.seed = 5;
  BprTrainer trainer(&model, &dataset.interactions, config);
  const auto stats = trainer.Train();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].epoch, 0u);
  EXPECT_EQ(stats[2].epoch, 2u);
  for (const auto& s : stats) {
    EXPECT_GT(s.avg_loss, 0.0);
    EXPECT_GE(s.seconds, 0.0);
  }
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const data::Dataset& dataset = TestDataset();
  auto run = [&] {
    BprMf model(dataset.num_users(), dataset.num_items(),
                {.embedding_dim = 4, .seed = 5});
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 64;
    config.seed = 5;
    BprTrainer trainer(&model, &dataset.interactions, config);
    return trainer.Train().back().avg_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace hosr::models
