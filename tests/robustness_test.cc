// Robustness suite (docs/ROBUSTNESS.md): crash-safe file primitives,
// retry/degraded/deadline serving behavior under deterministic fault
// injection, bit-flip corruption sweeps over every binary artifact, and the
// kill-and-resume contract — training restored from a checkpoint finishes
// bit-identical to a run that never died.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/checkpoint.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "fault/fault.h"
#include "models/trainer.h"
#include "optim/optimizer.h"
#include "serve/batcher.h"
#include "serve/degraded.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/retry.h"
#include "serve/snapshot.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace hosr {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const data::Dataset& TestDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "robustness-test";
    config.num_users = 60;
    config.num_items = 80;
    config.avg_interactions_per_user = 8;
    config.avg_relations_per_user = 5;
    config.seed = 23;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

std::unique_ptr<models::RankingModel> MakeTestModel(const std::string& name) {
  core::ZooConfig zoo;
  zoo.embedding_dim = 6;
  zoo.hosr_graph_dropout = 0.0f;
  auto model = core::MakeModel(name, TestDataset(), zoo);
  HOSR_CHECK(model.ok()) << model.status();
  return std::move(model).value();
}

serve::InferenceEngine MakeTestEngine() {
  auto model = MakeTestModel("BPR");
  auto snapshot = serve::BuildSnapshot(*model);
  HOSR_CHECK(snapshot.ok());
  return serve::InferenceEngine(std::move(snapshot).value(),
                                &TestDataset().interactions);
}

// Fault suites leave the global registry disarmed for the other tests
// sharing the binary.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Disarm(); }
  void TearDown() override { fault::FaultRegistry::Global().Disarm(); }
};

// --- crash-safe file primitives ----------------------------------------------

TEST(AtomicWriteFileTest, CommitPublishesAndDestructionWithoutCommitDoesNot) {
  const std::string path = TempPath("hosr_atomic_basic.txt");
  std::remove(path.c_str());
  {
    util::AtomicWriteFile file(path);
    ASSERT_TRUE(file.status().ok());
    file.stream() << "payload";
    // Not yet committed: the target must not exist, only the temp file.
    EXPECT_FALSE(std::filesystem::exists(path));
    ASSERT_TRUE(file.Commit().ok());
  }
  EXPECT_EQ(ReadRaw(path), "payload");

  {
    util::AtomicWriteFile file(path);
    file.stream() << "torn write that must never land";
  }  // destroyed without Commit
  EXPECT_EQ(ReadRaw(path), "payload") << "abandoned write clobbered target";
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, AbortRemovesTempAndKeepsTarget) {
  const std::string path = TempPath("hosr_atomic_abort.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "original").ok());
  util::AtomicWriteFile file(path);
  file.stream() << "doomed";
  file.Abort();
  EXPECT_EQ(ReadRaw(path), "original");
  // The temp directory holds no leftover .tmp files for this target.
  const auto dir = std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp."), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CrcFileTest, RoundTripsAndRejectsEverySingleBitFlip) {
  const std::string path = TempPath("hosr_crc_roundtrip.bin");
  const std::string body = "binary\x00payload with \xff bytes";
  ASSERT_TRUE(util::WriteFileAtomicWithCrc(path, body).ok());
  auto loaded = util::ReadFileVerifyCrc(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, body);

  // Exhaustive single-bit-flip sweep over body AND footer: every flip must
  // surface as DataLoss, never load as garbage.
  const std::string bytes = ReadRaw(path);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[byte] ^= static_cast<char>(1 << bit);
      WriteRaw(path, corrupted);
      const auto result = util::ReadFileVerifyCrc(path);
      ASSERT_FALSE(result.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
    }
  }
  std::remove(path.c_str());
}

TEST(CrcFileTest, TruncationAndMissingFile) {
  const std::string path = TempPath("hosr_crc_trunc.bin");
  ASSERT_TRUE(util::WriteFileAtomicWithCrc(path, "0123456789").ok());
  const std::string bytes = ReadRaw(path);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteRaw(path, bytes.substr(0, len));
    const auto result = util::ReadFileVerifyCrc(path);
    ASSERT_FALSE(result.ok()) << "prefix " << len;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
  EXPECT_EQ(util::ReadFileVerifyCrc(path).status().code(),
            util::StatusCode::kIoError);
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicyTest, EveryCanonicalCodeClassifies) {
  using util::Status;
  // Transient — worth retrying.
  EXPECT_TRUE(serve::RetryPolicy::ShouldRetry(Status::Unavailable("x")));
  EXPECT_TRUE(serve::RetryPolicy::ShouldRetry(Status::ResourceExhausted("x")));
  // Deterministic failures — retrying repeats the failure.
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::Ok()));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::InvalidArgument("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::NotFound("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::OutOfRange("x")));
  EXPECT_FALSE(
      serve::RetryPolicy::ShouldRetry(Status::FailedPrecondition("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::IoError("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::Internal("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::Unimplemented("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(serve::RetryPolicy::ShouldRetry(Status::DataLoss("x")));
}

TEST(RetryPolicyTest, FirstDelayIsBaseThenJitteredWithinBounds) {
  serve::RetryPolicy::Options options;
  options.max_attempts = 6;
  options.initial_backoff_ms = 2.0;
  options.max_backoff_ms = 10.0;
  serve::RetryPolicy retry(options, /*seed=*/3);
  // Decorrelated jitter with no previous delay: exactly the base.
  EXPECT_DOUBLE_EQ(retry.NextDelayMs(), 2.0);
  for (int i = 0; i < 4; ++i) {
    const double delay = retry.NextDelayMs();
    EXPECT_GE(delay, 2.0);
    EXPECT_LE(delay, 10.0);
  }
  // Attempt cap reached.
  EXPECT_LT(retry.NextDelayMs(), 0.0);
  EXPECT_FALSE(retry.BudgetBlown());
}

TEST(RetryPolicyTest, BudgetStopsScheduleAndFlagsBlown) {
  serve::RetryPolicy::Options options;
  options.max_attempts = 100;
  options.initial_backoff_ms = 2.0;
  options.max_backoff_ms = 2.0;  // deterministic 2ms per retry
  options.budget_ms = 5.0;
  serve::RetryPolicy retry(options, /*seed=*/1);
  EXPECT_DOUBLE_EQ(retry.NextDelayMs(), 2.0);  // spent 2
  EXPECT_DOUBLE_EQ(retry.NextDelayMs(), 2.0);  // spent 4
  EXPECT_LT(retry.NextDelayMs(), 0.0);         // 6 > 5: refused
  EXPECT_TRUE(retry.BudgetBlown());
  EXPECT_DOUBLE_EQ(retry.spent_ms(), 4.0);
}

TEST(RetryPolicyTest, ScheduleIsAPureFunctionOfSeed) {
  serve::RetryPolicy::Options options;
  options.max_attempts = 8;
  auto schedule = [&](uint64_t seed) {
    serve::RetryPolicy retry(options, seed);
    std::vector<double> delays;
    for (double d = retry.NextDelayMs(); d >= 0.0; d = retry.NextDelayMs()) {
      delays.push_back(d);
    }
    return delays;
  };
  EXPECT_EQ(schedule(5), schedule(5));
  EXPECT_NE(schedule(5), schedule(6));
}

// --- degraded ranker ---------------------------------------------------------

TEST(DegradedRankerTest, ServesPopularityOrderExcludingSeen) {
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  for (uint32_t u = 0; u < engine.num_users(); ++u) {
    const auto ranked = degraded.TopK(u, 15);
    EXPECT_EQ(ranked.size(), 15u);
    for (const uint32_t item : ranked) {
      EXPECT_FALSE(TestDataset().interactions.Contains(u, item))
          << "user " << u;
    }
  }
  // Deterministic: two rankers over the same engine agree exactly.
  const serve::DegradedRanker again(&engine);
  EXPECT_EQ(degraded.TopK(7, 20), again.TopK(7, 20));
}

// --- hardened executor -------------------------------------------------------

TEST_F(RobustnessTest, CertainFaultWithFallbackDegradesEveryRequest) {
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("engine.score:p=1", 1).ok());
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  serve::HardenedOptions options;
  options.degraded = &degraded;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  const serve::HardenedExecutor executor(&engine, options);

  const auto response = executor.Execute(3, 10, /*token=*/0);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->items, degraded.TopK(3, 10));
}

TEST_F(RobustnessTest, CertainFaultWithoutFallbackPropagates) {
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("engine.score:p=1", 1).ok());
  const serve::InferenceEngine engine = MakeTestEngine();
  serve::HardenedOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  const serve::HardenedExecutor executor(&engine, options);
  const auto response = executor.Execute(3, 10, /*token=*/0);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kUnavailable);
}

TEST_F(RobustnessTest, NonTransientFaultIsNeverRetried) {
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("engine.score:p=1:code=internal", 1)
                  .ok());
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  serve::HardenedOptions options;
  options.degraded = &degraded;  // fallback must NOT mask hard errors
  options.retry.max_attempts = 5;
  const serve::HardenedExecutor executor(&engine, options);
  const auto response = executor.Execute(3, 10, /*token=*/0);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(fault::FaultRegistry::Global().StatsFor("engine.score").hits, 1u);
}

TEST_F(RobustnessTest, BlownBudgetIsDeadlineExceededNotDegraded) {
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("engine.score:p=1", 1).ok());
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  serve::HardenedOptions options;
  options.degraded = &degraded;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_ms = 2.0;
  options.retry.max_backoff_ms = 2.0;
  options.deadline_ms = 3.0;  // covers one 2ms backoff, not two
  const serve::HardenedExecutor executor(&engine, options);
  const auto response = executor.Execute(3, 10, /*token=*/0);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(RobustnessTest, OutcomesAreBitReproducibleAcrossRuns) {
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  auto outcomes = [&] {
    fault::FaultRegistry::Global().Disarm();
    EXPECT_TRUE(fault::FaultRegistry::Global()
                    .Configure("engine.score:p=0.2", 99)
                    .ok());
    serve::HardenedOptions options;
    options.degraded = &degraded;
    options.retry.max_attempts = 3;
    options.retry.initial_backoff_ms = 0.01;
    options.retry.max_backoff_ms = 0.04;
    options.deadline_ms = 0.05;
    const serve::HardenedExecutor executor(&engine, options);
    // Encode each request's outcome: 0 ok, 1 degraded, 2+code errors.
    std::vector<int> encoded;
    for (uint64_t token = 0; token < 400; ++token) {
      const auto r =
          executor.Execute(static_cast<uint32_t>(token % engine.num_users()),
                           10, token);
      encoded.push_back(r.ok() ? (r->degraded ? 1 : 0)
                               : 2 + static_cast<int>(r.status().code()));
    }
    return encoded;
  };
  const auto first = outcomes();
  EXPECT_EQ(first, outcomes());
  // The mix is non-trivial: some full-fidelity, some degraded.
  EXPECT_GT(std::count(first.begin(), first.end(), 0), 0);
  EXPECT_GT(std::count(first.begin(), first.end(), 1), 0);
}

// --- batcher hardening -------------------------------------------------------

TEST(BatcherRobustnessTest, FullQueueShedsImmediately) {
  const serve::InferenceEngine engine = MakeTestEngine();
  serve::RequestBatcher::Options options;
  options.max_batch_size = 64;       // dispatcher lingers for a full batch
  options.queue_capacity = 2;
  options.max_linger_us = 200000;    // 200ms: submits below land mid-linger
  serve::RequestBatcher batcher(&engine, options);

  std::vector<std::future<util::StatusOr<serve::ServeResponse>>> futures;
  for (uint32_t i = 0; i < 6; ++i) futures.push_back(batcher.Submit(i, 5));
  size_t shed = 0;
  for (auto& f : futures) {
    const auto result = f.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(),
                util::StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  // Capacity 2 with a lingering dispatcher: at least 6 - 2 - 1 sheds (one
  // request may have been popped into the forming batch).
  EXPECT_GE(shed, 3u);
}

TEST(BatcherRobustnessTest, StopDrainsQueuedRequestsWithUnavailable) {
  const serve::InferenceEngine engine = MakeTestEngine();
  serve::RequestBatcher::Options options;
  options.max_batch_size = 64;
  options.max_linger_us = 10000000;  // 10s: nothing dispatches before Stop
  serve::RequestBatcher batcher(&engine, options);
  std::vector<std::future<util::StatusOr<serve::ServeResponse>>> futures;
  for (uint32_t i = 0; i < 4; ++i) futures.push_back(batcher.Submit(i, 5));
  batcher.Stop();
  for (auto& f : futures) {
    // The future MUST resolve (no hang); queued requests get Unavailable.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    const auto result = f.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  }
  // And post-Stop submissions fail fast with FailedPrecondition.
  const auto late = batcher.Submit(0, 5).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(RobustnessTest, BatcherRoutesFaultsThroughDegradedFallback) {
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("engine.score:p=1", 1).ok());
  const serve::InferenceEngine engine = MakeTestEngine();
  const serve::DegradedRanker degraded(&engine);
  serve::RequestBatcher::Options options;
  options.hardened.degraded = &degraded;
  options.hardened.retry.max_attempts = 2;
  options.hardened.retry.initial_backoff_ms = 0.0;
  options.hardened.retry.max_backoff_ms = 0.0;
  serve::RequestBatcher batcher(&engine, options);
  for (uint32_t u = 0; u < 8; ++u) {
    const auto result = batcher.Submit(u, 10).get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->degraded);
    EXPECT_EQ(result->items, degraded.TopK(u, 10));
  }
}

// --- optimizer state round-trip ----------------------------------------------

void FillGrads(autograd::ParamStore* store, util::Rng* rng) {
  for (size_t i = 0; i < store->size(); ++i) {
    autograd::Param* p = store->at(i);
    for (size_t j = 0; j < p->grad.size(); ++j) {
      p->grad.data()[j] = rng->Gaussian();
    }
  }
}

class OptimizerStateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerStateTest, SaveLoadContinuesBitIdentically) {
  auto make_store = [] {
    auto store = std::make_unique<autograd::ParamStore>();
    util::Rng init(4);
    store->CreateGaussian("emb", 8, 4, 0.1f, &init);
    store->CreateGaussian("bias", 1, 8, 0.1f, &init);
    return store;
  };
  auto reference_store = make_store();
  auto resumed_store = make_store();
  auto reference_opt = optim::MakeOptimizer(GetParam(), 0.05f, 0.001f);
  auto warm_opt = optim::MakeOptimizer(GetParam(), 0.05f, 0.001f);

  // Identical first phase on both optimizers.
  util::Rng grads_a(9), grads_b(9);
  for (int step = 0; step < 3; ++step) {
    FillGrads(reference_store.get(), &grads_a);
    reference_opt->Step(reference_store.get());
    FillGrads(resumed_store.get(), &grads_b);
    warm_opt->Step(resumed_store.get());
  }

  // Serialize the warm optimizer, load into a FRESH one.
  std::ostringstream saved;
  ASSERT_TRUE(warm_opt->SaveState(&saved).ok());
  auto resumed_opt = optim::MakeOptimizer(GetParam(), 0.05f, 0.001f);
  std::istringstream loaded(saved.str());
  ASSERT_TRUE(resumed_opt->LoadState(&loaded).ok());

  // Second phase: reference continues, resumed picks up from the state.
  for (int step = 0; step < 3; ++step) {
    FillGrads(reference_store.get(), &grads_a);
    reference_opt->Step(reference_store.get());
    FillGrads(resumed_store.get(), &grads_b);
    resumed_opt->Step(resumed_store.get());
  }
  for (size_t i = 0; i < reference_store->size(); ++i) {
    const auto* a = reference_store->at(i);
    const auto* b = resumed_store->at(i);
    ASSERT_EQ(0, std::memcmp(a->value.data(), b->value.data(),
                             a->value.size() * sizeof(float)))
        << GetParam() << " diverged on " << a->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Optimizers, OptimizerStateTest,
                         ::testing::Values("sgd", "rmsprop", "adam",
                                           "adagrad"));

// --- trainer kill-and-resume -------------------------------------------------

models::TrainConfig ResumeTrainConfig() {
  models::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 64;
  config.learning_rate = 0.01f;
  config.weight_decay = 1e-4f;
  config.optimizer = "rmsprop";
  config.seed = 5;
  return config;
}

void ExpectParamsBitIdentical(const autograd::ParamStore& a,
                              const autograd::ParamStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i)->name, b.at(i)->name);
    ASSERT_EQ(0, std::memcmp(a.at(i)->value.data(), b.at(i)->value.data(),
                             a.at(i)->value.size() * sizeof(float)))
        << "parameter " << a.at(i)->name << " diverged";
  }
}

class ResumeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ResumeTest, ResumedTrainingIsBitIdenticalToUninterrupted) {
  const auto config = ResumeTrainConfig();
  const auto& train = TestDataset().interactions;

  // Reference: 4 epochs straight through.
  auto reference = MakeTestModel(GetParam());
  models::BprTrainer straight(reference.get(), &train, config);
  straight.Train();

  // Interrupted: 2 epochs, checkpoint, then a brand-new process-equivalent
  // (fresh model + trainer) restores and finishes.
  const std::string path = TempPath("hosr_resume_" + GetParam() + ".state");
  {
    auto model = MakeTestModel(GetParam());
    models::BprTrainer trainer(model.get(), &train, config);
    trainer.RunEpoch();
    trainer.RunEpoch();
    ASSERT_TRUE(trainer.SaveTrainingState(path).ok());
  }  // "crash": model and trainer destroyed
  auto resumed = MakeTestModel(GetParam());
  models::BprTrainer trainer(resumed.get(), &train, config);
  ASSERT_TRUE(trainer.RestoreTrainingState(path).ok());
  EXPECT_EQ(trainer.epoch(), 2u);
  const auto history = trainer.Train();
  EXPECT_EQ(history.size(), 2u);

  ExpectParamsBitIdentical(*reference->params(), *resumed->params());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, ResumeTest,
                         ::testing::Values("BPR", "HOSR"));

TEST(ResumeTest, RefusesForeignModelConfigAndCorruption) {
  const auto config = ResumeTrainConfig();
  const auto& train = TestDataset().interactions;
  const std::string path = TempPath("hosr_resume_guards.state");
  auto model = MakeTestModel("BPR");
  models::BprTrainer trainer(model.get(), &train, config);
  trainer.RunEpoch();
  ASSERT_TRUE(trainer.SaveTrainingState(path).ok());

  // Wrong model.
  {
    auto other = MakeTestModel("HOSR");
    models::BprTrainer foreign(other.get(), &train, config);
    const auto status = foreign.RestoreTrainingState(path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  }
  // Wrong config.
  {
    auto other = MakeTestModel("BPR");
    auto drifted = config;
    drifted.learning_rate = 0.02f;
    models::BprTrainer foreign(other.get(), &train, drifted);
    const auto status = foreign.RestoreTrainingState(path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  }
  // Bit flips anywhere in the file: clean DataLoss, never a crash or a
  // silently-garbled restore.
  const std::string bytes = ReadRaw(path);
  for (size_t byte = 0; byte < bytes.size();
       byte += std::max<size_t>(1, bytes.size() / 97)) {
    std::string corrupted = bytes;
    corrupted[byte] ^= 0x40;
    WriteRaw(path, corrupted);
    auto other = MakeTestModel("BPR");
    models::BprTrainer victim(other.get(), &train, config);
    const auto status = victim.RestoreTrainingState(path);
    ASSERT_FALSE(status.ok()) << "byte " << byte;
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss) << "byte " << byte;
  }
  // Missing file is IoError (so callers can treat it as "start fresh").
  std::remove(path.c_str());
  EXPECT_EQ(trainer.RestoreTrainingState(path).code(),
            util::StatusCode::kIoError);
}

// --- artifact corruption sweeps ----------------------------------------------

TEST(CorruptionSweepTest, ParamCheckpointBitFlipsAreDataLoss) {
  auto model = MakeTestModel("BPR");
  const std::string path = TempPath("hosr_ckpt_sweep.bin");
  ASSERT_TRUE(autograd::SaveCheckpoint(*model->params(), path).ok());
  const std::string bytes = ReadRaw(path);
  for (size_t byte = 0; byte < bytes.size();
       byte += std::max<size_t>(1, bytes.size() / 97)) {
    std::string corrupted = bytes;
    corrupted[byte] ^= 0x01;
    WriteRaw(path, corrupted);
    const auto status = autograd::LoadCheckpoint(path, model->params());
    ASSERT_FALSE(status.ok()) << "byte " << byte;
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss) << "byte " << byte;
  }
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, SnapshotBitFlipsAreDataLoss) {
  auto model = MakeTestModel("BPR");
  auto snapshot = serve::BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const std::string path = TempPath("hosr_snap_sweep.bin");
  ASSERT_TRUE(serve::SaveSnapshot(*snapshot, path).ok());
  const std::string bytes = ReadRaw(path);
  for (size_t byte = 0; byte < bytes.size();
       byte += std::max<size_t>(1, bytes.size() / 97)) {
    std::string corrupted = bytes;
    corrupted[byte] ^= 0x80;
    WriteRaw(path, corrupted);
    const auto loaded = serve::LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "byte " << byte;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
        << "byte " << byte;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hosr
