// hosr::obs v2 surfaces: metric-name validation, histogram exemplars,
// request contexts, the live admin endpoint (transport-free and over real
// loopback sockets), the flight recorder's CRC-verified dumps, and the
// StatsReporter shutdown-flush guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "json_validator_test_util.h"
#include "obs/admin_server.h"
#include "obs/context.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace hosr::obs {
namespace {

using hosr::test_util::IsValidJson;

class ObsAdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().ResetForTesting();
    HealthTracker::Global().ResetForTesting();
    FlightRecorder::Global().ResetForTesting();
    ClearTrace();
    SetEnabled(false);
  }
  void TearDown() override {
    SetEnabled(false);
    ClearTrace();
    FlightRecorder::Global().ResetForTesting();
    HealthTracker::Global().ResetForTesting();
    Registry::Global().ResetForTesting();
  }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "hosr_obs_admin_" + name;
  }
};

// --- Metric-name validation --------------------------------------------------

TEST_F(ObsAdminTest, MetricNameConventionIsEnforced) {
  // subsystem/verb_unit: 2-3 segments, each [a-z][a-z0-9_]*.
  EXPECT_TRUE(IsValidMetricName("serve/request_latency_ms"));
  EXPECT_TRUE(IsValidMetricName("bench/serve_admin/replay_top10_qps"));
  EXPECT_TRUE(IsValidMetricName("a/b"));
  EXPECT_TRUE(IsValidMetricName("fault/injected"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("noslash"));
  EXPECT_FALSE(IsValidMetricName("too/many/seg/ments"));
  EXPECT_FALSE(IsValidMetricName("Upper/case"));
  EXPECT_FALSE(IsValidMetricName("serve/Case"));
  EXPECT_FALSE(IsValidMetricName("serve/_leading_underscore"));
  EXPECT_FALSE(IsValidMetricName("serve/1leading_digit"));
  EXPECT_FALSE(IsValidMetricName("serve//empty_segment"));
  EXPECT_FALSE(IsValidMetricName("serve/bad-dash"));
  EXPECT_FALSE(IsValidMetricName("serve/trailing/"));
  // The counter type already means "total"; the suffix is redundant.
  EXPECT_FALSE(IsValidMetricName("serve/queries_total"));
}

// --- Request context ---------------------------------------------------------

TEST_F(ObsAdminTest, ScopedContextInstallsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedRequestContext outer(RequestContext{42, 7, 10});
    EXPECT_EQ(CurrentTraceId(), 42u);
    EXPECT_EQ(CurrentContext().user, 7u);
    {
      ScopedRequestContext inner(RequestContext{43, 8, 20});
      EXPECT_EQ(CurrentTraceId(), 43u);
    }
    EXPECT_EQ(CurrentTraceId(), 42u);  // nested scope unwound
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST_F(ObsAdminTest, ContextIsThreadLocalNotProcessWide) {
  ScopedRequestContext scope(RequestContext{42, 0, 0});
  uint64_t seen_on_other_thread = 99;
  std::thread other([&] { seen_on_other_thread = CurrentTraceId(); });
  other.join();
  EXPECT_EQ(seen_on_other_thread, 0u);
  EXPECT_EQ(CurrentTraceId(), 42u);
}

TEST_F(ObsAdminTest, SpansRecordedInScopeCarryTraceId) {
  SetEnabled(true);
  {
    ScopedRequestContext scope(RequestContext{77, 0, 0});
    HOSR_TRACE_SPAN("test/in_scope");
  }
  {
    HOSR_TRACE_SPAN("test/out_of_scope");
  }
  const auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, span.name == "test/in_scope" ? 77u : 0u);
  }
  // The trace JSON surfaces the id as an args entry.
  const std::string json = TraceToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace_id\": 77"), std::string::npos);
}

// --- Histogram exemplars -----------------------------------------------------

TEST_F(ObsAdminTest, ExemplarRecordsInScopeObservation) {
  Histogram* h = Registry::Global().GetHistogram("test/exemplar_hist");
  h->Observe(4.0);  // out of scope: leaves no exemplar
  EXPECT_EQ(h->ExemplarFor(Histogram::BucketFor(4.0)).trace_id, 0u);
  {
    ScopedRequestContext scope(RequestContext{123, 0, 0});
    h->Observe(1000.0);  // a tail-bucket outlier
  }
  const Exemplar exemplar = h->ExemplarFor(Histogram::BucketFor(1000.0));
  EXPECT_EQ(exemplar.trace_id, 123u);
  EXPECT_DOUBLE_EQ(exemplar.value, 1000.0);
  // Untouched buckets stay empty.
  EXPECT_EQ(h->ExemplarFor(Histogram::BucketFor(1e-6)).trace_id, 0u);

  const std::string json = Registry::Global().ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 123"), std::string::npos);
}

TEST_F(ObsAdminTest, ExemplarLastWriterWinsIsOneOfTheWriters) {
  // 8 threads, each with its own trace id, hammer the same bucket. The slot
  // must end holding one of the real writers (any interleave of id/value is
  // still two real same-bucket requests).
  constexpr size_t kThreads = 8;
  constexpr size_t kObservationsPerThread = 5000;
  Histogram* h = Registry::Global().GetHistogram("test/contended_hist");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      ScopedRequestContext scope(
          RequestContext{static_cast<uint64_t>(t) + 1, 0, 0});
      for (size_t i = 0; i < kObservationsPerThread; ++i) {
        h->Observe(3.0);  // same bucket for every thread
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h->Count(), kThreads * kObservationsPerThread);
  const Exemplar exemplar = h->ExemplarFor(Histogram::BucketFor(3.0));
  EXPECT_GE(exemplar.trace_id, 1u);
  EXPECT_LE(exemplar.trace_id, kThreads);
  EXPECT_DOUBLE_EQ(exemplar.value, 3.0);
}

// --- HealthTracker -----------------------------------------------------------

TEST_F(ObsAdminTest, HealthDegradesOnSustainedFailuresAndRecovers) {
  HealthTracker& health = HealthTracker::Global();
  EXPECT_TRUE(health.healthy());  // no signal yet
  // Below the sample floor nothing flips, even at 100% failures.
  for (uint64_t i = 0; i < HealthTracker::kMinSamples - 1; ++i) {
    health.ReportOutcome(true);
  }
  EXPECT_TRUE(health.healthy());
  health.ReportOutcome(true);
  EXPECT_FALSE(health.healthy());
  EXPECT_DOUBLE_EQ(health.FailureRate(), 1.0);
  // A run of successes dilutes the windowed rate back under the threshold.
  for (int i = 0; i < 200; ++i) health.ReportOutcome(false);
  EXPECT_TRUE(health.healthy());
  EXPECT_LT(health.FailureRate(), HealthTracker::kDegradedThreshold);
}

TEST_F(ObsAdminTest, HealthWindowDecaysOldTraffic) {
  HealthTracker& health = HealthTracker::Global();
  // A long-past failure burst must not pin health degraded forever.
  for (uint64_t i = 0; i < HealthTracker::kWindow; ++i) {
    health.ReportOutcome(true);
  }
  EXPECT_FALSE(health.healthy());
  for (uint64_t i = 0; i < 4 * HealthTracker::kWindow; ++i) {
    health.ReportOutcome(false);
  }
  EXPECT_TRUE(health.healthy());
}

// --- Admin endpoint, transport-free ------------------------------------------

TEST_F(ObsAdminTest, HandlePathServesAllEndpoints) {
  AdminServer server(AdminServer::Options{});
  server.SetVar("binary", "obs_admin_test");
  server.SetVar("weird \"key\"", "value\nwith\tescapes");

  Registry::Global().GetCounter("test/admin_counter")->Increment(5);
  const HttpResponse metricsz = server.HandlePath("/metricsz");
  EXPECT_EQ(metricsz.status_code, 200);
  EXPECT_TRUE(IsValidJson(metricsz.body)) << metricsz.body;
  EXPECT_NE(metricsz.body.find("test/admin_counter"), std::string::npos);

  const HttpResponse varz = server.HandlePath("/varz");
  EXPECT_EQ(varz.status_code, 200);
  EXPECT_TRUE(IsValidJson(varz.body)) << varz.body;
  EXPECT_NE(varz.body.find("obs_admin_test"), std::string::npos);

  // Not ready, not degraded: readyz 503, healthz 200.
  EXPECT_EQ(server.HandlePath("/readyz").status_code, 503);
  EXPECT_EQ(server.HandlePath("/healthz").status_code, 200);
  HealthTracker::Global().SetReady(true);
  EXPECT_EQ(server.HandlePath("/readyz").status_code, 200);
  for (uint64_t i = 0; i < 2 * HealthTracker::kMinSamples; ++i) {
    HealthTracker::Global().ReportOutcome(true);
  }
  const HttpResponse degraded = server.HandlePath("/healthz");
  EXPECT_EQ(degraded.status_code, 503);
  EXPECT_NE(degraded.body.find("degraded"), std::string::npos);

  const HttpResponse tracez = server.HandlePath("/tracez");
  EXPECT_EQ(tracez.status_code, 200);
  EXPECT_TRUE(IsValidJson(tracez.body)) << tracez.body;

  // Query strings are split off; 404 lists the endpoints.
  EXPECT_EQ(server.HandlePath("/metricsz?pretty").status_code, 200);
  const HttpResponse missing = server.HandlePath("/nonesuch");
  EXPECT_EQ(missing.status_code, 404);
  EXPECT_TRUE(IsValidJson(missing.body)) << missing.body;
  EXPECT_NE(missing.body.find("/metricsz"), std::string::npos);
}

TEST_F(ObsAdminTest, TracezLimitBoundsTheSpanCount) {
  SetEnabled(true);
  for (int i = 0; i < 64; ++i) {
    HOSR_TRACE_SPAN("test/tracez_span");
  }
  AdminServer server(AdminServer::Options{});
  const HttpResponse all = server.HandlePath("/tracez");
  const HttpResponse limited = server.HandlePath("/tracez?limit=8");
  EXPECT_TRUE(IsValidJson(limited.body)) << limited.body;
  auto count_spans = [](const std::string& body) {
    size_t n = 0;
    for (size_t pos = body.find("\"ph\""); pos != std::string::npos;
         pos = body.find("\"ph\"", pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_spans(all.body), 64u);
  EXPECT_EQ(count_spans(limited.body), 8u);
}

// --- Admin endpoint over real sockets ----------------------------------------

TEST_F(ObsAdminTest, LiveServerRoundTripsOnEphemeralPort) {
  SetEnabled(true);
  AdminServer server(AdminServer::Options{.port = 0});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  server.SetVar("binary", "obs_admin_test");
  {
    ScopedRequestContext scope(RequestContext{555, 1, 10});
    HOSR_TRACE_SPAN("test/live_span");
  }

  auto metricsz = AdminHttpGet(server.port(), "/metricsz");
  ASSERT_TRUE(metricsz.ok()) << metricsz.status();
  EXPECT_EQ(metricsz->status_code, 200);
  EXPECT_TRUE(IsValidJson(metricsz->body)) << metricsz->body;

  auto tracez = AdminHttpGet(server.port(), "/tracez");
  ASSERT_TRUE(tracez.ok()) << tracez.status();
  EXPECT_NE(tracez->body.find("\"trace_id\": 555"), std::string::npos);

  // Readiness flip is visible through the socket path too.
  auto not_ready = AdminHttpGet(server.port(), "/readyz");
  ASSERT_TRUE(not_ready.ok());
  EXPECT_EQ(not_ready->status_code, 503);
  HealthTracker::Global().SetReady(true);
  auto ready = AdminHttpGet(server.port(), "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status_code, 200);

  auto varz = AdminHttpGet(server.port(), "/varz");
  ASSERT_TRUE(varz.ok());
  EXPECT_NE(varz->body.find("obs_admin_test"), std::string::npos);
  auto healthz = AdminHttpGet(server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);

  auto missing = AdminHttpGet(server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);

  const int port = server.port();
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(AdminHttpGet(port, "/healthz").ok());
}

TEST_F(ObsAdminTest, LiveServerHandlesConcurrentClients) {
  AdminServer server(AdminServer::Options{.port = 0});
  ASSERT_TRUE(server.Start().ok());
  constexpr size_t kThreads = 8;
  constexpr size_t kRequestsPerThread = 25;
  std::atomic<size_t> ok_responses{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &ok_responses] {
      const char* paths[] = {"/metricsz", "/healthz", "/varz", "/tracez"};
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        auto response = AdminHttpGet(server.port(), paths[i % 4]);
        if (response.ok() && response->status_code == 200) {
          ++ok_responses;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_responses.load(), kThreads * kRequestsPerThread);
}

// --- Flight recorder ---------------------------------------------------------

TEST_F(ObsAdminTest, DumpNowWritesCrcVerifiedJson) {
  FlightRecorder& recorder = FlightRecorder::Global();
  EXPECT_FALSE(recorder.armed());
  EXPECT_FALSE(recorder.DumpNow("disarmed").ok());

  SetEnabled(true);
  {
    ScopedRequestContext scope(RequestContext{31337, 2, 10});
    HOSR_TRACE_SPAN("test/flight_span");
  }
  Registry::Global().GetCounter("test/flight_counter")->Increment(9);

  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  recorder.Arm(options);
  recorder.Note("unit test armed");
  ASSERT_TRUE(recorder.DumpNow("unit_test").ok());
  EXPECT_EQ(recorder.dump_count(), 1u);
  ASSERT_FALSE(recorder.last_dump_path().empty());

  // The dump must survive the CRC check and carry reason, notes, metrics,
  // and the traced span with its request's id.
  auto body = util::ReadFileVerifyCrc(recorder.last_dump_path());
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_TRUE(IsValidJson(*body)) << *body;
  EXPECT_NE(body->find("\"unit_test\""), std::string::npos);
  EXPECT_NE(body->find("unit test armed"), std::string::npos);
  EXPECT_NE(body->find("test/flight_counter"), std::string::npos);
  EXPECT_NE(body->find("test/flight_span"), std::string::npos);
  EXPECT_NE(body->find("\"trace_id\": 31337"), std::string::npos);
  std::remove(recorder.last_dump_path().c_str());
}

TEST_F(ObsAdminTest, DumpsAreRateLimitedAndCapped) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.max_dumps = 2;
  options.min_interval_seconds = 3600.0;  // nothing inside the test fits
  recorder.Arm(options);

  ASSERT_TRUE(recorder.DumpNow("first").ok());
  const std::string first_path = recorder.last_dump_path();
  // Second dump inside the interval: refused unless forced.
  EXPECT_FALSE(recorder.DumpNow("second").ok());
  EXPECT_TRUE(recorder.DumpNow("second", /*force=*/true).ok());
  const std::string second_path = recorder.last_dump_path();
  EXPECT_NE(first_path, second_path);
  // Lifetime cap: even force cannot exceed max_dumps.
  EXPECT_FALSE(recorder.DumpNow("third", /*force=*/true).ok());
  EXPECT_EQ(recorder.dump_count(), 2u);
  std::remove(first_path.c_str());
  std::remove(second_path.c_str());
}

TEST_F(ObsAdminTest, FaultHookDumpsOncePerInterval) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.min_interval_seconds = 3600.0;
  recorder.Arm(options);
  recorder.OnFault("engine.score");
  EXPECT_EQ(recorder.dump_count(), 1u);
  // A fault storm must not write a dump per fire.
  for (int i = 0; i < 100; ++i) recorder.OnFault("engine.score");
  EXPECT_EQ(recorder.dump_count(), 1u);
  auto body = util::ReadFileVerifyCrc(recorder.last_dump_path());
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_NE(body->find("engine.score"), std::string::npos);
  std::remove(recorder.last_dump_path().c_str());
}

TEST_F(ObsAdminTest, DeadlineBurstTriggersExactlyOneDump) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.burst_threshold = 8;
  options.burst_window_seconds = 3600.0;  // everything lands in one window
  options.min_interval_seconds = 0.0;
  recorder.Arm(options);
  for (int i = 0; i < 7; ++i) recorder.OnDeadlineExceeded();
  EXPECT_EQ(recorder.dump_count(), 0u);  // below the burst threshold
  recorder.OnDeadlineExceeded();
  EXPECT_EQ(recorder.dump_count(), 1u);
  // Continuing the same burst does not re-dump.
  for (int i = 0; i < 50; ++i) recorder.OnDeadlineExceeded();
  EXPECT_EQ(recorder.dump_count(), 1u);
  std::remove(recorder.last_dump_path().c_str());
}

// --- StatsReporter shutdown flush --------------------------------------------

TEST_F(ObsAdminTest, ConcurrentStopsAllObserveTheFinalFlush) {
  // The documented guarantee: updates made before Stop() is invoked are on
  // disk once ANY Stop() call returns — even when several race.
  const std::string path = TempPath("reporter.json");
  Gauge* gauge = Registry::Global().GetGauge("test/reporter_gauge");
  {
    StatsReporter::Options options;
    options.interval_seconds = 3600.0;  // thread parked; shutdown flushes
    options.metrics_path = path;
    StatsReporter reporter(options);
    gauge->Set(424242.0);
    std::vector<std::thread> stoppers;
    std::atomic<int> returned{0};
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&] {
        reporter.Stop();
        // The artifact must already hold the final value the moment any
        // Stop() returns, not just after the destructor.
        auto content = util::ReadFileToString(path);
        if (content.ok() &&
            content->find("424242") != std::string::npos) {
          ++returned;
        }
      });
    }
    for (auto& thread : stoppers) thread.join();
    EXPECT_EQ(returned.load(), 4);
  }
  auto content = util::ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(IsValidJson(*content)) << *content;
  std::remove(path.c_str());
}

TEST_F(ObsAdminTest, EpochModeSnapshotsOnDemandAndOnStop) {
  const std::string path = TempPath("epoch_reporter.json");
  StatsReporter::Options options;
  options.metrics_path = path;  // interval 0: no thread
  StatsReporter reporter(options);
  Registry::Global().GetCounter("test/epoch_counter")->Increment(3);
  reporter.Snapshot();
  auto mid = util::ReadFileToString(path);
  ASSERT_TRUE(mid.ok());
  EXPECT_NE(mid->find("test/epoch_counter"), std::string::npos);
  Registry::Global().GetCounter("test/epoch_counter")->Increment(4);
  reporter.Stop();
  auto final_content = util::ReadFileToString(path);
  ASSERT_TRUE(final_content.ok());
  EXPECT_NE(
      final_content->find("{\"type\": \"counter\", \"value\": 7}"),
      std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hosr::obs
