#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/hosr.h"
#include "core/model_zoo.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/significance.h"
#include "graph/stats.h"
#include "models/bpr_mf.h"
#include "models/trainer.h"

namespace hosr {
namespace {

// End-to-end pipeline tests crossing every module boundary: generate ->
// split -> train -> evaluate -> compare, exactly as the benches do.

struct Pipeline {
  data::Dataset dataset;
  data::Split split;
};

Pipeline MakePipeline(uint64_t seed) {
  data::SyntheticConfig config;
  config.name = "integration";
  config.num_users = 250;
  config.num_items = 300;
  config.avg_interactions_per_user = 14;
  config.avg_relations_per_user = 8;
  config.social_blend = 0.5f;
  config.seed = seed;
  auto dataset = data::GenerateSynthetic(config);
  HOSR_CHECK(dataset.ok());
  util::Rng rng(seed ^ 1);
  auto split = data::SplitDataset(*dataset, 0.2, &rng);
  HOSR_CHECK(split.ok());
  return {std::move(dataset).value(), std::move(split).value()};
}

double TrainAndEvaluate(models::RankingModel* model,
                        const data::Split& split, uint32_t epochs,
                        std::vector<double>* per_user_recall = nullptr) {
  models::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 128;
  config.learning_rate = 0.003f;
  config.weight_decay = 1e-5f;
  config.seed = 21;
  models::BprTrainer trainer(model, &split.train.interactions, config);
  trainer.Train();
  eval::Evaluator evaluator(&split.train.interactions, &split.test, 20);
  const auto result = evaluator.Evaluate(
      [&](const std::vector<uint32_t>& users) {
        return model->ScoreAllItems(users);
      });
  if (per_user_recall != nullptr) *per_user_recall = result.per_user_recall;
  return result.recall;
}

TEST(IntegrationTest, TrainedModelsBeatRandomRanking) {
  const Pipeline p = MakePipeline(31);
  // Random-ranking recall baseline: K / (num candidate items) on average.
  const double random_recall = 20.0 / p.dataset.num_items();

  for (const std::string& name : {"BPR", "TrustSVD", "HOSR"}) {
    core::ZooConfig zoo;
    zoo.embedding_dim = 8;
    auto model = core::MakeModel(name, p.split.train, zoo);
    ASSERT_TRUE(model.ok());
    const double recall = TrainAndEvaluate(model->get(), p.split, 12);
    EXPECT_GT(recall, 2.0 * random_recall) << name;
  }
}

TEST(IntegrationTest, HosrOutperformsBprOnSocialData) {
  // The generator plants multi-hop social signal; HOSR should exploit it
  // and beat the interaction-only BPR baseline.
  const Pipeline p = MakePipeline(32);
  core::ZooConfig zoo;
  zoo.embedding_dim = 8;

  auto bpr = core::MakeModel("BPR", p.split.train, zoo);
  auto hosr = core::MakeModel("HOSR", p.split.train, zoo);
  ASSERT_TRUE(bpr.ok() && hosr.ok());

  std::vector<double> bpr_recall, hosr_recall;
  const double bpr_score =
      TrainAndEvaluate(bpr->get(), p.split, 15, &bpr_recall);
  const double hosr_score =
      TrainAndEvaluate(hosr->get(), p.split, 15, &hosr_recall);
  EXPECT_GT(hosr_score, bpr_score);

  // The per-user samples support a paired t-test as in Table 3.
  ASSERT_EQ(bpr_recall.size(), hosr_recall.size());
  const auto ttest = eval::PairedTTest(hosr_recall, bpr_recall);
  EXPECT_GT(ttest.mean_difference, 0.0);
}

TEST(IntegrationTest, DatasetRoundTripPreservesTrainingBehavior) {
  const Pipeline p = MakePipeline(33);
  const std::string dir = ::testing::TempDir() + "/hosr_integration_io";
  ASSERT_TRUE(data::SaveDataset(p.dataset, dir).ok());
  const auto reloaded = data::LoadDataset(dir);
  ASSERT_TRUE(reloaded.ok());

  // Same split seed + same data -> identical trained metric.
  auto run = [&](const data::Dataset& dataset) {
    util::Rng rng(7);
    auto split = data::SplitDataset(dataset, 0.2, &rng);
    HOSR_CHECK(split.ok());
    models::BprMf model(dataset.num_users(), dataset.num_items(),
                        {.embedding_dim = 6, .seed = 3});
    return TrainAndEvaluate(&model, *split, 5);
  };
  EXPECT_DOUBLE_EQ(run(p.dataset), run(*reloaded));
}

TEST(IntegrationTest, SparsityGroupsEvaluateEndToEnd) {
  const Pipeline p = MakePipeline(34);
  core::ZooConfig zoo;
  zoo.embedding_dim = 8;
  auto model = core::MakeModel("HOSR", p.split.train, zoo);
  ASSERT_TRUE(model.ok());
  TrainAndEvaluate(model->get(), p.split, 8);

  const auto groups = eval::BuildSparsityGroups(p.split.train.interactions,
                                                p.split.test, 4);
  ASSERT_EQ(groups.size(), 4u);
  eval::Evaluator evaluator(&p.split.train.interactions, &p.split.test, 20);
  size_t users_covered = 0;
  for (const auto& group : groups) {
    const auto result = evaluator.EvaluateUsers(
        [&](const std::vector<uint32_t>& users) {
          return model->get()->ScoreAllItems(users);
        },
        group.users);
    EXPECT_EQ(result.num_users, group.users.size());
    users_covered += result.num_users;
  }
  eval::Evaluator full(&p.split.train.interactions, &p.split.test, 20);
  EXPECT_EQ(users_covered,
            full.Evaluate([&](const std::vector<uint32_t>& users) {
                  return model->get()->ScoreAllItems(users);
                }).num_users);
}

TEST(IntegrationTest, Table1StyleNeighborGrowth) {
  // The neighbor-explosion phenomenon of Table 1 on a Yelp-like graph:
  // second-order neighborhoods dwarf first-order ones.
  const auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::YelpLike(0.05));
  ASSERT_TRUE(dataset.ok());
  const auto stats = graph::KOrderStats(dataset->social, 3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_GT(stats[1].avg_neighbors_per_user,
            5.0 * stats[0].avg_neighbors_per_user);
  EXPECT_GT(stats[2].avg_neighbors_per_user,
            stats[1].avg_neighbors_per_user);
}

TEST(IntegrationTest, AttentionWeightsRespondToSparsity) {
  // Fig. 7's qualitative pattern is extractable: weights exist, are
  // normalized, and vary between low- and high-degree users.
  const Pipeline p = MakePipeline(36);
  core::Hosr::Config config;
  config.embedding_dim = 8;
  config.num_layers = 3;
  config.seed = 9;
  core::Hosr model(p.split.train, config);
  TrainAndEvaluate(&model, p.split, 8);

  const tensor::Matrix weights = model.AttentionWeights();
  // Average last-layer weight for bottom-degree vs top-degree quartile.
  std::vector<std::pair<uint32_t, uint32_t>> by_degree;
  for (uint32_t u = 0; u < p.dataset.num_users(); ++u) {
    by_degree.emplace_back(p.dataset.social.Degree(u), u);
  }
  std::sort(by_degree.begin(), by_degree.end());
  const size_t quartile = by_degree.size() / 4;
  double low = 0, high = 0;
  for (size_t i = 0; i < quartile; ++i) {
    low += weights(by_degree[i].second, 2);
    high += weights(by_degree[by_degree.size() - 1 - i].second, 2);
  }
  low /= quartile;
  high /= quartile;
  // Both are valid probabilities; they should differ measurably.
  EXPECT_GT(std::fabs(low - high), 1e-4);
}

}  // namespace
}  // namespace hosr
