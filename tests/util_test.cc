#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hosr::util {
namespace {

// --- Status / StatusOr ----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("m").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("m").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DataLoss("m").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, OnlyUnavailableAndResourceExhaustedAreTransient) {
  EXPECT_TRUE(Status::Unavailable("m").IsTransient());
  EXPECT_TRUE(Status::ResourceExhausted("m").IsTransient());

  EXPECT_FALSE(Status::Ok().IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("m").IsTransient());
  EXPECT_FALSE(Status::NotFound("m").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("m").IsTransient());
  EXPECT_FALSE(Status::FailedPrecondition("m").IsTransient());
  EXPECT_FALSE(Status::IoError("m").IsTransient());
  EXPECT_FALSE(Status::Internal("m").IsTransient());
  EXPECT_FALSE(Status::Unimplemented("m").IsTransient());
  EXPECT_FALSE(Status::DeadlineExceeded("m").IsTransient());
  EXPECT_FALSE(Status::DataLoss("m").IsTransient());
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  HOSR_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 5);
  EXPECT_EQ(*result, 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> DoubleViaAssignOrReturn(int x) {
  HOSR_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleViaAssignOrReturn(4).value(), 8);
  EXPECT_FALSE(DoubleViaAssignOrReturn(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformInt(17), 17u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformFloatInHalfOpenUnit) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.UniformFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(17);
  for (const uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (const uint32_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(18);
  Rng forked = a.Fork(1);
  // The fork should not replay the parent's stream.
  Rng parent_copy(18);
  parent_copy.NextUint64();  // advance past the Fork() consumption
  EXPECT_NE(forked.NextUint64(), parent_copy.NextUint64());
}

// --- string_util ------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("3.14").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.0junk").ok());
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --- Flags ------------------------------------------------------------------

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = ParseArgs({"--scale=0.5", "--name=test"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(f.GetString("name", ""), "test");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = ParseArgs({"--epochs", "12"});
  EXPECT_EQ(f.GetInt("epochs", 0), 12);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("absent", false));
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  const Flags f = ParseArgs({"--bad=xyz"});
  EXPECT_EQ(f.GetInt("bad", 7), 7);
  EXPECT_EQ(f.GetInt("missing", 3), 3);
  EXPECT_DOUBLE_EQ(f.GetDouble("bad", 1.5), 1.5);
}

TEST(FlagsTest, PositionalCollected) {
  const Flags f = ParseArgs({"pos1", "--k=2", "pos2"});
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagsTest, GetIntRoundTripsNegativeValues) {
  const Flags f = ParseArgs({"--offset=-42", "--delta", "-7"});
  EXPECT_EQ(f.GetInt("offset", 0), -42);
  EXPECT_EQ(f.GetInt("delta", 0), -7);  // space syntax, leading '-'
}

TEST(FlagsTest, GetDoubleRoundTripsNegativeValues) {
  const Flags f = ParseArgs({"--lr=-0.5", "--decay", "-1.25"});
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0.0), -0.5);
  EXPECT_DOUBLE_EQ(f.GetDouble("decay", 0.0), -1.25);
}

TEST(FlagsTest, GetDoubleRoundTripsExponentForms) {
  const Flags f = ParseArgs({"--lr=1e-3", "--scale=2.5E+2", "--wd=-4e-5"});
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 0.0), 2.5e2);
  EXPECT_DOUBLE_EQ(f.GetDouble("wd", 0.0), -4e-5);
}

TEST(FlagsTest, GetIntRejectsExponentAndFractionForms) {
  // GetInt must not silently truncate a value that only parses as a double.
  const Flags f = ParseArgs({"--epochs=1e2", "--batch=3.5"});
  EXPECT_EQ(f.GetInt("epochs", 11), 11);
  EXPECT_EQ(f.GetInt("batch", 13), 13);
}

// --- Table ------------------------------------------------------------------

TEST(TableTest, TextRendersAligned) {
  Table t({"model", "R@20"});
  t.AddRow({"BPR", "0.0509"});
  t.AddRow({"HOSR", "0.0697"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("| model "), std::string::npos);
  EXPECT_NE(text.find("| HOSR "), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "quo\"te"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(TableTest, CellFormatsPrecision) {
  EXPECT_EQ(Table::Cell(0.12345, 3), "0.123");
  EXPECT_EQ(Table::Cell(2.0, 1), "2.0");
}

TEST(TableTest, WriteCsvAndCount) {
  Table t({"h"});
  t.AddRow({"v"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 1u);
  const std::string path = ::testing::TempDir() + "/hosr_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
}

// --- ThreadPool / ParallelFor ------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  std::atomic<int> counter{0};
  ParallelFor(0, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ParallelFor(0, 100, [&](size_t b2, size_t e2) {
        counter.fetch_add(static_cast<int>(e2 - b2));
      }, 1);
    }
  }, 1);
  EXPECT_EQ(counter.load(), 800);
}

TEST(GrainForTest, ChunksCarryAboutTargetWork) {
  // grain * work_per_item should land on kGrainTargetWork when it divides
  // evenly.
  EXPECT_EQ(GrainFor(1), kGrainTargetWork);
  EXPECT_EQ(GrainFor(64), kGrainTargetWork / 64);
  EXPECT_EQ(GrainFor(kGrainTargetWork), 1u);
}

TEST(GrainForTest, MonotonicNonIncreasingInWork) {
  size_t prev = GrainFor(1);
  for (size_t work = 2; work <= 4096; work *= 2) {
    const size_t g = GrainFor(work);
    EXPECT_LE(g, prev) << "work=" << work;
    prev = g;
  }
}

TEST(GrainForTest, NeverZeroEvenForHugeWork) {
  EXPECT_GE(GrainFor(0), 1u);  // zero work treated as 1
  EXPECT_EQ(GrainFor(1u << 30), 1u);
  EXPECT_EQ(GrainFor(std::numeric_limits<size_t>::max()), 1u);
}

TEST(GrainForTest, MinGrainIsHonored) {
  // Heavy work would give grain 1, but the caller's floor wins.
  EXPECT_EQ(GrainFor(1u << 20, /*min_grain=*/16), 16u);
  // Light work keeps the computed grain when it already exceeds the floor.
  EXPECT_EQ(GrainFor(64, /*min_grain=*/16), kGrainTargetWork / 64);
  // min_grain of 0 is floored to 1 (a 0 chunk would be a ParallelFor bug).
  EXPECT_GE(GrainFor(1u << 20, /*min_grain=*/0), 1u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

}  // namespace
}  // namespace hosr::util
