#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/interactions.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/significance.h"
#include "eval/topk.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace hosr::eval {
namespace {

// --- Metrics --------------------------------------------------------------------

TEST(MetricsTest, RecallCountsHits) {
  // relevant {1, 5, 9}; ranked hits 1 and 9.
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 9}, {1, 5, 9}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK({2, 3}, {1, 5, 9}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 5, 9}, {1, 5, 9}), 1.0);
}

TEST(MetricsTest, RecallEmptyRelevantIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2}, {}), 0.0);
}

TEST(MetricsTest, PrecisionDividesByK) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 9}, {1, 9}, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 9}, {1, 9}, 10), 2.0 / 10.0);
}

TEST(MetricsTest, AveragePrecisionRanksMatter) {
  // Hit at positions 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecisionAtK({7, 2, 9}, {7, 9}, 3),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // Same hits later ranked -> lower AP.
  EXPECT_LT(AveragePrecisionAtK({2, 7, 9}, {7, 9}, 3),
            AveragePrecisionAtK({7, 9, 2}, {7, 9}, 3));
}

TEST(MetricsTest, AveragePrecisionPerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({4, 8}, {4, 8}, 2), 1.0);
  // More relevant than K: normalize by K.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({4, 8}, {4, 8, 9, 10}, 2), 1.0);
}

TEST(MetricsTest, NdcgDiscountsLateHits) {
  const double early = NdcgAtK({5, 1, 2}, {5}, 3);
  const double late = NdcgAtK({1, 2, 5}, {5}, 3);
  EXPECT_DOUBLE_EQ(early, 1.0);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 0.0);
}

TEST(MetricsTest, TopKExcludingOrdersByScore) {
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f, 0.3f};
  const auto top = TopKExcluding(scores, 5, 3, /*excluded=*/{});
  EXPECT_EQ(top, (std::vector<uint32_t>{1, 3, 2}));
}

TEST(MetricsTest, TopKExcludingMasksTrainingItems) {
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f, 0.3f};
  const auto top = TopKExcluding(scores, 5, 3, /*excluded=*/{1, 3});
  EXPECT_EQ(top, (std::vector<uint32_t>{2, 4, 0}));
}

TEST(MetricsTest, TopKHandlesKLargerThanCandidates) {
  const float scores[] = {0.2f, 0.8f, 0.5f};
  const auto top = TopKExcluding(scores, 3, 10, {1});
  EXPECT_EQ(top, (std::vector<uint32_t>{2, 0}));
}

TEST(MetricsTest, TopKTieBreaksByIndex) {
  const float scores[] = {0.5f, 0.5f, 0.5f};
  const auto top = TopKExcluding(scores, 3, 2, {});
  EXPECT_EQ(top, (std::vector<uint32_t>{0, 1}));
}

// --- TopKAccumulator block fast-reject ------------------------------------------

TEST(TopKAccumulatorTest, FullOnlyAfterKCandidates) {
  TopKAccumulator acc(3);
  EXPECT_FALSE(acc.Full());
  acc.Consider(0.5f, 0);
  acc.Consider(0.8f, 1);
  EXPECT_FALSE(acc.Full());
  acc.Consider(0.2f, 2);
  EXPECT_TRUE(acc.Full());
}

TEST(TopKAccumulatorTest, WouldAcceptTracksCurrentWorst) {
  TopKAccumulator acc(2);
  // Room left: everything is acceptable.
  EXPECT_TRUE(acc.WouldAccept(-1e30f));
  acc.Consider(0.5f, 0);
  acc.Consider(0.8f, 1);
  // Worst held score is 0.5.
  EXPECT_FALSE(acc.WouldAccept(0.4f));
  EXPECT_TRUE(acc.WouldAccept(0.6f));
  // A tie must stay acceptable: an equal score at a lower index wins.
  EXPECT_TRUE(acc.WouldAccept(0.5f));
}

TEST(TopKAccumulatorTest, TieAtWorstScoreCanStillWinOnIndex) {
  TopKAccumulator acc(2);
  acc.Consider(0.5f, 7);
  acc.Consider(0.8f, 9);
  ASSERT_TRUE(acc.WouldAccept(0.5f));
  acc.Consider(0.5f, 3);  // same score, lower index: displaces index 7
  EXPECT_EQ(acc.Take(), (std::vector<uint32_t>{9, 3}));
}

TEST(TopKTest, BlockRejectScanMatchesBruteForce) {
  // More items than one 4096-item scan block, so the block-max fast-reject
  // path actually rejects blocks; results must equal a full sort.
  constexpr uint32_t kItems = 10000;
  util::Rng rng(29);
  std::vector<float> scores(kItems);
  for (auto& s : scores) s = rng.Gaussian();
  // Force cross-block ties so the >= reject rule is exercised.
  scores[9500] = scores[12] = scores[4100];
  const std::vector<uint32_t> excluded = {12, 4097, 9999};

  const auto got = TopK(scores.data(), kItems, 25, excluded);

  std::vector<uint32_t> order(kItems);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  std::vector<uint32_t> want;
  for (uint32_t idx : order) {
    if (std::find(excluded.begin(), excluded.end(), idx) != excluded.end()) {
      continue;
    }
    want.push_back(idx);
    if (want.size() == 25) break;
  }
  EXPECT_EQ(got, want);
}

// --- Evaluator ------------------------------------------------------------------

data::InteractionMatrix Interactions(
    uint32_t users, uint32_t items,
    std::vector<data::Interaction> list) {
  auto result =
      data::InteractionMatrix::FromInteractions(users, items, std::move(list));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(EvaluatorTest, PerfectOracleScoresOne) {
  const auto train = Interactions(2, 6, {{0, 0}, {1, 1}});
  const auto test = Interactions(2, 6, {{0, 2}, {0, 3}, {1, 4}});
  Evaluator evaluator(&train, &test, /*k=*/3);
  // Oracle: test items get score 1, everything else 0.
  const auto result = evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    tensor::Matrix scores(users.size(), 6);
    for (size_t b = 0; b < users.size(); ++b) {
      for (const uint32_t item : test.ItemsOf(users[b])) {
        scores(b, item) = 1.0f;
      }
    }
    return scores;
  });
  EXPECT_EQ(result.num_users, 2u);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_DOUBLE_EQ(result.map, 1.0);
  EXPECT_DOUBLE_EQ(result.ndcg, 1.0);
}

TEST(EvaluatorTest, TrainingItemsAreMasked) {
  // Train item 0 has the highest score but must never be recommended.
  const auto train = Interactions(1, 4, {{0, 0}});
  const auto test = Interactions(1, 4, {{0, 1}});
  Evaluator evaluator(&train, &test, /*k=*/1);
  const auto result = evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    tensor::Matrix scores(users.size(), 4);
    scores(0, 0) = 10.0f;  // train item: masked
    scores(0, 1) = 1.0f;   // test item: best remaining
    return scores;
  });
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
}

TEST(EvaluatorTest, SkipsUsersWithoutTestItems) {
  const auto train = Interactions(3, 4, {{0, 0}, {1, 0}, {2, 0}});
  const auto test = Interactions(3, 4, {{1, 2}});
  Evaluator evaluator(&train, &test, 2);
  const auto result = evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    return tensor::Matrix(users.size(), 4);
  });
  EXPECT_EQ(result.num_users, 1u);
  EXPECT_EQ(result.users, (std::vector<uint32_t>{1}));
}

TEST(EvaluatorTest, PerUserVectorsAlignWithUsers) {
  const auto train = Interactions(2, 5, {{0, 0}, {1, 0}});
  const auto test = Interactions(2, 5, {{0, 1}, {1, 2}});
  Evaluator evaluator(&train, &test, 2);
  const auto result = evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    tensor::Matrix scores(users.size(), 5);
    for (size_t b = 0; b < users.size(); ++b) {
      if (users[b] == 0) scores(b, 1) = 1.0f;  // user 0 perfect
      // user 1 gets nothing relevant in top-2: items 3,4 higher
      if (users[b] == 1) {
        scores(b, 3) = 2.0f;
        scores(b, 4) = 1.5f;
      }
    }
    return scores;
  });
  ASSERT_EQ(result.per_user_recall.size(), 2u);
  EXPECT_DOUBLE_EQ(result.per_user_recall[0], 1.0);
  EXPECT_DOUBLE_EQ(result.per_user_recall[1], 0.0);
  EXPECT_DOUBLE_EQ(result.recall, 0.5);
}

TEST(EvaluatorTest, RandomScorerRecallNearExpectation) {
  // With 1 test item among 99 candidates and K=20 the expected recall of a
  // random scorer is ~20/99.
  const uint32_t n_items = 100;
  std::vector<data::Interaction> train_list, test_list;
  for (uint32_t u = 0; u < 200; ++u) {
    train_list.push_back({u, 0});
    test_list.push_back({u, 1 + u % (n_items - 1)});
  }
  const auto train = Interactions(200, n_items, train_list);
  const auto test = Interactions(200, n_items, test_list);
  Evaluator evaluator(&train, &test, 20);
  util::Rng rng(11);
  const auto result = evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    tensor::Matrix scores(users.size(), n_items);
    for (size_t i = 0; i < scores.size(); ++i) {
      scores.data()[i] = rng.UniformFloat();
    }
    return scores;
  });
  EXPECT_NEAR(result.recall, 20.0 / 99.0, 0.06);
}

// --- Sparsity groups ----------------------------------------------------------

TEST(SparsityGroupsTest, EqualTotalInteractionBinning) {
  // Users 0..9 with training counts 1..10 (total 55); 55/2 ~ 27.5 per group.
  std::vector<data::Interaction> train_list, test_list;
  for (uint32_t u = 0; u < 10; ++u) {
    for (uint32_t j = 0; j <= u; ++j) train_list.push_back({u, j});
    test_list.push_back({u, 50 + u});
  }
  const auto train = Interactions(10, 64, train_list);
  const auto test = Interactions(10, 64, test_list);
  const auto groups = BuildSparsityGroups(train, test, 2);
  ASSERT_EQ(groups.size(), 2u);
  // Group 0: counts 1..7 sum 28 >= 27.5.
  EXPECT_EQ(groups[0].users.size(), 7u);
  EXPECT_EQ(groups[1].users.size(), 3u);
  EXPECT_EQ(groups[0].max_interactions, 7u);
  EXPECT_EQ(groups[1].min_interactions, 8u);
}

TEST(SparsityGroupsTest, GroupsPartitionTestUsers) {
  std::vector<data::Interaction> train_list, test_list;
  util::Rng rng(12);
  for (uint32_t u = 0; u < 100; ++u) {
    const auto count = 1 + static_cast<uint32_t>(rng.UniformInt(30));
    for (uint32_t j = 0; j < count; ++j) train_list.push_back({u, j});
    if (u % 3 != 0) test_list.push_back({u, 40 + u % 20});
  }
  const auto train = Interactions(100, 64, train_list);
  const auto test = Interactions(100, 64, test_list);
  const auto groups = BuildSparsityGroups(train, test, 4);
  size_t total_users = 0;
  for (const auto& g : groups) total_users += g.users.size();
  size_t expected = 0;
  for (uint32_t u = 0; u < 100; ++u) {
    if (!test.ItemsOf(u).empty()) ++expected;
  }
  EXPECT_EQ(total_users, expected);
  // Groups ordered by increasing interaction count, non-overlapping ranges.
  for (size_t g = 1; g < groups.size(); ++g) {
    EXPECT_GT(groups[g].min_interactions, groups[g - 1].max_interactions);
  }
}

TEST(SparsityGroupsTest, LabelFormat) {
  SparsityGroup g;
  g.min_interactions = 0;
  g.max_interactions = 60;
  EXPECT_EQ(g.Label(), "<=60");
  g.min_interactions = 61;
  g.max_interactions = 120;
  EXPECT_EQ(g.Label(), "61-120");
}

// --- Significance ---------------------------------------------------------------

TEST(SignificanceTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Variance({1, 2, 3, 4}), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
}

TEST(SignificanceTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = 3x^2 - 2x^3.
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, 0.4),
              3 * 0.16 - 2 * 0.064, 1e-10);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3, 5, 1.0), 1.0);
}

TEST(SignificanceTest, StudentTKnownQuantiles) {
  // For df=10, |t|=2.228 has two-sided p ~ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10), 0.05, 0.002);
  // t = 0 -> p = 1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 5), 1.0, 1e-9);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoSidedPValue(-2.228, 10),
              StudentTTwoSidedPValue(2.228, 10), 1e-12);
  // Large df approaches the normal: |t|=1.96 -> ~0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(1.96, 100000), 0.05, 0.002);
}

TEST(SignificanceTest, PairedTTestDetectsConsistentShift) {
  util::Rng rng(13);
  std::vector<double> a(300), b(300);
  for (size_t i = 0; i < a.size(); ++i) {
    const double base = rng.Gaussian();
    b[i] = base;
    a[i] = base + 0.2 + 0.05 * rng.Gaussian();
  }
  const TTestResult result = PairedTTest(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.t_statistic, 0.0);
  EXPECT_NEAR(result.mean_difference, 0.2, 0.02);
}

TEST(SignificanceTest, PairedTTestNoDifference) {
  util::Rng rng(14);
  std::vector<double> a(200), b(200);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = a[i] + 0.3 * rng.Gaussian();  // symmetric noise, no shift
  }
  const TTestResult result = PairedTTest(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(SignificanceTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PairedTTest({}, {}).p_value, 1.0);
  EXPECT_DOUBLE_EQ(PairedTTest({1.0}, {2.0}).p_value, 1.0);
  // Identical samples: zero variance, zero mean diff -> p = 1.
  EXPECT_DOUBLE_EQ(PairedTTest({1, 2}, {1, 2}).p_value, 1.0);
  // Constant positive shift with zero variance -> p = 0.
  EXPECT_DOUBLE_EQ(PairedTTest({2, 3}, {1, 2}).p_value, 0.0);
}

}  // namespace
}  // namespace hosr::eval
