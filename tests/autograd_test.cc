#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/param.h"
#include "autograd/tape.h"
#include "graph/csr.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace hosr::autograd {
namespace {

using tensor::Matrix;

// Fixture providing a small parameter store with random values.
class AutogradTest : public ::testing::Test {
 protected:
  Param* MakeParam(const std::string& name, size_t rows, size_t cols,
                   float stddev = 1.0f) {
    return store_.CreateGaussian(name, rows, cols, stddev, &rng_);
  }

  void ExpectGradsOk(const std::function<Value(Tape*)>& build,
                     std::vector<Param*> params, double tol = 5e-2) {
    const GradCheckResult result = CheckGradients(build, params, 1e-2, tol);
    EXPECT_TRUE(result.passed)
        << "worst: " << result.worst_entry
        << " rel err: " << result.max_relative_error;
  }

  ParamStore store_;
  util::Rng rng_{42};
};

// --- ParamStore ----------------------------------------------------------------

TEST_F(AutogradTest, ParamStoreCreateAndFind) {
  Param* p = MakeParam("w", 3, 4);
  EXPECT_EQ(p->value.rows(), 3u);
  EXPECT_EQ(store_.Find("w"), p);
  EXPECT_EQ(store_.Find("missing"), nullptr);
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_EQ(store_.NumScalars(), 12u);
}

TEST_F(AutogradTest, ZeroGradClearsAccumulation) {
  Param* p = MakeParam("w", 2, 2);
  p->grad.Fill(3.0f);
  store_.ZeroGrad();
  EXPECT_DOUBLE_EQ(tensor::MaxAbs(p->grad), 0.0);
}

TEST_F(AutogradTest, SquaredNormSumsAllParams) {
  Param* a = store_.Create("a", 1, 2);
  Param* b = store_.Create("b", 1, 1);
  a->value(0, 0) = 3.0f;
  a->value(0, 1) = 4.0f;
  b->value(0, 0) = 2.0f;
  EXPECT_DOUBLE_EQ(store_.SquaredNorm(), 29.0);
}

// --- Forward values -------------------------------------------------------------

TEST_F(AutogradTest, ForwardMatMul) {
  Param* a = store_.Create("a", 2, 2);
  a->value = Matrix::FromRows({{1, 2}, {3, 4}});
  Tape tape;
  Value m = tape.MatMul(tape.Param(a), tape.Constant(Matrix::FromRows(
                                           {{1, 0}, {0, 1}})));
  EXPECT_TRUE(tensor::AllClose(m.value(), a->value));
}

TEST_F(AutogradTest, BackwardAccumulatesAcrossSharedSubgraph) {
  // loss = sum(p + p) -> dp = 2 everywhere.
  Param* p = MakeParam("p", 2, 3);
  Tape tape;
  Value leaf = tape.Param(p);
  Value loss = tape.Sum(tape.Add(leaf, leaf));
  store_.ZeroGrad();
  tape.Backward(loss);
  for (size_t i = 0; i < p->grad.size(); ++i) {
    EXPECT_FLOAT_EQ(p->grad.data()[i], 2.0f);
  }
}

TEST_F(AutogradTest, BackwardThroughTwoParamLeavesOfSameParam) {
  // Using tape.Param twice on the same Param must sum the contributions.
  Param* p = MakeParam("p", 1, 2);
  Tape tape;
  Value l1 = tape.Param(p);
  Value l2 = tape.Param(p);
  Value loss = tape.Sum(tape.Hadamard(l1, l2));  // sum(p^2)
  store_.ZeroGrad();
  tape.Backward(loss);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(p->grad(0, c), 2.0f * p->value(0, c), 1e-5);
  }
}

TEST_F(AutogradTest, ConstantsReceiveNoGradient) {
  Param* p = MakeParam("p", 1, 1);
  Tape tape;
  Value c = tape.Constant(Matrix::FromRows({{5.0f}}));
  Value loss = tape.Sum(tape.Hadamard(tape.Param(p), c));
  store_.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NEAR(p->grad(0, 0), 5.0f, 1e-6);
}

TEST_F(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Param* p = MakeParam("p", 1, 1);
  {
    Tape tape;
    Value loss = tape.Sum(tape.Param(p));
    store_.ZeroGrad();
    tape.Backward(loss);
  }
  {
    Tape tape;
    Value loss = tape.Sum(tape.Param(p));
    tape.Backward(loss);  // no ZeroGrad: should add
  }
  EXPECT_FLOAT_EQ(p->grad(0, 0), 2.0f);
}

// --- Per-op gradient checks -------------------------------------------------------

TEST_F(AutogradTest, GradMatMul) {
  Param* a = MakeParam("a", 3, 4);
  Param* b = MakeParam("b", 4, 2);
  ExpectGradsOk(
      [&](Tape* t) { return t->Sum(t->MatMul(t->Param(a), t->Param(b))); },
      {a, b});
}

TEST_F(AutogradTest, GradSpMM) {
  Param* x = MakeParam("x", 4, 3);
  const graph::CsrMatrix sparse = graph::CsrMatrix::FromTriplets(
      5, 4, {{0, 0, 0.5f}, {0, 3, -1.0f}, {2, 1, 2.0f}, {4, 2, 1.5f}});
  const graph::CsrMatrix sparse_t = sparse.Transpose();
  ExpectGradsOk(
      [&](Tape* t) {
        return t->Sum(t->Tanh(t->SpMM(&sparse, &sparse_t, t->Param(x))));
      },
      {x});
}

TEST_F(AutogradTest, GradGatherRows) {
  Param* x = MakeParam("x", 5, 3);
  const std::vector<uint32_t> idx{4, 0, 4, 2};  // repeats exercise scatter-add
  ExpectGradsOk(
      [&](Tape* t) {
        Value g = t->GatherRows(t->Param(x), idx);
        return t->Sum(t->Hadamard(g, g));
      },
      {x});
}

TEST_F(AutogradTest, GradAddSubScale) {
  Param* a = MakeParam("a", 2, 3);
  Param* b = MakeParam("b", 2, 3);
  ExpectGradsOk(
      [&](Tape* t) {
        Value s = t->Sub(t->Scale(t->Param(a), 2.5f), t->Param(b));
        return t->Mean(t->Hadamard(s, s));
      },
      {a, b});
}

TEST_F(AutogradTest, GradHadamard) {
  Param* a = MakeParam("a", 3, 3);
  Param* b = MakeParam("b", 3, 3);
  ExpectGradsOk(
      [&](Tape* t) {
        return t->Sum(t->Hadamard(t->Param(a), t->Param(b)));
      },
      {a, b});
}

TEST_F(AutogradTest, GradTanh) {
  Param* a = MakeParam("a", 2, 4, 0.5f);
  ExpectGradsOk(
      [&](Tape* t) { return t->Sum(t->Tanh(t->Param(a))); }, {a});
}

TEST_F(AutogradTest, GradReluAwayFromKink) {
  Param* a = MakeParam("a", 3, 3);
  // Move values away from 0 so finite differences are valid.
  for (size_t i = 0; i < a->value.size(); ++i) {
    float& v = a->value.data()[i];
    if (std::fabs(v) < 0.15f) v = v < 0 ? -0.2f : 0.2f;
  }
  ExpectGradsOk(
      [&](Tape* t) {
        Value r = t->Relu(t->Param(a));
        return t->Sum(t->Hadamard(r, r));
      },
      {a});
}

TEST_F(AutogradTest, GradSigmoid) {
  Param* a = MakeParam("a", 2, 3);
  ExpectGradsOk(
      [&](Tape* t) { return t->Sum(t->Sigmoid(t->Param(a))); }, {a});
}

TEST_F(AutogradTest, GradLogSigmoid) {
  Param* a = MakeParam("a", 2, 3);
  ExpectGradsOk(
      [&](Tape* t) { return t->Sum(t->LogSigmoid(t->Param(a))); }, {a});
}

TEST_F(AutogradTest, LogSigmoidStableAtExtremes) {
  Param* a = store_.Create("a", 1, 2);
  a->value(0, 0) = 80.0f;
  a->value(0, 1) = -80.0f;
  Tape tape;
  Value y = tape.LogSigmoid(tape.Param(a));
  EXPECT_NEAR(y.value()(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(y.value()(0, 1), -80.0f, 1e-3);
  EXPECT_TRUE(std::isfinite(y.value()(0, 0)));
  EXPECT_TRUE(std::isfinite(y.value()(0, 1)));
  store_.ZeroGrad();
  tape.Backward(tape.Sum(y));
  EXPECT_NEAR(a->grad(0, 0), 0.0f, 1e-6);   // sigmoid(-80)
  EXPECT_NEAR(a->grad(0, 1), 1.0f, 1e-6);   // sigmoid(80)
}

TEST_F(AutogradTest, GradAddRowBroadcast) {
  Param* a = MakeParam("a", 4, 3);
  Param* bias = MakeParam("bias", 1, 3);
  ExpectGradsOk(
      [&](Tape* t) {
        Value y = t->AddRowBroadcast(t->Param(a), t->Param(bias));
        return t->Sum(t->Hadamard(y, y));
      },
      {a, bias});
}

TEST_F(AutogradTest, GradBroadcastColMul) {
  Param* a = MakeParam("a", 4, 3);
  Param* s = MakeParam("s", 4, 1);
  ExpectGradsOk(
      [&](Tape* t) {
        return t->Sum(t->BroadcastColMul(t->Param(a), t->Param(s)));
      },
      {a, s});
}

TEST_F(AutogradTest, GradConcatCols) {
  Param* a = MakeParam("a", 3, 2);
  Param* b = MakeParam("b", 3, 4);
  ExpectGradsOk(
      [&](Tape* t) {
        Value y = t->ConcatCols(t->Param(a), t->Param(b));
        return t->Sum(t->Hadamard(y, y));
      },
      {a, b});
}

TEST_F(AutogradTest, GradSliceCols) {
  Param* a = MakeParam("a", 3, 5);
  ExpectGradsOk(
      [&](Tape* t) {
        Value y = t->SliceCols(t->Param(a), 1, 3);
        return t->Sum(t->Hadamard(y, y));
      },
      {a});
}

TEST_F(AutogradTest, SliceConcatRoundTripValue) {
  Param* a = MakeParam("a", 2, 6);
  Tape tape;
  Value leaf = tape.Param(a);
  Value left = tape.SliceCols(leaf, 0, 2);
  Value right = tape.SliceCols(leaf, 2, 4);
  Value rebuilt = tape.ConcatCols(left, right);
  EXPECT_TRUE(tensor::AllClose(rebuilt.value(), a->value));
}

TEST_F(AutogradTest, GradRowDot) {
  Param* a = MakeParam("a", 4, 3);
  Param* b = MakeParam("b", 4, 3);
  ExpectGradsOk(
      [&](Tape* t) {
        return t->Sum(t->RowDot(t->Param(a), t->Param(b)));
      },
      {a, b});
}

TEST_F(AutogradTest, GradRowSoftmax) {
  Param* a = MakeParam("a", 3, 4);
  Param* w = MakeParam("w", 3, 4);
  ExpectGradsOk(
      [&](Tape* t) {
        // Weighted so the softmax gradient is nontrivial per entry.
        return t->Sum(t->Hadamard(t->RowSoftmax(t->Param(a)),
                                  t->Param(w)));
      },
      {a});
}

TEST_F(AutogradTest, RowSoftmaxRowsSumToOne) {
  Param* a = MakeParam("a", 5, 3);
  Tape tape;
  Value s = tape.RowSoftmax(tape.Param(a));
  for (size_t r = 0; r < 5; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 3; ++c) sum += s.value()(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST_F(AutogradTest, GradMeanAndSum) {
  Param* a = MakeParam("a", 3, 3);
  ExpectGradsOk([&](Tape* t) { return t->Mean(t->Param(a)); }, {a});
  ExpectGradsOk(
      [&](Tape* t) {
        Value x = t->Param(a);
        return t->Sum(t->Hadamard(x, x));
      },
      {a});
}

TEST_F(AutogradTest, GradLeakyRelu) {
  Param* a = MakeParam("a", 3, 3);
  // Move values away from the kink.
  for (size_t i = 0; i < a->value.size(); ++i) {
    float& v = a->value.data()[i];
    if (std::fabs(v) < 0.15f) v = v < 0 ? -0.2f : 0.2f;
  }
  ExpectGradsOk(
      [&](Tape* t) { return t->Sum(t->LeakyRelu(t->Param(a), 0.2f)); }, {a});
}

TEST_F(AutogradTest, LeakyReluForwardValues) {
  Param* a = store_.Create("a", 1, 3);
  a->value(0, 0) = -2.0f;
  a->value(0, 1) = 0.0f;
  a->value(0, 2) = 3.0f;
  Tape tape;
  Value y = tape.LeakyRelu(tape.Param(a), 0.1f);
  EXPECT_FLOAT_EQ(y.value()(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(y.value()(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.value()(0, 2), 3.0f);
}

TEST_F(AutogradTest, SegmentSoftmaxMatchesRowSoftmaxOnUniformSegments) {
  // Two segments of 3 entries each == a 2x3 RowSoftmax, flattened.
  Param* a = MakeParam("a", 6, 1);
  Tape tape;
  Value seg = tape.SegmentSoftmax(tape.Param(a), {0, 3, 6});
  Matrix rows(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) rows(r, c) = a->value(r * 3 + c, 0);
  }
  const Matrix reference = tensor::RowSoftmax(rows);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(seg.value()(r * 3 + c, 0), reference(r, c), 1e-5);
    }
  }
}

TEST_F(AutogradTest, SegmentSoftmaxSegmentsSumToOne) {
  Param* a = MakeParam("a", 7, 1);
  Tape tape;
  const std::vector<size_t> offsets{0, 2, 2, 5, 7};  // includes empty segment
  Value s = tape.SegmentSoftmax(tape.Param(a), offsets);
  for (size_t seg = 0; seg + 1 < offsets.size(); ++seg) {
    if (offsets[seg] == offsets[seg + 1]) continue;
    float sum = 0.0f;
    for (size_t e = offsets[seg]; e < offsets[seg + 1]; ++e) {
      sum += s.value()(e, 0);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST_F(AutogradTest, GradSegmentSoftmax) {
  Param* a = MakeParam("a", 8, 1);
  Param* w = MakeParam("w", 8, 1);
  ExpectGradsOk(
      [&](Tape* t) {
        Value s = t->SegmentSoftmax(t->Param(a), {0, 3, 5, 8});
        return t->Sum(t->Hadamard(s, t->Param(w)));
      },
      {a});
}

TEST_F(AutogradTest, SegmentWeightedSumForward) {
  Param* alpha = store_.Create("alpha", 4, 1);
  Param* feats = store_.Create("feats", 4, 2);
  alpha->value = Matrix::FromRows({{0.5f}, {0.5f}, {1.0f}, {2.0f}});
  feats->value = Matrix::FromRows({{1, 0}, {3, 2}, {5, 5}, {1, 1}});
  Tape tape;
  Value out = tape.SegmentWeightedSum(tape.Param(alpha), tape.Param(feats),
                                      {0, 2, 4});
  // Segment 0: 0.5*(1,0) + 0.5*(3,2) = (2,1); segment 1: (5,5) + 2*(1,1).
  EXPECT_TRUE(tensor::AllClose(out.value(),
                               Matrix::FromRows({{2, 1}, {7, 7}}), 1e-5));
}

TEST_F(AutogradTest, GradSegmentWeightedSum) {
  Param* alpha = MakeParam("alpha", 6, 1);
  Param* feats = MakeParam("feats", 6, 3);
  ExpectGradsOk(
      [&](Tape* t) {
        Value out = t->SegmentWeightedSum(t->Param(alpha), t->Param(feats),
                                          {0, 2, 3, 6});
        return t->Sum(t->Hadamard(out, out));
      },
      {alpha, feats});
}

TEST_F(AutogradTest, GradGatStyleComposite) {
  // A full GAT layer: transform, gather, edge scores, segment softmax,
  // weighted aggregation — all ops composed.
  Param* emb = MakeParam("emb", 4, 3, 0.5f);
  Param* w = MakeParam("w", 3, 3, 0.5f);
  Param* a_src = MakeParam("a_src", 3, 1, 0.5f);
  Param* a_tgt = MakeParam("a_tgt", 3, 1, 0.5f);
  // Node 0: edges to {0,1,2}; node 1: {1,0}; node 2: {2}; node 3: {3,2}.
  const std::vector<uint32_t> sources{0, 0, 0, 1, 1, 2, 3, 3};
  const std::vector<uint32_t> targets{0, 1, 2, 1, 0, 2, 3, 2};
  const std::vector<size_t> offsets{0, 3, 5, 6, 8};
  ExpectGradsOk(
      [&](Tape* t) {
        Value hw = t->MatMul(t->Param(emb), t->Param(w));
        Value src = t->GatherRows(hw, sources);
        Value tgt = t->GatherRows(hw, targets);
        Value scores = t->LeakyRelu(
            t->Add(t->MatMul(src, t->Param(a_src)),
                   t->MatMul(tgt, t->Param(a_tgt))),
            0.2f);
        Value alpha = t->SegmentSoftmax(scores, offsets);
        Value out = t->SegmentWeightedSum(alpha, tgt, offsets);
        Value act = t->Tanh(out);
        return t->Sum(t->Hadamard(act, act));
      },
      {emb, w, a_src, a_tgt}, /*tol=*/8e-2);
}

// --- Dropout -----------------------------------------------------------------

TEST_F(AutogradTest, DropoutIdentityWhenNotTraining) {
  Param* a = MakeParam("a", 4, 4);
  util::Rng rng(1);
  Tape tape;
  Value y = tape.Dropout(tape.Param(a), 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(tensor::AllClose(y.value(), a->value));
}

TEST_F(AutogradTest, DropoutZeroProbIsIdentity) {
  Param* a = MakeParam("a", 4, 4);
  util::Rng rng(2);
  Tape tape;
  Value y = tape.Dropout(tape.Param(a), 0.0f, /*training=*/true, &rng);
  EXPECT_TRUE(tensor::AllClose(y.value(), a->value));
}

TEST_F(AutogradTest, DropoutScalesSurvivors) {
  Param* a = store_.Create("a", 50, 50);
  a->value.Fill(1.0f);
  util::Rng rng(3);
  Tape tape;
  Value y = tape.Dropout(tape.Param(a), 0.25f, /*training=*/true, &rng);
  size_t zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.value().size(), 0.25, 0.03);
}

TEST_F(AutogradTest, DropoutBackwardUsesSameMask) {
  Param* a = store_.Create("a", 20, 20);
  a->value.Fill(2.0f);
  util::Rng rng(4);
  Tape tape;
  Value y = tape.Dropout(tape.Param(a), 0.5f, /*training=*/true, &rng);
  store_.ZeroGrad();
  tape.Backward(tape.Sum(y));
  // Gradient must be 0 exactly where the forward output was dropped.
  for (size_t i = 0; i < a->grad.size(); ++i) {
    const bool dropped = y.value().data()[i] == 0.0f;
    if (dropped) {
      EXPECT_FLOAT_EQ(a->grad.data()[i], 0.0f);
    } else {
      EXPECT_NEAR(a->grad.data()[i], 2.0f, 1e-5);
    }
  }
}

// --- Composite graph (BPR-like) ---------------------------------------------------

TEST_F(AutogradTest, GradBprStyleLoss) {
  Param* users = MakeParam("U", 4, 3, 0.5f);
  Param* items = MakeParam("V", 6, 3, 0.5f);
  const std::vector<uint32_t> u{0, 2, 3};
  const std::vector<uint32_t> pos{1, 0, 5};
  const std::vector<uint32_t> neg{2, 3, 0};
  ExpectGradsOk(
      [&](Tape* t) {
        Value ue = t->GatherRows(t->Param(users), u);
        Value pe = t->GatherRows(t->Param(items), pos);
        Value ne = t->GatherRows(t->Param(items), neg);
        Value margin = t->Sub(t->RowDot(ue, pe), t->RowDot(ue, ne));
        return t->Scale(t->Mean(t->LogSigmoid(margin)), -1.0f);
      },
      {users, items});
}

TEST_F(AutogradTest, GradDeepComposite) {
  // A miniature GCN-with-attention-like stack touching most ops at once.
  Param* emb = MakeParam("emb", 5, 4, 0.5f);
  Param* w1 = MakeParam("w1", 4, 4, 0.5f);
  Param* w2 = MakeParam("w2", 4, 4, 0.5f);
  Param* h = MakeParam("h", 4, 1, 0.5f);
  const graph::CsrMatrix lap = graph::CsrMatrix::FromTriplets(
      5, 5, {{0, 0, 1.0f}, {0, 1, 0.5f}, {1, 0, 0.5f}, {1, 1, 0.5f},
             {2, 2, 1.0f}, {3, 4, 0.7f}, {4, 3, 0.7f}, {3, 3, 1.0f},
             {4, 4, 1.0f}, {2, 3, 0.3f}, {3, 2, 0.3f}});
  const graph::CsrMatrix lap_t = lap.Transpose();
  ExpectGradsOk(
      [&](Tape* t) {
        Value u0 = t->Param(emb);
        Value h1 = t->Tanh(t->MatMul(t->SpMM(&lap, &lap_t, u0),
                                     t->Param(w1)));
        Value h2 = t->Tanh(t->MatMul(t->SpMM(&lap, &lap_t, h1),
                                     t->Param(w2)));
        Value a1 = t->MatMul(t->Relu(h1), t->Param(h));
        Value a2 = t->MatMul(t->Relu(h2), t->Param(h));
        Value weights = t->RowSoftmax(t->ConcatCols(a1, a2));
        Value agg = t->Add(
            t->BroadcastColMul(h1, t->SliceCols(weights, 0, 1)),
            t->BroadcastColMul(h2, t->SliceCols(weights, 1, 1)));
        return t->Sum(t->Hadamard(agg, agg));
      },
      {emb, w1, w2, h}, /*tol=*/8e-2);
}

}  // namespace
}  // namespace hosr::autograd
