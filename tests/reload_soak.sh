#!/usr/bin/env bash
# Chaos soak for the hot-reload + overload-control surface (wired as the
# `reload_soak` ctest; docs/ROBUSTNESS.md "Hot reload & overload control"):
#
#   1. hot swap under live traffic: train two snapshots of the same
#      user/item universe, serve A with the mtime watcher armed, replay a
#      paced request stream from hosr_loadgen with a dual verify oracle
#      (--verify_snapshot A --verify_snapshot_b B), and publish B
#      atomically (write sibling + rename) mid-replay. Every reply must be
#      bit-identical to exactly one engine, every request accounted for,
#      zero drops (ok == stream length), both oracles actually exercised.
#      After the swap is acknowledged in /varz, a fresh replay must match
#      B alone — zero stale-version replies.
#   2. chaos reloads: same serving setup with net.read and snapshot.load
#      faults armed. The first publish of B is vetoed by the injected
#      snapshot.load fault (rejected, rollback, replies keep verifying);
#      republishing swaps for real. Then two corrupted candidates in a row
#      degrade /healthz (reload_reject_streak >= 2) and dump the flight
#      recorder while the active snapshot keeps serving; a good publish
#      recovers /healthz, and POST /reloadz / GET /reloadz answer 200/405.
#   3. breaker: with the popularity fallback off and a delay fault inside
#      engine.score, a deadline-bearing replay turns into a failure storm
#      — the breaker trips and sheds at the wire (shed > 0, trips >= 1,
#      requests == responses). A second, deadline-free replay drives the
#      half-open probes to success: the breaker closes and every request
#      is served.
#   4. reload_test under AddressSanitizer.
#
# Usage: reload_soak.sh <hosr_cli> <hosr_serve> <hosr_loadgen> <source dir>
set -eu

CLI="$1"
SERVE="$2"
LOADGEN="$3"
SRC="$4"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.02 --seed=3
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckptA" --model=BPR \
  --epochs=2 --snapshot_out="$WORK/snapA"
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckptB" --model=BPR \
  --epochs=4 --snapshot_out="$WORK/snapB"
test -s "$WORK/snapA" -a -s "$WORK/snapB" \
  || { echo "FAIL: snapshots not written" >&2; exit 1; }
cmp -s "$WORK/snapA" "$WORK/snapB" \
  && { echo "FAIL: training produced identical snapshots" >&2; exit 1; }

wait_for_port() {
  local port_file="$1"
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && return 0
    sleep 0.1
  done
  echo "FAIL: server never wrote $port_file" >&2
  exit 1
}

# Atomic publish, the way a deploy job must do it: the watcher stats the
# serving path, so a candidate may never be visible half-written there.
publish() {
  cp "$1" "$2.staging.$$"
  mv -f "$2.staging.$$" "$2"
}

# admin_http GET|POST <port> <path> -> "status<TAB>body" on stdout.
admin_http() {
  python3 - "$1" "$2" "$3" <<'EOF'
import http.client, sys
conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[2]), timeout=10)
conn.request(sys.argv[1], sys.argv[3],
             headers={"Content-Length": "0"} if sys.argv[1] == "POST" else {})
response = conn.getresponse()
print("%d\t%s" % (response.status, response.read().decode().replace("\n", " ")))
EOF
}

wait_for_var() {  # wait_for_var <admin port> <varz substring>
  for _ in $(seq 1 100); do
    if admin_http GET "$1" /varz | grep -qF "$2"; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: /varz never showed $2" >&2
  admin_http GET "$1" /varz >&2
  exit 1
}

# --- phase 1: mid-replay hot swap drops nothing, staleness window closes -----

publish "$WORK/snapA" "$WORK/live1"
"$SERVE" --snapshot="$WORK/live1" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port1" --workers=2 \
  --reload_watch --reload_poll_ms=50 \
  --admin_port=0 --admin_port_file="$WORK/admin1" \
  --summary_out="$WORK/server1.json" > /dev/null &
SERVER_PID=$!
wait_for_port "$WORK/port1"
wait_for_port "$WORK/admin1"

# ~3s of paced traffic so the swap lands mid-stream.
"$LOADGEN" --port="$(cat "$WORK/port1")" \
  --num_requests=3000 --k=10 --zipf=0.9 --seed=5 --connections=2 --qps=1000 \
  --reconnect_backoff_ms=5 \
  --verify_snapshot="$WORK/snapA" --verify_snapshot_b="$WORK/snapB" \
  --verify_data="$WORK/data" \
  --summary_out="$WORK/loadgen1.json" > /dev/null &
LOADGEN_PID=$!
sleep 1
publish "$WORK/snapB" "$WORK/live1"
wait "$LOADGEN_PID"

# The swap ack: /varz reports v2 active. From here on, *every* reply must
# come from B — a fresh replay against the B oracle alone proves there is
# no stale-version window after the ack.
wait_for_var "$(cat "$WORK/admin1")" '"snapshot_version": "2"'
"$LOADGEN" --port="$(cat "$WORK/port1")" \
  --num_requests=400 --k=10 --zipf=0.9 --seed=6 --connections=2 \
  --verify_snapshot="$WORK/snapB" --verify_data="$WORK/data" \
  --summary_out="$WORK/loadgen1b.json" > /dev/null

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

python3 - "$WORK/loadgen1.json" "$WORK/loadgen1b.json" "$WORK/server1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    swap = json.load(f)
with open(sys.argv[2]) as f:
    after = json.load(f)
with open(sys.argv[3]) as f:
    srv = json.load(f)
# Zero-downtime: the swap dropped nothing and broke nothing.
assert swap["outcomes"]["ok"] == 3000, swap
assert sum(swap["outcomes"].values()) == 3000, swap
assert swap["verify_failures"] == 0, swap
# Both snapshots actually served: the swap landed mid-replay. (Cache-served
# replies are not verified, so the matched totals cover fresh answers only.)
assert swap["matched_a"] > 0 and swap["matched_b"] > 0, swap
# Post-ack replay is pure B: zero stale-version replies.
assert after["verified"] and after["verify_failures"] == 0, after
assert after["outcomes"]["ok"] == 400, after
assert srv["net"]["requests"] == srv["net"]["responses"] == 3400, srv
assert srv["reload"]["enabled"] and srv["reload"]["active_version"] == 2, srv
assert srv["reload"]["reloads_ok"] == 1, srv
# Swapping invalidated cached pre-swap results: the zipf replay re-asks
# hot users after the swap, and those lookups must miss, not serve v1.
assert srv["cache"]["stale_hits"] >= 1, srv
print("reload_soak phase1 OK: swap at A=%d/B=%d replies, zero dropped, "
      "zero stale after ack" % (swap["matched_a"], swap["matched_b"]))
EOF

# --- phase 2: chaos reloads — injected faults, corruption, rollback ----------

publish "$WORK/snapA" "$WORK/live2"
mkdir -p "$WORK/flight"
# snapshot.load:once=2 vetoes the *second* load — i.e. the first
# watcher-triggered reload — while startup (hit 1) stays clean.
"$SERVE" --snapshot="$WORK/live2" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port2" --workers=2 \
  --reload_watch --reload_poll_ms=50 \
  --fault_spec='net.read:n=150,snapshot.load:once=2' --fault_seed=1 \
  --flight_dir="$WORK/flight" \
  --admin_port=0 --admin_port_file="$WORK/admin2" \
  --summary_out="$WORK/server2.json" > /dev/null 2>&1 &
SERVER_PID=$!
wait_for_port "$WORK/port2"
wait_for_port "$WORK/admin2"
ADMIN2="$(cat "$WORK/admin2")"

"$LOADGEN" --port="$(cat "$WORK/port2")" \
  --num_requests=3000 --k=10 --zipf=0.9 --seed=7 --connections=2 --qps=1000 \
  --reconnect_backoff_ms=5 \
  --verify_snapshot="$WORK/snapA" --verify_snapshot_b="$WORK/snapB" \
  --verify_data="$WORK/data" \
  --summary_out="$WORK/loadgen2.json" > /dev/null &
LOADGEN_PID=$!
sleep 1
publish "$WORK/snapB" "$WORK/live2"          # vetoed by snapshot.load fault
wait_for_var "$ADMIN2" '"reloads_rejected": "1"'
publish "$WORK/snapB" "$WORK/live2"          # clean retry swaps for real
wait_for_var "$ADMIN2" '"snapshot_version": "2"'
wait "$LOADGEN_PID"

# Two corrupted candidates in a row: rejected with rollback, /healthz
# degrades on the streak, the flight recorder captures forensics.
head -c 512 "$WORK/snapA" > "$WORK/corrupt"
publish "$WORK/corrupt" "$WORK/live2"
wait_for_var "$ADMIN2" '"reloads_rejected": "2"'
echo "more garbage" >> "$WORK/corrupt"
publish "$WORK/corrupt" "$WORK/live2"
wait_for_var "$ADMIN2" '"reloads_rejected": "3"'
HEALTH_DEGRADED="$(admin_http GET "$ADMIN2" /healthz)"
# Rollback: v2 still serves bit-identical B answers through the storm.
"$LOADGEN" --port="$(cat "$WORK/port2")" \
  --num_requests=400 --k=10 --seed=8 --connections=2 \
  --verify_snapshot="$WORK/snapB" --verify_data="$WORK/data" \
  --summary_out="$WORK/loadgen2b.json" > /dev/null
# A good publish recovers: version advances, /healthz is ok again.
publish "$WORK/snapA" "$WORK/live2"
wait_for_var "$ADMIN2" '"snapshot_version": "3"'
HEALTH_RECOVERED="$(admin_http GET "$ADMIN2" /healthz)"
RELOADZ_POST="$(admin_http POST "$ADMIN2" /reloadz)"
RELOADZ_GET="$(admin_http GET "$ADMIN2" /reloadz)"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

python3 - "$WORK/loadgen2.json" "$WORK/loadgen2b.json" "$WORK/server2.json" \
  "$HEALTH_DEGRADED" "$HEALTH_RECOVERED" "$RELOADZ_POST" "$RELOADZ_GET" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    chaos = json.load(f)
with open(sys.argv[2]) as f:
    rollback = json.load(f)
with open(sys.argv[3]) as f:
    srv = json.load(f)
degraded_status, degraded_body = sys.argv[4].split("\t")
recovered_status, recovered_body = sys.argv[5].split("\t")
reloadz_status, reloadz_body = sys.argv[6].split("\t")
reloadz_get_status, _ = sys.argv[7].split("\t")
# Chaos replay: injected net.read closes are redialed (with backoff) and
# every request still resolves to exactly one verified outcome.
assert sum(chaos["outcomes"].values()) == 3000, chaos
assert chaos["verify_failures"] == 0, chaos
assert chaos["outcomes"]["closed"] > 0, chaos
assert chaos["reconnects"] > 0 and chaos["backoff_waits"] > 0, chaos
assert chaos["matched_a"] > 0 and chaos["matched_b"] > 0, chaos
# The vetoed reload rolled back; the retry swapped; corruption never won.
assert srv["reload"]["reloads_ok"] >= 2, srv
assert srv["reload"]["reloads_rejected"] >= 3, srv
assert rollback["verified"] and rollback["verify_failures"] == 0, rollback
# net.read stays armed for the server's whole life, so a few replies close;
# everything that was answered verified against the rolled-back-to engine.
assert rollback["outcomes"]["ok"] > 0, rollback
assert rollback["outcomes"]["ok"] + rollback["outcomes"]["closed"] == 400, \
    rollback
assert srv["net"]["requests"] == srv["net"]["responses"], srv
assert srv["faults_injected"] > 0, srv
# Health: degraded on the reject streak, recovered after a good swap.
assert degraded_status == "503" and '"status": "degraded"' in degraded_body, \
    (degraded_status, degraded_body)
assert json.loads(degraded_body)["reload_reject_streak"] >= 2, degraded_body
assert recovered_status == "200" and '"status": "ok"' in recovered_body, \
    (recovered_status, recovered_body)
assert reloadz_status == "200" and '"status": "ok"' in reloadz_body, \
    (reloadz_status, reloadz_body)
assert reloadz_get_status == "405", reloadz_get_status
print("reload_soak phase2 OK: vetoed+corrupt reloads rolled back "
      "(rejected=%d), healthz degraded then recovered"
      % srv["reload"]["reloads_rejected"])
EOF

ls "$WORK/flight"/flight_*.json > /dev/null 2>&1 \
  || { echo "FAIL: no flight dump for rejected reloads" >&2; exit 1; }
grep -l "reload rejected" "$WORK/flight"/flight_*.json > /dev/null \
  || { echo "FAIL: flight dump lacks reload_rejected note" >&2; exit 1; }

# --- phase 3: breaker trips under a failure storm, then closes ---------------

# Popularity fallback off: the injected 15ms scoring delay + a 5ms wire
# deadline make every executed request fail, so the breaker sees the storm.
"$SERVE" --snapshot="$WORK/snapA" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port3" --workers=2 \
  --degraded=0 --breaker --breaker_window=32 --breaker_min_samples=8 \
  --breaker_trip_ratio=0.5 --breaker_open_ms=200 --breaker_probes=4 \
  --fault_spec='engine.score:p=1:delay_ms=15' --fault_seed=1 \
  --summary_out="$WORK/server3.json" > /dev/null 2>&1 &
SERVER_PID=$!
wait_for_port "$WORK/port3"

"$LOADGEN" --port="$(cat "$WORK/port3")" \
  --num_requests=120 --k=10 --seed=9 --connections=2 --deadline_ms=5 \
  --summary_out="$WORK/loadgen3.json" > /dev/null

# Cooldown, then a deadline-free replay: the slow-but-healthy engine now
# answers, half-open probes succeed, and the breaker closes.
sleep 0.5
"$LOADGEN" --port="$(cat "$WORK/port3")" \
  --num_requests=60 --k=10 --seed=10 --connections=1 \
  --summary_out="$WORK/loadgen3b.json" > /dev/null

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

python3 - "$WORK/loadgen3.json" "$WORK/loadgen3b.json" "$WORK/server3.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    storm = json.load(f)
with open(sys.argv[2]) as f:
    calm = json.load(f)
with open(sys.argv[3]) as f:
    srv = json.load(f)
# The storm tripped the breaker: deadline failures first, then wire sheds.
assert storm["outcomes"]["deadline_exceeded"] > 0, storm
assert storm["outcomes"]["shed"] > 0, storm
assert sum(storm["outcomes"].values()) == 120, storm
assert srv["breaker"]["enabled"], srv
assert srv["breaker"]["trips"] >= 1, srv
assert srv["breaker"]["rejected"] > 0, srv
# Recovery: probes closed the breaker and the calm replay fully succeeds.
assert calm["outcomes"]["ok"] == 60, calm
assert srv["breaker"]["state"] == 0, srv
# Sheds are answered, not dropped: accounting stays exact.
assert srv["net"]["requests"] == srv["net"]["responses"], srv
print("reload_soak phase3 OK: breaker tripped %d time(s), shed %d at the "
      "wire, then closed" % (srv["breaker"]["trips"], srv["breaker"]["rejected"]))
EOF

# --- reload surface under AddressSanitizer -----------------------------------

cmake -B "$WORK/asan" -S "$SRC" -DHOSR_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$WORK/asan_configure.log" 2>&1 \
  || { cat "$WORK/asan_configure.log" >&2; exit 1; }
cmake --build "$WORK/asan" -j "$(nproc)" --target reload_test \
  > "$WORK/asan_build.log" 2>&1 \
  || { tail -50 "$WORK/asan_build.log" >&2; exit 1; }
"$WORK/asan/tests/reload_test" > "$WORK/asan_reload.log" 2>&1 \
  || { tail -50 "$WORK/asan_reload.log" >&2; exit 1; }
echo "asan OK: reload_test clean"

echo "reload_soak OK"
