#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "tensor/init.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "util/random.h"

namespace hosr::tensor {
namespace {

// --- Matrix -----------------------------------------------------------------

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m.at(2, 3), 2.5f);
  m.SetZero();
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 6.0f);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowAccess) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const float* r1 = m.row(1);
  EXPECT_FLOAT_EQ(r1[0], 4.0f);
  EXPECT_FLOAT_EQ(r1[2], 6.0f);
  m.row(0)[1] = 9.0f;
  EXPECT_FLOAT_EQ(m.at(0, 1), 9.0f);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(2, 2, 1.0f);
  Matrix b = a;
  b.at(0, 0) = 5.0f;
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
}

TEST(MatrixTest, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).SameShape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).SameShape(Matrix(3, 2)));
}

TEST(MatrixTest, ToStringMentionsShape) {
  const Matrix m(2, 2, 1.0f);
  EXPECT_NE(m.ToString().find("2x2"), std::string::npos);
}

// --- GEMM -------------------------------------------------------------------

TEST(GemmTest, PlainMultiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(GemmTest, TransposeA) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});  // 3x2
  const Matrix b = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});  // 3x2
  Matrix out(2, 2);
  Gemm(a, true, b, false, 1.0f, 0.0f, &out);
  // a^T b = [[1+5, 3+5], [2+6, 4+6]] = [[6, 8], [8, 10]]
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{6, 8}, {8, 10}})));
}

TEST(GemmTest, TransposeB) {
  const Matrix a = Matrix::FromRows({{1, 2}});      // 1x2
  const Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});  // 2x2 -> b^T
  Matrix out(1, 2);
  Gemm(a, false, b, true, 1.0f, 0.0f, &out);
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{11, 17}})));
}

TEST(GemmTest, AlphaBetaAccumulate) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  const Matrix b = Matrix::FromRows({{2, 0}, {0, 2}});
  Matrix out = Matrix::FromRows({{10, 0}, {0, 10}});
  Gemm(a, false, b, false, 3.0f, 1.0f, &out);
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{16, 0}, {0, 16}})));
}

TEST(GemmTest, BothTransposed) {
  util::Rng rng(3);
  Matrix a(4, 3), b(5, 4);
  GaussianInit(&a, 1.0f, &rng);
  GaussianInit(&b, 1.0f, &rng);
  Matrix out(3, 5);
  Gemm(a, true, b, true, 1.0f, 0.0f, &out);
  // Reference: transpose explicitly.
  const Matrix reference = MatMul(Transpose(a), Transpose(b));
  EXPECT_TRUE(AllClose(out, reference, 1e-4));
}

TEST(GemmTest, LargeMatchesNaive) {
  util::Rng rng(4);
  Matrix a(37, 23), b(23, 41);
  GaussianInit(&a, 1.0f, &rng);
  GaussianInit(&b, 1.0f, &rng);
  const Matrix fast = MatMul(a, b);
  Matrix naive(37, 41);
  for (size_t i = 0; i < 37; ++i) {
    for (size_t j = 0; j < 41; ++j) {
      float acc = 0;
      for (size_t k = 0; k < 23; ++k) acc += a(i, k) * b(k, j);
      naive(i, j) = acc;
    }
  }
  EXPECT_TRUE(AllClose(fast, naive, 1e-3));
}

// --- Element-wise ops ---------------------------------------------------------

TEST(OpsTest, AddSubHadamardScale) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::FromRows({{11, 22}, {33, 44}})));
  EXPECT_TRUE(AllClose(Sub(b, a), Matrix::FromRows({{9, 18}, {27, 36}})));
  EXPECT_TRUE(
      AllClose(Hadamard(a, b), Matrix::FromRows({{10, 40}, {90, 160}})));
  EXPECT_TRUE(AllClose(Scale(a, 2.0f), Matrix::FromRows({{2, 4}, {6, 8}})));
}

TEST(OpsTest, Axpy) {
  Matrix a = Matrix::FromRows({{1, 1}});
  const Matrix b = Matrix::FromRows({{2, 3}});
  Axpy(2.0f, b, &a);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{5, 7}})));
}

TEST(OpsTest, ActivationsMatchStd) {
  const Matrix x = Matrix::FromRows({{-2, -0.5, 0, 0.5, 2}});
  const Matrix t = Tanh(x);
  const Matrix r = Relu(x);
  const Matrix s = Sigmoid(x);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(t(0, c), std::tanh(x(0, c)), 1e-6);
    EXPECT_FLOAT_EQ(r(0, c), std::max(0.0f, x(0, c)));
    EXPECT_NEAR(s(0, c), 1.0 / (1.0 + std::exp(-x(0, c))), 1e-6);
  }
}

TEST(OpsTest, RowDotAndSums) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix dot = RowDot(a, b);
  EXPECT_FLOAT_EQ(dot(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(dot(1, 0), 53.0f);
  const Matrix rs = RowSum(a);
  EXPECT_FLOAT_EQ(rs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 7.0f);
  const Matrix cs = ColSum(a);
  EXPECT_FLOAT_EQ(cs(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(cs(0, 1), 6.0f);
}

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  const Matrix x = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}, {100, 100, 100}});
  const Matrix s = RowSoftmax(x);
  for (size_t r = 0; r < 3; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(s(r, c), 0.0f);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Monotone in the input.
  EXPECT_LT(s(0, 0), s(0, 1));
  EXPECT_LT(s(0, 1), s(0, 2));
  // Large equal logits do not overflow.
  EXPECT_NEAR(s(2, 0), 1.0f / 3, 1e-5);
}

TEST(OpsTest, RowSoftmaxHandlesExtremeLogits) {
  const Matrix x = Matrix::FromRows({{1000, -1000}});
  const Matrix s = RowSoftmax(x);
  EXPECT_NEAR(s(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(s(0, 1), 0.0f, 1e-6);
}

TEST(OpsTest, BroadcastColMul) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix s = Matrix::FromRows({{2}, {10}});
  EXPECT_TRUE(
      AllClose(BroadcastColMul(a, s), Matrix::FromRows({{2, 4}, {30, 40}})));
}

TEST(OpsTest, GatherScatterRoundTrip) {
  const Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  const std::vector<uint32_t> idx{2, 0, 2};
  const Matrix g = GatherRows(a, idx);
  EXPECT_TRUE(AllClose(g, Matrix::FromRows({{3, 3}, {1, 1}, {3, 3}})));
  Matrix out(3, 2);
  ScatterAddRows(g, idx, &out);
  // Row 2 receives two contributions.
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{1, 1}, {0, 0}, {6, 6}})));
}

TEST(OpsTest, TransposeInvolution) {
  util::Rng rng(5);
  Matrix a(7, 3);
  GaussianInit(&a, 1.0f, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(OpsTest, Reductions) {
  const Matrix a = Matrix::FromRows({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(Sum(a), -2.0);
  EXPECT_DOUBLE_EQ(Mean(a), -0.5);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 30.0);
  EXPECT_DOUBLE_EQ(MaxAbs(a), 4.0);
}

TEST(OpsTest, AllCloseRespectsTolerance) {
  const Matrix a = Matrix::FromRows({{1.0f}});
  const Matrix b = Matrix::FromRows({{1.0001f}});
  EXPECT_TRUE(AllClose(a, b, 1e-3));
  EXPECT_FALSE(AllClose(a, b, 1e-6));
  EXPECT_FALSE(AllClose(a, Matrix(2, 1)));
}

// --- Init -------------------------------------------------------------------

TEST(InitTest, GaussianStddev) {
  util::Rng rng(6);
  Matrix m(200, 200);
  GaussianInit(&m, 0.5f, &rng);
  EXPECT_NEAR(Mean(m), 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(SquaredNorm(m) / m.size()), 0.5, 0.01);
}

TEST(InitTest, XavierUniformBounds) {
  util::Rng rng(7);
  Matrix m(30, 20);
  XavierUniformInit(&m, &rng);
  const float bound = std::sqrt(6.0f / (30 + 20));
  EXPECT_LE(MaxAbs(m), bound);
  EXPECT_GT(MaxAbs(m), bound * 0.8);  // actually fills the range
}

TEST(InitTest, UniformRange) {
  util::Rng rng(8);
  Matrix m(50, 50);
  UniformInit(&m, -2.0f, 3.0f, &rng);
  const float* p = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(p[i], -2.0f);
    EXPECT_LT(p[i], 3.0f);
  }
  EXPECT_NEAR(Mean(m), 0.5, 0.1);
}

// --- Serialize ---------------------------------------------------------------

TEST(SerializeTest, StreamRoundTrip) {
  util::Rng rng(9);
  Matrix m(13, 7);
  GaussianInit(&m, 1.0f, &rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrix(m, &ss).ok());
  const auto loaded = ReadMatrix(&ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(AllClose(*loaded, m, 0.0));
}

TEST(SerializeTest, FileRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}});
  const std::string path = ::testing::TempDir() + "/hosr_matrix_test.bin";
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  const auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(AllClose(*loaded, m, 0.0));
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a matrix at all, just text";
  EXPECT_FALSE(ReadMatrix(&ss).ok());
}

TEST(SerializeTest, RejectsTruncatedPayload) {
  Matrix m(4, 4, 1.0f);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrix(m, &ss).ok());
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 8);
  std::stringstream truncated(bytes);
  EXPECT_FALSE(ReadMatrix(&truncated).ok());
}

TEST(SerializeTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadMatrix("/nonexistent/path/m.bin").ok());
}

}  // namespace
}  // namespace hosr::tensor
