#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/dataset.h"
#include "data/interactions.h"
#include "data/io.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "graph/stats.h"

namespace hosr::data {
namespace {

InteractionMatrix MakeMatrix(uint32_t users, uint32_t items,
                             std::vector<Interaction> list) {
  auto result = InteractionMatrix::FromInteractions(users, items,
                                                    std::move(list));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// --- InteractionMatrix -------------------------------------------------------

TEST(InteractionMatrixTest, BasicProperties) {
  const auto m =
      MakeMatrix(3, 5, {{0, 1}, {0, 3}, {2, 4}, {2, 4}});  // dup collapses
  EXPECT_EQ(m.num_users(), 3u);
  EXPECT_EQ(m.num_items(), 5u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.ItemsOf(0), (std::vector<uint32_t>{1, 3}));
  EXPECT_TRUE(m.ItemsOf(1).empty());
  EXPECT_TRUE(m.Contains(2, 4));
  EXPECT_FALSE(m.Contains(2, 3));
}

TEST(InteractionMatrixTest, RejectsOutOfRange) {
  EXPECT_FALSE(
      InteractionMatrix::FromInteractions(2, 2, {{0, 5}}).ok());
  EXPECT_FALSE(
      InteractionMatrix::FromInteractions(2, 2, {{3, 0}}).ok());
}

TEST(InteractionMatrixTest, DensityAndAverages) {
  const auto m = MakeMatrix(2, 10, {{0, 0}, {0, 1}, {1, 2}, {1, 3}});
  EXPECT_DOUBLE_EQ(m.Density(), 4.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.AvgInteractionsPerUser(), 2.0);
}

TEST(InteractionMatrixTest, ItemIndexInverts) {
  const auto m = MakeMatrix(3, 3, {{0, 1}, {1, 1}, {2, 0}});
  const auto index = m.BuildItemIndex();
  EXPECT_EQ(index[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index[0], (std::vector<uint32_t>{2}));
  EXPECT_TRUE(index[2].empty());
}

TEST(InteractionMatrixTest, ToListUserMajor) {
  const auto m = MakeMatrix(2, 3, {{1, 0}, {0, 2}, {0, 1}});
  const auto list = m.ToList();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], (Interaction{0, 1}));
  EXPECT_EQ(list[1], (Interaction{0, 2}));
  EXPECT_EQ(list[2], (Interaction{1, 0}));
}

// --- Dataset / Split ----------------------------------------------------------

Dataset SmallDataset() {
  Dataset d;
  d.name = "small";
  d.interactions = MakeMatrix(
      4, 6, {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4},
             {1, 1}, {1, 2}, {1, 3}, {2, 0}, {2, 5}, {3, 4}});
  auto social = graph::SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(social.ok());
  d.social = std::move(social).value();
  return d;
}

TEST(DatasetTest, SummaryMatchesTable2Fields) {
  const Dataset d = SmallDataset();
  const auto s = d.Summarize();
  EXPECT_EQ(s.num_users, 4u);
  EXPECT_EQ(s.num_items, 6u);
  EXPECT_EQ(s.num_interactions, 11u);
  EXPECT_EQ(s.num_social_edges, 3u);
  EXPECT_DOUBLE_EQ(s.interaction_density, 11.0 / 24.0);
  EXPECT_DOUBLE_EQ(s.avg_interactions, 11.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.avg_relations, 6.0 / 4.0);
}

TEST(SplitTest, PartitionsWithoutOverlapOrLoss) {
  const Dataset d = SmallDataset();
  util::Rng rng(1);
  const auto split = SplitDataset(d, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.interactions.nnz() + split->test.nnz(),
            d.interactions.nnz());
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (const uint32_t item : split->test.ItemsOf(u)) {
      EXPECT_FALSE(split->train.interactions.Contains(u, item));
      EXPECT_TRUE(d.interactions.Contains(u, item));
    }
  }
}

TEST(SplitTest, EveryUserKeepsATrainInteraction) {
  const Dataset d = SmallDataset();
  util::Rng rng(2);
  const auto split = SplitDataset(d, 0.5, &rng);
  ASSERT_TRUE(split.ok());
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    if (!d.interactions.ItemsOf(u).empty()) {
      EXPECT_FALSE(split->train.interactions.ItemsOf(u).empty()) << u;
    }
  }
}

TEST(SplitTest, FractionApproximatelyRespected) {
  data::SyntheticConfig config;
  config.num_users = 300;
  config.num_items = 400;
  config.avg_interactions_per_user = 20;
  config.avg_relations_per_user = 8;
  const auto dataset = GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  util::Rng rng(3);
  const auto split = SplitDataset(*dataset, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  const double test_fraction = static_cast<double>(split->test.nnz()) /
                               dataset->interactions.nnz();
  EXPECT_NEAR(test_fraction, 0.2, 0.05);
}

TEST(SplitTest, RejectsBadFraction) {
  const Dataset d = SmallDataset();
  util::Rng rng(4);
  EXPECT_FALSE(SplitDataset(d, 0.0, &rng).ok());
  EXPECT_FALSE(SplitDataset(d, 1.0, &rng).ok());
  EXPECT_FALSE(SplitDataset(d, -0.3, &rng).ok());
}

TEST(SplitTest, SocialGraphPreserved) {
  const Dataset d = SmallDataset();
  util::Rng rng(5);
  const auto split = SplitDataset(d, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.social.num_edges(), d.social.num_edges());
}

// --- BprSampler ---------------------------------------------------------------

TEST(BprSamplerTest, TriplesAreValid) {
  const Dataset d = SmallDataset();
  BprSampler sampler(&d.interactions, 7);
  const BprBatch batch = sampler.SampleBatch(200);
  ASSERT_EQ(batch.size(), 200u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(d.interactions.Contains(batch.users[i], batch.pos_items[i]));
    EXPECT_FALSE(d.interactions.Contains(batch.users[i], batch.neg_items[i]));
  }
}

TEST(BprSamplerTest, CoversAllPositives) {
  const Dataset d = SmallDataset();
  BprSampler sampler(&d.interactions, 8);
  EXPECT_EQ(sampler.num_positives(), d.interactions.nnz());
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < 50; ++i) {
    const BprBatch batch = sampler.SampleBatch(32);
    for (size_t b = 0; b < batch.size(); ++b) {
      seen.emplace(batch.users[b], batch.pos_items[b]);
    }
  }
  EXPECT_EQ(seen.size(), d.interactions.nnz());
}

TEST(BprSamplerTest, DeterministicForSeed) {
  const Dataset d = SmallDataset();
  BprSampler a(&d.interactions, 9);
  BprSampler b(&d.interactions, 9);
  const BprBatch ba = a.SampleBatch(64);
  const BprBatch bb = b.SampleBatch(64);
  EXPECT_EQ(ba.users, bb.users);
  EXPECT_EQ(ba.pos_items, bb.pos_items);
  EXPECT_EQ(ba.neg_items, bb.neg_items);
}

// --- Synthetic generator ---------------------------------------------------------

TEST(SyntheticTest, ValidatesConfig) {
  SyntheticConfig config;
  config.num_users = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = SyntheticConfig();
  config.avg_interactions_per_user = 1e9;
  EXPECT_FALSE(config.Validate().ok());
  config = SyntheticConfig();
  config.social_blend = 1.5f;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(SyntheticConfig().Validate().ok());
}

TEST(SyntheticTest, EveryUserHasInteractionAndRelation) {
  SyntheticConfig config;
  config.num_users = 400;
  config.num_items = 500;
  config.avg_interactions_per_user = 10;
  config.avg_relations_per_user = 6;
  const auto dataset = GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  for (uint32_t u = 0; u < dataset->num_users(); ++u) {
    EXPECT_FALSE(dataset->interactions.ItemsOf(u).empty()) << u;
    EXPECT_GE(dataset->social.Degree(u), 1u) << u;
  }
}

TEST(SyntheticTest, HitsTargetAverages) {
  SyntheticConfig config;
  config.num_users = 1000;
  config.num_items = 1500;
  config.avg_interactions_per_user = 16;
  config.avg_relations_per_user = 12;
  const auto dataset = GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  const auto s = dataset->Summarize();
  EXPECT_NEAR(s.avg_interactions, 16.0, 4.0);
  EXPECT_NEAR(s.avg_relations, 12.0, 3.0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 8;
  config.avg_relations_per_user = 6;
  const auto a = GenerateSynthetic(config);
  const auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->interactions.nnz(), b->interactions.nnz());
  EXPECT_EQ(a->social.EdgeList(), b->social.EdgeList());
  for (uint32_t u = 0; u < a->num_users(); ++u) {
    EXPECT_EQ(a->interactions.ItemsOf(u), b->interactions.ItemsOf(u));
  }
}

TEST(SyntheticTest, LongTailDegreeDistribution) {
  const auto dataset = GenerateSynthetic(SyntheticConfig::YelpLike(0.1));
  ASSERT_TRUE(dataset.ok());
  // Fig. 5's long tail: high degree inequality.
  EXPECT_GT(graph::DegreeGini(dataset->social), 0.25);
  // And hubs exist: max degree far above the mean.
  uint32_t max_degree = 0;
  for (uint32_t u = 0; u < dataset->num_users(); ++u) {
    max_degree = std::max(max_degree, dataset->social.Degree(u));
  }
  EXPECT_GT(max_degree, 4 * dataset->Summarize().avg_relations);
}

TEST(SyntheticTest, YelpAndDoubanShapesDiffer) {
  const auto yelp = GenerateSynthetic(SyntheticConfig::YelpLike(0.05));
  const auto douban = GenerateSynthetic(SyntheticConfig::DoubanLike(0.05));
  ASSERT_TRUE(yelp.ok() && douban.ok());
  // Douban-like has several times denser interactions per user.
  EXPECT_GT(douban->Summarize().avg_interactions,
            2.0 * yelp->Summarize().avg_interactions);
}

TEST(SyntheticTest, SocialBlendPlantsCorrelation) {
  // With social_blend > 0, connected users must overlap in consumed items
  // substantially more than random user pairs — the planted "word of
  // mouth" signal that social recommenders exploit.
  SyntheticConfig config;
  config.num_users = 500;
  config.num_items = 600;
  config.avg_interactions_per_user = 20;
  config.avg_relations_per_user = 8;
  config.social_blend = 0.45f;
  const auto dataset = GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = *dataset;

  auto pair_overlap = [&](uint32_t a, uint32_t b) {
    const auto& ia = d.interactions.ItemsOf(a);
    const auto& ib = d.interactions.ItemsOf(b);
    if (ia.empty() || ib.empty()) return -1.0;
    size_t common = 0;
    for (const uint32_t item : ia) {
      if (d.interactions.Contains(b, item)) ++common;
    }
    return static_cast<double>(common) / std::min(ia.size(), ib.size());
  };

  double neighbor_total = 0;
  size_t neighbor_pairs = 0;
  for (const auto& [a, b] : d.social.EdgeList()) {
    const double o = pair_overlap(a, b);
    if (o >= 0) {
      neighbor_total += o;
      ++neighbor_pairs;
    }
  }
  util::Rng rng(5);
  double random_total = 0;
  size_t random_pairs = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto a = static_cast<uint32_t>(rng.UniformInt(d.num_users()));
    const auto b = static_cast<uint32_t>(rng.UniformInt(d.num_users()));
    if (a == b || d.social.HasEdge(a, b)) continue;
    const double o = pair_overlap(a, b);
    if (o >= 0) {
      random_total += o;
      ++random_pairs;
    }
  }
  ASSERT_GT(neighbor_pairs, 0u);
  ASSERT_GT(random_pairs, 0u);
  EXPECT_GT(neighbor_total / neighbor_pairs,
            1.3 * (random_total / random_pairs));
}

// --- IO --------------------------------------------------------------------------

TEST(IoTest, SaveLoadRoundTrip) {
  SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 150;
  config.avg_interactions_per_user = 6;
  config.avg_relations_per_user = 4;
  config.name = "roundtrip";
  const auto original = GenerateSynthetic(config);
  ASSERT_TRUE(original.ok());

  const std::string dir = ::testing::TempDir() + "/hosr_io_test";
  ASSERT_TRUE(SaveDataset(*original, dir).ok());
  const auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name, "roundtrip");
  EXPECT_EQ(loaded->num_users(), original->num_users());
  EXPECT_EQ(loaded->num_items(), original->num_items());
  EXPECT_EQ(loaded->interactions.nnz(), original->interactions.nnz());
  EXPECT_EQ(loaded->social.EdgeList(), original->social.EdgeList());
  for (uint32_t u = 0; u < original->num_users(); ++u) {
    EXPECT_EQ(loaded->interactions.ItemsOf(u),
              original->interactions.ItemsOf(u));
  }
}

TEST(IoTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/hosr/dir").ok());
}

TEST(IoTest, LoadRejectsMalformedMeta) {
  const std::string dir = ::testing::TempDir() + "/hosr_io_bad";
  std::filesystem::create_directories(dir);
  {
    std::ofstream meta(dir + "/meta.tsv");
    meta << "name\tx\n";  // missing counts
  }
  {
    std::ofstream f(dir + "/interactions.tsv");
  }
  {
    std::ofstream f(dir + "/social.tsv");
  }
  EXPECT_FALSE(LoadDataset(dir).ok());
}

}  // namespace
}  // namespace hosr::data
