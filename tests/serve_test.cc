#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "core/hosr.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/topk.h"
#include "models/bpr_mf.h"
#include "models/ncf.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "util/fileio.h"
#include "util/random.h"

namespace hosr::serve {
namespace {

// Small deterministic dataset shared by the serving tests.
const data::Dataset& TestDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "serve-test";
    config.num_users = 90;
    config.num_items = 120;
    config.avg_interactions_per_user = 8;
    config.avg_relations_per_user = 6;
    config.seed = 17;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

std::unique_ptr<models::RankingModel> MakeTestModel(const std::string& name) {
  core::ZooConfig zoo;
  zoo.embedding_dim = 6;
  zoo.hosr_graph_dropout = 0.0f;
  auto model = core::MakeModel(name, TestDataset(), zoo);
  HOSR_CHECK(model.ok()) << model.status();
  return std::move(model).value();
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- eval::TopK helper -------------------------------------------------------

TEST(TopKTest, MatchesExhaustiveSortAndLegacyWrapper) {
  util::Rng rng(5);
  std::vector<float> scores(200);
  for (auto& s : scores) s = rng.Gaussian();
  scores[10] = scores[20];  // exercise tie-breaking
  const std::vector<uint32_t> excluded{3, 10, 150};

  // Exhaustive reference: stable sort by (score desc, index asc).
  std::vector<uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });
  std::vector<uint32_t> expected;
  for (const uint32_t j : order) {
    if (std::binary_search(excluded.begin(), excluded.end(), j)) continue;
    expected.push_back(j);
    if (expected.size() == 12) break;
  }

  const auto got = eval::TopK(scores.data(), 200, 12, excluded);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(eval::TopKExcluding(scores.data(), 200, 12, excluded), expected);
}

TEST(TopKTest, BlockedFeedingMatchesSinglePass) {
  util::Rng rng(6);
  std::vector<float> scores(500);
  for (auto& s : scores) s = rng.Gaussian();

  eval::TopKAccumulator blocked(7);
  for (uint32_t j0 = 0; j0 < 500; j0 += 64) {
    for (uint32_t j = j0; j < std::min<uint32_t>(500, j0 + 64); ++j) {
      blocked.Consider(scores[j], j);
    }
  }
  EXPECT_EQ(blocked.Take(), eval::TopK(scores.data(), 500, 7, {}));
}

TEST(TopKTest, KLargerThanCandidates) {
  const std::vector<float> scores{0.5f, 2.0f, -1.0f};
  const auto got = eval::TopK(scores.data(), 3, 10, {2});
  EXPECT_EQ(got, (std::vector<uint32_t>{1, 0}));
}

// --- snapshot round-trip -----------------------------------------------------

class SnapshotRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundTripTest, BitIdenticalScoresAndTopK) {
  auto model = MakeTestModel(GetParam());
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  const std::string path = TempPath("hosr_snapshot_" + GetParam() + ".bin");
  ASSERT_TRUE(SaveSnapshot(*snapshot, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->model_name, model->name());
  ASSERT_EQ(loaded->num_users(), model->num_users());
  ASSERT_EQ(loaded->num_items(), model->num_items());

  const InferenceEngine engine(std::move(loaded).value(),
                               &TestDataset().interactions);
  std::vector<uint32_t> all_users(model->num_users());
  std::iota(all_users.begin(), all_users.end(), 0);
  const tensor::Matrix reference = model->ScoreAllItems(all_users);

  for (const uint32_t u : {0u, 7u, 33u, 89u}) {
    // Bit-identical scores: same accumulation order as tensor::Gemm.
    const auto served = engine.ScoreAll(u);
    for (uint32_t j = 0; j < model->num_items(); ++j) {
      ASSERT_EQ(served[j], reference.at(u, j)) << "user " << u << " item "
                                               << j;
    }
    // And therefore identical top-K lists to the offline evaluator path.
    const auto expected = eval::TopK(reference.row(u), model->num_items(), 10,
                                     TestDataset().interactions.ItemsOf(u));
    EXPECT_EQ(engine.TopKForUser(u, 10), expected);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, SnapshotRoundTripTest,
                         ::testing::Values("HOSR", "BPR", "TrustSVD",
                                           "IF-BPR+", "DeepInf"));

TEST(SnapshotTest, NonBilinearModelsRefuseExport) {
  auto model = MakeTestModel("NCF");
  const auto snapshot = BuildSnapshot(*model);
  EXPECT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), util::StatusCode::kUnimplemented);
}

TEST(SnapshotTest, BiasesRoundTrip) {
  ModelSnapshot snapshot;
  snapshot.model_name = "biased";
  snapshot.factors.user_factors = tensor::Matrix(3, 2, 1.0f);
  snapshot.factors.item_factors = tensor::Matrix(4, 2, 0.5f);
  snapshot.factors.user_bias = {0.1f, 0.2f, 0.3f};
  snapshot.factors.item_bias = {1.0f, -1.0f, 0.0f, 2.0f};
  snapshot.factors.global_bias = 7.5f;

  const std::string path = TempPath("hosr_snapshot_bias.bin");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->factors.user_bias, snapshot.factors.user_bias);
  EXPECT_EQ(loaded->factors.item_bias, snapshot.factors.item_bias);
  EXPECT_EQ(loaded->factors.global_bias, 7.5f);
  EXPECT_EQ(loaded->Score(1, 3), 1.0f + 0.2f + 2.0f + 7.5f);

  // Item bias steers the ranking: item 3 beats the tie among equal dots.
  const InferenceEngine engine(std::move(loaded).value());
  EXPECT_EQ(engine.TopKForUser(1, 1), (std::vector<uint32_t>{3}));
  std::remove(path.c_str());
}

// --- corrupt / truncated snapshot files -------------------------------------

std::string WriteTestSnapshotFile() {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  HOSR_CHECK(snapshot.ok());
  const std::string path = TempPath("hosr_snapshot_corrupt.bin");
  HOSR_CHECK(SaveSnapshot(*snapshot, path).ok());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Snapshot files carry a whole-file CRC-32 footer, so any corruption —
// header, payload, or truncation — surfaces as DataLoss at the envelope
// before the format parser even runs (robustness_test sweeps single-bit
// flips across the whole file).

TEST(SnapshotTest, CorruptHeaderIsRejected) {
  const std::string path = WriteTestSnapshotFile();
  std::string bytes = ReadFile(path);
  bytes[0] ^= 0x5A;  // break the magic
  WriteFile(path, bytes);
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ForeignEndianIsRejected) {
  const std::string path = WriteTestSnapshotFile();
  std::string bytes = ReadFile(path);
  std::swap(bytes[8], bytes[11]);  // byte-swap the endian marker
  std::swap(bytes[9], bytes[10]);
  WriteFile(path, bytes);
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncationIsRejectedAtEveryPrefix) {
  const std::string path = WriteTestSnapshotFile();
  const std::string bytes = ReadFile(path);
  // A sweep over prefix lengths covers truncation inside the header, the
  // name, each matrix block, and the CRC footer.
  for (size_t len : {0ul, 3ul, 9ul, 17ul, 20ul, 25ul, 40ul,
                     bytes.size() / 2, bytes.size() - 5, bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, len));
    const auto loaded = LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
        << loaded.status();
  }
  // Trailing garbage after a valid snapshot breaks the CRC position.
  WriteFile(path, bytes.substr(0, 30) + bytes);
  EXPECT_FALSE(LoadSnapshot(path).ok());
  std::remove(path.c_str());
}

// The format parser's own guards still hold when a corrupted body carries
// a valid CRC (e.g. a malicious or rewrapped file).
TEST(SnapshotTest, ValidCrcOverCorruptBodyIsStillRejected) {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  std::ostringstream body;
  ASSERT_TRUE(WriteSnapshot(*snapshot, &body).ok());
  std::string bytes = body.str();
  bytes[0] ^= 0x5A;  // break the inner magic, then re-wrap with a fresh CRC
  const std::string path = TempPath("hosr_snapshot_rewrapped.bin");
  ASSERT_TRUE(util::WriteFileAtomicWithCrc(path, bytes).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- engine ------------------------------------------------------------------

TEST(EngineTest, SeenItemsAreFiltered) {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const auto& train = TestDataset().interactions;
  const InferenceEngine engine(std::move(snapshot).value(), &train);
  for (uint32_t u = 0; u < engine.num_users(); ++u) {
    const auto ranked = engine.TopKForUser(u, 20);
    for (const uint32_t item : ranked) {
      EXPECT_FALSE(train.Contains(u, item)) << "user " << u;
    }
  }
}

TEST(EngineTest, TinyItemBlocksMatchDefault) {
  auto model = MakeTestModel("BPR");
  auto reference_snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(reference_snapshot.ok());
  auto blocked_snapshot = *reference_snapshot;

  const InferenceEngine reference(std::move(reference_snapshot).value(),
                                  &TestDataset().interactions);
  EngineOptions tiny;
  tiny.item_block = 3;  // force many partial blocks
  const InferenceEngine blocked(std::move(blocked_snapshot),
                                &TestDataset().interactions, tiny);
  for (const uint32_t u : {0u, 11u, 42u}) {
    EXPECT_EQ(blocked.TopKForUser(u, 15), reference.TopKForUser(u, 15));
  }
}

TEST(EngineTest, BatchMatchesSingleQueries) {
  auto model = MakeTestModel("HOSR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const InferenceEngine engine(std::move(snapshot).value(),
                               &TestDataset().interactions);
  std::vector<uint32_t> users{4, 4, 19, 60, 88, 0};
  const auto batched = engine.TopKBatch(users, 10);
  ASSERT_EQ(batched.size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(batched[i], engine.TopKForUser(users[i], 10));
  }
}

// Pins the satellite requirement: the evaluator and the serving engine rank
// through the same eval::TopK selection and agree exactly.
TEST(EngineTest, AgreesWithEvaluatorRanking) {
  auto model = MakeTestModel("HOSR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const auto& train = TestDataset().interactions;
  const InferenceEngine engine(std::move(snapshot).value(), &train);

  std::vector<uint32_t> users(model->num_users());
  std::iota(users.begin(), users.end(), 0);
  const tensor::Matrix scores = model->ScoreAllItems(users);
  for (const uint32_t u : users) {
    EXPECT_EQ(engine.TopKForUser(u, 10),
              eval::TopK(scores.row(u), model->num_items(), 10,
                         train.ItemsOf(u)));
  }
}

// --- cache -------------------------------------------------------------------

TEST(CacheTest, HitMissAndEviction) {
  ResultCache::Options options;
  options.capacity = 4;
  options.num_shards = 1;
  ResultCache cache(options);

  EXPECT_FALSE(cache.Get(1, 10).has_value());
  cache.Put(1, 10, {5, 6});
  auto hit = cache.Get(1, 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<uint32_t>{5, 6}));
  // Same user, different K is a distinct entry.
  EXPECT_FALSE(cache.Get(1, 20).has_value());

  for (uint32_t u = 2; u <= 5; ++u) cache.Put(u, 10, {u});
  // Capacity 4: inserting users 2..5 evicted the oldest entry (user 1).
  EXPECT_FALSE(cache.Get(1, 10).has_value());
  EXPECT_TRUE(cache.Get(5, 10).has_value());

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_NEAR(cache.HitRate(), 2.0 / 5.0, 1e-9);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(CacheTest, LruRefreshOnGet) {
  ResultCache::Options options;
  options.capacity = 2;
  options.num_shards = 1;
  ResultCache cache(options);
  cache.Put(1, 10, {1});
  cache.Put(2, 10, {2});
  ASSERT_TRUE(cache.Get(1, 10).has_value());  // 1 becomes most recent
  cache.Put(3, 10, {3});                      // evicts 2, not 1
  EXPECT_TRUE(cache.Get(1, 10).has_value());
  EXPECT_FALSE(cache.Get(2, 10).has_value());
}

TEST(CacheTest, ConcurrentMixedLoad) {
  ResultCache cache;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint32_t i = 0; i < 2000; ++i) {
        const uint32_t user = (i * 7 + static_cast<uint32_t>(t)) % 64;
        if (auto hit = cache.Get(user, 10)) {
          ASSERT_EQ(hit->size(), 1u);
          ASSERT_EQ((*hit)[0], user);
        } else {
          cache.Put(user, 10, {user});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 2000u);
  EXPECT_GT(stats.hits, 0u);
}

// --- batcher -----------------------------------------------------------------

TEST(BatcherTest, ConcurrentSubmissionsMatchDirectQueries) {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const InferenceEngine engine(std::move(snapshot).value(),
                               &TestDataset().interactions);
  ResultCache cache;
  RequestBatcher::Options options;
  options.max_batch_size = 8;
  options.cache = &cache;
  RequestBatcher batcher(&engine, options);

  constexpr int kThreads = 4;
  constexpr uint32_t kPerThread = 100;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Rng rng(static_cast<uint64_t>(t) + 1);
      for (uint32_t i = 0; i < kPerThread; ++i) {
        const auto user =
            static_cast<uint32_t>(rng.UniformInt(engine.num_users()));
        auto result = batcher.Submit(user, 10).get();
        ASSERT_TRUE(result.ok()) << result.status();
        ASSERT_FALSE(result->degraded);
        ASSERT_EQ(result->items, engine.TopKForUser(user, 10));
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kPerThread);
}

TEST(BatcherTest, InvalidRequestsFailFast) {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const InferenceEngine engine(std::move(snapshot).value());
  RequestBatcher batcher(&engine);

  auto bad_user = batcher.Submit(engine.num_users() + 5, 10).get();
  ASSERT_FALSE(bad_user.ok());
  EXPECT_EQ(bad_user.status().code(), util::StatusCode::kOutOfRange);

  auto bad_k = batcher.Submit(0, 0).get();
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(BatcherTest, SubmitAfterStopFails) {
  auto model = MakeTestModel("BPR");
  auto snapshot = BuildSnapshot(*model);
  ASSERT_TRUE(snapshot.ok());
  const InferenceEngine engine(std::move(snapshot).value());
  RequestBatcher batcher(&engine);
  ASSERT_TRUE(batcher.Submit(0, 5).get().ok());
  batcher.Stop();
  const auto result = batcher.Submit(0, 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hosr::serve
