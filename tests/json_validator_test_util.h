#ifndef HOSR_TESTS_JSON_VALIDATOR_TEST_UTIL_H_
#define HOSR_TESTS_JSON_VALIDATOR_TEST_UTIL_H_

#include <cctype>
#include <string_view>

namespace hosr::test_util {

// --- Minimal strict-JSON validator (no third-party JSON dependency) ---------
// Recursive-descent over the RFC 8259 grammar; returns false on any syntax
// error or trailing garbage. Enough to assert our exports are well-formed.
// Shared by every test suite that checks a JSON artifact.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view expected) {
    if (text_.substr(pos_, expected.size()) != expected) return false;
    pos_ += expected.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(std::string_view text) {
  return JsonValidator(text).Validate();
}

}  // namespace hosr::test_util

#endif  // HOSR_TESTS_JSON_VALIDATOR_TEST_UTIL_H_
