#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "json_validator_test_util.h"
#include "util/thread_pool.h"

namespace hosr::obs {
namespace {

using hosr::test_util::IsValidJson;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().ResetForTesting();
    ClearTrace();
    SetEnabled(false);
  }
  void TearDown() override {
    SetEnabled(false);
    ClearTrace();
    Registry::Global().ResetForTesting();
  }
};

// --- Validator sanity --------------------------------------------------------

TEST_F(ObsTest, JsonValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson(R"({"a": [1, -2.5e-3, "x", null, true]})"));
  EXPECT_FALSE(IsValidJson(R"({"a": })"));
  EXPECT_FALSE(IsValidJson(R"({"a": 1} trailing)"));
  EXPECT_FALSE(IsValidJson(R"({"a": inf})"));
  EXPECT_FALSE(IsValidJson(R"([1, 2,])"));
}

// --- Counter / Gauge ---------------------------------------------------------

TEST_F(ObsTest, CounterIncrements) {
  Counter* counter = Registry::Global().GetCounter("test/counter");
  EXPECT_EQ(counter->Get(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Get(), 42u);
}

TEST_F(ObsTest, RegistryReturnsSamePointerForSameName) {
  EXPECT_EQ(Registry::Global().GetCounter("test/same"),
            Registry::Global().GetCounter("test/same"));
  EXPECT_EQ(Registry::Global().GetHistogram("test/same_h"),
            Registry::Global().GetHistogram("test/same_h"));
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge* gauge = Registry::Global().GetGauge("test/gauge");
  gauge->Set(1.5);
  gauge->Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge->Get(), -2.25);
}

// --- Histogram ---------------------------------------------------------------

TEST_F(ObsTest, HistogramCountSumMinMax) {
  Histogram* h = Registry::Global().GetHistogram("test/hist");
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(1000.0);
  EXPECT_EQ(h->Count(), 3u);
  EXPECT_DOUBLE_EQ(h->Sum(), 1002.5);
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 1000.0);
}

TEST_F(ObsTest, HistogramLogScaleBucketing) {
  // Bucket i covers [2^(kMinExp+i), 2^(kMinExp+i+1)).
  EXPECT_EQ(Histogram::BucketFor(1.0), -Histogram::kMinExp);
  EXPECT_EQ(Histogram::BucketFor(1.5), -Histogram::kMinExp);
  EXPECT_EQ(Histogram::BucketFor(2.0), -Histogram::kMinExp + 1);
  EXPECT_EQ(Histogram::BucketFor(0.5), -Histogram::kMinExp - 1);
  // Boundary condition: the bucket's upper bound is exclusive.
  EXPECT_LT(1.99, Histogram::BucketUpperBound(Histogram::BucketFor(1.99)));
  // Degenerate inputs land in the extreme buckets instead of crashing.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(-5.0), 0);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(1e-300), 0);

  Histogram* h = Registry::Global().GetHistogram("test/buckets");
  h->Observe(1.0);
  h->Observe(1.25);
  h->Observe(4.0);
  const auto buckets = h->BucketSnapshot();
  EXPECT_EQ(buckets[static_cast<size_t>(-Histogram::kMinExp)], 2u);
  EXPECT_EQ(buckets[static_cast<size_t>(-Histogram::kMinExp + 2)], 1u);
}

// --- Concurrency -------------------------------------------------------------

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrementsPerThread = 10000;
  Counter* counter = Registry::Global().GetCounter("test/concurrent");
  util::ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([counter] {
      for (size_t i = 0; i < kIncrementsPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->Get(), kThreads * kIncrementsPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramObservationsAllCounted) {
  constexpr size_t kThreads = 8;
  constexpr size_t kObservationsPerThread = 10000;
  Histogram* h = Registry::Global().GetHistogram("test/concurrent_hist");
  util::ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([h] {
      for (size_t i = 0; i < kObservationsPerThread; ++i) {
        h->Observe(1.0);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(h->Count(), kThreads * kObservationsPerThread);
  EXPECT_DOUBLE_EQ(h->Sum(),
                   static_cast<double>(kThreads * kObservationsPerThread));
  const auto buckets = h->BucketSnapshot();
  EXPECT_EQ(buckets[static_cast<size_t>(-Histogram::kMinExp)],
            kThreads * kObservationsPerThread);
}

TEST_F(ObsTest, ConcurrentSpansFromPoolWorkersAllRecorded) {
  SetEnabled(true);
  constexpr size_t kThreads = 4;
  constexpr size_t kSpansPerThread = 100;
  util::ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        HOSR_TRACE_SPAN("test/worker_span");
      }
    });
  }
  pool.Wait();
  const auto spans = SnapshotSpans();
  const size_t matching = static_cast<size_t>(
      std::count_if(spans.begin(), spans.end(), [](const SpanRecord& s) {
        return s.name == "test/worker_span";
      }));
  EXPECT_EQ(matching, kThreads * kSpansPerThread);
}

// --- Trace spans -------------------------------------------------------------

TEST_F(ObsTest, NestedSpansRecordContainedIntervals) {
  SetEnabled(true);
  {
    HOSR_TRACE_SPAN("test/outer");
    {
      HOSR_TRACE_SPAN("test/inner");
    }
  }
  const auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  // The inner span closes (and records) first.
  EXPECT_EQ(spans[0].name, "test/inner");
  EXPECT_EQ(spans[1].name, "test/outer");
  EXPECT_GE(spans[0].begin_ns, spans[1].begin_ns);
  EXPECT_LE(spans[0].end_ns, spans[1].end_ns);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST_F(ObsTest, TraceJsonIsWellFormedChromeTrace) {
  SetEnabled(true);
  {
    HOSR_TRACE_SPAN("test/outer");
    HOSR_TRACE_SPAN("test/inner");
  }
  const std::string json = TraceToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test/outer"), std::string::npos);
  EXPECT_NE(json.find("test/inner"), std::string::npos);
}

TEST_F(ObsTest, EmptyTraceStillValidJson) {
  EXPECT_TRUE(IsValidJson(TraceToJson()));
}

TEST_F(ObsTest, DisabledCaptureIsNoOp) {
  ASSERT_FALSE(Enabled());
  {
    HOSR_TRACE_SPAN("test/should_not_record");
  }
  EXPECT_TRUE(SnapshotSpans().empty());
  EXPECT_EQ(DroppedSpanCount(), 0u);
}

TEST_F(ObsTest, IndexedSpanNameInternsWhenEnabled) {
  SetEnabled(true);
  const char* a = IndexedSpanName("test/layer_", 3);
  EXPECT_STREQ(a, "test/layer_3");
  // Interning is stable: the same name yields the same pointer.
  EXPECT_EQ(a, IndexedSpanName("test/layer_", 3));
  SetEnabled(false);
  // Disabled: no allocation, the prefix is passed through.
  EXPECT_STREQ(IndexedSpanName("test/layer_", 3), "test/layer_");
}

// --- Registry JSON export ----------------------------------------------------

TEST_F(ObsTest, MetricsJsonIsWellFormedAndComplete) {
  Registry::Global().GetCounter("test/a_counter")->Increment(7);
  Registry::Global().GetGauge("test/a_gauge")->Set(-1.5e-3);
  Histogram* h = Registry::Global().GetHistogram("test/a_hist");
  h->Observe(0.25);
  h->Observe(300.0);
  const std::string json = Registry::Global().ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"test/a_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test/a_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test/a_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST_F(ObsTest, EmptyRegistryJsonIsValid) {
  // Fresh names only exist after first use; a reset registry must still
  // serialize to valid JSON.
  EXPECT_TRUE(IsValidJson(Registry::Global().ToJson()));
}

}  // namespace
}  // namespace hosr::obs
