// Parallel training engine suite (docs/PERFORMANCE.md "Parallel training"):
// the sliced engine must be BIT-identical to the sequential trainer for
// every worker count, slice size, and prefetch setting — proven by
// byte-comparing full training states (params + optimizer state + RNG
// streams) after multi-epoch runs — plus the row-sparse optimizer path,
// prefetcher shutdown/sequence contracts, and kill-and-resume across
// differing thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/hosr_gat.h"
#include "core/hosr_joint.h"
#include "core/model_zoo.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "models/trainer.h"
#include "optim/optimizer.h"
#include "util/logging.h"
#include "util/random.h"

namespace hosr {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

const data::Dataset& TestDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "trainer-parallel-test";
    config.num_users = 60;
    config.num_items = 80;
    config.avg_interactions_per_user = 8;
    config.avg_relations_per_user = 5;
    config.seed = 91;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

using ModelFactory = std::function<std::unique_ptr<models::RankingModel>()>;

ModelFactory ZooFactory(const std::string& name, float hosr_dropout = 0.2f) {
  return [name, hosr_dropout] {
    core::ZooConfig zoo;
    zoo.embedding_dim = 6;
    zoo.hosr_layers = 2;
    zoo.hosr_graph_dropout = hosr_dropout;
    auto model = core::MakeModel(name, TestDataset(), zoo);
    HOSR_CHECK(model.ok()) << model.status();
    return std::move(model).value();
  };
}

models::TrainConfig BaseConfig() {
  models::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 48;
  config.learning_rate = 0.01f;
  config.weight_decay = 0.001f;
  config.seed = 5;
  return config;
}

// Trains a freshly built model to config.epochs and returns the raw bytes
// of its saved training state — the strongest equality oracle the trainer
// has (parameters, optimizer state, and both RNG streams).
std::string TrainedStateBytes(const ModelFactory& factory,
                              const models::TrainConfig& config,
                              const std::string& tag) {
  auto model = factory();
  models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                             config);
  trainer.Train();
  const std::string path = TempPath("hosr_ptrain_" + tag);
  HOSR_CHECK(trainer.SaveTrainingState(path).ok());
  std::string bytes = ReadRaw(path);
  std::remove(path.c_str());
  HOSR_CHECK(!bytes.empty());
  return bytes;
}

// --- bit-identity across worker counts ---------------------------------------

TEST(ParallelTrainerTest, BprBitIdenticalAcrossThreadsSlicesAndPrefetch) {
  const ModelFactory factory = ZooFactory("BPR");
  models::TrainConfig config = BaseConfig();

  const std::string sequential = TrainedStateBytes(factory, config, "seq");

  config.train_threads = 2;
  config.slice_size = 16;
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "t2"))
      << "2-thread engine diverged from the sequential trainer";

  config.train_threads = 4;
  config.slice_size = 7;  // ragged slices must not matter
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "t4"))
      << "4-thread engine with ragged slices diverged";

  config.train_threads = 3;
  config.slice_size = 1024;  // one slice spanning the whole batch
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "t3wide"))
      << "single-slice engine diverged";

  config.train_threads = 2;
  config.slice_size = 16;
  config.prefetch = false;
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "nopf"))
      << "prefetch toggle changed the trajectory";
}

TEST(ParallelTrainerTest, HosrWithDropoutBitIdenticalAcrossThreads) {
  // Graph dropout ON: the shared forward must consume the dropout RNG once
  // per batch exactly as the monolithic loss would.
  const ModelFactory factory = ZooFactory("HOSR", /*hosr_dropout=*/0.3f);
  models::TrainConfig config = BaseConfig();

  const std::string sequential = TrainedStateBytes(factory, config, "hseq");

  config.train_threads = 4;
  config.slice_size = 13;
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "ht4"))
      << "HOSR engine diverged from sequential";
}

TEST(ParallelTrainerTest, EverySlicedModelBitIdenticalAcrossThreads) {
  std::vector<std::pair<std::string, ModelFactory>> factories = {
      {"TrustSVD", ZooFactory("TrustSVD")},
      {"IF-BPR+", ZooFactory("IF-BPR+")},
      {"HOSR-GAT",
       [] {
         core::HosrGat::Config c;
         c.embedding_dim = 6;
         c.num_layers = 2;
         c.graph_dropout = 0.2f;
         return std::make_unique<core::HosrGat>(TestDataset(), c);
       }},
      {"HOSR-Joint",
       [] {
         core::HosrJoint::Config c;
         c.embedding_dim = 6;
         c.num_layers = 2;
         c.graph_dropout = 0.2f;
         return std::make_unique<core::HosrJoint>(TestDataset(), c);
       }},
  };
  for (const auto& [name, factory] : factories) {
    models::TrainConfig config = BaseConfig();
    ASSERT_TRUE(factory()->SupportsSlicedLoss()) << name;
    const std::string sequential =
        TrainedStateBytes(factory, config, "m_seq");
    config.train_threads = 3;
    config.slice_size = 11;
    EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "m_t3"))
        << name << " engine diverged from sequential";
  }
}

// --- sparse optimizer steps --------------------------------------------------

TEST(ParallelTrainerTest, SparseStepsThreadInvariantButDistinctFromDense) {
  const ModelFactory factory = ZooFactory("BPR");
  models::TrainConfig config = BaseConfig();

  const std::string dense = TrainedStateBytes(factory, config, "dense");

  config.sparse_steps = true;
  config.train_threads = 1;  // engine with a single worker
  const std::string sparse1 = TrainedStateBytes(factory, config, "sp1");
  config.train_threads = 4;
  config.slice_size = 9;
  const std::string sparse4 = TrainedStateBytes(factory, config, "sp4");

  EXPECT_EQ(sparse1, sparse4)
      << "sparse-step trajectory depends on worker count";
  // Lazy weight decay skips untouched rows, so with weight_decay > 0 the
  // sparse trajectory is a genuinely different (and legitimate) run. The
  // config block also differs by the sparse_steps byte.
  EXPECT_NE(dense, sparse1)
      << "sparse steps with nonzero decay should not match dense steps";
}

TEST(SparseOptimizerTest, DenseRowPlanMatchesStepBitwise) {
  for (const std::string name : {"sgd", "rmsprop", "adam", "adagrad"}) {
    util::Rng rng(77);
    autograd::ParamStore store_a;
    autograd::ParamStore store_b;
    autograd::Param* a = store_a.CreateGaussian("p", 5, 3, 1.0f, &rng);
    autograd::Param* b = store_b.Create("p", 5, 3);
    b->value = a->value;
    for (size_t i = 0; i < a->grad.size(); ++i) {
      a->grad.data()[i] = 0.25f * static_cast<float>(i) - 1.5f;
    }
    b->grad = a->grad;

    auto opt_a = optim::MakeOptimizer(name, 0.05f, 0.01f);
    auto opt_b = optim::MakeOptimizer(name, 0.05f, 0.01f);
    std::vector<optim::RowSet> plan(1);
    plan[0].dense = true;
    for (int step = 0; step < 3; ++step) {
      opt_a->Step(&store_a);
      opt_b->StepRows(&store_b, plan);
    }
    for (size_t i = 0; i < a->value.size(); ++i) {
      ASSERT_EQ(a->value.data()[i], b->value.data()[i])
          << name << " dense StepRows != Step at element " << i;
    }
  }
}

TEST(SparseOptimizerTest, PartialPlanUpdatesOnlySelectedRows) {
  for (const std::string name : {"sgd", "rmsprop", "adam", "adagrad"}) {
    util::Rng rng(78);
    autograd::ParamStore store_a;
    autograd::ParamStore store_b;
    autograd::Param* a = store_a.CreateGaussian("p", 6, 2, 1.0f, &rng);
    autograd::Param* b = store_b.Create("p", 6, 2);
    b->value = a->value;
    const tensor::Matrix original = a->value;
    for (size_t i = 0; i < a->grad.size(); ++i) {
      a->grad.data()[i] = 0.1f * static_cast<float>(i + 1);
    }
    b->grad = a->grad;

    auto opt_a = optim::MakeOptimizer(name, 0.05f, 0.01f);
    auto opt_b = optim::MakeOptimizer(name, 0.05f, 0.01f);
    opt_a->Step(&store_a);
    std::vector<optim::RowSet> plan(1);
    plan[0].rows = {1, 4};
    opt_b->StepRows(&store_b, plan);

    for (size_t r = 0; r < 6; ++r) {
      for (size_t c = 0; c < 2; ++c) {
        if (r == 1 || r == 4) {
          // A planned row steps exactly as the dense step would (the
          // per-row arithmetic is shared).
          ASSERT_EQ(b->value(r, c), a->value(r, c))
              << name << " touched row " << r << " differs from dense step";
        } else {
          // An unplanned row is untouched: no update, no (lazy) decay.
          ASSERT_EQ(b->value(r, c), original(r, c))
              << name << " untouched row " << r << " moved";
        }
      }
    }

    // An empty-rows plan must be a no-op for the parameter.
    std::vector<optim::RowSet> empty_plan(1);
    const tensor::Matrix before = b->value;
    opt_b->StepRows(&store_b, empty_plan);
    for (size_t i = 0; i < before.size(); ++i) {
      ASSERT_EQ(b->value.data()[i], before.data()[i])
          << name << " empty plan changed values";
    }
  }
}

// --- batch prefetcher --------------------------------------------------------

TEST(BatchPrefetcherTest, DeliversTheSynchronousSequence) {
  const auto& interactions = TestDataset().interactions;
  data::BprSampler plain(&interactions, 1234);
  data::BprSampler prefetched(&interactions, 1234);
  const size_t kBatches = 7;
  data::BatchPrefetcher prefetcher(&prefetched, 32, kBatches,
                                   /*enabled=*/true);
  for (size_t b = 0; b < kBatches; ++b) {
    const data::BprBatch expected = plain.SampleBatch(32);
    const data::BprBatch got = prefetcher.Next();
    ASSERT_EQ(expected.users, got.users) << "batch " << b;
    ASSERT_EQ(expected.pos_items, got.pos_items) << "batch " << b;
    ASSERT_EQ(expected.neg_items, got.neg_items) << "batch " << b;
  }
  // Having drawn exactly the epoch's batches, the RNG states agree — the
  // property that keeps checkpoints bit-identical under prefetch.
  EXPECT_EQ(plain.rng_state().s[0], prefetched.rng_state().s[0]);
  EXPECT_EQ(plain.rng_state().s[3], prefetched.rng_state().s[3]);
}

TEST(BatchPrefetcherTest, DestructionWithUnconsumedBatchesDoesNotDeadlock) {
  const auto& interactions = TestDataset().interactions;
  data::BprSampler sampler(&interactions, 99);
  {
    data::BatchPrefetcher prefetcher(&sampler, 16, 100, /*enabled=*/true);
    (void)prefetcher.Next();  // consume 1 of 100, then destroy
  }
  {
    data::BatchPrefetcher untouched(&sampler, 16, 100, /*enabled=*/true);
  }  // consume none at all
  SUCCEED();
}

TEST(BatchPrefetcherTest, DisabledModeSamplesSynchronously) {
  const auto& interactions = TestDataset().interactions;
  data::BprSampler plain(&interactions, 4321);
  data::BprSampler wrapped(&interactions, 4321);
  data::BatchPrefetcher prefetcher(&wrapped, 24, 3, /*enabled=*/false);
  for (size_t b = 0; b < 3; ++b) {
    const data::BprBatch expected = plain.SampleBatch(24);
    const data::BprBatch got = prefetcher.Next();
    ASSERT_EQ(expected.users, got.users);
    ASSERT_EQ(expected.neg_items, got.neg_items);
  }
}

// --- resume across thread counts ---------------------------------------------

TEST(ParallelTrainerTest, ResumeSwitchingThreadCountsStaysBitIdentical) {
  const ModelFactory factory = ZooFactory("BPR");
  models::TrainConfig config = BaseConfig();
  config.epochs = 3;

  config.train_threads = 2;
  config.slice_size = 16;
  const std::string straight =
      TrainedStateBytes(factory, config, "straight");

  // Interrupted run: one epoch sequentially, checkpoint, then resume on a
  // different thread count (train_threads is deliberately outside the
  // checkpoint's config identity).
  const std::string state_path = TempPath("hosr_ptrain_resume_state");
  {
    models::TrainConfig first = config;
    first.train_threads = 1;
    auto model = factory();
    models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                               first);
    trainer.RunEpoch();
    ASSERT_TRUE(trainer.SaveTrainingState(state_path).ok());
  }
  {
    models::TrainConfig rest = config;
    rest.train_threads = 4;
    rest.slice_size = 9;
    auto model = factory();
    models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                               rest);
    ASSERT_TRUE(trainer.RestoreTrainingState(state_path).ok());
    EXPECT_EQ(trainer.epoch(), 1u);
    trainer.Train();
    ASSERT_TRUE(trainer.SaveTrainingState(state_path).ok());
  }
  EXPECT_EQ(straight, ReadRaw(state_path))
      << "kill-and-resume across thread counts diverged";
  std::remove(state_path.c_str());
}

TEST(ParallelTrainerTest, SparseStepsIsPartOfCheckpointIdentity) {
  const ModelFactory factory = ZooFactory("BPR");
  models::TrainConfig config = BaseConfig();
  config.sparse_steps = true;

  const std::string state_path = TempPath("hosr_ptrain_sparse_state");
  {
    auto model = factory();
    models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                               config);
    trainer.RunEpoch();
    ASSERT_TRUE(trainer.SaveTrainingState(state_path).ok());
  }
  // Restoring a sparse-step checkpoint into a dense-step trainer must be
  // refused: lazy decay makes them different trajectories.
  models::TrainConfig dense = config;
  dense.sparse_steps = false;
  auto model = factory();
  models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                             dense);
  const util::Status status = trainer.RestoreTrainingState(state_path);
  EXPECT_FALSE(status.ok());
  std::remove(state_path.c_str());
}

// --- fallback + stats --------------------------------------------------------

TEST(ParallelTrainerTest, UnslicedModelFallsBackToSequential) {
  const ModelFactory factory = ZooFactory("NCF");
  ASSERT_FALSE(factory()->SupportsSlicedLoss());
  models::TrainConfig config = BaseConfig();
  config.epochs = 1;

  const std::string sequential = TrainedStateBytes(factory, config, "ncf1");
  config.train_threads = 4;  // ignored with a warning, not an abort
  EXPECT_EQ(sequential, TrainedStateBytes(factory, config, "ncf4"));
}

TEST(ParallelTrainerTest, EpochStatsCountActuallySampledTriples) {
  const ModelFactory factory = ZooFactory("BPR");
  models::TrainConfig config = BaseConfig();
  config.epochs = 1;
  config.train_threads = 2;
  auto model = factory();
  models::BprTrainer trainer(model.get(), &TestDataset().interactions,
                             config);
  const models::EpochStats stats = trainer.RunEpoch();
  EXPECT_EQ(stats.samples, stats.batches * config.batch_size)
      << "samples must sum the actual batch sizes";
  EXPECT_GT(stats.batches, 0u);
  if (stats.seconds > 0.0) {
    EXPECT_NEAR(stats.samples_per_sec,
                static_cast<double>(stats.samples) / stats.seconds,
                1e-9 * stats.samples_per_sec + 1e-9);
  }
}

}  // namespace
}  // namespace hosr
