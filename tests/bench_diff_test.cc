// Tests for the bench_diff regression-gate core (tools/bench_diff_lib.h):
// gauge extraction from registry dumps, direction inference, threshold
// gating, and — the part that used to silently skip — explicit failure on
// metrics or whole metric files missing from the candidate directory.
#include "bench_diff_lib.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace hosr::tools {
namespace {

// Matches the Registry::ToJson layout run_benches.sh leaves on disk:
// gauges mixed with counters/histograms under a "metrics" object.
std::string Dump(const std::map<std::string, double>& gauges) {
  std::string json =
      "{\"metrics\": {\"bench/iters\": {\"type\": \"counter\", "
      "\"value\": 7}";
  for (const auto& [name, value] : gauges) {
    json += ", \"" + name + "\": {\"type\": \"gauge\", \"value\": " +
            std::to_string(value) + "}";
  }
  json += "}}";
  return json;
}

TEST(BenchDiffTest, ExtractGaugesSkipsNonGaugeMetrics) {
  const auto gauges = Dump({{"bench/x_qps", 125.5}, {"bench/y_ms", 3.0}});
  const auto extracted = ExtractGauges(gauges);
  ASSERT_EQ(extracted.size(), 2u);
  EXPECT_DOUBLE_EQ(extracted.at("bench/x_qps"), 125.5);
  EXPECT_DOUBLE_EQ(extracted.at("bench/y_ms"), 3.0);
  EXPECT_EQ(extracted.count("bench/iters"), 0u);
}

TEST(BenchDiffTest, DirectionInferredFromName) {
  EXPECT_EQ(DirectionFor("serve/replay_qps"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionFor("eval/ndcg_at_10"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionFor("net/latency_p99"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("train/epoch_seconds"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("bench/mystery"), Direction::kUnknown);
}

TEST(BenchDiffTest, IdenticalDirsPassWithNoFailures) {
  const std::map<std::string, std::string> dir = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})}};
  const auto result = DiffMetrics(dir, dir, DiffOptions());
  EXPECT_EQ(result.compared, 1u);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_FALSE(result.failed());
}

TEST(BenchDiffTest, ThroughputDropBeyondThresholdRegresses) {
  const std::map<std::string, std::string> baseline = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})}};
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"bench/a_qps", 80.0}})}};
  DiffOptions options;
  options.threshold_pct = 10.0;
  const auto result = DiffMetrics(baseline, candidate, options);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].regressed);
  EXPECT_NEAR(result.deltas[0].delta_pct, -20.0, 1e-9);
  EXPECT_EQ(result.regressions, 1u);
  EXPECT_TRUE(result.failed());
  // A 20% drop within a 25% tolerance passes.
  options.threshold_pct = 25.0;
  EXPECT_FALSE(DiffMetrics(baseline, candidate, options).failed());
}

TEST(BenchDiffTest, LatencyRiseRegressesAndUnknownNeverGates) {
  const std::map<std::string, std::string> baseline = {
      {"a.json", Dump({{"bench/a_p99", 10.0}, {"bench/mystery", 1.0}})}};
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"bench/a_p99", 20.0}, {"bench/mystery", 50.0}})}};
  const auto result = DiffMetrics(baseline, candidate, DiffOptions());
  EXPECT_EQ(result.compared, 2u);
  EXPECT_EQ(result.regressions, 1u);
  for (const auto& delta : result.deltas) {
    EXPECT_EQ(delta.regressed, delta.name == "bench/a_p99");
  }
}

TEST(BenchDiffTest, GaugeMissingFromCandidateIsAFailure) {
  const std::map<std::string, std::string> baseline = {
      {"a.json", Dump({{"bench/a_qps", 100.0}, {"bench/b_qps", 50.0}})}};
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})}};
  const auto result = DiffMetrics(baseline, candidate, DiffOptions());
  EXPECT_EQ(result.compared, 1u);
  EXPECT_EQ(result.regressions, 0u);
  ASSERT_EQ(result.missing_gauges.size(), 1u);
  EXPECT_EQ(result.missing_gauges[0].file, "a.json");
  EXPECT_EQ(result.missing_gauges[0].name, "bench/b_qps");
  EXPECT_DOUBLE_EQ(result.missing_gauges[0].baseline, 50.0);
  EXPECT_TRUE(result.failed());
}

TEST(BenchDiffTest, FileMissingFromCandidateIsAFailure) {
  const std::map<std::string, std::string> baseline = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})},
      {"b.json", Dump({{"bench/b_qps", 50.0}})}};
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})}};
  const auto result = DiffMetrics(baseline, candidate, DiffOptions());
  EXPECT_EQ(result.compared, 1u);
  ASSERT_EQ(result.missing_files.size(), 1u);
  EXPECT_EQ(result.missing_files[0], "b.json");
  EXPECT_TRUE(result.failed());
}

TEST(BenchDiffTest, ExtraCandidateGaugesAndFilesAreIgnored) {
  const std::map<std::string, std::string> baseline = {
      {"a.json", Dump({{"bench/a_qps", 100.0}})}};
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"bench/a_qps", 100.0}, {"bench/new_qps", 9.0}})},
      {"new.json", Dump({{"bench/other_qps", 1.0}})}};
  const auto result = DiffMetrics(baseline, candidate, DiffOptions());
  EXPECT_EQ(result.compared, 1u);
  EXPECT_FALSE(result.failed());
}

TEST(BenchDiffTest, FilterScopesBothComparisonAndMissingness) {
  const std::map<std::string, std::string> baseline = {
      {"a.json",
       Dump({{"serve/replay_qps", 100.0}, {"train/epoch_seconds", 4.0}})}};
  // Candidate lost train/epoch_seconds entirely, but a filter scoped to
  // serve/ must not fail on it — the operator asked only about serve.
  const std::map<std::string, std::string> candidate = {
      {"a.json", Dump({{"serve/replay_qps", 101.0}})}};
  DiffOptions options;
  options.filter = "serve/";
  const auto scoped = DiffMetrics(baseline, candidate, options);
  EXPECT_EQ(scoped.compared, 1u);
  EXPECT_TRUE(scoped.missing_gauges.empty());
  EXPECT_FALSE(scoped.failed());
  // Without the filter the lost gauge fails the gate.
  EXPECT_TRUE(DiffMetrics(baseline, candidate, DiffOptions()).failed());
}

}  // namespace
}  // namespace hosr::tools
