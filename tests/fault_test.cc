#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "util/status.h"

namespace hosr::fault {
namespace {

// The registry is a process-global singleton; every test leaves it disarmed
// so the suites sharing this binary never see leaked injection points.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Disarm(); }
  void TearDown() override { FaultRegistry::Global().Disarm(); }
};

// --- spec grammar ------------------------------------------------------------

TEST_F(FaultTest, ParsesSingleClause) {
  auto specs = ParseFaultSpec("engine.score:p=0.25");
  ASSERT_TRUE(specs.ok()) << specs.status();
  ASSERT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].point, "engine.score");
  EXPECT_DOUBLE_EQ((*specs)[0].probability, 0.25);
  EXPECT_EQ((*specs)[0].code, util::StatusCode::kUnavailable);
  EXPECT_FALSE((*specs)[0].has_code);
}

TEST_F(FaultTest, ParsesMultipleClausesWithAllOptions) {
  auto specs = ParseFaultSpec(
      "a.b:p=0.5:code=io_error:delay_ms=1.5,c.d:n=3,e.f:once=7");
  ASSERT_TRUE(specs.ok()) << specs.status();
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].code, util::StatusCode::kIoError);
  EXPECT_TRUE((*specs)[0].has_code);
  EXPECT_DOUBLE_EQ((*specs)[0].delay_ms, 1.5);
  EXPECT_EQ((*specs)[1].every_nth, 3u);
  EXPECT_EQ((*specs)[2].once_at, 7u);
}

TEST_F(FaultTest, OnceWithoutCountDefaultsToFirstHit) {
  auto specs = ParseFaultSpec("x:once");
  ASSERT_TRUE(specs.ok()) << specs.status();
  EXPECT_EQ((*specs)[0].once_at, 1u);
}

TEST_F(FaultTest, EmptySpecParsesToNothing) {
  auto specs = ParseFaultSpec("");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "noclause",            // missing options entirely
      ":p=0.5",              // empty point name
      "x:p=0.5:n=2",         // two triggers
      "x:code=io_error",     // no trigger
      "x:delay_ms=3",        // delay alone is not a trigger
      "x:p=1.5",             // probability out of range
      "x:p=abc",             // not a number
      "x:n=0",               // counts are 1-based
      "x:n=2.5",             // not an integer
      "x:once=0",            // 1-based
      "x:code=bogus",        // unknown code name
      "x:delay_ms=-1",       // negative delay
      "x:frobnicate=1",      // unknown option
  };
  for (const std::string& spec : bad) {
    const auto parsed = ParseFaultSpec(spec);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << spec;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
        << spec;
  }
}

TEST_F(FaultTest, AllCodeNamesResolve) {
  const std::vector<std::pair<std::string, util::StatusCode>> cases = {
      {"unavailable", util::StatusCode::kUnavailable},
      {"deadline_exceeded", util::StatusCode::kDeadlineExceeded},
      {"resource_exhausted", util::StatusCode::kResourceExhausted},
      {"io_error", util::StatusCode::kIoError},
      {"internal", util::StatusCode::kInternal},
      {"data_loss", util::StatusCode::kDataLoss},
  };
  for (const auto& [name, code] : cases) {
    auto specs = ParseFaultSpec("x:once:code=" + name);
    ASSERT_TRUE(specs.ok()) << name;
    EXPECT_EQ((*specs)[0].code, code) << name;
  }
}

// --- triggers ----------------------------------------------------------------

TEST_F(FaultTest, DisarmedInjectIsOkAndCountsNothing) {
  EXPECT_FALSE(FaultRegistry::Global().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(Inject("engine.score").ok());
  }
  EXPECT_EQ(FaultRegistry::Global().StatsFor("engine.score").hits, 0u);
}

TEST_F(FaultTest, UnarmedPointIsUntouchedWhileOthersFire) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("a.b:n=1", 1).ok());
  EXPECT_FALSE(Inject("a.b").ok());
  EXPECT_TRUE(Inject("other.point").ok());
  EXPECT_EQ(FaultRegistry::Global().StatsFor("other.point").hits, 0u);
}

TEST_F(FaultTest, EveryNthFiresOnExactMultiples) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("x:n=3", 1).ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!Inject("x").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  const auto stats = FaultRegistry::Global().StatsFor("x");
  EXPECT_EQ(stats.hits, 9u);
  EXPECT_EQ(stats.fired, 3u);
}

TEST_F(FaultTest, OnceFiresExactlyOnTheKthHit) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("x:once=4", 1).ok());
  for (int hit = 1; hit <= 10; ++hit) {
    EXPECT_EQ(!Inject("x").ok(), hit == 4) << "hit " << hit;
  }
  EXPECT_EQ(FaultRegistry::Global().StatsFor("x").fired, 1u);
}

TEST_F(FaultTest, FiredStatusCarriesConfiguredCode) {
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("x:once:code=data_loss", 1).ok());
  const auto status = Inject("x");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
}

TEST_F(FaultTest, DelayOnlyClauseSleepsThenSucceeds) {
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("x:once:delay_ms=0.1", 1).ok());
  EXPECT_TRUE(Inject("x").ok());
  // The delay clause fired (counted) even though no error was raised.
  EXPECT_EQ(FaultRegistry::Global().StatsFor("x").fired, 1u);
}

// --- determinism -------------------------------------------------------------

TEST_F(FaultTest, ProbabilityDecisionIsAPureFunctionOfToken) {
  auto decisions = [](uint64_t seed) {
    FaultRegistry::Global().Disarm();
    EXPECT_TRUE(FaultRegistry::Global().Configure("x:p=0.3", seed).ok());
    std::vector<bool> fired;
    for (uint64_t token = 0; token < 500; ++token) {
      fired.push_back(!Inject("x", token).ok());
    }
    return fired;
  };
  const auto first = decisions(42);
  const auto second = decisions(42);
  EXPECT_EQ(first, second);
  // A different seed produces a genuinely different pattern.
  EXPECT_NE(first, decisions(43));
  // And the empirical rate is in the right ballpark for p=0.3 over 500.
  const auto count = std::count(first.begin(), first.end(), true);
  EXPECT_GT(count, 100);
  EXPECT_LT(count, 200);
}

TEST_F(FaultTest, TokenDecisionsAreIndependentOfCallOrder) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("x:p=0.5", 7).ok());
  std::vector<bool> forward, backward;
  for (uint64_t t = 0; t < 100; ++t) forward.push_back(!Inject("x", t).ok());
  FaultRegistry::Global().Disarm();
  ASSERT_TRUE(FaultRegistry::Global().Configure("x:p=0.5", 7).ok());
  backward.resize(100);
  for (uint64_t t = 100; t-- > 0;) backward[t] = !Inject("x", t).ok();
  EXPECT_EQ(forward, backward);
}

TEST_F(FaultTest, AutoTokenCountsAreReproducibleUnderConcurrency) {
  auto total_fired = [] {
    FaultRegistry::Global().Disarm();
    EXPECT_TRUE(FaultRegistry::Global().Configure("x:p=0.2", 11).ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 250; ++i) (void)Inject("x");
      });
    }
    for (auto& t : threads) t.join();
    return FaultRegistry::Global().StatsFor("x").fired;
  };
  // Auto tokens fall back to the per-point hit counter: each of the 1000
  // hits draws against a distinct counter value, so the total fired count
  // is the same no matter how threads interleave.
  EXPECT_EQ(total_fired(), total_fired());
}

// --- registry bookkeeping ----------------------------------------------------

TEST_F(FaultTest, ConfigureReplacesAndEmptyDisarms) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("a:once,b:once", 1).ok());
  EXPECT_EQ(FaultRegistry::Global().ArmedPoints(),
            (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(FaultRegistry::Global().Configure("c:once", 1).ok());
  EXPECT_EQ(FaultRegistry::Global().ArmedPoints(),
            (std::vector<std::string>{"c"}));
  ASSERT_TRUE(FaultRegistry::Global().Configure("", 1).ok());
  EXPECT_FALSE(FaultRegistry::Global().armed());
}

TEST_F(FaultTest, TotalInjectedSumsAcrossPoints) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("a:n=1,b:n=2", 1).ok());
  for (int i = 0; i < 4; ++i) {
    (void)Inject("a");
    (void)Inject("b");
  }
  EXPECT_EQ(FaultRegistry::Global().TotalInjected(), 4u + 2u);
}

}  // namespace
}  // namespace hosr::fault
