#!/usr/bin/env bash
# Continuous-profiling smoke test (wired as the `profile_smoke` ctest):
#   1. train 1 epoch with --profile_out/--timeseries_out and assert the
#      collapsed stacks resolve a real hot-path symbol (graph::Spmm), the
#      profile summary is valid JSON with captured samples, and the
#      timeseries dump CRC-verifies and carries the trainer phase timeline,
#   2. serve with --admin_port=0, probe /profilez?seconds=1 (collapsed +
#      summary) and /timeseriez over a real socket, JSON-validate both, and
#      assert the windowed counter points reconstruct admin/requests' rate
#      within one snapshot interval.
#
# Usage: profile_smoke.sh <hosr_cli binary> <hosr_serve binary>
set -eu

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# --- training under the continuous profiler -----------------------------------

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.1 --seed=3
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --epochs=1 \
  --profile_out="$WORK/prof.collapsed" --profile_hz=997 \
  --timeseries_out="$WORK/train_ts.json" --timeseries_interval=0.2 \
  > "$WORK/train.log" 2>&1

grep -q "Spmm" "$WORK/prof.collapsed" || {
  echo "FAIL: hot-path symbol Spmm absent from collapsed stacks" >&2
  cat "$WORK/prof.collapsed" >&2
  exit 1
}

python3 - "$WORK/prof.collapsed.summary.json" "$WORK/train_ts.json" <<'EOF'
import json, sys, zlib

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["samples"] > 0, summary
assert summary["hz"] == 997, summary
assert summary["top"], "empty leaf-frame ranking: %s" % summary

# The timeseries dump is CRC-footed (WriteFileAtomicWithCrc).
with open(sys.argv[2], "rb") as f:
    raw = f.read()
body, footer = raw[:-4], raw[-4:]
assert zlib.crc32(body) & 0xFFFFFFFF == int.from_bytes(footer, "little"), \
    "timeseries dump CRC mismatch"
series = json.loads(body.decode())["series"]
trainer = [name for name in series if name.startswith("trainer/")]
assert trainer, "no trainer phase timeline in timeseries dump: %s" % \
    sorted(series)
print("profile_smoke: train profile OK (%d samples, %d trainer series)"
      % (summary["samples"], len(trainer)))
EOF

# --- live /profilez + /timeseriez ---------------------------------------------

"$CLI" generate --out="$WORK/sdata" --preset=yelp --scale=0.02 --seed=3
"$CLI" train --data="$WORK/sdata" --checkpoint="$WORK/sckpt" --model=BPR \
  --epochs=2 --snapshot_out="$WORK/snap"

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/sdata" \
  --num_requests=500 --k=10 --zipf=0.9 --seed=5 \
  --admin_port=0 --admin_port_file="$WORK/port" --admin_linger_s=30 \
  --timeseries_interval=0.2 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "FAIL: hosr_serve died before publishing its admin port" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: admin port file never appeared" >&2; exit 1; }

python3 - "$(cat "$WORK/port")" <<'EOF'
import json, sys, time, urllib.request, urllib.error

port = int(sys.argv[1])
base = "http://127.0.0.1:%d" % port

def get(path):
    try:
        with urllib.request.urlopen(base + path, timeout=60) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

# Generate admin/requests traffic spanning several snapshot intervals so
# the counter's windowed points carry nonzero deltas.
for _ in range(5):
    get("/healthz")
    time.sleep(0.15)

status, body = get("/timeseriez")
assert status == 200, (status, body)
series = json.loads(body)["series"]
requests = series["admin/requests"]
assert requests["type"] == "counter", requests["type"]
active = [p for p in requests["points"] if p["delta"] > 0]
assert active, "no admin/requests window saw traffic: %s" % requests
for point in active:
    # value is the window's rate/s; times the window width it must
    # reconstruct the counted delta (interval_s is rendered at millisecond
    # precision, hence the small slack).
    rebuilt = point["value"] * point["interval_s"]
    assert abs(rebuilt - point["delta"]) <= 0.05 * point["delta"] + 0.5, \
        (rebuilt, point)

status, body = get("/timeseriez?metric=admin/&windows=1")
assert status == 200, (status, body)
filtered = json.loads(body)["series"]
assert all(name.startswith("admin/") for name in filtered), sorted(filtered)
assert all(len(s["points"]) <= 1 for s in filtered.values()), body[:400]

status, body = get("/profilez?seconds=1&format=summary")
assert status == 200, (status, body)
summary = json.loads(body)
assert "samples" in summary and "duration_seconds" in summary, summary

status, body = get("/profilez?seconds=0.5")
assert status == 200, (status, body)
# Collapsed text, not JSON: each non-empty line ends in a sample count.
for line in body.splitlines():
    assert line.rsplit(" ", 1)[-1].isdigit(), line

print("profile_smoke: live /profilez + /timeseriez OK "
      "(%d active admin/requests windows)" % len(active))
EOF

kill -0 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" || {
  echo "FAIL: hosr_serve exited nonzero" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

echo "profile_smoke: OK"
