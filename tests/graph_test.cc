#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/csr.h"
#include "graph/laplacian.h"
#include "graph/sampling.h"
#include "graph/social_graph.h"
#include "graph/spmm.h"
#include "graph/stats.h"
#include "obs/metrics.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace hosr::graph {
namespace {

using tensor::Matrix;

// --- CsrMatrix ----------------------------------------------------------------

TEST(CsrTest, FromTripletsSortsAndIndexes) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      3, 4, {{2, 1, 5.0f}, {0, 3, 1.0f}, {0, 0, 2.0f}});
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 4u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.At(0, 3), 1.0f);
  EXPECT_FLOAT_EQ(m.At(2, 1), 5.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 0.0f);
}

TEST(CsrTest, DuplicatesSum) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.At(0, 0), 3.5f);
}

TEST(CsrTest, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_FLOAT_EQ(m.At(1, 1), 0.0f);
  for (uint32_t r = 0; r < 3; ++r) EXPECT_EQ(m.row_nnz(r), 0u);
}

TEST(CsrTest, Diagonal) {
  const CsrMatrix m = CsrMatrix::Diagonal({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_FLOAT_EQ(m.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 0.0f);
}

TEST(CsrTest, RowDegrees) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0f}, {0, 2, 1.0f}, {2, 0, 1.0f}});
  EXPECT_EQ(m.RowDegrees(), (std::vector<uint32_t>{2, 0, 1}));
}

TEST(CsrTest, TransposeCorrectAndInvolutive) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 2, 7.0f}, {1, 0, 3.0f}, {1, 2, 4.0f}});
  const CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_FLOAT_EQ(t.At(2, 0), 7.0f);
  EXPECT_FLOAT_EQ(t.At(0, 1), 3.0f);
  EXPECT_TRUE(t.Transpose() == m);
}

// --- SocialGraph ----------------------------------------------------------------

TEST(SocialGraphTest, SymmetricAdjacency) {
  const auto g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {0, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_users(), 4u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_TRUE(g->HasEdge(1, 0));
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(2, 3));
  EXPECT_EQ(g->Degree(0), 2u);
  EXPECT_EQ(g->Degree(2), 1u);
}

TEST(SocialGraphTest, RejectsSelfLoop) {
  EXPECT_FALSE(SocialGraph::FromEdges(3, {{1, 1}}).ok());
}

TEST(SocialGraphTest, RejectsOutOfRange) {
  EXPECT_FALSE(SocialGraph::FromEdges(3, {{0, 5}}).ok());
}

TEST(SocialGraphTest, DuplicateEdgesCollapse) {
  const auto g = SocialGraph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_FLOAT_EQ(g->adjacency().At(0, 1), 1.0f);
}

TEST(SocialGraphTest, EdgeListRoundTrip) {
  const std::vector<std::pair<uint32_t, uint32_t>> edges{{0, 2}, {1, 3}, {2, 3}};
  const auto g = SocialGraph::FromEdges(4, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->EdgeList(), edges);
}

TEST(SocialGraphTest, NeighborsSorted) {
  const auto g = SocialGraph::FromEdges(5, {{2, 4}, {2, 0}, {2, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Neighbors(2), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(SocialGraphTest, Density) {
  // 3 edges of C(4,2)=6 possible.
  const auto g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Density(), 0.5);
}

// --- Laplacian ---------------------------------------------------------------

TEST(LaplacianTest, MatchesEquationSix) {
  // Path graph 0-1-2: degrees 1, 2, 1.
  const auto g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  const CsrMatrix laplacian = NormalizedLaplacian(g->adjacency());
  // Off-diagonal: 1/sqrt(d_i d_j); diagonal self-loop: 1/d_i.
  EXPECT_NEAR(laplacian.At(0, 1), 1.0 / std::sqrt(1.0 * 2.0), 1e-6);
  EXPECT_NEAR(laplacian.At(1, 0), 1.0 / std::sqrt(2.0 * 1.0), 1e-6);
  EXPECT_NEAR(laplacian.At(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(laplacian.At(1, 1), 0.5, 1e-6);
  EXPECT_FLOAT_EQ(laplacian.At(0, 2), 0.0f);
}

TEST(LaplacianTest, SymmetricOperator) {
  util::Rng rng(1);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 30; ++i) {
    edges.emplace_back(i, static_cast<uint32_t>(rng.UniformInt(i)));
  }
  const auto g = SocialGraph::FromEdges(30, edges);
  ASSERT_TRUE(g.ok());
  const CsrMatrix laplacian = NormalizedLaplacian(g->adjacency());
  EXPECT_TRUE(laplacian.Transpose() == laplacian);
}

TEST(LaplacianTest, NoSelfLoopVariant) {
  const auto g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  const CsrMatrix na = NormalizedAdjacency(g->adjacency());
  EXPECT_FLOAT_EQ(na.At(0, 0), 0.0f);
  EXPECT_EQ(na.nnz(), 4u);
}

TEST(LaplacianTest, IsolatedNodeClampedDegree) {
  // Node 2 is isolated (possible after graph dropout).
  const auto g = SocialGraph::FromEdges(3, {{0, 1}});
  ASSERT_TRUE(g.ok());
  const CsrMatrix laplacian = NormalizedLaplacian(g->adjacency());
  EXPECT_NEAR(laplacian.At(2, 2), 1.0, 1e-6);  // 1/max(0,1)
}

// --- SpMM ---------------------------------------------------------------------

TEST(SpmmTest, MatchesDenseMultiply) {
  util::Rng rng(2);
  const CsrMatrix sparse = CsrMatrix::FromTriplets(
      4, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, -1.0f}, {3, 0, 0.5f}});
  Matrix dense(3, 5);
  tensor::GaussianInit(&dense, 1.0f, &rng);

  const Matrix fast = Spmm(sparse, dense);

  // Dense reference.
  Matrix sparse_dense(4, 3);
  for (uint32_t r = 0; r < 4; ++r) {
    for (uint32_t c = 0; c < 3; ++c) sparse_dense(r, c) = sparse.At(r, c);
  }
  EXPECT_TRUE(tensor::AllClose(fast, tensor::MatMul(sparse_dense, dense), 1e-5));
}

TEST(SpmmTest, TransposeMatchesExplicitTranspose) {
  util::Rng rng(3);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.UniformInt(6)),
                        static_cast<uint32_t>(rng.UniformInt(8)),
                        rng.Gaussian()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(6, 8, triplets);
  Matrix dense(6, 4);
  tensor::GaussianInit(&dense, 1.0f, &rng);

  Matrix via_scatter(8, 4);
  SpmmTranspose(sparse, dense, &via_scatter);
  const Matrix via_explicit = Spmm(sparse.Transpose(), dense);
  EXPECT_TRUE(tensor::AllClose(via_scatter, via_explicit, 1e-5));
}

TEST(SpmmTest, TransposeMatchesExplicitTransposeLarge) {
  // Large enough to cross the row-parallel grain and the axpy2-paired nnz
  // loop with an odd remainder; covers the parallelized SpmmTranspose path.
  util::Rng rng(11);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 3000; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.UniformInt(120)),
                        static_cast<uint32_t>(rng.UniformInt(90)),
                        rng.Gaussian()});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(120, 90, triplets);
  Matrix dense(120, 17);
  tensor::GaussianInit(&dense, 1.0f, &rng);

  Matrix fast(90, 17);
  SpmmTranspose(sparse, dense, &fast);
  const Matrix reference = Spmm(sparse.Transpose(), dense);
  EXPECT_TRUE(tensor::AllClose(fast, reference, 1e-5));
}

TEST(SpmmTest, TransposeBuildCounterIncrements) {
  auto& builds = HOSR_COUNTER("spmm/transpose_builds");
  const uint64_t before = builds.Get();
  const CsrMatrix sparse =
      CsrMatrix::FromTriplets(3, 4, {{0, 1, 1.0f}, {2, 3, 2.0f}});
  const CsrMatrix transposed = sparse.Transpose();
  EXPECT_EQ(builds.Get(), before + 1);
  // SpmmTranspose materializes a transpose per call — exactly one build.
  Matrix dense(3, 2, 1.0f);
  Matrix out(4, 2);
  SpmmTranspose(sparse, dense, &out);
  EXPECT_EQ(builds.Get(), before + 2);
  // The forward Spmm never builds a transpose.
  const Matrix fwd = Spmm(transposed, dense);
  EXPECT_EQ(fwd.rows(), 4u);
  EXPECT_EQ(builds.Get(), before + 2);
}

TEST(SpmmTest, EmptyRowsYieldZero) {
  const CsrMatrix sparse = CsrMatrix::FromTriplets(3, 2, {{0, 1, 1.0f}});
  Matrix dense(2, 2, 1.0f);
  const Matrix out = Spmm(sparse, dense);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(2, 1), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);
}

// --- Sampling ---------------------------------------------------------------

TEST(GraphDropoutTest, ZeroKeepsEverything) {
  const auto g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  util::Rng rng(4);
  const SocialGraph thinned = GraphDropout(*g, 0.0, &rng);
  EXPECT_EQ(thinned.num_edges(), 3u);
}

TEST(GraphDropoutTest, DropsApproximatelyPFraction) {
  util::Rng build_rng(5);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 2000; ++i) {
    edges.emplace_back(i, static_cast<uint32_t>(build_rng.UniformInt(i)));
  }
  const auto g = SocialGraph::FromEdges(2000, edges);
  ASSERT_TRUE(g.ok());
  util::Rng rng(6);
  const SocialGraph thinned = GraphDropout(*g, 0.4, &rng);
  const double kept =
      static_cast<double>(thinned.num_edges()) / g->num_edges();
  EXPECT_NEAR(kept, 0.6, 0.05);
  EXPECT_EQ(thinned.num_users(), g->num_users());
}

TEST(GraphDropoutTest, DropsUndirectedEdgesConsistently) {
  const auto g = SocialGraph::FromEdges(10, {{0, 1}, {2, 3}, {4, 5}});
  ASSERT_TRUE(g.ok());
  util::Rng rng(7);
  const SocialGraph thinned = GraphDropout(*g, 0.5, &rng);
  // Whatever survives must still be symmetric.
  for (const auto& [a, b] : thinned.EdgeList()) {
    EXPECT_TRUE(thinned.HasEdge(a, b));
    EXPECT_TRUE(thinned.HasEdge(b, a));
  }
}

TEST(RandomWalkTest, SamplesOnlyReachableNodes) {
  // Two components: {0,1,2} and {3,4}.
  const auto g = SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  ASSERT_TRUE(g.ok());
  util::Rng rng(8);
  const auto sample = RandomWalkWithRestart(*g, 0, 0.3, 10, &rng);
  for (const uint32_t v : sample) EXPECT_LT(v, 3u);
  EXPECT_LE(sample.size(), 2u);  // only 1 and 2 reachable besides start
}

TEST(RandomWalkTest, ExcludesStartAndRespectsSize) {
  util::Rng build_rng(9);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 200; ++i) {
    edges.emplace_back(i, static_cast<uint32_t>(build_rng.UniformInt(i)));
    edges.emplace_back(i, static_cast<uint32_t>(build_rng.UniformInt(i)));
  }
  const auto g = SocialGraph::FromEdges(200, edges);
  ASSERT_TRUE(g.ok());
  util::Rng rng(10);
  const auto sample = RandomWalkWithRestart(*g, 7, 0.5, 25, &rng);
  EXPECT_EQ(sample.size(), 25u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 25u);
  EXPECT_EQ(unique.count(7), 0u);
}

TEST(RandomWalkTest, IsolatedStartReturnsEmpty) {
  const auto g = SocialGraph::FromEdges(3, {{1, 2}});
  ASSERT_TRUE(g.ok());
  util::Rng rng(11);
  EXPECT_TRUE(RandomWalkWithRestart(*g, 0, 0.5, 5, &rng, 100).empty());
}

// --- Stats -------------------------------------------------------------------

TEST(KOrderStatsTest, PathGraphClosureCounts) {
  // Path 0-1-2-3: order-1 neighbor counts 1,2,2,1 (avg 1.5);
  // order-2: 2,3,3,2 (avg 2.5); order-3: 3,3,3,3 (avg 3).
  const auto g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  const auto stats = KOrderStats(*g, 3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_DOUBLE_EQ(stats[0].avg_neighbors_per_user, 1.5);
  EXPECT_DOUBLE_EQ(stats[1].avg_neighbors_per_user, 2.5);
  EXPECT_DOUBLE_EQ(stats[2].avg_neighbors_per_user, 3.0);
  // Density = avg / (n-1).
  EXPECT_DOUBLE_EQ(stats[0].density, 1.5 / 3.0);
  EXPECT_DOUBLE_EQ(stats[2].density, 1.0);
}

TEST(KOrderStatsTest, MonotoneInOrder) {
  util::Rng build_rng(12);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 500; ++i) {
    edges.emplace_back(i, static_cast<uint32_t>(build_rng.UniformInt(i)));
  }
  const auto g = SocialGraph::FromEdges(500, edges);
  ASSERT_TRUE(g.ok());
  const auto stats = KOrderStats(*g, 4);
  for (size_t k = 1; k < stats.size(); ++k) {
    EXPECT_GE(stats[k].avg_neighbors_per_user,
              stats[k - 1].avg_neighbors_per_user);
    EXPECT_GE(stats[k].density, stats[k - 1].density);
  }
}

TEST(KOrderStatsTest, FirstOrderMatchesDegreeAverage) {
  const auto g = SocialGraph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  ASSERT_TRUE(g.ok());
  const auto stats = KOrderStats(*g, 1);
  double avg_degree = 0;
  for (uint32_t u = 0; u < 5; ++u) avg_degree += g->Degree(u);
  EXPECT_DOUBLE_EQ(stats[0].avg_neighbors_per_user, avg_degree / 5);
}

TEST(CountNeighborsWithinOrderTest, SingleSource) {
  const auto g = SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(CountNeighborsWithinOrder(*g, 0, 1), 1u);
  EXPECT_EQ(CountNeighborsWithinOrder(*g, 0, 2), 2u);
  EXPECT_EQ(CountNeighborsWithinOrder(*g, 0, 4), 4u);
  EXPECT_EQ(CountNeighborsWithinOrder(*g, 2, 1), 2u);
}

TEST(DegreeHistogramTest, BucketsCounts) {
  // Degrees: 0:3, 1:1, 2:1, 3:2, 4:1.
  const auto g = SocialGraph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  ASSERT_TRUE(g.ok());
  const auto hist = ComputeDegreeHistogram(*g, {1, 2, 3});
  // Bucket [1,2): degrees 1 -> users 1,2,4 = 3; [2,3): user 3 -> 1;
  // [3,inf): user 0 -> 1.
  EXPECT_EQ(hist.counts, (std::vector<uint64_t>{3, 1, 1}));
}

TEST(DegreeGiniTest, RegularGraphNearZero) {
  // Cycle: every degree is 2.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  const uint32_t n = 100;
  for (uint32_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  const auto g = SocialGraph::FromEdges(n, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(DegreeGini(*g), 0.0, 0.02);
}

TEST(DegreeGiniTest, StarGraphHighlyUnequal) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 100; ++i) edges.emplace_back(0, i);
  const auto g = SocialGraph::FromEdges(100, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(DegreeGini(*g), 0.45);
}

}  // namespace
}  // namespace hosr::graph
