#!/usr/bin/env bash
# Live-admin smoke test (wired as the `serve_admin_smoke` ctest):
#   1. train a tiny snapshot,
#   2. serve a replay with --admin_port=0 and probe every admin endpoint
#      over a real socket while the process is alive,
#   3. after exit, assert the latency histogram carries exemplar trace ids
#      that resolve against the trace artifact (same data /tracez serves),
#   4. rerun with an injected engine fault + --flight_dir and verify the
#      flight dump's CRC footer and JSON body.
#
# Usage: serve_admin_smoke.sh <hosr_cli binary> <hosr_serve binary>
set -eu

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.02 --seed=3
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR \
  --epochs=2 --snapshot_out="$WORK/snap"

# --- live endpoint probing ----------------------------------------------------

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --num_requests=500 --k=10 --zipf=0.9 --seed=5 \
  --admin_port=0 --admin_port_file="$WORK/port" --admin_linger_s=20 \
  --metrics_out="$WORK/metrics.json" --trace_out="$WORK/trace.json" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "FAIL: hosr_serve died before publishing its admin port" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: admin port file never appeared" >&2; exit 1; }

python3 - "$(cat "$WORK/port")" <<'EOF'
import json, sys, urllib.request, urllib.error

port = int(sys.argv[1])
base = "http://127.0.0.1:%d" % port

def get(path, expect=200):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

status, body = get("/healthz")
assert status == 200, (status, body)
assert json.loads(body)["status"] == "ok", body

status, body = get("/readyz")
assert status == 200, (status, body)
assert json.loads(body)["ready"] is True, body

status, body = get("/varz")
assert status == 200, (status, body)
varz = json.loads(body)
assert varz["vars"]["binary"] == "hosr_serve", varz

status, body = get("/metricsz")
assert status == 200, (status, body)
metrics = json.loads(body)["metrics"]
assert any(name.startswith("serve/") for name in metrics), sorted(metrics)

status, body = get("/tracez")
assert status == 200, (status, body)
assert "traceEvents" in json.loads(body), body[:200]

status, body = get("/tracez?limit=4")
assert status == 200, (status, body)
assert body.count('"ph"') <= 4, body.count('"ph"')

status, body = get("/nonesuch")
assert status == 404, (status, body)
json.loads(body)  # 404 body is the machine-readable endpoint list

print("serve_admin_smoke: live endpoints OK on port %d" % port)
EOF

kill -0 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" || {
  echo "FAIL: hosr_serve exited nonzero" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

# --- exemplars resolve against the trace --------------------------------------

python3 - "$WORK/metrics.json" "$WORK/trace.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    metrics = json.load(f)["metrics"]
with open(sys.argv[2]) as f:
    trace = json.load(f)

hist = metrics["serve/request_latency_ms"]
exemplar_ids = {
    bucket["exemplar"]["trace_id"]
    for bucket in hist["buckets"]
    if "exemplar" in bucket
}
assert exemplar_ids, "no exemplars in serve/request_latency_ms: %s" % hist

traced_ids = {
    event["args"]["trace_id"]
    for event in trace["traceEvents"]
    if "args" in event and "trace_id" in event["args"]
}
unresolved = exemplar_ids - traced_ids
assert not unresolved, "exemplar trace ids missing from trace: %s" % unresolved
print("serve_admin_smoke: %d exemplar trace ids all resolve" % len(exemplar_ids))
EOF

# --- injected fault produces a CRC-verified flight dump -----------------------

mkdir -p "$WORK/flight"
"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --num_requests=500 --k=10 --zipf=0.9 --seed=5 \
  --fault_spec=engine.score:p=0.2 --flight_dir="$WORK/flight" > /dev/null

python3 - "$WORK/flight" <<'EOF'
import glob, json, os, sys, zlib

dumps = sorted(glob.glob(os.path.join(sys.argv[1], "flight_*.json")))
assert dumps, "no flight dump written"
with open(dumps[0], "rb") as f:
    raw = f.read()
body, footer = raw[:-4], raw[-4:]
expected = int.from_bytes(footer, "little")
assert zlib.crc32(body) & 0xFFFFFFFF == expected, "flight dump CRC mismatch"
dump = json.loads(body.decode())
assert dump["reason"].startswith("fault:engine.score"), dump["reason"]
assert "metrics" in dump and "trace" in dump and "notes" in dump, dump.keys()
print("serve_admin_smoke: flight dump %s CRC-verified (reason=%s)"
      % (os.path.basename(dumps[0]), dump["reason"]))
EOF
