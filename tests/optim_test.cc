#include <gtest/gtest.h>

#include <cmath>

#include "autograd/param.h"
#include "autograd/tape.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace hosr::optim {
namespace {

// Minimizes f(x) = sum((x - target)^2) for `steps` iterations and returns
// the final objective value.
double MinimizeQuadratic(Optimizer* opt, int steps,
                         autograd::ParamStore* store, autograd::Param* x,
                         const tensor::Matrix& target) {
  double last = 0.0;
  for (int i = 0; i < steps; ++i) {
    autograd::Tape tape;
    autograd::Value leaf = tape.Param(x);
    autograd::Value diff =
        tape.Sub(leaf, tape.Constant(target));
    autograd::Value loss = tape.Sum(tape.Hadamard(diff, diff));
    store->ZeroGrad();
    tape.Backward(loss);
    opt->Step(store);
    last = loss.value()(0, 0);
  }
  return last;
}

class OptimizerConvergence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergence, ReachesQuadraticMinimum) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 3, 3);
  x->value.Fill(4.0f);
  tensor::Matrix target(3, 3, 1.0f);

  // AdaGrad's effective step decays as 1/sqrt(sum g^2); it needs a larger
  // base rate to cover the same distance in the same step budget.
  const float lr = GetParam() == "adagrad" ? 0.5f : 0.05f;
  auto opt = MakeOptimizer(GetParam(), lr, /*weight_decay=*/0.0f);
  const double final_loss =
      MinimizeQuadratic(opt.get(), 400, &store, x, target);
  EXPECT_LT(final_loss, 1e-2) << GetParam();
  EXPECT_NEAR(x->value(0, 0), 1.0f, 0.15f) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergence,
                         ::testing::Values("sgd", "rmsprop", "adam",
                                           "adagrad"));

TEST(SgdTest, SingleStepMatchesManualUpdate) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 1, 1);
  x->value(0, 0) = 2.0f;
  x->grad(0, 0) = 3.0f;
  Sgd sgd(0.1f);
  sgd.Step(&store);
  EXPECT_NEAR(x->value(0, 0), 2.0f - 0.1f * 3.0f, 1e-6);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 1, 1);
  x->value(0, 0) = 0.0f;
  Sgd sgd(0.1f, 0.0f, /*momentum=*/0.9f);
  // Two steps with constant gradient 1: v1 = 1, v2 = 1.9.
  x->grad(0, 0) = 1.0f;
  sgd.Step(&store);
  EXPECT_NEAR(x->value(0, 0), -0.1f, 1e-6);
  sgd.Step(&store);
  EXPECT_NEAR(x->value(0, 0), -0.1f - 0.19f, 1e-6);
}

TEST(WeightDecayTest, ShrinksParamsWithZeroGradient) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 1, 1);
  x->value(0, 0) = 10.0f;
  Sgd sgd(0.1f, /*weight_decay=*/0.5f);
  sgd.Step(&store);  // grad = 0 + 0.5 * 10 = 5; x -= 0.1 * 5
  EXPECT_NEAR(x->value(0, 0), 9.5f, 1e-6);
}

TEST(RmsPropTest, StepSizeAdaptsToGradientScale) {
  // With a constant gradient g, RMSprop's effective step approaches
  // lr * g / sqrt(E[g^2]) ~ lr regardless of |g|.
  for (const float g : {0.01f, 100.0f}) {
    autograd::ParamStore store;
    autograd::Param* x = store.Create("x", 1, 1);
    RmsProp opt(0.1f);
    float before = x->value(0, 0);
    for (int i = 0; i < 50; ++i) {
      x->grad(0, 0) = g;
      opt.Step(&store);
    }
    const float moved = before - x->value(0, 0);
    EXPECT_GT(moved, 0.5f) << g;
    EXPECT_LT(moved, 20.0f) << g;
  }
}

TEST(AdamTest, BiasCorrectionMakesFirstStepLrSized) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 1, 1);
  Adam adam(0.1f);
  x->grad(0, 0) = 7.0f;  // any scale
  adam.Step(&store);
  // First Adam step is ~ -lr * sign(g).
  EXPECT_NEAR(x->value(0, 0), -0.1f, 1e-3);
}

TEST(AdaGradTest, StepsShrinkOverTime) {
  autograd::ParamStore store;
  autograd::Param* x = store.Create("x", 1, 1);
  AdaGrad opt(0.5f);
  x->grad(0, 0) = 1.0f;
  opt.Step(&store);
  const float first_step = -x->value(0, 0);
  const float before = x->value(0, 0);
  x->grad(0, 0) = 1.0f;
  opt.Step(&store);
  const float second_step = before - x->value(0, 0);
  EXPECT_LT(second_step, first_step);
}

TEST(MakeOptimizerTest, ReturnsNamedOptimizers) {
  EXPECT_EQ(MakeOptimizer("sgd", 0.1f, 0.0f)->name(), "sgd");
  EXPECT_EQ(MakeOptimizer("rmsprop", 0.1f, 0.0f)->name(), "rmsprop");
  EXPECT_EQ(MakeOptimizer("adam", 0.1f, 0.0f)->name(), "adam");
  EXPECT_EQ(MakeOptimizer("adagrad", 0.1f, 0.0f)->name(), "adagrad");
}

TEST(OptimizerTest, LearningRateMutable) {
  Sgd sgd(0.1f);
  sgd.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.01f);
}

TEST(OptimizerTest, MultipleParamsUpdatedIndependently) {
  autograd::ParamStore store;
  autograd::Param* a = store.Create("a", 1, 1);
  autograd::Param* b = store.Create("b", 1, 1);
  a->grad(0, 0) = 1.0f;
  b->grad(0, 0) = -2.0f;
  Sgd sgd(0.1f);
  sgd.Step(&store);
  EXPECT_NEAR(a->value(0, 0), -0.1f, 1e-6);
  EXPECT_NEAR(b->value(0, 0), 0.2f, 1e-6);
}

}  // namespace
}  // namespace hosr::optim
