#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "models/bpr_mf.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/stream.h"
#include "net/wire.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/snapshot.h"
#include "util/random.h"
#include "util/status.h"

namespace hosr::net {
namespace {

// --- wire format -------------------------------------------------------------

TEST(WireTest, FrameRoundTrip) {
  const std::string payload = "hello frame";
  const std::string encoded = EncodeFrame(FrameType::kQuery, payload);
  ASSERT_EQ(encoded.size(), kFrameHeaderSize + payload.size());

  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_TRUE(consumed.ok()) << consumed.status();
  EXPECT_EQ(consumed.value(), encoded.size());
  EXPECT_EQ(frame.type, static_cast<uint16_t>(FrameType::kQuery));
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireTest, EmptyPayloadRoundTrip) {
  const std::string encoded = EncodeFrame(FrameType::kInfo, {});
  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_TRUE(consumed.ok()) << consumed.status();
  EXPECT_EQ(consumed.value(), kFrameHeaderSize);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireTest, DecodeConsumesOnlyOneFrame) {
  const std::string two = EncodeFrame(FrameType::kQuery, "first") +
                          EncodeFrame(FrameType::kInfo, "second");
  Frame frame;
  auto consumed = TryDecodeFrame(two, &frame);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(frame.payload, "first");
  auto rest = TryDecodeFrame(
      std::string_view(two).substr(consumed.value()), &frame);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(frame.payload, "second");
}

// Every proper prefix of a valid frame must decode to "need more bytes" —
// never an error, never UB. This is the frame-level fuzz guarantee that
// makes incremental socket reads safe.
TEST(WireTest, EveryPrefixTruncationAsksForMore) {
  const std::string encoded =
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest({7, 1, 10, 0, 0}));
  for (size_t len = 0; len < encoded.size(); ++len) {
    Frame frame;
    auto consumed =
        TryDecodeFrame(std::string_view(encoded).substr(0, len), &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << len << ": "
                               << consumed.status();
    EXPECT_EQ(consumed.value(), 0u) << "prefix " << len;
  }
}

TEST(WireTest, BadMagicIsCleanError) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "x");
  encoded[0] = 'Z';
  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireTest, BadVersionIsCleanError) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "x");
  encoded[4] = static_cast<char>(0xEE);
  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireTest, OversizedLengthIsCleanErrorNotAllocation) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "x");
  // Declare a payload far beyond kMaxPayload in the little-endian size field.
  encoded[8] = encoded[9] = encoded[10] = encoded[11] =
      static_cast<char>(0xFF);
  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireTest, CorruptedCrcIsCleanError) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "payload bytes");
  encoded[encoded.size() - 1] ^= 0x01;  // flip one payload bit
  Frame frame;
  auto consumed = TryDecodeFrame(encoded, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), util::StatusCode::kDataLoss);
}

TEST(WireTest, RandomGarbageNeverCrashes) {
  util::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage(rng.UniformInt(64) + 1, '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.UniformInt(256));
    }
    Frame frame;
    auto consumed = TryDecodeFrame(garbage, &frame);  // must not crash/UB
    if (consumed.ok()) {
      EXPECT_LE(consumed.value(), garbage.size());
    }
  }
}

TEST(WireTest, QueryRequestRoundTrip) {
  const QueryRequest request{0x1122334455667788ull, 42, 10, 250, 3};
  auto decoded = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace_id, request.trace_id);
  EXPECT_EQ(decoded->user, request.user);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->flags, request.flags);
}

TEST(WireTest, QueryRequestRejectsWrongSize) {
  std::string payload = EncodeQueryRequest({1, 2, 3, 4, 5});
  EXPECT_FALSE(DecodeQueryRequest(payload + "x").ok());
  payload.pop_back();
  EXPECT_FALSE(DecodeQueryRequest(payload).ok());
  EXPECT_FALSE(DecodeQueryRequest("").ok());
}

TEST(WireTest, QueryResponseRoundTrip) {
  QueryResponse response;
  response.status_code = 0;
  response.flags = kResponseFromCache | kResponseDegraded;
  response.items = {5, 1, 9};
  response.scores = {2.5f, 1.25f, -0.75f};
  response.message = "note";
  auto decoded = DecodeQueryResponse(EncodeQueryResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->flags, response.flags);
  EXPECT_EQ(decoded->items, response.items);
  EXPECT_EQ(decoded->scores, response.scores);
  EXPECT_EQ(decoded->message, response.message);
}

TEST(WireTest, QueryResponseRejectsDeclaredCountMismatch) {
  QueryResponse response;
  response.items = {1, 2, 3};
  response.scores = {1.0f, 2.0f, 3.0f};
  std::string payload = EncodeQueryResponse(response);
  payload.pop_back();  // declared item count no longer fits
  EXPECT_FALSE(DecodeQueryResponse(payload).ok());
}

TEST(WireTest, ServerInfoRoundTrip) {
  auto decoded = DecodeServerInfo(EncodeServerInfo({90, 120, 6, "BPR"}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_users, 90u);
  EXPECT_EQ(decoded->num_items, 120u);
  EXPECT_EQ(decoded->dim, 6u);
  EXPECT_EQ(decoded->model_name, "BPR");
}

TEST(WireTest, ResponseStatusMapsCodes) {
  QueryResponse ok_response;
  EXPECT_TRUE(ResponseStatus(ok_response).ok());
  QueryResponse shed;
  shed.status_code =
      static_cast<uint32_t>(util::StatusCode::kResourceExhausted);
  shed.message = "queue full";
  const util::Status status = ResponseStatus(shed);
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  QueryResponse bogus;
  bogus.status_code = 0xDEAD;
  EXPECT_FALSE(ResponseStatus(bogus).ok());
}

// --- stream helpers ----------------------------------------------------------

TEST(StreamTest, SyntheticStreamIsDeterministic) {
  const auto a = SyntheticStream(100, 500, 10, 0.9, 42);
  const auto b = SyntheticStream(100, 500, 10, 0.9, 42);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_LT(a[i].user, 100u);
    EXPECT_EQ(a[i].k, 10u);
  }
  const auto c = SyntheticStream(100, 500, 10, 0.9, 43);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_different |= a[i].user != c[i].user;
  }
  EXPECT_TRUE(any_different);
}

TEST(StreamTest, OutcomesTallyAndSum) {
  Outcomes tally;
  tally.Count(serve::ServeResponse{{1, 2}, /*degraded=*/false});
  tally.Count(serve::ServeResponse{{3}, /*degraded=*/true});
  tally.CountStatus(util::Status::DeadlineExceeded("late"));
  tally.CountStatus(util::Status::ResourceExhausted("full"));
  tally.CountStatus(util::Status::Internal("boom"));
  EXPECT_EQ(tally.ok, 1u);
  EXPECT_EQ(tally.degraded, 1u);
  EXPECT_EQ(tally.deadline_exceeded, 1u);
  EXPECT_EQ(tally.shed, 1u);
  EXPECT_EQ(tally.error, 1u);
  EXPECT_EQ(tally.total(), 5u);

  Outcomes sum;
  sum += tally;
  sum += tally;
  EXPECT_EQ(sum.total(), 10u);
}

TEST(StreamTest, LatencySummaryPercentilesAreExact) {
  std::vector<int64_t> ns;
  for (int64_t i = 100; i >= 1; --i) ns.push_back(i * 1000);  // 1us..100us
  const LatencySummary summary = SummarizeLatencies(&ns);
  EXPECT_DOUBLE_EQ(summary.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(summary.mean_us, 50.5);
}

// --- live server -------------------------------------------------------------

// One tiny frozen model shared by every server test: deterministic factors
// (BprMf's init is seeded), no seen-item filtering, dim 6.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Disarm();
    models::BprMf::Config config;
    config.embedding_dim = 6;
    models::BprMf model(/*num_users=*/40, /*num_items=*/60, config);
    auto snapshot = serve::BuildSnapshot(model);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    engine_ = std::make_unique<serve::InferenceEngine>(
        std::move(snapshot).value());
    executor_ = std::make_unique<serve::HardenedExecutor>(
        engine_.get(), serve::HardenedOptions{});
  }

  void TearDown() override { fault::FaultRegistry::Global().Disarm(); }

  NetServer::Options BaseOptions() {
    NetServer::Options options;
    options.engine = engine_.get();
    options.executor = executor_.get();
    options.worker_threads = 2;
    return options;
  }

  std::unique_ptr<serve::InferenceEngine> engine_;
  std::unique_ptr<serve::HardenedExecutor> executor_;
};

TEST_F(NetServerTest, QueryIsBitIdenticalToEngine) {
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  for (uint32_t user = 0; user < engine_->num_users(); ++user) {
    auto result = client->Query(user, 10, /*trace_id=*/user + 1);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->items, engine_->TopKForUser(user, 10)) << user;
    ASSERT_EQ(result->scores.size(), result->items.size());
    for (size_t i = 0; i < result->items.size(); ++i) {
      EXPECT_EQ(result->scores[i],
                engine_->snapshot().Score(user, result->items[i]));
    }
    EXPECT_FALSE(result->served_from_cache);
    EXPECT_FALSE(result->degraded);
  }
  server.Stop();
  const NetServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.requests, engine_->num_users());
  EXPECT_EQ(stats.responses, stats.requests);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST_F(NetServerTest, InfoReportsModelMetadata) {
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->num_users, engine_->num_users());
  EXPECT_EQ(info->num_items, engine_->num_items());
  EXPECT_EQ(info->dim, engine_->dim());
  EXPECT_EQ(info->model_name, engine_->snapshot().model_name);
}

TEST_F(NetServerTest, SecondIdenticalQueryIsServedFromCache) {
  serve::ResultCache cache;
  NetServer::Options options = BaseOptions();
  options.cache = &cache;
  NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto first = client->Query(3, 10);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->served_from_cache);
  auto second = client->Query(3, 10);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->served_from_cache);
  EXPECT_EQ(second->items, first->items);
  EXPECT_EQ(second->scores, first->scores);  // scored fresh both times
}

TEST_F(NetServerTest, ApplicationErrorKeepsConnectionOpen) {
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto bad = client->Query(/*user=*/9999, 10);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kOutOfRange);
  // Same connection still serves: a bad request is the client's problem,
  // not a protocol desync.
  auto good = client->Query(1, 5);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->items, engine_->TopKForUser(1, 5));
}

TEST_F(NetServerTest, GarbageBytesGetErrorThenServerStillServes) {
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto raw = ConnectTcp("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(raw.ok());
  {
    ScopedFd fd(raw.value());
    ASSERT_TRUE(SendAll(fd.get(), "this is not a frame at all!!").ok());
    // The server answers with an error response frame before closing.
    bool clean_eof = false;
    auto reply = ReadFrame(fd.get(), &clean_eof);
    ASSERT_TRUE(reply.ok()) << reply.status();
    auto response = DecodeQueryResponse(reply->payload);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(ResponseStatus(*response).ok());
    // ...and the connection is then closed. Closing with our unread
    // garbage still buffered makes the kernel send RST rather than FIN,
    // so both a clean EOF and a reset are valid here.
    char byte;
    auto closed = RecvExactOrClosed(fd.get(), &byte, 1);
    if (closed.ok()) {
      EXPECT_FALSE(closed.value());
    } else {
      EXPECT_EQ(closed.status().code(), util::StatusCode::kUnavailable)
          << closed.status();
    }
  }
  // A fresh, well-behaved client is unaffected.
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Query(0, 5).ok());
  server.Stop();
  EXPECT_GE(server.GetStats().protocol_errors, 1u);
}

TEST_F(NetServerTest, TruncatedFrameThenCloseIsSurvived) {
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const std::string frame =
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest({1, 1, 10, 0, 0}));
  // Drop the connection mid-frame at every split point; the server must
  // treat each as a dead peer, not crash, and keep serving.
  for (const size_t cut : {1ul, kFrameHeaderSize - 1, kFrameHeaderSize,
                           kFrameHeaderSize + 3}) {
    auto raw = ConnectTcp("127.0.0.1", server.port(), 1000);
    ASSERT_TRUE(raw.ok());
    ScopedFd fd(raw.value());
    ASSERT_TRUE(SendAll(fd.get(), frame.substr(0, cut)).ok());
  }
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Query(0, 5).ok());
}

TEST_F(NetServerTest, SlowLorisIsCutOffByReadTimeout) {
  NetServer::Options options = BaseOptions();
  options.read_timeout_ms = 150;  // the slow-loris bound under test
  NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto raw = ConnectTcp("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(raw.ok());
  ScopedFd fd(raw.value());
  const std::string frame =
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest({1, 1, 10, 0, 0}));
  // Send the header, then stall: the worker is now blocked mid-frame and
  // must cut us off instead of waiting forever.
  ASSERT_TRUE(SendAll(fd.get(), frame.substr(0, kFrameHeaderSize)).ok());
  bool clean_eof = false;
  auto reply = ReadFrame(fd.get(), &clean_eof);
  ASSERT_TRUE(reply.ok()) << reply.status();
  auto response = DecodeQueryResponse(reply->payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseStatus(*response).code(),
            util::StatusCode::kDeadlineExceeded);
  // The stalled connection never blocked the pool for other clients.
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Query(0, 5).ok());
  server.Stop();
  EXPECT_GE(server.GetStats().read_timeouts, 1u);
}

TEST_F(NetServerTest, WireDeadlinePropagatesIntoEngine) {
  // Delay-only fault (no code=): scoring sleeps 80ms but does not fail, so
  // the only way the request can miss is the wire deadline reaching the
  // engine's per-block checks.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("engine.score:p=1:delay_ms=80", 1)
                  .ok());
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto late = client->Query(2, 10, /*trace_id=*/1, /*deadline_ms=*/20);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kDeadlineExceeded);
  // Without a wire deadline the same query rides out the delay and succeeds.
  auto patient = client->Query(2, 10, /*trace_id=*/2, /*deadline_ms=*/0);
  ASSERT_TRUE(patient.ok()) << patient.status();
  EXPECT_EQ(patient->items, engine_->TopKForUser(2, 10));
}

TEST_F(NetServerTest, ExpiredDeadlineFailsFastInExecutor) {
  // Unit-level check of the Execute(deadline) overload the server uses: an
  // already-expired deadline must fail fast without touching the engine.
  const auto expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  auto response = executor_->Execute(1, 10, /*token=*/1, expired);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kDeadlineExceeded);
  auto unbounded = executor_->Execute(1, 10, /*token=*/2, serve::kNoDeadline);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status();
}

TEST_F(NetServerTest, DrainCompletesInFlightRequests) {
  // Hold the engine for 300ms per query so Stop() overlaps execution.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("engine.score:p=1:delay_ms=300", 1)
                  .ok());
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  util::StatusOr<NetClient::QueryResult> result =
      util::Status::Internal("unset");
  std::thread requester([&] { result = client->Query(4, 10); });
  // Let the request reach the engine, then drain while it is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();
  requester.join();
  // The guarantee under test: draining answered the in-flight request.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->items, engine_->TopKForUser(4, 10));
  const NetServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.requests, stats.responses);
}

TEST_F(NetServerTest, OverloadShedsOnTheWire) {
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("engine.score:p=1:delay_ms=400", 1)
                  .ok());
  NetServer::Options options = BaseOptions();
  options.worker_threads = 1;
  options.max_pending_conns = 1;
  NetServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the only worker with a slow query...
  auto busy = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(busy.ok());
  std::thread busy_thread([&] { (void)busy->Query(1, 10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...fill the one pending slot...
  auto waiting = ConnectTcp("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(waiting.ok());
  ScopedFd waiting_fd(waiting.value());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...and the next connection must be shed with a clean wire status.
  auto shed = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(shed.ok());
  auto result = shed->Query(2, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted)
      << result.status();
  busy_thread.join();
  server.Stop();
  EXPECT_GE(server.GetStats().shed, 1u);
}

TEST_F(NetServerTest, InjectedReadFaultAnswersCleanlyAndServerSurvives) {
  // Second frame served across the server draws the injected read fault.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("net.read:once=2", 1)
                  .ok());
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query(0, 5).ok());
  auto faulted = client->Query(1, 5);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), util::StatusCode::kUnavailable)
      << faulted.status();
  // The faulted connection was closed; a reconnect serves normally.
  ASSERT_TRUE(client->Reconnect().ok());
  auto recovered = client->Query(1, 5);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->items, engine_->TopKForUser(1, 5));
  server.Stop();
  EXPECT_EQ(server.GetStats().requests, server.GetStats().responses);
}

TEST_F(NetServerTest, InjectedWriteFaultDropsConnection) {
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("net.write:once=1", 1)
                  .ok());
  NetServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto dropped = client->Query(0, 5);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), util::StatusCode::kUnavailable);
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_TRUE(client->Query(0, 5).ok());
}

TEST_F(NetServerTest, BatchedPipelineServesIdenticalAnswers) {
  serve::RequestBatcher batcher(engine_.get());
  NetServer::Options options = BaseOptions();
  options.batcher = &batcher;
  NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (uint32_t user = 0; user < 10; ++user) {
    auto result = client->Query(user, 10);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->items, engine_->TopKForUser(user, 10));
  }
  server.Stop();
  batcher.Stop();
}

TEST_F(NetServerTest, ConcurrentClientsAllGetCorrectAnswers) {
  NetServer::Options options = BaseOptions();
  options.worker_threads = 4;
  NetServer server(options);
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 4;
  constexpr uint32_t kPerClient = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = NetClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[c] = 1000;
        return;
      }
      for (uint32_t i = 0; i < kPerClient; ++i) {
        const uint32_t user = (c * 7 + i) % engine_->num_users();
        auto result = client->Query(user, 10);
        if (!result.ok() ||
            result->items != engine_->TopKForUser(user, 10)) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;
  server.Stop();
  const NetServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.responses, stats.requests);
}

}  // namespace
}  // namespace hosr::net
