#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "core/hosr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "models/trainer.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace hosr::core {
namespace {

data::Dataset TinyDataset() {
  data::Dataset d;
  auto interactions = data::InteractionMatrix::FromInteractions(
      5, 6, {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 0}});
  HOSR_CHECK(interactions.ok());
  d.interactions = std::move(interactions).value();
  auto social =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HOSR_CHECK(social.ok());
  d.social = std::move(social).value();
  return d;
}

const data::Dataset& MediumDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "hosr-test";
    config.num_users = 150;
    config.num_items = 180;
    config.avg_interactions_per_user = 10;
    config.avg_relations_per_user = 6;
    config.seed = 77;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

// --- Config validation --------------------------------------------------------

TEST(HosrConfigTest, Validation) {
  Hosr::Config config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_layers = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = Hosr::Config();
  config.embedding_dropout = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = Hosr::Config();
  config.graph_dropout = -0.1f;
  EXPECT_FALSE(config.Validate().ok());
}

// --- Propagation matches Eq. 5 manually -------------------------------------

TEST(HosrPropagationTest, OneLayerMatchesManualEquation5) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  config.aggregation = LayerAggregation::kLast;
  config.item_implicit_term = false;
  config.graph_dropout = 0.0f;
  config.seed = 5;
  Hosr model(d, config);

  // Manual Eq. 5: U1 = tanh(L U0 W1).
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(d.social.adjacency());
  const tensor::Matrix& u0 = model.params()->Find("user_emb")->value;
  const tensor::Matrix& w1 = model.params()->Find("gcn_w1")->value;
  const tensor::Matrix expected =
      tensor::Tanh(tensor::MatMul(graph::Spmm(laplacian, u0), w1));

  const tensor::Matrix actual = model.FinalUserEmbeddings();
  EXPECT_TRUE(tensor::AllClose(actual, expected, 1e-5));
}

TEST(HosrPropagationTest, ScoreMatchesManualEquation11) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  config.aggregation = LayerAggregation::kLast;
  config.item_implicit_term = true;
  config.graph_dropout = 0.0f;
  config.seed = 6;
  Hosr model(d, config);

  const tensor::Matrix final_u = model.FinalUserEmbeddings();
  const tensor::Matrix& v = model.params()->Find("item_emb")->value;
  const tensor::Matrix scores = model.ScoreAllItems({0});

  // Eq. 11 by hand for user 0 (items {0,1}), target item 3.
  const auto& items = d.interactions.ItemsOf(0);
  std::vector<float> rep(4, 0.0f);
  for (size_t c = 0; c < 4; ++c) rep[c] = final_u(0, c);
  const float decay = 1.0f / std::sqrt(static_cast<float>(items.size()));
  for (const uint32_t j : items) {
    for (size_t c = 0; c < 4; ++c) rep[c] += decay * v(j, c);
  }
  float expected = 0.0f;
  for (size_t c = 0; c < 4; ++c) expected += rep[c] * v(3, c);
  EXPECT_NEAR(scores(0, 3), expected, 1e-4);
}

TEST(HosrPropagationTest, KLayersReachKHopNeighbors) {
  // Path graph: after k layers, user 0's embedding must depend on user k's
  // initial embedding but not user (k+1)'s.
  const data::Dataset d = TinyDataset();  // social path 0-1-2-3-4
  for (const uint32_t layers : {1u, 2u, 3u}) {
    Hosr::Config config;
    config.embedding_dim = 4;
    config.num_layers = layers;
    config.aggregation = LayerAggregation::kLast;
    config.item_implicit_term = false;
    config.graph_dropout = 0.0f;
    config.seed = 7;

    Hosr model(d, config);
    const tensor::Matrix before = model.FinalUserEmbeddings();

    // Perturb the initial embedding of user `layers` (exactly k hops from 0)
    // and of user `layers + 1` (k+1 hops, if it exists).
    autograd::Param* emb = model.params()->Find("user_emb");
    emb->value(layers, 0) += 1.0f;
    const tensor::Matrix after_khop = model.FinalUserEmbeddings();
    EXPECT_GT(std::fabs(after_khop(0, 0) - before(0, 0)) +
                  std::fabs(after_khop(0, 1) - before(0, 1)) +
                  std::fabs(after_khop(0, 2) - before(0, 2)) +
                  std::fabs(after_khop(0, 3) - before(0, 3)),
              1e-6)
        << layers << " layers: k-hop influence missing";
    emb->value(layers, 0) -= 1.0f;

    if (layers + 1 < 5) {
      emb->value(layers + 1, 0) += 1.0f;
      const tensor::Matrix after_far = model.FinalUserEmbeddings();
      for (size_t c = 0; c < 4; ++c) {
        EXPECT_NEAR(after_far(0, c), before(0, c), 1e-6)
            << layers << " layers: beyond-k influence leaked";
      }
      emb->value(layers + 1, 0) -= 1.0f;
    }
  }
}

// --- Attention ---------------------------------------------------------------

TEST(HosrAttentionTest, WeightsArePerUserSoftmax) {
  const data::Dataset& d = MediumDataset();
  Hosr::Config config;
  config.embedding_dim = 6;
  config.num_layers = 3;
  config.aggregation = LayerAggregation::kAttention;
  config.graph_dropout = 0.0f;
  config.seed = 8;
  Hosr model(d, config);
  const tensor::Matrix weights = model.AttentionWeights();
  ASSERT_EQ(weights.rows(), d.num_users());
  ASSERT_EQ(weights.cols(), 3u);
  for (size_t r = 0; r < weights.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(weights(r, c), 0.0f);
      sum += weights(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Weights vary across users (they are personalized).
  bool any_differs = false;
  for (size_t r = 1; r < weights.rows() && !any_differs; ++r) {
    any_differs = std::fabs(weights(r, 0) - weights(0, 0)) > 1e-6;
  }
  EXPECT_TRUE(any_differs);
}

TEST(HosrAttentionTest, AggregationIsConvexCombinationPlusWeights) {
  // The attention aggregate must equal the weighted sum of layer outputs
  // computed independently.
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.aggregation = LayerAggregation::kAttention;
  config.item_implicit_term = false;
  config.graph_dropout = 0.0f;
  config.seed = 9;
  Hosr model(d, config);

  // Recompute layers manually.
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(d.social.adjacency());
  const tensor::Matrix& u0 = model.params()->Find("user_emb")->value;
  const tensor::Matrix h1 = tensor::Tanh(tensor::MatMul(
      graph::Spmm(laplacian, u0), model.params()->Find("gcn_w1")->value));
  const tensor::Matrix h2 = tensor::Tanh(tensor::MatMul(
      graph::Spmm(laplacian, h1), model.params()->Find("gcn_w2")->value));

  const tensor::Matrix weights = model.AttentionWeights();
  const tensor::Matrix aggregate = model.FinalUserEmbeddings();
  for (size_t r = 0; r < aggregate.rows(); ++r) {
    for (size_t c = 0; c < aggregate.cols(); ++c) {
      const float expected =
          weights(r, 0) * h1(r, c) + weights(r, 1) * h2(r, c);
      EXPECT_NEAR(aggregate(r, c), expected, 1e-5);
    }
  }
}

// --- Aggregation variants -------------------------------------------------------

TEST(HosrAggregationTest, AverageIsLayerMean) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.aggregation = LayerAggregation::kAverage;
  config.item_implicit_term = false;
  config.graph_dropout = 0.0f;
  config.seed = 10;
  Hosr model(d, config);

  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(d.social.adjacency());
  const tensor::Matrix& u0 = model.params()->Find("user_emb")->value;
  const tensor::Matrix h1 = tensor::Tanh(tensor::MatMul(
      graph::Spmm(laplacian, u0), model.params()->Find("gcn_w1")->value));
  const tensor::Matrix h2 = tensor::Tanh(tensor::MatMul(
      graph::Spmm(laplacian, h1), model.params()->Find("gcn_w2")->value));
  const tensor::Matrix expected =
      tensor::Scale(tensor::Add(h1, h2), 0.5f);
  EXPECT_TRUE(tensor::AllClose(model.FinalUserEmbeddings(), expected, 1e-5));
}

TEST(HosrAggregationTest, VariantsProduceDifferentEmbeddings) {
  const data::Dataset& d = MediumDataset();
  auto embeddings_for = [&](LayerAggregation aggregation) {
    Hosr::Config config;
    config.embedding_dim = 6;
    config.num_layers = 3;
    config.aggregation = aggregation;
    config.graph_dropout = 0.0f;
    config.seed = 11;
    Hosr model(d, config);
    return model.FinalUserEmbeddings();
  };
  const auto last = embeddings_for(LayerAggregation::kLast);
  const auto average = embeddings_for(LayerAggregation::kAverage);
  const auto attention = embeddings_for(LayerAggregation::kAttention);
  EXPECT_FALSE(tensor::AllClose(last, average, 1e-6));
  EXPECT_FALSE(tensor::AllClose(average, attention, 1e-6));
}

TEST(HosrAggregationTest, AttentionParamsOnlyForAttention) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.aggregation = LayerAggregation::kLast;
  config.seed = 12;
  Hosr base(d, config);
  EXPECT_EQ(base.params()->Find("attn_h"), nullptr);
  config.aggregation = LayerAggregation::kAttention;
  Hosr attn(d, config);
  EXPECT_NE(attn.params()->Find("attn_h"), nullptr);
}

// --- Dropout ----------------------------------------------------------------

TEST(HosrDropoutTest, GraphDropoutResamplesEachEpoch) {
  const data::Dataset& d = MediumDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.graph_dropout = 0.5f;
  config.seed = 13;
  Hosr model(d, config);

  // Training-mode scores change when the epoch's graph changes.
  util::Rng rng(3);
  model.OnEpochBegin(0, &rng);
  autograd::Tape t1;
  const float s1 =
      model.ScorePairs(&t1, {0}, {0}, /*training=*/true).value()(0, 0);
  model.OnEpochBegin(1, &rng);
  autograd::Tape t2;
  const float s2 =
      model.ScorePairs(&t2, {0}, {0}, /*training=*/true).value()(0, 0);
  EXPECT_NE(s1, s2);

  // Inference scores are unaffected by graph dropout.
  const tensor::Matrix a = model.ScoreAllItems({0});
  model.OnEpochBegin(2, &rng);
  const tensor::Matrix b = model.ScoreAllItems({0});
  EXPECT_TRUE(tensor::AllClose(a, b, 0.0));
}

TEST(HosrDropoutTest, EmbeddingDropoutOnlyInTraining) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.embedding_dropout = 0.5f;
  config.graph_dropout = 0.0f;
  config.seed = 14;
  Hosr model(d, config);
  // Two inference calls agree (no stochasticity).
  autograd::Tape t1, t2;
  const auto s1 = model.ScorePairs(&t1, {0, 1}, {0, 1}, false);
  const auto s2 = model.ScorePairs(&t2, {0, 1}, {0, 1}, false);
  EXPECT_TRUE(tensor::AllClose(s1.value(), s2.value(), 0.0));
  // Two training calls differ (dropout masks differ).
  autograd::Tape t3, t4;
  const auto s3 = model.ScorePairs(&t3, {0, 1}, {0, 1}, true);
  const auto s4 = model.ScorePairs(&t4, {0, 1}, {0, 1}, true);
  EXPECT_FALSE(tensor::AllClose(s3.value(), s4.value(), 1e-9));
}

// --- Gradients ----------------------------------------------------------------

class HosrGradientTest
    : public ::testing::TestWithParam<LayerAggregation> {};

TEST_P(HosrGradientTest, FullModelGradientsCheck) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 3;
  config.num_layers = 2;
  config.aggregation = GetParam();
  config.graph_dropout = 0.0f;
  config.embedding_dropout = 0.0f;
  config.seed = 15;
  Hosr model(d, config);

  data::BprBatch batch;
  batch.users = {0, 2, 4};
  batch.pos_items = {0, 3, 5};
  batch.neg_items = {2, 1, 4};

  std::vector<autograd::Param*> params;
  for (size_t i = 0; i < model.params()->size(); ++i) {
    params.push_back(model.params()->at(i));
  }
  const auto result = autograd::CheckGradients(
      [&](autograd::Tape* tape) {
        util::Rng rng(1);
        return model.BuildLoss(tape, batch, &rng);
      },
      params, /*eps=*/2e-3, /*tolerance=*/0.1, /*zero_tol=*/1e-3);
  EXPECT_TRUE(result.passed) << "worst: " << result.worst_entry
                             << " rel err: " << result.max_relative_error;
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, HosrGradientTest,
                         ::testing::Values(LayerAggregation::kLast,
                                           LayerAggregation::kAverage,
                                           LayerAggregation::kAttention));

// --- Training end-to-end ----------------------------------------------------------

TEST(HosrTrainingTest, LossDecreasesAndBeatsInitialRanking) {
  const data::Dataset& d = MediumDataset();
  util::Rng split_rng(4);
  const auto split = data::SplitDataset(d, 0.2, &split_rng);
  ASSERT_TRUE(split.ok());

  Hosr::Config config;
  config.embedding_dim = 8;
  config.num_layers = 2;
  config.graph_dropout = 0.1f;
  config.seed = 16;
  Hosr model(split->train, config);

  eval::Evaluator evaluator(&split->train.interactions, &split->test, 20);
  auto scorer = [&](const std::vector<uint32_t>& users) {
    return model.ScoreAllItems(users);
  };
  const double recall_before = evaluator.Evaluate(scorer).recall;

  models::TrainConfig train_config;
  train_config.epochs = 15;
  train_config.batch_size = 128;
  train_config.learning_rate = 0.003f;
  train_config.weight_decay = 1e-5f;
  train_config.seed = 16;
  models::BprTrainer trainer(&model, &split->train.interactions,
                             train_config);
  const auto history = trainer.Train();
  EXPECT_LT(history.back().avg_loss, history.front().avg_loss);

  const double recall_after = evaluator.Evaluate(scorer).recall;
  EXPECT_GT(recall_after, recall_before + 0.02);
}

TEST(HosrTrainingTest, TransposeBuiltOncePerGraph) {
  // The tape's SpMM borrows a cached transpose pointer (autograd/tape.h):
  // models must build it once at construction (or never, when the operator
  // is symmetric) and share it across every epoch, layer, and backward.
  // The spmm/transpose_builds counter audits that — it must stay flat
  // during training, including graph-dropout epochs that rebuild the
  // propagation operator.
  const data::Dataset& d = MediumDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.graph_dropout = 0.3f;  // forces a per-epoch operator rebuild
  config.seed = 21;
  Hosr model(d, config);

  auto& builds = HOSR_COUNTER("spmm/transpose_builds");
  const uint64_t after_construction = builds.Get();

  models::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 128;
  train_config.learning_rate = 0.003f;
  train_config.seed = 21;
  models::BprTrainer trainer(&model, &d.interactions, train_config);
  trainer.Train();

  EXPECT_EQ(builds.Get(), after_construction)
      << "a transpose CSR was rebuilt during training";
}

}  // namespace
}  // namespace hosr::core
