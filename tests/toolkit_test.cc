// Tests for the auxiliary recommendation toolkit: heuristic baselines
// (MostPopular, ItemKNN), extra ranking metrics (MRR, HitRate), k-core
// filtering, and social-graph connected components.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/heuristics.h"

namespace hosr {
namespace {

data::InteractionMatrix MakeMatrix(uint32_t users, uint32_t items,
                                   std::vector<data::Interaction> list) {
  auto result =
      data::InteractionMatrix::FromInteractions(users, items, std::move(list));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// --- MostPopular ----------------------------------------------------------------

TEST(MostPopularTest, RanksByGlobalFrequency) {
  // Item 2 consumed 3x, item 0 2x, item 1 1x.
  const auto train = MakeMatrix(
      4, 3, {{0, 2}, {1, 2}, {2, 2}, {0, 0}, {1, 0}, {3, 1}});
  models::MostPopular model(train);
  const auto scores = model.ScoreAllItems({0, 3});
  EXPECT_GT(scores(0, 2), scores(0, 0));
  EXPECT_GT(scores(0, 0), scores(0, 1));
  // Same ranking for every user.
  for (uint32_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(scores(0, j), scores(1, j));
  }
}

TEST(MostPopularTest, PluggableIntoEvaluator) {
  const auto dataset =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.03));
  ASSERT_TRUE(dataset.ok());
  util::Rng rng(1);
  const auto split = data::SplitDataset(*dataset, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  models::MostPopular model(split->train.interactions);
  eval::Evaluator evaluator(&split->train.interactions, &split->test, 20);
  const auto result =
      evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
        return model.ScoreAllItems(users);
      });
  // Popularity beats random ranking (items are long-tailed).
  EXPECT_GT(result.recall, 20.0 / dataset->num_items());
}

// --- ItemKnn --------------------------------------------------------------------

TEST(ItemKnnTest, CoConsumedItemsAreSimilar) {
  // Items 0 and 1 always co-consumed; item 2 never with them.
  const auto train = MakeMatrix(
      4, 3, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 2}});
  models::ItemKnn model(train, {});
  const auto& neighbors = model.NeighborsOf(0);
  ASSERT_FALSE(neighbors.empty());
  EXPECT_EQ(neighbors[0].first, 1u);
  EXPECT_GT(neighbors[0].second, 0.0f);
  // Item 2 shares no users with item 0.
  for (const auto& [other, sim] : neighbors) {
    EXPECT_NE(other, 2u);
    (void)sim;
  }
}

TEST(ItemKnnTest, ScoresFavorNeighborsOfConsumedItems) {
  const auto train = MakeMatrix(
      5, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 0}});
  models::ItemKnn model(train, {});
  // User 4 consumed item 0; its strongest neighbor is item 1.
  const auto scores = model.ScoreAllItems({4});
  EXPECT_GT(scores(0, 1), scores(0, 2));
  EXPECT_GT(scores(0, 1), scores(0, 3));
}

TEST(ItemKnnTest, MaxNeighborsCapRespected) {
  const auto dataset =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.03));
  ASSERT_TRUE(dataset.ok());
  models::ItemKnn::Config config;
  config.max_neighbors = 5;
  models::ItemKnn model(dataset->interactions, config);
  for (uint32_t j = 0; j < dataset->num_items(); ++j) {
    EXPECT_LE(model.NeighborsOf(j).size(), 5u);
  }
}

TEST(ItemKnnTest, BeatsPopularityOnPersonalizedData) {
  const auto dataset =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.04));
  ASSERT_TRUE(dataset.ok());
  util::Rng rng(2);
  const auto split = data::SplitDataset(*dataset, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  eval::Evaluator evaluator(&split->train.interactions, &split->test, 20);

  models::ItemKnn knn(split->train.interactions, {});
  models::MostPopular popular(split->train.interactions);
  const double knn_recall =
      evaluator
          .Evaluate([&](const std::vector<uint32_t>& users) {
            return knn.ScoreAllItems(users);
          })
          .recall;
  const double pop_recall =
      evaluator
          .Evaluate([&](const std::vector<uint32_t>& users) {
            return popular.ScoreAllItems(users);
          })
          .recall;
  EXPECT_GT(knn_recall, pop_recall);
}

// --- MRR / HitRate ----------------------------------------------------------------

TEST(MrrTest, FirstHitPositionDrivesValue) {
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({5, 1, 2}, {5}, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({1, 5, 2}, {5}, 3), 0.5);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({1, 2, 5}, {5}, 3), 1.0 / 3);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({1, 2, 3}, {5}, 3), 0.0);
  // Truncation at K.
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({1, 2, 5}, {5}, 2), 0.0);
  // Empty relevant set.
  EXPECT_DOUBLE_EQ(eval::ReciprocalRankAtK({1, 2}, {}, 2), 0.0);
}

TEST(HitRateTest, BinaryIndicator) {
  EXPECT_DOUBLE_EQ(eval::HitRateAtK({1, 2, 5}, {5}, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval::HitRateAtK({1, 2, 3}, {5}, 3), 0.0);
  EXPECT_DOUBLE_EQ(eval::HitRateAtK({1, 2, 5}, {5}, 2), 0.0);
}

// --- KCoreFilter -------------------------------------------------------------------

data::Dataset PreprocessDataset() {
  data::Dataset d;
  d.name = "pre";
  // User 0: 3 items; user 1: 2; user 2: 1; user 3: 0 interactions.
  // Item 3 consumed once (by user 2 only).
  d.interactions = MakeMatrix(
      4, 4, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 3}});
  auto social =
      graph::SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(social.ok());
  d.social = std::move(social).value();
  return d;
}

TEST(KCoreFilterTest, DropsSparseUsersAndItemsIteratively) {
  const data::Dataset d = PreprocessDataset();
  const auto filtered = data::KCoreFilter(d, 2, 2);
  ASSERT_TRUE(filtered.ok());
  // Users 2 (1 interaction) and 3 (0) drop; item 3 (1 consumer) and
  // item 2 (only user 0 after filtering) drop too.
  EXPECT_EQ(filtered->user_origin, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(filtered->item_origin, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(filtered->dataset.interactions.nnz(), 4u);
  // Social graph rewritten over survivors: only edge (0,1) remains.
  EXPECT_EQ(filtered->dataset.social.num_edges(), 1u);
  EXPECT_TRUE(filtered->dataset.social.HasEdge(0, 1));
}

TEST(KCoreFilterTest, ThresholdOneKeepsInteractingEntities) {
  const data::Dataset d = PreprocessDataset();
  const auto filtered = data::KCoreFilter(d, 1, 1);
  ASSERT_TRUE(filtered.ok());
  // User 3 (no interactions) drops; everyone else stays.
  EXPECT_EQ(filtered->user_origin, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(filtered->dataset.interactions.nnz(), 6u);
}

TEST(KCoreFilterTest, ImpossibleThresholdErrors) {
  const data::Dataset d = PreprocessDataset();
  EXPECT_FALSE(data::KCoreFilter(d, 100, 1).ok());
}

TEST(KCoreFilterTest, FilteredDatasetSatisfiesThresholds) {
  const auto dataset =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.04));
  ASSERT_TRUE(dataset.ok());
  const auto filtered = data::KCoreFilter(*dataset, 5, 3);
  ASSERT_TRUE(filtered.ok());
  const auto& fd = filtered->dataset;
  std::vector<uint32_t> item_degree(fd.num_items(), 0);
  for (uint32_t u = 0; u < fd.num_users(); ++u) {
    EXPECT_GE(fd.interactions.ItemsOf(u).size(), 5u) << "user " << u;
    for (const uint32_t j : fd.interactions.ItemsOf(u)) ++item_degree[j];
  }
  for (uint32_t j = 0; j < fd.num_items(); ++j) {
    EXPECT_GE(item_degree[j], 3u) << "item " << j;
  }
}

// --- SocialComponents ----------------------------------------------------------------

TEST(SocialComponentsTest, IdentifiesComponents) {
  // {0,1,2} connected, {3,4} connected, {5} isolated.
  auto social = graph::SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {3, 4}});
  ASSERT_TRUE(social.ok());
  const auto labels = data::SocialComponents(*social);
  EXPECT_EQ(data::CountComponents(labels), 3u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
}

TEST(SocialComponentsTest, GeneratedGraphIsOneComponent) {
  // Preferential attachment connects every new node to an existing one.
  const auto dataset =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.03));
  ASSERT_TRUE(dataset.ok());
  const auto labels = data::SocialComponents(dataset->social);
  EXPECT_EQ(data::CountComponents(labels), 1u);
}

}  // namespace
}  // namespace hosr
