#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "autograd/gradcheck.h"
#include "core/hosr_gat.h"
#include "core/hosr_joint.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "models/trainer.h"
#include "tensor/ops.h"

namespace hosr::core {
namespace {

data::Dataset TinyDataset() {
  data::Dataset d;
  auto interactions = data::InteractionMatrix::FromInteractions(
      5, 6, {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 0}});
  HOSR_CHECK(interactions.ok());
  d.interactions = std::move(interactions).value();
  auto social =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HOSR_CHECK(social.ok());
  d.social = std::move(social).value();
  return d;
}

const data::Dataset& MediumDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.name = "ext-test";
    config.num_users = 150;
    config.num_items = 180;
    config.avg_interactions_per_user = 10;
    config.avg_relations_per_user = 6;
    config.seed = 55;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

template <typename Model>
void ExpectGradients(Model* model, double tol = 8e-2) {
  data::BprBatch batch;
  batch.users = {0, 2, 4};
  batch.pos_items = {0, 3, 5};
  batch.neg_items = {2, 1, 4};
  std::vector<autograd::Param*> params;
  for (size_t i = 0; i < model->params()->size(); ++i) {
    params.push_back(model->params()->at(i));
  }
  const auto result = autograd::CheckGradients(
      [&](autograd::Tape* tape) {
        util::Rng rng(1);
        return model->BuildLoss(tape, batch, &rng);
      },
      params, /*eps=*/2e-3, tol, /*zero_tol=*/2e-3);
  EXPECT_TRUE(result.passed) << "worst: " << result.worst_entry
                             << " rel err: " << result.max_relative_error;
}

template <typename Model>
double TrainBriefly(Model* model, const data::Dataset& dataset,
                    uint32_t epochs) {
  models::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 128;
  config.learning_rate = 0.002f;
  config.weight_decay = 1e-5f;
  config.seed = 5;
  models::BprTrainer trainer(model, &dataset.interactions, config);
  const auto history = trainer.Train();
  return history.back().avg_loss / history.front().avg_loss;
}

// --- HosrJoint ---------------------------------------------------------------

TEST(HosrJointTest, ConfigValidation) {
  HosrJoint::Config config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_layers = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = HosrJoint::Config();
  config.graph_dropout = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(HosrJointTest, ScoreShapesAndConsistency) {
  const data::Dataset& d = MediumDataset();
  HosrJoint::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 9;
  HosrJoint model(d, config);
  EXPECT_EQ(model.num_users(), d.num_users());
  EXPECT_EQ(model.num_items(), d.num_items());

  const std::vector<uint32_t> users{0, 3, 9};
  const std::vector<uint32_t> items{1, 5, 7};
  autograd::Tape tape;
  const auto pair_scores =
      model.ScorePairs(&tape, users, items, /*training=*/false);
  const tensor::Matrix all_scores = model.ScoreAllItems(users);
  for (size_t b = 0; b < users.size(); ++b) {
    EXPECT_NEAR(pair_scores.value()(b, 0), all_scores(b, items[b]), 1e-3);
  }
}

TEST(HosrJointTest, ItemsInfluenceUserEmbeddingViaPropagation) {
  // In the joint graph a user's final embedding depends on the *item*
  // embedding rows too (one hop user -> item), unlike social-only HOSR.
  const data::Dataset d = TinyDataset();
  HosrJoint::Config config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  config.aggregation = LayerAggregation::kLast;
  config.graph_dropout = 0.0f;
  config.seed = 10;
  HosrJoint model(d, config);

  const tensor::Matrix before = model.FinalNodeEmbeddings();
  autograd::Param* emb = model.params()->Find("node_emb");
  ASSERT_NE(emb, nullptr);
  // Perturb item 0's base embedding (node index num_users + 0); user 0
  // interacted with item 0, so her row must change.
  emb->value(d.num_users() + 0, 0) += 1.0f;
  const tensor::Matrix after = model.FinalNodeEmbeddings();
  double delta = 0.0;
  for (size_t c = 0; c < 4; ++c) {
    delta += std::fabs(after(0, c) - before(0, c));
  }
  EXPECT_GT(delta, 1e-6);
}

TEST(HosrJointTest, GradientsCheck) {
  const data::Dataset d = TinyDataset();
  HosrJoint::Config config;
  config.embedding_dim = 3;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 11;
  HosrJoint model(d, config);
  ExpectGradients(&model);
}

TEST(HosrJointTest, TrainingReducesLoss) {
  const data::Dataset& d = MediumDataset();
  HosrJoint::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.seed = 12;
  HosrJoint model(d, config);
  EXPECT_LT(TrainBriefly(&model, d, 10), 0.95);
}

TEST(HosrJointTest, GraphDropoutResamples) {
  const data::Dataset& d = MediumDataset();
  HosrJoint::Config config;
  config.embedding_dim = 4;
  config.num_layers = 2;
  config.graph_dropout = 0.4f;
  config.seed = 13;
  HosrJoint model(d, config);
  util::Rng rng(2);
  model.OnEpochBegin(0, &rng);
  autograd::Tape t1;
  const float s1 = model.ScorePairs(&t1, {0}, {0}, true).value()(0, 0);
  model.OnEpochBegin(1, &rng);
  autograd::Tape t2;
  const float s2 = model.ScorePairs(&t2, {0}, {0}, true).value()(0, 0);
  EXPECT_NE(s1, s2);
}

// --- HosrGat ----------------------------------------------------------------

TEST(HosrGatTest, ConfigValidation) {
  HosrGat::Config config;
  EXPECT_TRUE(config.Validate().ok());
  config.leaky_slope = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = HosrGat::Config();
  config.embedding_dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(HosrGatTest, EdgeArraysIncludeSelfLoops) {
  const data::Dataset d = TinyDataset();
  HosrGat::Config config;
  config.embedding_dim = 4;
  config.seed = 14;
  HosrGat model(d, config);
  const auto& offsets = model.edge_offsets();
  const auto& targets = model.edge_targets();
  ASSERT_EQ(offsets.size(), d.num_users() + 1);
  // Every user's segment starts with the self-loop.
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    ASSERT_LT(offsets[u], targets.size());
    EXPECT_EQ(targets[offsets[u]], u);
    // Segment size = 1 (self) + degree.
    EXPECT_EQ(offsets[u + 1] - offsets[u], 1 + d.social.Degree(u));
  }
}

TEST(HosrGatTest, EdgeAttentionIsPerSourceDistribution) {
  const data::Dataset& d = MediumDataset();
  HosrGat::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.seed = 15;
  HosrGat model(d, config);
  const auto alpha = model.FirstLayerEdgeAttention();
  const auto& offsets = model.edge_offsets();
  ASSERT_EQ(alpha.size(), model.edge_targets().size());
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    float sum = 0.0f;
    for (size_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      EXPECT_GT(alpha[e], 0.0f);
      sum += alpha[e];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
  // Attention is non-uniform somewhere (it is learned, not fixed decay).
  bool non_uniform = false;
  for (uint32_t u = 0; u < d.num_users() && !non_uniform; ++u) {
    const size_t size = offsets[u + 1] - offsets[u];
    if (size < 2) continue;
    const float first = alpha[offsets[u]];
    for (size_t e = offsets[u] + 1; e < offsets[u + 1]; ++e) {
      if (std::fabs(alpha[e] - first) > 1e-6) {
        non_uniform = true;
        break;
      }
    }
  }
  EXPECT_TRUE(non_uniform);
}

TEST(HosrGatTest, ScoreConsistency) {
  const data::Dataset& d = MediumDataset();
  HosrGat::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 16;
  HosrGat model(d, config);
  const std::vector<uint32_t> users{1, 4, 40};
  const std::vector<uint32_t> items{0, 9, 33};
  autograd::Tape tape;
  const auto pair_scores =
      model.ScorePairs(&tape, users, items, /*training=*/false);
  const tensor::Matrix all_scores = model.ScoreAllItems(users);
  for (size_t b = 0; b < users.size(); ++b) {
    EXPECT_NEAR(pair_scores.value()(b, 0), all_scores(b, items[b]), 1e-3);
  }
}

TEST(HosrGatTest, GradientsCheck) {
  const data::Dataset d = TinyDataset();
  HosrGat::Config config;
  config.embedding_dim = 3;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 17;
  HosrGat model(d, config);
  ExpectGradients(&model, /*tol=*/0.12);  // LeakyReLU kinks
}

TEST(HosrGatTest, TrainingReducesLoss) {
  const data::Dataset& d = MediumDataset();
  HosrGat::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.seed = 18;
  HosrGat model(d, config);
  EXPECT_LT(TrainBriefly(&model, d, 10), 0.95);
}

TEST(HosrGatTest, TrainedModelBeatsRandomRanking) {
  const data::Dataset& d = MediumDataset();
  util::Rng split_rng(3);
  const auto split = data::SplitDataset(d, 0.2, &split_rng);
  ASSERT_TRUE(split.ok());
  HosrGat::Config config;
  config.embedding_dim = 8;
  config.num_layers = 2;
  config.seed = 19;
  HosrGat model(split->train, config);
  models::TrainConfig train_config;
  train_config.epochs = 15;
  train_config.batch_size = 128;
  train_config.learning_rate = 0.002f;
  train_config.weight_decay = 1e-5f;
  train_config.seed = 19;
  models::BprTrainer trainer(&model, &split->train.interactions,
                             train_config);
  trainer.Train();
  eval::Evaluator evaluator(&split->train.interactions, &split->test, 20);
  const auto result =
      evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
        return model.ScoreAllItems(users);
      });
  EXPECT_GT(result.recall, 2.0 * 20.0 / d.num_items());
}

// --- Simplified-propagation (LightGCN-style) flags on HOSR ---------------------

TEST(HosrSimplifiedTest, NoWeightsNoActivationRunsAndDiffers) {
  const data::Dataset& d = MediumDataset();
  Hosr::Config config;
  config.embedding_dim = 6;
  config.num_layers = 2;
  config.graph_dropout = 0.0f;
  config.seed = 20;
  Hosr full(d, config);
  config.use_layer_weights = false;
  config.use_activation = false;
  Hosr simplified(d, config);
  // No W parameters registered.
  EXPECT_EQ(simplified.params()->Find("gcn_w1"), nullptr);
  EXPECT_NE(full.params()->Find("gcn_w1"), nullptr);
  const auto full_emb = full.FinalUserEmbeddings();
  const auto simple_emb = simplified.FinalUserEmbeddings();
  EXPECT_FALSE(tensor::AllClose(full_emb, simple_emb, 1e-6));
}

TEST(HosrSimplifiedTest, SimplifiedPropagationIsPureLaplacianPower) {
  // Without weights/activation, one layer output == L * U0 exactly.
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  config.aggregation = LayerAggregation::kLast;
  config.item_implicit_term = false;
  config.use_layer_weights = false;
  config.use_activation = false;
  config.graph_dropout = 0.0f;
  config.seed = 21;
  Hosr model(d, config);
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(d.social.adjacency());
  const tensor::Matrix expected =
      graph::Spmm(laplacian, model.params()->Find("user_emb")->value);
  EXPECT_TRUE(tensor::AllClose(model.FinalUserEmbeddings(), expected, 1e-6));
}

TEST(HosrSimplifiedTest, GradientsCheckWithoutWeights) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config;
  config.embedding_dim = 3;
  config.num_layers = 2;
  config.use_layer_weights = false;
  config.use_activation = false;
  config.graph_dropout = 0.0f;
  config.seed = 22;
  Hosr model(d, config);
  ExpectGradients(&model);
}

}  // namespace
}  // namespace hosr::core
