// Tests for the adoption-oriented features: parameter checkpointing,
// early stopping with best-epoch restore, validation carving, and
// popularity-biased negative sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>

#include "autograd/checkpoint.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/bpr_mf.h"
#include "models/early_stopping.h"
#include "models/trainer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace hosr {
namespace {

// --- ParamSnapshot -----------------------------------------------------------

TEST(ParamSnapshotTest, CaptureRestoreRoundTrip) {
  autograd::ParamStore store;
  util::Rng rng(1);
  autograd::Param* a = store.CreateGaussian("a", 3, 4, 1.0f, &rng);
  autograd::Param* b = store.CreateGaussian("b", 2, 2, 1.0f, &rng);
  const tensor::Matrix a_before = a->value;
  const tensor::Matrix b_before = b->value;

  const auto snapshot = autograd::ParamSnapshot::Capture(store);
  a->value.Fill(0.0f);
  b->value.Fill(9.0f);
  snapshot.Restore(&store);
  EXPECT_TRUE(tensor::AllClose(a->value, a_before, 0.0));
  EXPECT_TRUE(tensor::AllClose(b->value, b_before, 0.0));
}

TEST(ParamSnapshotTest, EmptySnapshotReportsEmpty) {
  autograd::ParamSnapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
}

// --- Checkpoint files ----------------------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTrip) {
  autograd::ParamStore store;
  util::Rng rng(2);
  autograd::Param* a = store.CreateGaussian("emb", 5, 3, 1.0f, &rng);
  autograd::Param* w = store.CreateGaussian("w1", 3, 3, 1.0f, &rng);
  const tensor::Matrix a_before = a->value;
  const tensor::Matrix w_before = w->value;

  const std::string path = ::testing::TempDir() + "/hosr_ckpt_test.bin";
  ASSERT_TRUE(autograd::SaveCheckpoint(store, path).ok());

  a->value.Fill(0.0f);
  w->value.Fill(0.0f);
  ASSERT_TRUE(autograd::LoadCheckpoint(path, &store).ok());
  EXPECT_TRUE(tensor::AllClose(a->value, a_before, 0.0));
  EXPECT_TRUE(tensor::AllClose(w->value, w_before, 0.0));
}

TEST(CheckpointTest, LoadMatchesByNameNotOrder) {
  autograd::ParamStore source;
  util::Rng rng(3);
  autograd::Param* x = source.CreateGaussian("x", 2, 2, 1.0f, &rng);
  autograd::Param* y = source.CreateGaussian("y", 1, 4, 1.0f, &rng);
  const std::string path = ::testing::TempDir() + "/hosr_ckpt_order.bin";
  ASSERT_TRUE(autograd::SaveCheckpoint(source, path).ok());

  // Destination declares the parameters in the opposite order.
  autograd::ParamStore destination;
  destination.Create("y", 1, 4);
  destination.Create("x", 2, 2);
  ASSERT_TRUE(autograd::LoadCheckpoint(path, &destination).ok());
  EXPECT_TRUE(
      tensor::AllClose(destination.Find("x")->value, x->value, 0.0));
  EXPECT_TRUE(
      tensor::AllClose(destination.Find("y")->value, y->value, 0.0));
}

TEST(CheckpointTest, LoadRejectsMissingParam) {
  autograd::ParamStore source;
  source.Create("only", 2, 2);
  const std::string path = ::testing::TempDir() + "/hosr_ckpt_missing.bin";
  ASSERT_TRUE(autograd::SaveCheckpoint(source, path).ok());

  autograd::ParamStore destination;
  destination.Create("different_name", 2, 2);
  const auto status = autograd::LoadCheckpoint(path, &destination);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(CheckpointTest, LoadRejectsShapeMismatch) {
  autograd::ParamStore source;
  source.Create("w", 2, 2);
  const std::string path = ::testing::TempDir() + "/hosr_ckpt_shape.bin";
  ASSERT_TRUE(autograd::SaveCheckpoint(source, path).ok());

  autograd::ParamStore destination;
  destination.Create("w", 3, 3);
  EXPECT_FALSE(autograd::LoadCheckpoint(path, &destination).ok());
}

TEST(CheckpointTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/hosr_ckpt_garbage.bin";
  {
    std::ofstream out(path);
    out << "definitely not a checkpoint";
  }
  autograd::ParamStore store;
  store.Create("w", 1, 1);
  EXPECT_FALSE(autograd::LoadCheckpoint(path, &store).ok());
}

// --- Early stopping --------------------------------------------------------------

const data::Dataset& FeatureDataset() {
  static const data::Dataset* dataset = [] {
    data::SyntheticConfig config;
    config.num_users = 200;
    config.num_items = 250;
    config.avg_interactions_per_user = 12;
    config.avg_relations_per_user = 6;
    config.seed = 123;
    auto result = data::GenerateSynthetic(config);
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

TEST(EarlyStoppingTest, ConfigValidation) {
  models::EarlyStoppingConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.patience = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = models::EarlyStoppingConfig();
  config.eval_stride = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EarlyStoppingTest, StopsWhenMetricPlateausAndRestoresBest) {
  const data::Dataset& dataset = FeatureDataset();
  models::BprMf model(dataset.num_users(), dataset.num_items(),
                      {.embedding_dim = 6, .seed = 4});

  // Scripted metric: rises for 3 evaluations, then falls — training must
  // stop after `patience` non-improving evals and restore eval-3 params.
  int eval_count = 0;
  tensor::Matrix best_seen;
  auto metric = [&](models::RankingModel* m) -> double {
    ++eval_count;
    if (eval_count == 3) {
      best_seen = m->params()->at(0)->value;
    }
    return eval_count <= 3 ? eval_count : 3.0 - eval_count;
  };

  models::TrainConfig train_config;
  train_config.batch_size = 64;
  train_config.learning_rate = 0.01f;
  train_config.seed = 4;
  models::EarlyStoppingConfig config;
  config.max_epochs = 100;
  config.eval_stride = 2;
  config.patience = 2;
  const auto result = models::TrainWithEarlyStopping(
      &model, &dataset.interactions, train_config, config, metric);

  EXPECT_TRUE(result.stopped_early);
  EXPECT_EQ(result.best_epoch, 6u);  // third evaluation at epoch 6
  EXPECT_DOUBLE_EQ(result.best_metric, 3.0);
  EXPECT_EQ(result.epochs_run, 10u);  // 2 more evals after the best
  // Parameters restored to the best evaluation's snapshot.
  EXPECT_TRUE(
      tensor::AllClose(model.params()->at(0)->value, best_seen, 0.0));
}

TEST(EarlyStoppingTest, RealMetricImprovesOverUntrained) {
  const data::Dataset& dataset = FeatureDataset();
  util::Rng rng(5);
  const auto split = data::SplitDataset(dataset, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  models::BprMf model(dataset.num_users(), dataset.num_items(),
                      {.embedding_dim = 6, .seed = 5});
  eval::Evaluator evaluator(&split->train.interactions, &split->test, 20);
  auto metric = [&](models::RankingModel* m) {
    return evaluator
        .Evaluate([&](const std::vector<uint32_t>& users) {
          return m->ScoreAllItems(users);
        })
        .recall;
  };
  const double before = metric(&model);

  models::TrainConfig train_config;
  train_config.batch_size = 128;
  train_config.learning_rate = 0.005f;
  train_config.weight_decay = 1e-5f;
  train_config.seed = 5;
  models::EarlyStoppingConfig config;
  config.max_epochs = 60;
  config.eval_stride = 5;
  config.patience = 3;
  const auto result = models::TrainWithEarlyStopping(
      &model, &split->train.interactions, train_config, config, metric);

  EXPECT_GT(result.best_metric, before);
  // Model holds the best parameters: re-evaluating reproduces best_metric.
  EXPECT_NEAR(metric(&model), result.best_metric, 1e-9);
}

// --- CarveValidation -----------------------------------------------------------

TEST(CarveValidationTest, PartitionsPerUser) {
  const data::Dataset& dataset = FeatureDataset();
  util::Rng rng(6);
  const auto carved =
      models::CarveValidation(dataset.interactions, 0.3, &rng);
  ASSERT_TRUE(carved.ok());
  EXPECT_EQ(carved->train_remainder.nnz() + carved->validation.nnz(),
            dataset.interactions.nnz());
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    if (!dataset.interactions.ItemsOf(u).empty()) {
      EXPECT_FALSE(carved->train_remainder.ItemsOf(u).empty());
    }
    for (const uint32_t item : carved->validation.ItemsOf(u)) {
      EXPECT_FALSE(carved->train_remainder.Contains(u, item));
      EXPECT_TRUE(dataset.interactions.Contains(u, item));
    }
  }
}

TEST(CarveValidationTest, RejectsBadFraction) {
  const data::Dataset& dataset = FeatureDataset();
  util::Rng rng(7);
  EXPECT_FALSE(models::CarveValidation(dataset.interactions, 0.0, &rng).ok());
  EXPECT_FALSE(models::CarveValidation(dataset.interactions, 1.0, &rng).ok());
}

// --- Popularity-biased negative sampling ------------------------------------------

TEST(PopularitySamplingTest, NegativesAreStillValid) {
  const data::Dataset& dataset = FeatureDataset();
  data::BprSampler sampler(&dataset.interactions, 8,
                           data::NegativeSampling::kPopularity);
  const auto batch = sampler.SampleBatch(500);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_FALSE(
        dataset.interactions.Contains(batch.users[i], batch.neg_items[i]));
  }
}

TEST(PopularitySamplingTest, PopularItemsSampledMoreOften) {
  // Dataset where item 0 is consumed by almost everyone and item 1 by
  // nobody; a fresh user should see item 0 as a negative far more often.
  std::vector<data::Interaction> list;
  const uint32_t n_users = 50;
  for (uint32_t u = 1; u < n_users; ++u) list.push_back({u, 0});
  for (uint32_t u = 0; u < n_users; ++u) list.push_back({u, 2 + u % 8});
  auto matrix =
      data::InteractionMatrix::FromInteractions(n_users, 10, list);
  ASSERT_TRUE(matrix.ok());

  data::BprSampler sampler(&*matrix, 9, data::NegativeSampling::kPopularity);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[sampler.SampleNegative(0)];
  // User 0 never consumed item 0 (the most popular) nor item 1 (never
  // consumed by anyone). Popularity bias: item 0 dominates item 1.
  EXPECT_GT(counts[0], 4 * std::max(1, counts[1]));
}

TEST(PopularitySamplingTest, UniformRemainsDefaultInTrainer) {
  models::TrainConfig config;
  EXPECT_EQ(config.negative_sampling, data::NegativeSampling::kUniform);
}

}  // namespace
}  // namespace hosr
