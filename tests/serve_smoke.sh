#!/usr/bin/env bash
# Serving smoke test (wired as the `serve_smoke` ctest):
#   1. generate a tiny synthetic YelpLike dataset,
#   2. train BPR for 2 epochs and export a serving snapshot,
#   3. replay 1k skewed requests through hosr_serve,
#   4. assert nonzero cache hits and valid JSON metrics + summary output.
#
# Usage: serve_smoke.sh <hosr_cli binary> <hosr_serve binary>
set -eu

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.02 --seed=3

"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR \
  --epochs=2 --snapshot_out="$WORK/snap"
test -s "$WORK/snap" || { echo "FAIL: snapshot not written" >&2; exit 1; }

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --num_requests=1000 --k=10 --zipf=0.9 --seed=5 \
  --metrics_out="$WORK/metrics.json" --summary_out="$WORK/summary.json"

python3 - "$WORK/summary.json" "$WORK/metrics.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
with open(sys.argv[2]) as f:
    metrics = json.load(f)

assert summary["requests"] == 1000, summary
assert summary["qps"] > 0, summary
assert summary["latency_us"]["p50"] > 0, summary
assert summary["latency_us"]["p99"] >= summary["latency_us"]["p50"], summary
assert summary["cache"]["enabled"], summary
assert summary["cache"]["hits"] > 0, "expected nonzero cache hits"
assert 0.0 < summary["cache"]["hit_rate"] <= 1.0, summary

names = metrics["metrics"].keys()
assert "serve/queries" in names, sorted(names)
assert "serve/cache_hits" in names, sorted(names)
assert metrics["metrics"]["serve/cache_hits"]["value"] > 0, metrics
print("serve_smoke OK: qps=%.0f hit_rate=%.3f" %
      (summary["qps"], summary["cache"]["hit_rate"]))
EOF
