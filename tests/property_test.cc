// Property-based tests: randomized inputs checked against independent
// reference implementations or algebraic invariants, swept over shapes via
// parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/param.h"
#include "autograd/tape.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "graph/csr.h"
#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace hosr {
namespace {

using tensor::Matrix;

// --- GEMM vs naive reference over a shape sweep -------------------------------

struct GemmShape {
  size_t m, k, n;
  bool transpose_a, transpose_b;
};

class GemmPropertyTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmPropertyTest, MatchesNaiveReference) {
  const GemmShape shape = GetParam();
  util::Rng rng(shape.m * 131 + shape.k * 17 + shape.n);
  Matrix a(shape.transpose_a ? shape.k : shape.m,
           shape.transpose_a ? shape.m : shape.k);
  Matrix b(shape.transpose_b ? shape.n : shape.k,
           shape.transpose_b ? shape.k : shape.n);
  tensor::GaussianInit(&a, 1.0f, &rng);
  tensor::GaussianInit(&b, 1.0f, &rng);

  Matrix fast(shape.m, shape.n);
  tensor::Gemm(a, shape.transpose_a, b, shape.transpose_b, 1.0f, 0.0f,
               &fast);

  Matrix naive(shape.m, shape.n);
  for (size_t i = 0; i < shape.m; ++i) {
    for (size_t j = 0; j < shape.n; ++j) {
      float acc = 0;
      for (size_t kk = 0; kk < shape.k; ++kk) {
        const float av = shape.transpose_a ? a(kk, i) : a(i, kk);
        const float bv = shape.transpose_b ? b(j, kk) : b(kk, j);
        acc += av * bv;
      }
      naive(i, j) = acc;
    }
  }
  EXPECT_TRUE(tensor::AllClose(fast, naive, 1e-3 * shape.k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPropertyTest,
    ::testing::Values(GemmShape{1, 1, 1, false, false},
                      GemmShape{7, 3, 5, false, false},
                      GemmShape{7, 3, 5, true, false},
                      GemmShape{7, 3, 5, false, true},
                      GemmShape{7, 3, 5, true, true},
                      GemmShape{64, 32, 48, false, false},
                      GemmShape{1, 100, 1, false, false},
                      GemmShape{100, 1, 100, false, true},
                      GemmShape{33, 65, 17, true, true}));

// --- SpMM vs dense reference over random sparsity ------------------------------

class SpmmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmmPropertyTest, MatchesDensifiedMultiply) {
  util::Rng rng(GetParam());
  const uint32_t rows = 5 + static_cast<uint32_t>(rng.UniformInt(40));
  const uint32_t cols = 5 + static_cast<uint32_t>(rng.UniformInt(40));
  const size_t nnz = rng.UniformInt(rows * cols / 2 + 1);
  std::vector<graph::Triplet> triplets;
  for (size_t i = 0; i < nnz; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.UniformInt(rows)),
                        static_cast<uint32_t>(rng.UniformInt(cols)),
                        rng.Gaussian()});
  }
  const graph::CsrMatrix sparse =
      graph::CsrMatrix::FromTriplets(rows, cols, triplets);
  const size_t d = 1 + rng.UniformInt(16);
  Matrix dense(cols, d);
  tensor::GaussianInit(&dense, 1.0f, &rng);

  // Densify and multiply as reference.
  Matrix densified(rows, cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) densified(r, c) = sparse.At(r, c);
  }
  const Matrix expected = tensor::MatMul(densified, dense);
  EXPECT_TRUE(tensor::AllClose(graph::Spmm(sparse, dense), expected, 1e-3));

  // Transpose path agrees with the explicit transpose.
  Matrix dense2(rows, d);
  tensor::GaussianInit(&dense2, 1.0f, &rng);
  Matrix scatter(cols, d);
  graph::SpmmTranspose(sparse, dense2, &scatter);
  EXPECT_TRUE(tensor::AllClose(scatter,
                               graph::Spmm(sparse.Transpose(), dense2),
                               1e-3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmmPropertyTest, ::testing::Range(1, 11));

// --- CSR invariants over random builds ------------------------------------------

class CsrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrPropertyTest, SortedIndexedAndTransposeInvolutive) {
  util::Rng rng(100 + GetParam());
  const uint32_t rows = 1 + static_cast<uint32_t>(rng.UniformInt(30));
  const uint32_t cols = 1 + static_cast<uint32_t>(rng.UniformInt(30));
  std::vector<graph::Triplet> triplets;
  const size_t count = rng.UniformInt(200);
  for (size_t i = 0; i < count; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.UniformInt(rows)),
                        static_cast<uint32_t>(rng.UniformInt(cols)),
                        1.0f});
  }
  const graph::CsrMatrix m =
      graph::CsrMatrix::FromTriplets(rows, cols, triplets);
  // Row pointers are monotone and bounded.
  for (uint32_t r = 0; r < rows; ++r) {
    EXPECT_LE(m.row_begin(r), m.row_end(r));
    // Column indices strictly ascending within each row.
    for (size_t k = m.row_begin(r) + 1; k < m.row_end(r); ++k) {
      EXPECT_LT(m.col_idx()[k - 1], m.col_idx()[k]);
    }
  }
  EXPECT_EQ(m.row_ptr().back(), m.nnz());
  EXPECT_TRUE(m.Transpose().Transpose() == m);
  // nnz never exceeds the input triplet count.
  EXPECT_LE(m.nnz(), count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrPropertyTest, ::testing::Range(1, 11));

// --- Laplacian spectra-free invariants ------------------------------------------

class LaplacianPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LaplacianPropertyTest, SymmetricBoundedAndSelfLoops) {
  util::Rng rng(200 + GetParam());
  const uint32_t n = 10 + static_cast<uint32_t>(rng.UniformInt(50));
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < n; ++i) {
    edges.emplace_back(i, static_cast<uint32_t>(rng.UniformInt(i)));
  }
  const auto graph = graph::SocialGraph::FromEdges(n, edges);
  ASSERT_TRUE(graph.ok());
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(graph->adjacency());
  EXPECT_TRUE(laplacian.Transpose() == laplacian);
  for (uint32_t i = 0; i < n; ++i) {
    // Self-loop present and equal to 1/deg.
    const float self = laplacian.At(i, i);
    const float deg = std::max(1.0f, static_cast<float>(graph->Degree(i)));
    EXPECT_NEAR(self, 1.0f / deg, 1e-5);
    // All entries in (0, 1].
    for (size_t k = laplacian.row_begin(i); k < laplacian.row_end(i); ++k) {
      EXPECT_GT(laplacian.values()[k], 0.0f);
      EXPECT_LE(laplacian.values()[k], 1.0f + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaplacianPropertyTest,
                         ::testing::Range(1, 8));

// --- TopK vs full sort reference -------------------------------------------------

class TopKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKPropertyTest, AgreesWithStableSortReference) {
  util::Rng rng(300 + GetParam());
  const uint32_t n = 20 + static_cast<uint32_t>(rng.UniformInt(300));
  std::vector<float> scores(n);
  for (auto& s : scores) s = rng.Gaussian();
  // Random exclusion set.
  std::vector<uint32_t> excluded;
  for (uint32_t j = 0; j < n; ++j) {
    if (rng.Bernoulli(0.2)) excluded.push_back(j);
  }
  const uint32_t k = 1 + static_cast<uint32_t>(rng.UniformInt(25));

  const auto fast = eval::TopKExcluding(scores.data(), n, k, excluded);

  std::vector<uint32_t> candidates;
  for (uint32_t j = 0; j < n; ++j) {
    if (!std::binary_search(excluded.begin(), excluded.end(), j)) {
      candidates.push_back(j);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  candidates.resize(std::min<size_t>(candidates.size(), k));
  EXPECT_EQ(fast, candidates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest, ::testing::Range(1, 13));

// --- Metric invariants -------------------------------------------------------

class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, BoundsAndOrderings) {
  util::Rng rng(400 + GetParam());
  const uint32_t n_items = 50;
  std::vector<uint32_t> ranked;
  for (uint32_t j = 0; j < 20; ++j) {
    const auto item = static_cast<uint32_t>(rng.UniformInt(n_items));
    if (std::find(ranked.begin(), ranked.end(), item) == ranked.end()) {
      ranked.push_back(item);
    }
  }
  std::vector<uint32_t> relevant;
  for (uint32_t j = 0; j < n_items; ++j) {
    if (rng.Bernoulli(0.15)) relevant.push_back(j);
  }
  const double recall = eval::RecallAtK(ranked, relevant);
  const double ap = eval::AveragePrecisionAtK(ranked, relevant, 20);
  const double ndcg = eval::NdcgAtK(ranked, relevant, 20);
  const double precision = eval::PrecisionAtK(ranked, relevant, 20);
  for (const double metric : {recall, ap, ndcg, precision}) {
    EXPECT_GE(metric, 0.0);
    EXPECT_LE(metric, 1.0 + 1e-12);
  }
  // AP is upper-bounded by a function of the hit count just like recall:
  // if nothing was hit, everything is 0.
  if (recall == 0.0) {
    EXPECT_EQ(ap, 0.0);
    EXPECT_EQ(ndcg, 0.0);
    EXPECT_EQ(precision, 0.0);
  }
  // Moving a relevant item to rank 1 never decreases AP or NDCG.
  if (!relevant.empty()) {
    std::vector<uint32_t> promoted = ranked;
    promoted.insert(promoted.begin(), relevant.front());
    promoted.resize(std::min<size_t>(promoted.size(), 20));
    EXPECT_GE(eval::AveragePrecisionAtK(promoted, relevant, 20) + 1e-9, ap);
    EXPECT_GE(eval::NdcgAtK(promoted, relevant, 20) + 1e-9, ndcg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest, ::testing::Range(1, 13));

// --- Autograd linearity property ------------------------------------------------

class AutogradLinearityTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradLinearityTest, GradientOfLinearFunctionIsExact) {
  // For f(x) = sum(c ⊙ x), the gradient must be exactly c regardless of
  // the graph shape used to compute it.
  util::Rng rng(500 + GetParam());
  autograd::ParamStore store;
  const size_t rows = 1 + rng.UniformInt(6);
  const size_t cols = 1 + rng.UniformInt(6);
  autograd::Param* x = store.CreateGaussian("x", rows, cols, 1.0f, &rng);
  Matrix c(rows, cols);
  tensor::GaussianInit(&c, 1.0f, &rng);

  autograd::Tape tape;
  autograd::Value loss =
      tape.Sum(tape.Hadamard(tape.Param(x), tape.Constant(c)));
  store.ZeroGrad();
  tape.Backward(loss);
  EXPECT_TRUE(tensor::AllClose(x->grad, c, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradLinearityTest,
                         ::testing::Range(1, 9));

// --- Dataset split properties over random datasets ------------------------------

class SplitPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitPropertyTest, PartitionInvariantsHold) {
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_items = 200;
  config.avg_interactions_per_user = 8;
  config.avg_relations_per_user = 5;
  config.seed = 600 + static_cast<uint64_t>(GetParam());
  const auto dataset = data::GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  util::Rng rng(GetParam());
  const auto split = data::SplitDataset(*dataset, 0.25, &rng);
  ASSERT_TRUE(split.ok());

  EXPECT_EQ(split->train.interactions.nnz() + split->test.nnz(),
            dataset->interactions.nnz());
  for (uint32_t u = 0; u < dataset->num_users(); ++u) {
    // Disjoint per user, union equals original.
    const auto& train_items = split->train.interactions.ItemsOf(u);
    const auto& test_items = split->test.ItemsOf(u);
    std::vector<uint32_t> merged = train_items;
    merged.insert(merged.end(), test_items.begin(), test_items.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, dataset->interactions.ItemsOf(u));
    EXPECT_FALSE(train_items.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPropertyTest, ::testing::Range(1, 7));

// --- Segment ops consistency with matrix ops over random segmentations ----------

class SegmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentPropertyTest, WeightedSumMatchesManualAccumulation) {
  util::Rng rng(700 + GetParam());
  const size_t num_segments = 1 + rng.UniformInt(8);
  std::vector<size_t> offsets{0};
  for (size_t s = 0; s < num_segments; ++s) {
    offsets.push_back(offsets.back() + rng.UniformInt(6));
  }
  const size_t total = offsets.back();
  if (total == 0) return;
  const size_t d = 1 + rng.UniformInt(5);

  autograd::ParamStore store;
  autograd::Param* alpha = store.CreateGaussian("alpha", total, 1, 1.0f, &rng);
  autograd::Param* feats = store.CreateGaussian("feats", total, d, 1.0f, &rng);

  autograd::Tape tape;
  autograd::Value out = tape.SegmentWeightedSum(
      tape.Param(alpha), tape.Param(feats), offsets);

  Matrix expected(num_segments, d);
  for (size_t s = 0; s < num_segments; ++s) {
    for (size_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      for (size_t c = 0; c < d; ++c) {
        expected(s, c) += alpha->value(e, 0) * feats->value(e, c);
      }
    }
  }
  EXPECT_TRUE(tensor::AllClose(out.value(), expected, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace hosr
