// Tests for HOSR configuration variants not covered by the main hosr_test:
// decay-factor choice of Eq. 11, ReLU activation, self-connection removal,
// and interactions between variants.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hosr.h"
#include "data/synthetic.h"
#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "models/trainer.h"
#include "tensor/ops.h"

namespace hosr::core {
namespace {

data::Dataset TinyDataset() {
  data::Dataset d;
  auto interactions = data::InteractionMatrix::FromInteractions(
      5, 6, {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 0}});
  HOSR_CHECK(interactions.ok());
  d.interactions = std::move(interactions).value();
  auto social =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HOSR_CHECK(social.ok());
  d.social = std::move(social).value();
  return d;
}

Hosr::Config BaseConfig() {
  Hosr::Config config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  config.aggregation = LayerAggregation::kLast;
  config.graph_dropout = 0.0f;
  config.seed = 33;
  return config;
}

TEST(HosrDecayTest, SqrtBothDecayMatchesManualComputation) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config = BaseConfig();
  config.implicit_decay = ImplicitDecay::kSqrtBoth;
  Hosr model(d, config);

  // Item degrees |A_j|: item0 consumed by users {0,4} -> 2; item1 by {0};
  // user 0's items are {0,1} so |I_0| = 2.
  const tensor::Matrix& v = model.params()->Find("item_emb")->value;
  const tensor::Matrix final_u = model.FinalUserEmbeddings();
  const tensor::Matrix scores = model.ScoreAllItems({0});

  std::vector<float> rep(4);
  for (size_t c = 0; c < 4; ++c) rep[c] = final_u(0, c);
  const float base = 1.0f / std::sqrt(2.0f);
  for (size_t c = 0; c < 4; ++c) {
    rep[c] += base / std::sqrt(2.0f) * v(0, c);  // item 0: |A_j| = 2
    rep[c] += base / std::sqrt(1.0f) * v(1, c);  // item 1: |A_j| = 1
  }
  float expected = 0.0f;
  for (size_t c = 0; c < 4; ++c) expected += rep[c] * v(3, c);
  EXPECT_NEAR(scores(0, 3), expected, 1e-4);
}

TEST(HosrDecayTest, DecayVariantsProduceDifferentScores) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config = BaseConfig();
  Hosr paper_decay(d, config);
  config.implicit_decay = ImplicitDecay::kSqrtBoth;
  Hosr both_decay(d, config);
  EXPECT_FALSE(tensor::AllClose(paper_decay.ScoreAllItems({0, 1}),
                                both_decay.ScoreAllItems({0, 1}), 1e-7));
}

TEST(HosrActivationTest, ReluMatchesManualPropagation) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config = BaseConfig();
  config.activation = Activation::kRelu;
  config.item_implicit_term = false;
  Hosr model(d, config);

  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(d.social.adjacency());
  const tensor::Matrix expected = tensor::Relu(tensor::MatMul(
      graph::Spmm(laplacian, model.params()->Find("user_emb")->value),
      model.params()->Find("gcn_w1")->value));
  EXPECT_TRUE(tensor::AllClose(model.FinalUserEmbeddings(), expected, 1e-5));
}

TEST(HosrSelfConnectionTest, WithoutSelfLoopsUsesPlainNormalizedAdjacency) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config = BaseConfig();
  config.self_connections = false;
  config.item_implicit_term = false;
  Hosr model(d, config);

  const graph::CsrMatrix na =
      graph::NormalizedAdjacency(d.social.adjacency());
  const tensor::Matrix expected = tensor::Tanh(tensor::MatMul(
      graph::Spmm(na, model.params()->Find("user_emb")->value),
      model.params()->Find("gcn_w1")->value));
  EXPECT_TRUE(tensor::AllClose(model.FinalUserEmbeddings(), expected, 1e-5));
}

TEST(HosrSelfConnectionTest, IsolatedUserWithoutSelfLoopGetsZeroLayerOutput) {
  // User 2 isolated; without self-connections its propagated embedding is
  // tanh(0 * W) = 0 (it still receives the item-implicit term in Eq. 11).
  data::Dataset d;
  auto interactions = data::InteractionMatrix::FromInteractions(
      3, 3, {{0, 0}, {1, 1}, {2, 2}});
  HOSR_CHECK(interactions.ok());
  d.interactions = std::move(interactions).value();
  auto social = graph::SocialGraph::FromEdges(3, {{0, 1}});
  HOSR_CHECK(social.ok());
  d.social = std::move(social).value();

  Hosr::Config config = BaseConfig();
  config.self_connections = false;
  config.item_implicit_term = false;
  Hosr model(d, config);
  const tensor::Matrix emb = model.FinalUserEmbeddings();
  for (size_t c = 0; c < emb.cols(); ++c) {
    EXPECT_FLOAT_EQ(emb(2, c), 0.0f);
  }
}

TEST(HosrVariantsTest, AllVariantCombinationsTrainOneEpoch) {
  const data::Dataset d = TinyDataset();
  for (const auto aggregation :
       {LayerAggregation::kLast, LayerAggregation::kAverage,
        LayerAggregation::kAttention}) {
    for (const auto activation : {Activation::kTanh, Activation::kRelu}) {
      for (const bool self : {true, false}) {
        for (const bool item_term : {true, false}) {
          Hosr::Config config;
          config.embedding_dim = 3;
          config.num_layers = 2;
          config.aggregation = aggregation;
          config.activation = activation;
          config.self_connections = self;
          config.item_implicit_term = item_term;
          config.graph_dropout = 0.1f;
          config.embedding_dropout = 0.1f;
          config.seed = 44;
          Hosr model(d, config);
          models::TrainConfig tc;
          tc.epochs = 1;
          tc.batch_size = 4;
          tc.learning_rate = 0.01f;
          tc.seed = 44;
          models::BprTrainer trainer(&model, &d.interactions, tc);
          const auto stats = trainer.Train();
          EXPECT_TRUE(std::isfinite(stats[0].avg_loss));
          const auto scores = model.ScoreAllItems({0});
          EXPECT_EQ(scores.cols(), d.num_items());
        }
      }
    }
  }
}

TEST(HosrCheckDeathTest, ScoreAllItemsRejectsBadUser) {
  const data::Dataset d = TinyDataset();
  Hosr model(d, BaseConfig());
  EXPECT_DEATH(model.ScoreAllItems({99}), "Check failed");
}

TEST(HosrCheckDeathTest, InvalidConfigAborts) {
  const data::Dataset d = TinyDataset();
  Hosr::Config config = BaseConfig();
  config.num_layers = 0;
  EXPECT_DEATH(Hosr(d, config), "Check failed");
}

}  // namespace
}  // namespace hosr::core
