#!/usr/bin/env bash
# Network serving smoke test (wired as the `net_smoke` ctest):
#   1. train a tiny snapshot, start `hosr_serve --port=0` (ephemeral port,
#      written to --port_file), replay 1.5k requests from a separate
#      hosr_loadgen process with --verify_snapshot/--verify_data, and
#      assert every answer is bit-identical to a local InferenceEngine
#      (verify_failures == 0) with zero wire-level failures;
#   2. graceful drain: restart the server, SIGTERM it mid-replay, and
#      assert the server answered every request it read (requests ==
#      responses in the server summary — the zero-dropped-in-flight
#      guarantee) while the loadgen's accounting still sums to the stream
#      length (closed/not_sent requests are counted, never lost);
#   3. fault phase: rerun with --fault_spec='net.read:n=40' and assert
#      injected read faults surface as clean closed-connection outcomes at
#      the loadgen (faults_injected > 0, closed > 0, sum still exact) with
#      the server still draining to requests == responses.
#
# Usage: net_smoke.sh <hosr_cli binary> <hosr_serve binary> <hosr_loadgen binary>
set -eu

CLI="$1"
SERVE="$2"
LOADGEN="$3"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --out="$WORK/data" --preset=yelp --scale=0.02 --seed=3
"$CLI" train --data="$WORK/data" --checkpoint="$WORK/ckpt" --model=BPR \
  --epochs=2 --snapshot_out="$WORK/snap"
test -s "$WORK/snap" || { echo "FAIL: snapshot not written" >&2; exit 1; }

wait_for_port() {
  local port_file="$1"
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && return 0
    sleep 0.1
  done
  echo "FAIL: server never wrote $port_file" >&2
  exit 1
}

# --- phase 1: remote replay is bit-identical to the in-process engine --------

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port1" --workers=4 \
  --summary_out="$WORK/server1.json" > /dev/null &
SERVER_PID=$!
wait_for_port "$WORK/port1"

"$LOADGEN" --port="$(cat "$WORK/port1")" \
  --num_requests=1500 --k=10 --zipf=0.9 --seed=5 --connections=4 \
  --verify_snapshot="$WORK/snap" --verify_data="$WORK/data" \
  --summary_out="$WORK/loadgen1.json" > /dev/null

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

python3 - "$WORK/loadgen1.json" "$WORK/server1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lg = json.load(f)
with open(sys.argv[2]) as f:
    srv = json.load(f)
assert lg["verified"], lg
assert lg["verify_failures"] == 0, lg
assert lg["outcomes"]["ok"] == 1500, lg
assert sum(lg["outcomes"].values()) == 1500, lg
assert lg["latency_us"]["p99"] >= lg["latency_us"]["p50"] > 0, lg
assert srv["net"]["requests"] == srv["net"]["responses"] == 1500, srv
assert srv["net"]["protocol_errors"] == 0, srv
print("net_smoke phase1 OK: 1500 remote answers bit-identical, qps=%.0f"
      % lg["qps"])
EOF

# --- phase 2: graceful drain mid-replay --------------------------------------

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port2" --workers=2 \
  --summary_out="$WORK/server2.json" > /dev/null &
SERVER_PID=$!
wait_for_port "$WORK/port2"

# Pace the replay (~2s of traffic) so the SIGTERM lands mid-stream.
"$LOADGEN" --port="$(cat "$WORK/port2")" \
  --num_requests=2000 --k=10 --seed=7 --connections=2 --qps=1000 \
  --summary_out="$WORK/loadgen2.json" > /dev/null &
LOADGEN_PID=$!
sleep 1
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
wait "$LOADGEN_PID" || true  # drained-away requests are tallied, not fatal

python3 - "$WORK/loadgen2.json" "$WORK/server2.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lg = json.load(f)
with open(sys.argv[2]) as f:
    srv = json.load(f)
# The drain guarantee: every request the server read got an answer.
assert srv["net"]["requests"] == srv["net"]["responses"], srv
assert srv["net"]["requests"] > 0, srv
# The loadgen saw real service before the drain, then clean failures:
# every request is accounted for exactly once.
assert lg["outcomes"]["ok"] > 0, lg
assert sum(lg["outcomes"].values()) == 2000, lg
print("net_smoke phase2 OK: drained at %d/%d answered, zero dropped in-flight"
      % (srv["net"]["responses"], 2000))
EOF

# --- phase 3: injected net.read faults stay clean ----------------------------

"$SERVE" --snapshot="$WORK/snap" --data="$WORK/data" \
  --port=0 --port_file="$WORK/port3" --workers=4 \
  --fault_spec='net.read:n=40' --fault_seed=1 \
  --summary_out="$WORK/server3.json" > /dev/null 2>&1 &
SERVER_PID=$!
wait_for_port "$WORK/port3"

"$LOADGEN" --port="$(cat "$WORK/port3")" \
  --num_requests=1000 --k=10 --seed=9 --connections=4 \
  --summary_out="$WORK/loadgen3.json" > /dev/null

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

python3 - "$WORK/loadgen3.json" "$WORK/server3.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lg = json.load(f)
with open(sys.argv[2]) as f:
    srv = json.load(f)
assert srv["faults_injected"] > 0, srv
# Injected read faults answer with a clean status and close; the loadgen
# counts each as `closed` and redials — nothing hangs, nothing is lost.
assert lg["outcomes"]["closed"] > 0, lg
assert lg["outcomes"]["ok"] > 0, lg
assert sum(lg["outcomes"].values()) == 1000, lg
assert lg["reconnects"] >= lg["outcomes"]["closed"], lg
# Faulted frames are answered before the read, so they never count as
# requests — the drain invariant must still hold exactly.
assert srv["net"]["requests"] == srv["net"]["responses"], srv
print("net_smoke phase3 OK: %d injected read faults, %d clean closes, "
      "%d served" % (srv["faults_injected"], lg["outcomes"]["closed"],
                     lg["outcomes"]["ok"]))
EOF

echo "net_smoke OK"
