// hosr_cli — command-line workflow around the HOSR library.
//
// Subcommands:
//   generate  --out=DIR [--preset=yelp|douban] [--scale=F] [--seed=N]
//       Write a synthetic social-recommendation dataset as TSV files.
//   train     --data=DIR --checkpoint=FILE [--model=HOSR] [--dim=N]
//             [--epochs=N] [--lr=F] [--layers=N] [--early-stop]
//             [--snapshot_out=FILE] [--train_state=FILE] [--resume]
//             [--train_threads=N] [--train_slice=N] [--sparse_steps]
//             [--train_prefetch=0]
//             [--admin_port=N]  live /metricsz, /healthz, /varz, /profilez,
//                               /timeseriez on 127.0.0.1:N while training
//                               runs (starts the timeseries recorder too)
//       Train a model on an on-disk dataset and save its parameters.
//       --train_threads=N runs the deterministic parallel engine
//       (docs/PERFORMANCE.md "Parallel training"): bit-identical to
//       --train_threads=1 at any N (0 = hardware). --sparse_steps applies
//       row-sparse optimizer updates with lazy weight decay (changes the
//       trajectory; recorded in the training-state identity).
//       --snapshot_out additionally freezes the trained model into a
//       serving snapshot for hosr_serve (docs/SERVING.md).
//       --train_state saves a crash-safe full training checkpoint (params,
//       optimizer state, RNG streams, epoch) after every epoch; --resume
//       restores it and continues, bit-identical to an uninterrupted run
//       (docs/ROBUSTNESS.md).
//   evaluate  --data=DIR --checkpoint=FILE [--model=HOSR] [--dim=N] [--k=N]
//       Reload a checkpoint and report Recall/MAP/NDCG/Precision@K.
//   recommend --data=DIR --checkpoint=FILE --user=N [--model=HOSR]
//             [--dim=N] [--k=N]
//       Print the top-K item ids for one user.
//
// Every subcommand also accepts the observability flags (docs/OBSERVABILITY.md):
//   --trace_out=FILE        dump a Chrome trace_event JSON at exit
//   --metrics_out=FILE      dump the metrics registry JSON at exit
//   --metrics_interval=SECS background metrics snapshots every SECS seconds
//   --profile_out=FILE      continuous sampling CPU profile: collapsed
//                           stacks to FILE (+ FILE.summary.json) at exit
//   --profile_hz=N          profiler sampling rate (default 99)
//   --timeseries_out=FILE   windowed metric history (CRC-footed JSON) at exit
//   --timeseries_interval=S timeseries snapshot cadence (default 1.0)
//   --log_level=debug|info|warning|error
// and the fault-injection flags (docs/ROBUSTNESS.md):
//   --fault_spec=SPEC       arm deterministic fault injection points
//   --fault_seed=N          seed for probabilistic triggers (default 1)
// The point `cli.train_crash` fires right after an epoch's training state
// is saved and hard-kills the process (exit 42), simulating a crash for
// resume testing: cli.train_crash:once=2 dies after the 2nd epoch.
//
// The train/evaluate/recommend trio demonstrates that checkpoints fully
// capture a model: evaluation is reproducible across processes.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "autograd/checkpoint.h"
#include "core/model_zoo.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "fault/fault.h"
#include "kernels/kernels.h"
#include "models/early_stopping.h"
#include "models/trainer.h"
#include "obs/admin_server.h"
#include "obs/reporter.h"
#include "obs/timeseries.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace hosr;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hosr_cli <generate|train|evaluate|recommend> "
               "[flags]\n  see the header of tools/hosr_cli.cpp\n");
  return 2;
}

int RunGenerate(const util::Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out=DIR\n");
    return 2;
  }
  const std::string preset = flags.GetString("preset", "yelp");
  const double scale = flags.GetDouble("scale", 0.05);
  data::SyntheticConfig config =
      preset == "douban" ? data::SyntheticConfig::DoubanLike(scale)
                         : data::SyntheticConfig::YelpLike(scale);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto dataset = data::GenerateSynthetic(config);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto status = data::SaveDataset(*dataset, out); !status.ok()) {
    return Fail(status);
  }
  const auto stats = dataset->Summarize();
  std::printf("wrote %s: %u users, %u items, %zu interactions, %zu social "
              "edges\n", out.c_str(), stats.num_users, stats.num_items,
              stats.num_interactions, stats.num_social_edges);
  return 0;
}

// Loads the dataset, splits deterministically, and builds the model.
struct Session {
  data::Dataset dataset;
  data::Split split;
  std::unique_ptr<models::RankingModel> model;
};

util::StatusOr<Session> OpenSession(const util::Flags& flags) {
  const std::string data_dir = flags.GetString("data", "");
  if (data_dir.empty()) {
    return util::Status::InvalidArgument("missing --data=DIR");
  }
  Session session;
  HOSR_ASSIGN_OR_RETURN(session.dataset, data::LoadDataset(data_dir));
  util::Rng split_rng(static_cast<uint64_t>(flags.GetInt("split-seed", 99)));
  HOSR_ASSIGN_OR_RETURN(session.split,
                        data::SplitDataset(session.dataset, 0.2, &split_rng));
  core::ZooConfig zoo;
  zoo.embedding_dim = static_cast<uint32_t>(flags.GetInt("dim", 10));
  zoo.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  zoo.hosr_layers = static_cast<uint32_t>(flags.GetInt("layers", 3));
  HOSR_ASSIGN_OR_RETURN(session.model,
                        core::MakeModel(flags.GetString("model", "HOSR"),
                                        session.split.train, zoo));
  return session;
}

int RunTrain(const util::Flags& flags) {
  auto session = OpenSession(flags);
  if (!session.ok()) return Fail(session.status());
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "train requires --checkpoint=FILE\n");
    return 2;
  }

  // Optional live admin endpoint for long training runs: watch loss gauges
  // via /metricsz and liveness via /healthz while the job runs.
  std::unique_ptr<obs::AdminServer> admin;
  const int admin_port = static_cast<int>(flags.GetInt("admin_port", -1));
  if (admin_port >= 0) {
    // Give /timeseriez live history (idempotent if --timeseries_out
    // already started the recorder via InitFromFlags).
    if (!obs::TimeseriesRecorder::Global().running()) {
      obs::TimeseriesRecorder::Options ts_options;
      ts_options.snapshot_interval_s =
          flags.GetDouble("timeseries_interval", 1.0);
      if (auto status = obs::TimeseriesRecorder::Global().Start(ts_options);
          !status.ok()) {
        std::fprintf(stderr, "note: timeseries recorder: %s\n",
                     status.ToString().c_str());
      }
    }
    admin = std::make_unique<obs::AdminServer>(
        obs::AdminServer::Options{.port = admin_port});
    if (auto status = admin->Start(); !status.ok()) return Fail(status);
    admin->SetVar("binary", "hosr_cli train");
    admin->SetVar("model", flags.GetString("model", "HOSR"));
    admin->SetVar("dispatch_level", kernels::Active().name);
    // Training has no serving probe; the data/model loading above is the
    // readiness gate.
    obs::HealthTracker::Global().SetReady(true);
  }

  models::TrainConfig config;
  config.epochs = static_cast<uint32_t>(flags.GetInt("epochs", 40));
  config.batch_size = static_cast<uint32_t>(flags.GetInt("batch", 256));
  config.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.001));
  config.weight_decay =
      static_cast<float>(flags.GetDouble("weight-decay", 1e-5));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.verbose = flags.GetBool("verbose", false);
  config.train_threads =
      static_cast<uint32_t>(flags.GetInt("train_threads", 1));
  config.slice_size =
      static_cast<uint32_t>(flags.GetInt("train_slice", 128));
  config.sparse_steps = flags.GetBool("sparse_steps", false);
  config.prefetch = flags.GetBool("train_prefetch", true);

  const auto& train = session->split.train.interactions;
  if (flags.GetBool("early-stop", false)) {
    eval::Evaluator evaluator(&train, &session->split.test, 20);
    models::EarlyStoppingConfig es;
    es.max_epochs = config.epochs;
    es.eval_stride = 5;
    es.patience = 3;
    const auto result = models::TrainWithEarlyStopping(
        session->model.get(), &train, config, es,
        [&](models::RankingModel* m) {
          return evaluator
              .Evaluate([&](const std::vector<uint32_t>& users) {
                return m->ScoreAllItems(users);
              })
              .recall;
        });
    std::printf("early stopping: best Recall@20 %.4f at epoch %u "
                "(%u epochs run%s)\n", result.best_metric, result.best_epoch,
                result.epochs_run, result.stopped_early ? ", stopped early"
                                                        : "");
  } else {
    models::BprTrainer trainer(session->model.get(), &train, config);
    const std::string train_state = flags.GetString("train_state", "");
    if (flags.GetBool("resume", false)) {
      if (train_state.empty()) {
        std::fprintf(stderr, "--resume requires --train_state=FILE\n");
        return 2;
      }
      auto restored = trainer.RestoreTrainingState(train_state);
      if (restored.ok()) {
        std::printf("resumed from %s at epoch %u/%u\n", train_state.c_str(),
                    trainer.epoch(), config.epochs);
      } else if (restored.code() == util::StatusCode::kIoError) {
        // No checkpoint yet (first run of a --resume-always launcher):
        // start from scratch. Corruption or config drift still aborts.
        std::printf("no training state at %s, starting fresh\n",
                    train_state.c_str());
      } else {
        return Fail(restored);
      }
    }
    // Epoch-cadence reporting: rewrite --metrics_out after every epoch so a
    // long run always has a current artifact on disk.
    obs::StatsReporter reporter(
        {.interval_seconds = 0.0,
         .metrics_path = flags.GetString("metrics_out", "")});
    models::EpochStats last;
    while (trainer.epoch() < config.epochs) {
      last = trainer.RunEpoch();
      reporter.Snapshot();
      if (!train_state.empty()) {
        if (auto status = trainer.SaveTrainingState(train_state);
            !status.ok()) {
          return Fail(status);
        }
      }
      // Simulated crash for resume testing: the epoch's state is on disk,
      // the process dies without running atexit flushes.
      if (auto crash = fault::Inject("cli.train_crash"); !crash.ok()) {
        std::fprintf(stderr, "injected crash after epoch %u: %s\n",
                     trainer.epoch() - 1, crash.ToString().c_str());
        std::_Exit(42);
      }
    }
    std::printf("trained %u epochs, final loss %.4f (%.1f samples/s)\n",
                config.epochs, last.avg_loss, last.samples_per_sec);
  }

  // Post-training evaluation: reports ranking quality and exercises the
  // eval path so latency metrics land in --metrics_out.
  const auto k = static_cast<uint32_t>(flags.GetInt("k", 20));
  eval::Evaluator evaluator(&train, &session->split.test, k);
  const auto result =
      evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
        return session->model->ScoreAllItems(users);
      });
  std::printf("final: Recall@%u=%.4f MAP@%u=%.4f (%zu users)\n", k,
              result.recall, k, result.map, result.num_users);

  if (auto status = autograd::SaveCheckpoint(*session->model->params(),
                                             checkpoint);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("checkpoint written to %s\n", checkpoint.c_str());

  const std::string snapshot_out = flags.GetString("snapshot_out", "");
  if (!snapshot_out.empty()) {
    auto snapshot = serve::BuildSnapshot(*session->model);
    if (!snapshot.ok()) return Fail(snapshot.status());
    if (auto status = serve::SaveSnapshot(*snapshot, snapshot_out);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("serving snapshot written to %s (%s, %u users x %u items, "
                "dim %u)\n", snapshot_out.c_str(),
                snapshot->model_name.c_str(), snapshot->num_users(),
                snapshot->num_items(), snapshot->dim());
  }
  return 0;
}

int RunEvaluate(const util::Flags& flags) {
  auto session = OpenSession(flags);
  if (!session.ok()) return Fail(session.status());
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (!checkpoint.empty()) {
    if (auto status = autograd::LoadCheckpoint(
            checkpoint, session->model->params());
        !status.ok()) {
      return Fail(status);
    }
  }
  const auto k = static_cast<uint32_t>(flags.GetInt("k", 20));
  eval::Evaluator evaluator(&session->split.train.interactions,
                            &session->split.test, k);
  const auto result =
      evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
        return session->model->ScoreAllItems(users);
      });
  std::printf("%s on %s: Recall@%u=%.4f MAP@%u=%.4f NDCG@%u=%.4f "
              "Precision@%u=%.4f (%zu users)\n",
              session->model->name().c_str(), session->dataset.name.c_str(),
              k, result.recall, k, result.map, k, result.ndcg, k,
              result.precision, result.num_users);
  return 0;
}

int RunRecommend(const util::Flags& flags) {
  auto session = OpenSession(flags);
  if (!session.ok()) return Fail(session.status());
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (!checkpoint.empty()) {
    if (auto status = autograd::LoadCheckpoint(
            checkpoint, session->model->params());
        !status.ok()) {
      return Fail(status);
    }
  }
  const int64_t user = flags.GetInt("user", -1);
  if (user < 0 || user >= session->dataset.num_users()) {
    std::fprintf(stderr, "recommend requires --user in [0, %u)\n",
                 session->dataset.num_users());
    return 2;
  }
  const auto k = static_cast<uint32_t>(flags.GetInt("k", 10));
  const auto u = static_cast<uint32_t>(user);
  const tensor::Matrix scores = session->model->ScoreAllItems({u});
  const auto top = eval::TopKExcluding(
      scores.row(0), session->dataset.num_items(), k,
      session->split.train.interactions.ItemsOf(u));
  std::printf("top-%u items for user %u:", k, u);
  for (const uint32_t item : top) std::printf(" %u", item);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const util::Flags flags = util::Flags::Parse(argc - 1, argv + 1);
  obs::InitFromFlags(flags);
  // Must run before the first kernel call: dispatch resolves once and then
  // stays fixed for the process lifetime.
  if (flags.GetBool("force_scalar", false)) setenv("HOSR_FORCE_SCALAR", "1", 1);
  HOSR_LOG(Info) << "kernels: dispatch level " << kernels::Active().name
                 << (kernels::ForcedScalar() ? " (forced scalar)" : "");
  const std::string fault_spec = flags.GetString("fault_spec", "");
  if (!fault_spec.empty()) {
    auto status = fault::FaultRegistry::Global().Configure(
        fault_spec, static_cast<uint64_t>(flags.GetInt("fault_seed", 1)));
    if (!status.ok()) return Fail(status);
  }
  if (command == "generate") return RunGenerate(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "recommend") return RunRecommend(flags);
  return Usage();
}
