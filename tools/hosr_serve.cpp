// hosr_serve — serving-side load driver over a frozen ModelSnapshot.
//
// Loads a snapshot exported by `hosr_cli train --snapshot_out=FILE`, builds
// an InferenceEngine (with seen-item filtering when --data is given), then
// either replays a scripted or synthetic top-K request stream in process
// (the default) or serves the hosr::net wire protocol over TCP (--port).
// Replay mode reports achieved QPS, exact p50/p95/p99 latency, and cache
// hit rate — on stdout as JSON, to --summary_out, and through the
// hosr::obs registry. Server mode runs until SIGTERM/SIGINT (or
// --serve_duration_s), drains gracefully, and reports wire-level totals.
//
//   hosr_serve --snapshot=FILE [--data=DIR]
//              [--requests=FILE]           scripted stream: "user [k]" lines
//              [--num_requests=10000]      synthetic stream length
//              [--k=10]                    synthetic stream K
//              [--zipf=0.9]                user skew (0 = uniform)
//              [--qps=0]                   target replay rate (0 = max speed)
//              [--clients=0]               client threads (0 = hardware)
//              [--cache_capacity=65536]    0 disables the result cache
//              [--cache_shards=16]
//              [--batch=0]                 >0 routes through RequestBatcher
//              [--linger_us=100]           batcher coalescing window
//              [--queue_capacity=4096]     batcher admission limit (shed above)
//              [--seed=1] [--summary_out=FILE]
// network serving (docs/SERVING.md):
//              [--port=N]                  serve the wire protocol on
//                                          127.0.0.1:N (0 = ephemeral);
//                                          omit for in-process replay
//              [--port_file=FILE]          write the bound port (atomic)
//              [--bind_any]                bind 0.0.0.0 instead of loopback
//              [--workers=4]               connection-serving worker threads
//              [--max_pending_conns=64]    accept queue bound (shed above)
//              [--net_read_timeout_ms=30000]  slow-loris cutoff
//              [--serve_duration_s=0]      auto-stop after N seconds
// hot reload & overload control (docs/ROBUSTNESS.md):
//              [--reload=1]                server mode (no --batch): serve
//                                          through a SnapshotManager so
//                                          POST /reloadz hot-swaps the
//                                          snapshot; 0 pins the startup one
//              [--reload_watch]            poll --snapshot for mtime/size
//                                          changes and reload automatically
//              [--reload_poll_ms=500]      watcher poll cadence
//              [--probe_users=8]           probe-query validation gate width
//              [--probe_k=10]
//              [--breaker]                 arm the request circuit breaker
//              [--breaker_window=256] [--breaker_min_samples=32]
//              [--breaker_trip_ratio=0.5] [--breaker_open_ms=250]
//              [--breaker_probes=8]
//              [--max_queue_delay_ms=0]    shed accepts when the smoothed
//                                          worker-claim wait exceeds this
// hardening flags (docs/ROBUSTNESS.md):
//              [--deadline_ms=0]           per-request budget; 0 disables
//              [--retries=2]               retry attempts after the first
//              [--retry_backoff_ms=2]      base backoff (decorrelated jitter)
//              [--retry_backoff_max_ms=8]  backoff cap
//              [--degraded=1]              popularity fallback on failure;
//                                          0 lets engine faults surface
//              [--fault_spec=SPEC]         arm fault injection (e.g.
//                                          engine.score:p=0.2, net.read:n=7)
//              [--fault_seed=1]
// live observability (docs/OBSERVABILITY.md):
//              [--admin_port=N]            serve /metricsz /healthz /readyz
//                                          /varz /tracez /profilez
//                                          /timeseriez on 127.0.0.1:N
//                                          (0 = kernel-assigned ephemeral);
//                                          also starts the timeseries
//                                          recorder so /timeseriez has
//                                          windowed history
//              [--timeseries_interval=S]   recorder snapshot cadence (1.0)
//              [--admin_port_file=FILE]    write the bound port (atomic) so
//                                          scripts can find an ephemeral one
//              [--flight_dir=DIR]          arm the flight recorder; dumps
//                                          flight_*.json on injected faults
//                                          and deadline-exceeded bursts
//              [--admin_linger_s=0]        keep the admin endpoint up this
//                                          long after the replay finishes
// Every request resolves — never hangs — to one of five outcomes tallied in
// the JSON report: ok, degraded (popularity fallback), deadline_exceeded,
// shed (queue full), error. With --fault_spec the outcome of each request
// is a pure function of its stream index, so two same-seed runs report
// identical counts.
// plus the standard observability flags (--metrics_out, --trace_out,
// --profile_out, --profile_hz, --timeseries_out, ... — see
// obs/reporter.h).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/io.h"
#include "fault/fault.h"
#include "kernels/kernels.h"
#include "net/server.h"
#include "net/stream.h"
#include "obs/admin_server.h"
#include "obs/context.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/degraded.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/overload.h"
#include "serve/reload.h"
#include "serve/snapshot.h"
#include "util/fileio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace hosr;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// SIGTERM/SIGINT flip this; the server loop polls it and drains.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::Parse(argc, argv);
  obs::InitFromFlags(flags);
  // Resolve kernel dispatch before any scoring so the level is fixed (and
  // logged) for the whole serving process.
  if (flags.GetBool("force_scalar", false)) setenv("HOSR_FORCE_SCALAR", "1", 1);
  HOSR_LOG(Info) << "kernels: dispatch level " << kernels::Active().name
                 << (kernels::ForcedScalar() ? " (forced scalar)" : "");

  const std::string fault_spec = flags.GetString("fault_spec", "");
  if (!fault_spec.empty()) {
    auto status = fault::FaultRegistry::Global().Configure(
        fault_spec, static_cast<uint64_t>(flags.GetInt("fault_seed", 1)));
    if (!status.ok()) return Fail(status);
  }

  const std::string snapshot_path = flags.GetString("snapshot", "");
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "usage: hosr_serve --snapshot=FILE [flags]\n"
                         "  see the header of tools/hosr_serve.cpp\n");
    return 2;
  }
  auto snapshot = serve::LoadSnapshot(snapshot_path);
  if (!snapshot.ok()) return Fail(snapshot.status());
  const std::string model_name = snapshot->model_name;
  const uint32_t num_users = snapshot->num_users();
  const uint32_t num_items = snapshot->num_items();
  const uint32_t dim = snapshot->dim();

  // Seen-item filtering from the dataset's interactions, when provided.
  std::unique_ptr<data::Dataset> dataset;
  const std::string data_dir = flags.GetString("data", "");
  if (!data_dir.empty()) {
    auto loaded = data::LoadDataset(data_dir);
    if (!loaded.ok()) return Fail(loaded.status());
    if (loaded->num_users() != num_users ||
        loaded->num_items() != num_items) {
      return Fail(util::Status::InvalidArgument(util::StrFormat(
          "dataset %ux%u does not match snapshot %ux%u",
          loaded->num_users(), loaded->num_items(), num_users, num_items)));
    }
    dataset = std::make_unique<data::Dataset>(std::move(loaded).value());
  }

  const data::InteractionMatrix* seen =
      dataset != nullptr ? &dataset->interactions : nullptr;

  // Flight recorder: armed with a destination directory, it snapshots
  // metrics + recent spans to flight_*.json on injected faults, on
  // deadline-exceeded bursts, and on fatal signals.
  const std::string flight_dir = flags.GetString("flight_dir", "");
  if (!flight_dir.empty()) {
    // A dump without spans answers nothing — arming implies capture, so
    // post-mortems do not depend on also passing --trace_out.
    obs::SetEnabled(true);
    obs::FlightRecorder::Options flight_options;
    flight_options.dir = flight_dir;
    obs::FlightRecorder::Global().Arm(flight_options);
    obs::FlightRecorder::Global().InstallSignalHandlers();
    obs::FlightRecorder::Global().Note(util::StrFormat(
        "snapshot loaded: %s (model %s, %ux%u dim %u)",
        snapshot_path.c_str(), model_name.c_str(), num_users, num_items,
        dim));
  }

  // Live admin endpoint. Readiness flips true only after the engine answers
  // a real probe query, so /readyz == 200 means scoring actually works —
  // not just that the process is up.
  std::unique_ptr<obs::AdminServer> admin;
  const int admin_port = static_cast<int>(flags.GetInt("admin_port", -1));
  if (admin_port >= 0) {
    obs::SetEnabled(true);  // /tracez is only useful with capture on
    // /timeseriez needs windowed history whether or not --timeseries_out
    // was passed; skip if InitFromFlags already started the recorder.
    if (!obs::TimeseriesRecorder::Global().running()) {
      obs::TimeseriesRecorder::Options ts_options;
      ts_options.snapshot_interval_s =
          flags.GetDouble("timeseries_interval", 1.0);
      if (auto status = obs::TimeseriesRecorder::Global().Start(ts_options);
          !status.ok()) {
        HOSR_LOG(Warning) << "timeseries recorder: " << status;
      }
    }
    admin = std::make_unique<obs::AdminServer>(
        obs::AdminServer::Options{.port = admin_port});
    if (auto status = admin->Start(); !status.ok()) return Fail(status);
    admin->SetVar("binary", "hosr_serve");
    admin->SetVar("model", model_name);
    admin->SetVar("snapshot", snapshot_path);
    admin->SetVar("dispatch_level", kernels::Active().name);
    admin->SetVar("forced_scalar", kernels::ForcedScalar() ? "true" : "false");
    admin->SetVar("dims", util::StrFormat("%ux%u dim %u", num_users,
                                          num_items, dim));
    const std::string admin_port_file = flags.GetString("admin_port_file", "");
    if (!admin_port_file.empty()) {
      if (auto status = util::WriteFileAtomic(
              admin_port_file, util::StrFormat("%d\n", admin->port()));
          !status.ok()) {
        return Fail(status);
      }
    }
    // The readiness probe runs below, once the engine (or the snapshot
    // manager's initial state) exists.
  }

  // With faults armed, a request's outcome is a pure function of its stream
  // index only when every request actually executes; which requests hit the
  // shared cache depends on thread timing. Default the cache off under
  // injection so same-seed runs report identical outcome counts — an
  // explicit --cache_capacity restores it.
  const bool faults_armed = fault::FaultRegistry::Global().armed();
  auto cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity", 65536));
  if (faults_armed && !flags.Has("cache_capacity")) {
    if (cache_capacity > 0) {
      std::fprintf(stderr,
                   "note: fault injection armed, result cache disabled for "
                   "deterministic outcomes (pass --cache_capacity to force)\n");
    }
    cache_capacity = 0;
  }
  std::unique_ptr<serve::ResultCache> cache;
  if (cache_capacity > 0) {
    cache = std::make_unique<serve::ResultCache>(serve::ResultCache::Options{
        .capacity = cache_capacity,
        .num_shards =
            static_cast<size_t>(flags.GetInt("cache_shards", 16))});
  }

  // Hardening: deadline budget, bounded retries with jittered backoff, and
  // (unless --degraded=0) a popularity fallback so engine faults degrade
  // instead of failing.
  const bool degraded_enabled = flags.GetBool("degraded", true);
  serve::HardenedOptions hardened;
  hardened.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  hardened.retry.max_attempts = 1 + static_cast<int>(flags.GetInt("retries", 2));
  hardened.retry.initial_backoff_ms = flags.GetDouble("retry_backoff_ms", 2.0);
  hardened.retry.max_backoff_ms =
      flags.GetDouble("retry_backoff_max_ms", 8.0);
  hardened.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  // Serving stack: server mode without a batcher defaults to the
  // SnapshotManager (hot reload armed); everything else pins the startup
  // snapshot in a fixed engine. The batcher holds one engine for its
  // lifetime, so --batch forces the fixed path.
  const auto batch = static_cast<size_t>(flags.GetInt("batch", 0));
  const bool server_mode = flags.Has("port");
  const bool use_manager =
      server_mode && batch == 0 && flags.GetBool("reload", true);
  std::unique_ptr<serve::SnapshotManager> manager;
  std::unique_ptr<serve::InferenceEngine> engine;
  std::unique_ptr<serve::DegradedRanker> degraded;
  std::unique_ptr<serve::HardenedExecutor> executor;
  if (use_manager) {
    serve::SnapshotManager::Options manager_options;
    manager_options.path = snapshot_path;
    manager_options.seen = seen;
    manager_options.hardened = hardened;
    manager_options.degraded_fallback = degraded_enabled;
    manager_options.probe_users =
        static_cast<uint32_t>(flags.GetInt("probe_users", 8));
    manager_options.probe_k =
        static_cast<uint32_t>(flags.GetInt("probe_k", 10));
    manager_options.poll_interval_s =
        flags.GetDouble("reload_poll_ms", 500.0) / 1000.0;
    manager_options.cache = cache.get();
    auto created = serve::SnapshotManager::Create(
        std::move(manager_options), std::move(snapshot).value());
    if (!created.ok()) return Fail(created.status());
    manager = std::move(created).value();
    if (flags.GetBool("reload_watch", false)) manager->StartWatcher();
  } else {
    engine = std::make_unique<serve::InferenceEngine>(
        std::move(snapshot).value(), seen);
    if (degraded_enabled) {
      degraded = std::make_unique<serve::DegradedRanker>(engine.get());
    }
    hardened.degraded = degraded.get();
    executor = std::make_unique<serve::HardenedExecutor>(engine.get(),
                                                         hardened);
  }

  // Readiness flips true only after the active engine answers a real probe
  // query, so /readyz == 200 means scoring actually works.
  if (admin != nullptr) {
    std::shared_ptr<const serve::ServingState> probe_state;
    const serve::InferenceEngine* probe_engine = engine.get();
    if (manager != nullptr) {
      probe_state = manager->Acquire();
      probe_engine = &probe_state->engine();
    }
    auto probe = probe_engine->TryTopKForUser(0, 1, serve::kNoDeadline,
                                              serve::kNoFaultToken);
    if (probe.ok()) {
      obs::HealthTracker::Global().SetReady(true);
    } else {
      HOSR_LOG(Warning) << "readiness probe failed, /readyz stays 503: "
                        << probe.status();
    }
  }

  // Admin surfaces for the reload path: /varz mirrors the active snapshot
  // version/path/load-time and reload totals (refreshed from the reload
  // listener after every attempt), POST /reloadz triggers a synchronous
  // validated swap.
  if (admin != nullptr && manager != nullptr) {
    obs::AdminServer* admin_ptr = admin.get();
    manager->SetReloadListener(
        [admin_ptr](const serve::SnapshotManager::Stats& stats) {
          admin_ptr->SetVar("snapshot_version",
                            util::StrFormat("%llu", static_cast<unsigned long long>(
                                                        stats.active_version)));
          admin_ptr->SetVar("snapshot_path", stats.active_path);
          admin_ptr->SetVar(
              "snapshot_load_unix_s",
              util::StrFormat("%lld", static_cast<long long>(
                                          stats.active_load_unix_s)));
          admin_ptr->SetVar("reloads_ok",
                            util::StrFormat("%llu", static_cast<unsigned long long>(
                                                        stats.reloads_ok)));
          admin_ptr->SetVar(
              "reloads_rejected",
              util::StrFormat("%llu", static_cast<unsigned long long>(
                                          stats.reloads_rejected)));
        });
    serve::SnapshotManager* manager_ptr = manager.get();
    admin->SetReloadHandler([manager_ptr]() {
      const util::Status status = manager_ptr->ReloadNow();
      obs::HttpResponse response;
      if (status.ok()) {
        const serve::SnapshotManager::Stats stats = manager_ptr->GetStats();
        response.status_code = 200;
        response.body = util::StrFormat(
            "{\"status\": \"ok\", \"active_version\": %llu, "
            "\"active_path\": \"%s\"}\n",
            static_cast<unsigned long long>(stats.active_version),
            obs::JsonEscapeString(stats.active_path).c_str());
      } else {
        response.status_code = 503;
        response.body = util::StrFormat(
            "{\"status\": \"rejected\", \"error\": \"%s\"}\n",
            obs::JsonEscapeString(status.ToString()).c_str());
      }
      return response;
    });
  }

  std::unique_ptr<serve::RequestBatcher> batcher;
  if (batch > 0) {
    batcher = std::make_unique<serve::RequestBatcher>(
        engine.get(), serve::RequestBatcher::Options{
                     .max_batch_size = batch,
                     .queue_capacity = static_cast<size_t>(
                         flags.GetInt("queue_capacity", 4096)),
                     .max_linger_us = flags.GetInt("linger_us", 100),
                     .cache = cache.get(),
                     .hardened = hardened});
  }

  // ---- Server mode: speak the wire protocol until told to stop. --------
  if (server_mode) {
    std::unique_ptr<serve::CircuitBreaker> breaker;
    if (flags.GetBool("breaker", false)) {
      serve::CircuitBreaker::Options breaker_options;
      breaker_options.window =
          static_cast<size_t>(flags.GetInt("breaker_window", 256));
      breaker_options.min_samples =
          static_cast<size_t>(flags.GetInt("breaker_min_samples", 32));
      breaker_options.trip_ratio =
          flags.GetDouble("breaker_trip_ratio", 0.5);
      breaker_options.open_ms = flags.GetDouble("breaker_open_ms", 250.0);
      breaker_options.half_open_probes =
          static_cast<size_t>(flags.GetInt("breaker_probes", 8));
      breaker = std::make_unique<serve::CircuitBreaker>(breaker_options);
    }
    net::NetServer::Options server_options;
    server_options.port = static_cast<int>(flags.GetInt("port", 0));
    server_options.bind_any = flags.GetBool("bind_any", false);
    server_options.worker_threads =
        static_cast<int>(flags.GetInt("workers", 4));
    server_options.max_pending_conns =
        static_cast<size_t>(flags.GetInt("max_pending_conns", 64));
    server_options.read_timeout_ms =
        static_cast<int>(flags.GetInt("net_read_timeout_ms", 30000));
    server_options.engine = engine.get();
    server_options.executor = executor.get();
    server_options.batcher = batcher.get();
    server_options.cache = cache.get();
    server_options.manager = manager.get();
    server_options.breaker = breaker.get();
    server_options.max_queue_delay_ms =
        flags.GetDouble("max_queue_delay_ms", 0.0);
    net::NetServer server(server_options);
    if (auto status = server.Start(); !status.ok()) return Fail(status);
    const std::string port_file = flags.GetString("port_file", "");
    if (!port_file.empty()) {
      if (auto status = util::WriteFileAtomic(
              port_file, util::StrFormat("%d\n", server.port()));
          !status.ok()) {
        return Fail(status);
      }
    }
    std::signal(SIGTERM, HandleShutdownSignal);
    std::signal(SIGINT, HandleShutdownSignal);
    const double duration_s = flags.GetDouble("serve_duration_s", 0.0);
    const util::WallTimer serve_timer;
    while (g_shutdown_requested == 0) {
      if (duration_s > 0.0 && serve_timer.ElapsedSeconds() >= duration_s) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    HOSR_LOG(Info) << "draining: completing in-flight requests";
    server.Stop();  // graceful: answers everything already read
    if (batcher != nullptr) batcher->Stop();
    if (manager != nullptr) manager->Stop();  // join the watcher
    const double elapsed = serve_timer.ElapsedSeconds();

    const net::NetServer::Stats stats = server.GetStats();
    serve::ResultCache::Stats cache_stats;
    if (cache != nullptr) cache_stats = cache->GetStats();
    serve::SnapshotManager::Stats reload_stats;
    if (manager != nullptr) reload_stats = manager->GetStats();
    serve::CircuitBreaker::Stats breaker_stats;
    if (breaker != nullptr) breaker_stats = breaker->GetStats();
    const std::string summary = util::StrFormat(
        "{\"mode\": \"server\", \"snapshot\": \"%s\", \"model\": \"%s\", "
        "\"port\": %d, \"workers\": %d, \"batched\": %s, "
        "\"elapsed_seconds\": %.4f, "
        "\"net\": {\"accepted\": %llu, \"shed\": %llu, "
        "\"delay_shed\": %llu, \"breaker_rejected\": %llu, "
        "\"requests\": %llu, "
        "\"responses\": %llu, \"protocol_errors\": %llu, "
        "\"read_timeouts\": %llu, \"bytes_read\": %llu, "
        "\"bytes_written\": %llu}, "
        "\"cache\": {\"enabled\": %s, \"hits\": %llu, \"misses\": %llu, "
        "\"stale_hits\": %llu, \"stale_puts\": %llu}, "
        "\"reload\": {\"enabled\": %s, \"active_version\": %llu, "
        "\"reloads_ok\": %llu, \"reloads_rejected\": %llu}, "
        "\"breaker\": {\"enabled\": %s, \"state\": %d, \"trips\": %llu, "
        "\"rejected\": %llu}, "
        "\"faults_injected\": %llu}",
        snapshot_path.c_str(), model_name.c_str(), server.port(),
        server_options.worker_threads, batcher != nullptr ? "true" : "false",
        elapsed, static_cast<unsigned long long>(stats.accepted),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.delay_shed),
        static_cast<unsigned long long>(stats.breaker_rejected),
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.responses),
        static_cast<unsigned long long>(stats.protocol_errors),
        static_cast<unsigned long long>(stats.read_timeouts),
        static_cast<unsigned long long>(stats.bytes_read),
        static_cast<unsigned long long>(stats.bytes_written),
        cache != nullptr ? "true" : "false",
        static_cast<unsigned long long>(cache_stats.hits),
        static_cast<unsigned long long>(cache_stats.misses),
        static_cast<unsigned long long>(cache_stats.stale_hits),
        static_cast<unsigned long long>(cache_stats.stale_puts),
        manager != nullptr ? "true" : "false",
        static_cast<unsigned long long>(reload_stats.active_version),
        static_cast<unsigned long long>(reload_stats.reloads_ok),
        static_cast<unsigned long long>(reload_stats.reloads_rejected),
        breaker != nullptr ? "true" : "false",
        static_cast<int>(breaker_stats.state),
        static_cast<unsigned long long>(breaker_stats.trips),
        static_cast<unsigned long long>(breaker_stats.rejected),
        static_cast<unsigned long long>(
            fault::FaultRegistry::Global().TotalInjected()));
    std::printf("%s\n", summary.c_str());
    const std::string summary_out = flags.GetString("summary_out", "");
    if (!summary_out.empty()) {
      if (auto status = util::WriteFileAtomic(summary_out, summary + "\n");
          !status.ok()) {
        return Fail(status);
      }
    }
    if (admin != nullptr) admin->Stop();
    obs::FlushArtifacts();
    return 0;
  }

  // ---- Replay mode: in-process scripted or synthetic stream. -----------
  const auto default_k = static_cast<uint32_t>(flags.GetInt("k", 10));
  std::vector<net::StreamRequest> requests;
  const std::string requests_path = flags.GetString("requests", "");
  if (!requests_path.empty()) {
    auto loaded = net::LoadRequestScript(requests_path, num_users, default_k);
    if (!loaded.ok()) return Fail(loaded.status());
    requests = std::move(loaded).value();
  } else {
    requests = net::SyntheticStream(
        num_users, static_cast<size_t>(flags.GetInt("num_requests", 10000)),
        default_k, flags.GetDouble("zipf", 0.9),
        static_cast<uint64_t>(flags.GetInt("seed", 1)));
  }

  size_t clients = static_cast<size_t>(flags.GetInt("clients", 0));
  if (clients == 0) {
    clients = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  clients = std::min(clients, requests.size());
  const double qps_target = flags.GetDouble("qps", 0.0);

  // Replay: each client thread owns a contiguous slice of the stream and,
  // under --qps, paces itself to its share of the target rate. Every
  // request's fault token is its stream index, so injected outcomes are
  // independent of thread scheduling.
  std::vector<std::vector<int64_t>> latencies_ns(clients);
  std::vector<net::Outcomes> outcomes_per_client(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const util::WallTimer replay_timer;
  {
    HOSR_TRACE_SPAN("serve/replay");
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const size_t begin = c * requests.size() / clients;
        const size_t end = (c + 1) * requests.size() / clients;
        auto& recorded = latencies_ns[c];
        auto& tally = outcomes_per_client[c];
        recorded.reserve(end - begin);
        const double per_thread_period_s =
            qps_target > 0.0 ? static_cast<double>(clients) / qps_target
                             : 0.0;
        auto next_send = std::chrono::steady_clock::now();
        for (size_t i = begin; i < end; ++i) {
          if (per_thread_period_s > 0.0) {
            std::this_thread::sleep_until(next_send);
            next_send += std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(per_thread_period_s));
          }
          const net::StreamRequest& r = requests[i];
          // One trace id per request (stream index + 1 so 0 stays "none"):
          // every span below — and the batcher workers, via the context
          // captured in Submit() — tags with it, and latency-histogram
          // exemplars resolve back to it in /tracez.
          const obs::ScopedRequestContext request_scope(
              obs::RequestContext{static_cast<uint64_t>(i) + 1, r.user, r.k});
          const auto start = std::chrono::steady_clock::now();
          util::StatusOr<serve::ServeResponse> response =
              util::Status::Internal("unreached");
          if (batcher != nullptr) {
            response = batcher->Submit(r.user, r.k).get();
          } else {
            bool served_from_cache = false;
            if (cache != nullptr) {
              if (auto hit = cache->Get(r.user, r.k)) {
                response = serve::ServeResponse{std::move(*hit),
                                                /*degraded=*/false};
                served_from_cache = true;
              }
            }
            if (!served_from_cache) {
              response = executor->Execute(r.user, r.k, /*token=*/i);
              if (response.ok() && !response->degraded && cache != nullptr) {
                cache->Put(r.user, r.k, response->items);
              }
            }
          }
          tally.Count(response);
          recorded.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed = replay_timer.ElapsedSeconds();

  net::Outcomes outcomes;
  for (const net::Outcomes& o : outcomes_per_client) outcomes += o;

  std::vector<int64_t> all_ns;
  all_ns.reserve(requests.size());
  for (const auto& per_client : latencies_ns) {
    all_ns.insert(all_ns.end(), per_client.begin(), per_client.end());
  }
  const net::LatencySummary latency = net::SummarizeLatencies(&all_ns);
  const double qps =
      elapsed > 0.0 ? static_cast<double>(all_ns.size()) / elapsed : 0.0;

  serve::ResultCache::Stats cache_stats;
  if (cache != nullptr) cache_stats = cache->GetStats();
  const double hit_rate = cache != nullptr ? cache->HitRate() : 0.0;

  HOSR_GAUGE("serve/replay_qps").Set(qps);
  HOSR_GAUGE("serve/replay_p50_us").Set(latency.p50_us);
  HOSR_GAUGE("serve/replay_p95_us").Set(latency.p95_us);
  HOSR_GAUGE("serve/replay_p99_us").Set(latency.p99_us);
  HOSR_GAUGE("serve/cache_hit_rate").Set(hit_rate);

  const uint64_t faults_injected =
      fault::FaultRegistry::Global().TotalInjected();
  const std::string summary = util::StrFormat(
      "{\"snapshot\": \"%s\", \"model\": \"%s\", \"num_users\": %u, "
      "\"num_items\": %u, \"dim\": %u, \"requests\": %zu, \"clients\": %zu, "
      "\"batched\": %s, \"deadline_ms\": %.3f, \"elapsed_seconds\": %.4f, "
      "\"qps\": %.1f, "
      "\"latency_us\": {\"mean\": %.2f, \"p50\": %.2f, \"p95\": %.2f, "
      "\"p99\": %.2f}, \"cache\": {\"enabled\": %s, \"hits\": %llu, "
      "\"misses\": %llu, \"evictions\": %llu, \"hit_rate\": %.4f}, "
      "\"outcomes\": {\"ok\": %llu, \"degraded\": %llu, "
      "\"deadline_exceeded\": %llu, \"shed\": %llu, \"error\": %llu}, "
      "\"faults_injected\": %llu}",
      snapshot_path.c_str(), model_name.c_str(), num_users, num_items, dim,
      all_ns.size(), clients, batcher != nullptr ? "true" : "false",
      hardened.deadline_ms, elapsed,
      qps, latency.mean_us, latency.p50_us, latency.p95_us, latency.p99_us,
      cache != nullptr ? "true" : "false",
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(cache_stats.evictions), hit_rate,
      static_cast<unsigned long long>(outcomes.ok),
      static_cast<unsigned long long>(outcomes.degraded),
      static_cast<unsigned long long>(outcomes.deadline_exceeded),
      static_cast<unsigned long long>(outcomes.shed),
      static_cast<unsigned long long>(outcomes.error),
      static_cast<unsigned long long>(faults_injected));
  std::printf("%s\n", summary.c_str());

  const std::string summary_out = flags.GetString("summary_out", "");
  if (!summary_out.empty()) {
    if (auto status = util::WriteFileAtomic(summary_out, summary + "\n");
        !status.ok()) {
      return Fail(status);
    }
  }
  if (batcher != nullptr) batcher->Stop();
  if (admin != nullptr) {
    // Optional grace period so scripts can probe the endpoints after the
    // replay finished (summary already printed above).
    const double linger_s = flags.GetDouble("admin_linger_s", 0.0);
    if (linger_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
    }
    admin->Stop();
  }
  obs::FlushArtifacts();
  return 0;
}
