// bench_diff — regression gate over two bench_metrics directories.
//
// run_benches.sh leaves one metrics JSON per bench in bench_metrics/
// (--metrics_out schema: {"metrics": {"name": {"type": "gauge", ...}}}).
// bench_diff compares every gauge in the baseline directory against the
// candidate directory and prints per-gauge deltas:
//
//   bench_diff --baseline=DIR --candidate=DIR
//             [--threshold_pct=10]   relative regression tolerance
//             [--filter=SUBSTR]      only gauges whose name contains SUBSTR
//
// Direction is inferred from the metric name (docs/OBSERVABILITY.md units
// convention): throughput-like gauges (_qps, _gops, _speedup,
// _per_sec, _rate) regress when they DROP; latency/duration-like gauges
// (_us, _ms, _seconds, _p50/_p95/_p99) regress when they RISE. Gauges with
// no recognizable direction are reported but never gate.
//
// A baseline file or gauge missing from the candidate directory is an
// explicit failure, not a skip: a metric silently vanishing from a bench
// almost always means lost coverage, and a gate that shrugs at it would
// green-light exactly the regressions it exists to catch.
//
// Exit status: 0 = no gauge regressed beyond --threshold_pct and nothing is
// missing from the candidate, 1 = at least one regression or missing
// file/gauge (making it usable directly as a CI gate), 2 = usage/IO error.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_diff_lib.h"
#include "util/fileio.h"
#include "util/flags.h"

namespace {

using hosr::tools::DiffMetrics;
using hosr::tools::DiffOptions;
using hosr::tools::DiffResult;
using hosr::tools::Direction;
using hosr::tools::GaugeDelta;
using hosr::util::Flags;
using hosr::util::ReadFileToString;

std::vector<std::string> ListJsonFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return files;
  while (const struct dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.rfind(".json") == name.size() - 5) {
      files.push_back(name);
    }
  }
  closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

std::map<std::string, std::string> ReadMetricsDir(
    const std::string& dir, const std::vector<std::string>& files) {
  std::map<std::string, std::string> contents;
  for (const std::string& file : files) {
    auto json = ReadFileToString(dir + "/" + file);
    if (json.ok()) contents[file] = std::move(json).value();
  }
  return contents;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string baseline_dir = flags.GetString("baseline", "");
  const std::string candidate_dir = flags.GetString("candidate", "");
  if (baseline_dir.empty() || candidate_dir.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff --baseline=DIR --candidate=DIR "
                 "[--threshold_pct=10] [--filter=SUBSTR]\n");
    return 2;
  }
  DiffOptions options;
  options.threshold_pct = flags.GetDouble("threshold_pct", 10.0);
  options.filter = flags.GetString("filter", "");

  const std::vector<std::string> baseline_files = ListJsonFiles(baseline_dir);
  if (baseline_files.empty()) {
    std::fprintf(stderr, "error: no .json files in %s\n",
                 baseline_dir.c_str());
    return 2;
  }
  const auto baseline = ReadMetricsDir(baseline_dir, baseline_files);
  const auto candidate =
      ReadMetricsDir(candidate_dir, ListJsonFiles(candidate_dir));

  const DiffResult result = DiffMetrics(baseline, candidate, options);
  for (const GaugeDelta& delta : result.deltas) {
    std::printf("%-14s %-44s %14.4g -> %14.4g  %+8.2f%%%s\n",
                delta.file.c_str(), delta.name.c_str(), delta.baseline,
                delta.candidate, delta.delta_pct,
                delta.regressed ? "  REGRESSED"
                                : (delta.direction == Direction::kUnknown
                                       ? "  (info only)"
                                       : ""));
  }
  for (const std::string& file : result.missing_files) {
    std::printf("%-14s MISSING from candidate dir\n", file.c_str());
  }
  for (const GaugeDelta& delta : result.missing_gauges) {
    std::printf("%-14s %-44s %14.4g -> MISSING from candidate\n",
                delta.file.c_str(), delta.name.c_str(), delta.baseline);
  }

  std::printf("compared %zu gauges, %zu regression%s beyond %.1f%%, "
              "%zu missing\n",
              result.compared, result.regressions,
              result.regressions == 1 ? "" : "s", options.threshold_pct,
              result.missing_files.size() + result.missing_gauges.size());
  if (result.compared == 0 && !result.failed()) {
    std::fprintf(stderr,
                 "error: no overlapping gauges between %s and %s\n",
                 baseline_dir.c_str(), candidate_dir.c_str());
    return 2;
  }
  return result.failed() ? 1 : 0;
}
