// bench_diff — regression gate over two bench_metrics directories.
//
// run_benches.sh leaves one metrics JSON per bench in bench_metrics/
// (--metrics_out schema: {"metrics": {"name": {"type": "gauge", ...}}}).
// bench_diff compares every gauge that appears in both a baseline and a
// candidate directory and prints per-gauge deltas:
//
//   bench_diff --baseline=DIR --candidate=DIR
//             [--threshold_pct=10]   relative regression tolerance
//             [--filter=SUBSTR]      only gauges whose name contains SUBSTR
//
// Direction is inferred from the metric name (docs/OBSERVABILITY.md units
// convention): throughput-like gauges (_qps, _gops, _speedup,
// _per_sec, _rate) regress when they DROP; latency/duration-like gauges
// (_us, _ms, _seconds, _p50/_p95/_p99) regress when they RISE. Gauges with
// no recognizable direction are reported but never gate.
//
// Exit status: 0 = no gauge regressed beyond --threshold_pct, 1 = at least
// one did (making it usable directly as a CI gate), 2 = usage/IO error.
#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/fileio.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using hosr::util::Flags;
using hosr::util::ReadFileToString;
using hosr::util::StrFormat;

enum class Direction { kHigherIsBetter, kLowerIsBetter, kUnknown };

Direction DirectionFor(const std::string& name) {
  static const char* kHigher[] = {"_qps",   "_gops",  "_speedup", "_per_sec",
                                  "_rate",  "_flops", "recall",   "_map",
                                  "ndcg",   "precision"};
  static const char* kLower[] = {"_us",      "_ms",  "_ns",  "_seconds",
                                 "_p50",     "_p95", "_p99", "latency",
                                 "_penalty"};
  for (const char* suffix : kHigher) {
    if (name.find(suffix) != std::string::npos) {
      return Direction::kHigherIsBetter;
    }
  }
  for (const char* suffix : kLower) {
    if (name.find(suffix) != std::string::npos) {
      return Direction::kLowerIsBetter;
    }
  }
  return Direction::kUnknown;
}

// Pulls every {"type": "gauge", "value": V} entry out of a registry dump
// without a full JSON parser: the emitter (Registry::ToJson) writes one
// key per entry as `"name": {"type": "gauge", "value": N}`.
std::map<std::string, double> ExtractGauges(const std::string& json) {
  std::map<std::string, double> gauges;
  const std::string marker = "{\"type\": \"gauge\", \"value\": ";
  size_t pos = 0;
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    // The gauge's name is the quoted key immediately before the marker:
    // ... "kernels/bench/dot_d64_best_gops": {"type": "gauge", ...
    const size_t colon = json.rfind(':', pos);
    if (colon == std::string::npos) break;
    const size_t name_end = json.rfind('"', colon);
    const size_t name_begin =
        name_end == std::string::npos ? std::string::npos
                                      : json.rfind('"', name_end - 1);
    if (name_begin == std::string::npos) {
      pos += marker.size();
      continue;
    }
    const std::string name =
        json.substr(name_begin + 1, name_end - name_begin - 1);
    const double value = std::strtod(json.c_str() + pos + marker.size(),
                                     nullptr);
    gauges[name] = value;
    pos += marker.size();
  }
  return gauges;
}

std::vector<std::string> ListJsonFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return files;
  while (const struct dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.rfind(".json") == name.size() - 5) {
      files.push_back(name);
    }
  }
  closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string baseline_dir = flags.GetString("baseline", "");
  const std::string candidate_dir = flags.GetString("candidate", "");
  if (baseline_dir.empty() || candidate_dir.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff --baseline=DIR --candidate=DIR "
                 "[--threshold_pct=10] [--filter=SUBSTR]\n");
    return 2;
  }
  const double threshold_pct = flags.GetDouble("threshold_pct", 10.0);
  const std::string filter = flags.GetString("filter", "");

  const std::vector<std::string> files = ListJsonFiles(baseline_dir);
  if (files.empty()) {
    std::fprintf(stderr, "error: no .json files in %s\n",
                 baseline_dir.c_str());
    return 2;
  }

  size_t compared = 0;
  size_t regressions = 0;
  for (const std::string& file : files) {
    auto baseline_json = ReadFileToString(baseline_dir + "/" + file);
    auto candidate_json = ReadFileToString(candidate_dir + "/" + file);
    if (!baseline_json.ok()) continue;
    if (!candidate_json.ok()) {
      std::printf("%-28s missing from candidate dir, skipped\n",
                  file.c_str());
      continue;
    }
    const auto baseline = ExtractGauges(baseline_json.value());
    const auto candidate = ExtractGauges(candidate_json.value());
    for (const auto& [name, base_value] : baseline) {
      if (!filter.empty() && name.find(filter) == std::string::npos) {
        continue;
      }
      const auto it = candidate.find(name);
      if (it == candidate.end()) continue;
      const double cand_value = it->second;
      ++compared;
      const double delta_pct =
          base_value != 0.0
              ? (cand_value - base_value) / std::fabs(base_value) * 100.0
              : (cand_value == 0.0 ? 0.0 : 100.0);
      const Direction direction = DirectionFor(name);
      bool regressed = false;
      if (direction == Direction::kHigherIsBetter) {
        regressed = delta_pct < -threshold_pct;
      } else if (direction == Direction::kLowerIsBetter) {
        regressed = delta_pct > threshold_pct;
      }
      if (regressed) ++regressions;
      std::printf("%-14s %-44s %14.4g -> %14.4g  %+8.2f%%%s\n",
                  file.c_str(), name.c_str(), base_value, cand_value,
                  delta_pct,
                  regressed ? "  REGRESSED"
                            : (direction == Direction::kUnknown
                                   ? "  (info only)"
                                   : ""));
    }
  }

  std::printf("compared %zu gauges, %zu regression%s beyond %.1f%%\n",
              compared, regressions, regressions == 1 ? "" : "s",
              threshold_pct);
  if (compared == 0) {
    std::fprintf(stderr,
                 "error: no overlapping gauges between %s and %s\n",
                 baseline_dir.c_str(), candidate_dir.c_str());
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
