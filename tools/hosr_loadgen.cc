// hosr_loadgen — remote load generator for a hosr_serve --port server.
//
// Dials N persistent connections, replays the same scripted or synthetic
// request stream hosr_serve replays in process (net/stream.h, so a given
// (--seed, --zipf, --k, --num_requests) produces the identical stream), and
// reports achieved QPS, exact p50/p95/p99 wire latency, and per-outcome
// tallies as JSON — on stdout and to --summary_out.
//
//   hosr_loadgen --port=N [--host=127.0.0.1]
//                [--requests=FILE]        scripted stream: "user [k]" lines
//                [--num_requests=10000]   synthetic stream length
//                [--k=10] [--zipf=0.9] [--seed=1]
//                [--connections=4]        concurrent client connections
//                [--qps=0]                target rate (0 = max speed)
//                [--deadline_ms=0]        wire deadline per request
//                [--connect_timeout_ms=5000] [--read_timeout_ms=30000]
//                [--reconnect_backoff_ms=0]  backoff before each failed
//                                         redial (decorrelated jitter via
//                                         RetryPolicy, reset on success);
//                                         0 = redial immediately
//                [--reconnect_backoff_max_ms=250]
//                [--verify_snapshot=FILE] check every OK answer is
//                                         bit-identical to a local
//                                         InferenceEngine over this snapshot
//                [--verify_snapshot_b=FILE]  hot-swap runs: accept answers
//                                         matching EITHER snapshot's engine
//                                         (counted separately as
//                                         matched_a / matched_b)
//                [--verify_data=DIR]      seen-item filtering for the
//                                         verify engine (must match the
//                                         server's --data)
//                [--summary_out=FILE]
//
// Each request's trace_id is its stream index + 1, matching hosr_serve's
// replay convention — so server-side spans, exemplars, and injected fault
// outcomes line up one-to-one with the stream. A connection the server
// closes (protocol fault, shed, drain) is counted (closed / shed / error)
// and redialed; requests that never got written after the server vanished
// count as not_sent, so ok + degraded + deadline_exceeded + shed + error +
// closed + not_sent always equals the stream length.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/io.h"
#include "net/client.h"
#include "net/stream.h"
#include "serve/engine.h"
#include "serve/retry.h"
#include "serve/snapshot.h"
#include "util/fileio.h"
#include "util/flags.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace hosr;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Outcomes plus the wire-only failure classes replay mode cannot have.
struct WireTally {
  net::Outcomes outcomes;
  uint64_t closed = 0;    // connection dropped mid-request (server fault/drain)
  uint64_t not_sent = 0;  // reconnect failed; request never hit the wire
  uint64_t reconnects = 0;
  uint64_t backoff_waits = 0;  // reconnect delays actually slept
  uint64_t verify_failures = 0;
  uint64_t matched_a = 0;  // verified answers bit-identical to snapshot A
  uint64_t matched_b = 0;  // ... to snapshot B (--verify_snapshot_b)

  WireTally& operator+=(const WireTally& other) {
    outcomes += other.outcomes;
    closed += other.closed;
    not_sent += other.not_sent;
    reconnects += other.reconnects;
    backoff_waits += other.backoff_waits;
    verify_failures += other.verify_failures;
    matched_a += other.matched_a;
    matched_b += other.matched_b;
    return *this;
  }
};

// Jittered pacing between redial attempts so a fleet of loadgen
// connections does not hot-spin the accept queue while the server drains
// or restarts. Decorrelated jitter comes from serve::RetryPolicy; one
// successful reconnect resets the schedule back to the initial backoff.
class ReconnectBackoff {
 public:
  ReconnectBackoff(double initial_ms, double max_ms, uint64_t seed)
      : initial_ms_(initial_ms), max_ms_(max_ms), seed_(seed) {
    Reset();
  }

  // Sleeps for the next planned delay (no-op when backoff is disabled).
  // Returns true when it actually slept.
  bool WaitBeforeRedial() {
    if (initial_ms_ <= 0.0) return false;
    double delay_ms = policy_->NextDelayMs();
    if (delay_ms < 0.0) {
      // The policy's attempt cap is effectively unreachable; a negative
      // here means the schedule ran dry anyway — keep waiting at the cap.
      delay_ms = max_ms_;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
    return true;
  }

  void Reset() {
    serve::RetryPolicy::Options options;
    options.max_attempts = 1 << 30;  // paced by the caller's stream, not us
    options.initial_backoff_ms = initial_ms_;
    options.max_backoff_ms = max_ms_;
    policy_.emplace(options, seed_);
  }

 private:
  double initial_ms_;
  double max_ms_;
  uint64_t seed_;
  std::optional<serve::RetryPolicy> policy_;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::Parse(argc, argv);
  if (!flags.Has("port")) {
    std::fprintf(stderr, "usage: hosr_loadgen --port=N [flags]\n"
                         "  see the header of tools/hosr_loadgen.cc\n");
    return 2;
  }
  const int port = static_cast<int>(flags.GetInt("port", 0));
  const std::string host = flags.GetString("host", "127.0.0.1");
  net::NetClient::Options client_options;
  client_options.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect_timeout_ms", 5000));
  client_options.read_timeout_ms =
      static_cast<int>(flags.GetInt("read_timeout_ms", 30000));

  // The server knows the model's user space; ask it before generating the
  // synthetic stream so loadgen needs no local copy of the snapshot.
  auto probe = net::NetClient::Connect(host, port, client_options);
  if (!probe.ok()) return Fail(probe.status());
  auto info = probe->Info();
  if (!info.ok()) return Fail(info.status());
  const uint32_t num_users = info->num_users;

  const auto default_k = static_cast<uint32_t>(flags.GetInt("k", 10));
  std::vector<net::StreamRequest> requests;
  const std::string requests_path = flags.GetString("requests", "");
  if (!requests_path.empty()) {
    auto loaded = net::LoadRequestScript(requests_path, num_users, default_k);
    if (!loaded.ok()) return Fail(loaded.status());
    requests = std::move(loaded).value();
  } else {
    requests = net::SyntheticStream(
        num_users, static_cast<size_t>(flags.GetInt("num_requests", 10000)),
        default_k, flags.GetDouble("zipf", 0.9),
        static_cast<uint64_t>(flags.GetInt("seed", 1)));
  }

  // Bit-identity oracle: a local engine over the same snapshot. Only OK,
  // non-degraded, non-cached full answers are compared — those must equal
  // InferenceEngine::TopKForUser exactly (cached answers equal an earlier
  // identical query, and degraded answers come from the fallback ranker).
  // With --verify_snapshot_b (hot-swap runs) an answer matching EITHER
  // engine passes; anything matching neither is a verify failure, so a
  // reply blending two snapshots — the stale-cache hazard — is caught.
  std::unique_ptr<serve::InferenceEngine> verify_engine;
  std::unique_ptr<serve::InferenceEngine> verify_engine_b;
  const std::string verify_snapshot = flags.GetString("verify_snapshot", "");
  const std::string verify_snapshot_b =
      flags.GetString("verify_snapshot_b", "");
  if (verify_snapshot.empty() && !verify_snapshot_b.empty()) {
    return Fail(util::Status::InvalidArgument(
        "--verify_snapshot_b requires --verify_snapshot"));
  }
  if (!verify_snapshot.empty()) {
    // The oracle must filter the same seen items the server filters, or
    // the comparison is meaningless for any user with training history.
    std::unique_ptr<data::Dataset> verify_dataset;
    const std::string verify_data = flags.GetString("verify_data", "");
    if (!verify_data.empty()) {
      auto loaded = data::LoadDataset(verify_data);
      if (!loaded.ok()) return Fail(loaded.status());
      verify_dataset =
          std::make_unique<data::Dataset>(std::move(loaded).value());
    }
    const auto build_oracle =
        [&](const std::string& path)
        -> util::StatusOr<std::unique_ptr<serve::InferenceEngine>> {
      auto snapshot = serve::LoadSnapshot(path);
      if (!snapshot.ok()) return snapshot.status();
      if (snapshot->num_users() != num_users ||
          snapshot->num_items() != info->num_items) {
        return util::Status::InvalidArgument(util::StrFormat(
            "verify snapshot %s %ux%u does not match server %ux%u",
            path.c_str(), snapshot->num_users(), snapshot->num_items(),
            num_users, info->num_items));
      }
      // The engine copies the per-user item lists, so the dataset can die
      // with this scope.
      return std::make_unique<serve::InferenceEngine>(
          std::move(snapshot).value(),
          verify_dataset != nullptr ? &verify_dataset->interactions
                                    : nullptr);
    };
    auto oracle = build_oracle(verify_snapshot);
    if (!oracle.ok()) return Fail(oracle.status());
    verify_engine = std::move(oracle).value();
    if (!verify_snapshot_b.empty()) {
      auto oracle_b = build_oracle(verify_snapshot_b);
      if (!oracle_b.ok()) return Fail(oracle_b.status());
      verify_engine_b = std::move(oracle_b).value();
    }
  }

  size_t connections =
      static_cast<size_t>(flags.GetInt("connections", 4));
  connections = std::max<size_t>(1, std::min(connections, requests.size()));
  const double qps_target = flags.GetDouble("qps", 0.0);
  const auto deadline_ms =
      static_cast<uint32_t>(flags.GetInt("deadline_ms", 0));
  const double backoff_ms = flags.GetDouble("reconnect_backoff_ms", 0.0);
  const double backoff_max_ms =
      flags.GetDouble("reconnect_backoff_max_ms", 250.0);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::vector<std::vector<int64_t>> latencies_ns(connections);
  std::vector<WireTally> tallies(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const util::WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const size_t begin = c * requests.size() / connections;
      const size_t end = (c + 1) * requests.size() / connections;
      auto& recorded = latencies_ns[c];
      WireTally& tally = tallies[c];
      recorded.reserve(end - begin);
      ReconnectBackoff backoff(backoff_ms, backoff_max_ms, seed + c);
      auto client = net::NetClient::Connect(host, port, client_options);
      const double per_conn_period_s =
          qps_target > 0.0 ? static_cast<double>(connections) / qps_target
                           : 0.0;
      auto next_send = std::chrono::steady_clock::now();
      for (size_t i = begin; i < end; ++i) {
        if (per_conn_period_s > 0.0) {
          std::this_thread::sleep_until(next_send);
          next_send += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(per_conn_period_s));
        }
        if (!client.ok() || !client->connected()) {
          // Redial once per request, pacing with jittered backoff (when
          // enabled) so a draining server is not hammered; a down server
          // costs one not_sent tally each.
          if (backoff.WaitBeforeRedial()) ++tally.backoff_waits;
          if (client.ok()) {
            if (!client->Reconnect().ok()) {
              ++tally.not_sent;
              continue;
            }
          } else {
            client = net::NetClient::Connect(host, port, client_options);
            if (!client.ok()) {
              ++tally.not_sent;
              continue;
            }
          }
          ++tally.reconnects;
          backoff.Reset();  // the dial worked; next outage starts small
        }
        const net::StreamRequest& r = requests[i];
        const auto start = std::chrono::steady_clock::now();
        auto result = client->Query(r.user, r.k,
                                    /*trace_id=*/static_cast<uint64_t>(i) + 1,
                                    deadline_ms);
        recorded.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (result.ok()) {
          tally.outcomes.CountOk(result->degraded);
          if (verify_engine != nullptr && !result->degraded &&
              !result->served_from_cache) {
            if (result->items == verify_engine->TopKForUser(r.user, r.k)) {
              ++tally.matched_a;
            } else if (verify_engine_b != nullptr &&
                       result->items ==
                           verify_engine_b->TopKForUser(r.user, r.k)) {
              ++tally.matched_b;
            } else {
              ++tally.verify_failures;
            }
          }
          continue;
        }
        const util::StatusCode code = result.status().code();
        if (code == util::StatusCode::kUnavailable) {
          // Shed/drain/fault: the server said goodbye cleanly or the
          // connection died; either way this connection must redial —
          // paced, because a drain window answers every redial this way.
          ++tally.closed;
          if (backoff.WaitBeforeRedial()) ++tally.backoff_waits;
          if (client->Reconnect().ok()) {
            ++tally.reconnects;
            backoff.Reset();
          }
        } else {
          tally.outcomes.CountStatus(result.status());
          if (code == util::StatusCode::kDeadlineExceeded ||
              code == util::StatusCode::kIoError) {
            // Timeouts / transport errors leave the stream desynced.
            if (client->Reconnect().ok()) ++tally.reconnects;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = timer.ElapsedSeconds();

  WireTally total;
  for (const WireTally& t : tallies) total += t;
  std::vector<int64_t> all_ns;
  all_ns.reserve(requests.size());
  for (const auto& per_conn : latencies_ns) {
    all_ns.insert(all_ns.end(), per_conn.begin(), per_conn.end());
  }
  const net::LatencySummary latency = net::SummarizeLatencies(&all_ns);
  const uint64_t answered = total.outcomes.total();
  const double qps =
      elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0;

  const std::string summary = util::StrFormat(
      "{\"host\": \"%s\", \"port\": %d, \"requests\": %zu, "
      "\"connections\": %zu, \"deadline_ms\": %u, "
      "\"elapsed_seconds\": %.4f, \"qps\": %.1f, "
      "\"latency_us\": {\"mean\": %.2f, \"p50\": %.2f, \"p95\": %.2f, "
      "\"p99\": %.2f}, "
      "\"outcomes\": {\"ok\": %llu, \"degraded\": %llu, "
      "\"deadline_exceeded\": %llu, \"shed\": %llu, \"error\": %llu, "
      "\"closed\": %llu, \"not_sent\": %llu}, "
      "\"reconnects\": %llu, \"backoff_waits\": %llu, \"verified\": %s, "
      "\"verify_failures\": %llu, \"matched_a\": %llu, \"matched_b\": %llu}",
      host.c_str(), port, requests.size(), connections, deadline_ms,
      elapsed, qps, latency.mean_us, latency.p50_us, latency.p95_us,
      latency.p99_us,
      static_cast<unsigned long long>(total.outcomes.ok),
      static_cast<unsigned long long>(total.outcomes.degraded),
      static_cast<unsigned long long>(total.outcomes.deadline_exceeded),
      static_cast<unsigned long long>(total.outcomes.shed),
      static_cast<unsigned long long>(total.outcomes.error),
      static_cast<unsigned long long>(total.closed),
      static_cast<unsigned long long>(total.not_sent),
      static_cast<unsigned long long>(total.reconnects),
      static_cast<unsigned long long>(total.backoff_waits),
      verify_engine != nullptr ? "true" : "false",
      static_cast<unsigned long long>(total.verify_failures),
      static_cast<unsigned long long>(total.matched_a),
      static_cast<unsigned long long>(total.matched_b));
  std::printf("%s\n", summary.c_str());
  const std::string summary_out = flags.GetString("summary_out", "");
  if (!summary_out.empty()) {
    if (auto status = util::WriteFileAtomic(summary_out, summary + "\n");
        !status.ok()) {
      return Fail(status);
    }
  }
  // Verification failures are the one condition that must fail the process:
  // they mean the wire path changed an answer.
  return total.verify_failures == 0 ? 0 : 1;
}
