// Core comparison logic for the bench_diff regression gate, split from the
// CLI so tests can drive it on in-memory metric dumps (tests/toolkit_test.cc
// covers it). The binary in bench_diff.cc only handles flag parsing and
// directory IO.
#ifndef HOSR_TOOLS_BENCH_DIFF_LIB_H_
#define HOSR_TOOLS_BENCH_DIFF_LIB_H_

#include <map>
#include <string>
#include <vector>

namespace hosr::tools {

enum class Direction { kHigherIsBetter, kLowerIsBetter, kUnknown };

// Infers the regression direction from the metric name using the units
// convention in docs/OBSERVABILITY.md: throughput-like names regress when
// they drop, latency-like names regress when they rise.
Direction DirectionFor(const std::string& name);

// Pulls every {"type": "gauge", "value": V} entry out of a registry dump
// without a full JSON parser: the emitter (Registry::ToJson) writes one key
// per entry as `"name": {"type": "gauge", "value": N}`.
std::map<std::string, double> ExtractGauges(const std::string& json);

struct DiffOptions {
  double threshold_pct = 10.0;
  // When non-empty, only gauges whose name contains this substring are
  // compared (and only those can be reported missing).
  std::string filter;
};

struct GaugeDelta {
  std::string file;
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;
  Direction direction = Direction::kUnknown;
  bool regressed = false;
};

struct DiffResult {
  std::vector<GaugeDelta> deltas;
  // Baseline metric files with no candidate counterpart.
  std::vector<std::string> missing_files;
  // Gauges ("file name" pairs) present in the baseline dump but absent from
  // the candidate's. A metric silently vanishing from a bench is a gate
  // failure, not a skip: it usually means the bench lost coverage.
  std::vector<GaugeDelta> missing_gauges;
  size_t compared = 0;
  size_t regressions = 0;

  bool failed() const {
    return regressions > 0 || !missing_files.empty() || !missing_gauges.empty();
  }
};

// Compares two {file name -> metrics JSON} maps. Every baseline file and
// every baseline gauge (matching options.filter) must exist in the
// candidate; anything missing lands in missing_files / missing_gauges and
// makes failed() true. Extra candidate files or gauges are ignored.
DiffResult DiffMetrics(const std::map<std::string, std::string>& baseline,
                       const std::map<std::string, std::string>& candidate,
                       const DiffOptions& options);

}  // namespace hosr::tools

#endif  // HOSR_TOOLS_BENCH_DIFF_LIB_H_
