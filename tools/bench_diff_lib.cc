#include "bench_diff_lib.h"

#include <cmath>
#include <cstdlib>

namespace hosr::tools {

Direction DirectionFor(const std::string& name) {
  static const char* kHigher[] = {"_qps",   "_gops",  "_speedup", "_per_sec",
                                  "_rate",  "_flops", "recall",   "_map",
                                  "ndcg",   "precision"};
  static const char* kLower[] = {"_us",      "_ms",  "_ns",  "_seconds",
                                 "_p50",     "_p95", "_p99", "latency",
                                 "_penalty"};
  for (const char* suffix : kHigher) {
    if (name.find(suffix) != std::string::npos) {
      return Direction::kHigherIsBetter;
    }
  }
  for (const char* suffix : kLower) {
    if (name.find(suffix) != std::string::npos) {
      return Direction::kLowerIsBetter;
    }
  }
  return Direction::kUnknown;
}

std::map<std::string, double> ExtractGauges(const std::string& json) {
  std::map<std::string, double> gauges;
  const std::string marker = "{\"type\": \"gauge\", \"value\": ";
  size_t pos = 0;
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    // The gauge's name is the quoted key immediately before the marker:
    // ... "kernels/bench/dot_d64_best_gops": {"type": "gauge", ...
    const size_t colon = json.rfind(':', pos);
    if (colon == std::string::npos) break;
    const size_t name_end = json.rfind('"', colon);
    const size_t name_begin =
        name_end == std::string::npos ? std::string::npos
                                      : json.rfind('"', name_end - 1);
    if (name_begin == std::string::npos) {
      pos += marker.size();
      continue;
    }
    const std::string name =
        json.substr(name_begin + 1, name_end - name_begin - 1);
    const double value = std::strtod(json.c_str() + pos + marker.size(),
                                     nullptr);
    gauges[name] = value;
    pos += marker.size();
  }
  return gauges;
}

DiffResult DiffMetrics(const std::map<std::string, std::string>& baseline,
                       const std::map<std::string, std::string>& candidate,
                       const DiffOptions& options) {
  DiffResult result;
  for (const auto& [file, baseline_json] : baseline) {
    const auto candidate_it = candidate.find(file);
    if (candidate_it == candidate.end()) {
      result.missing_files.push_back(file);
      continue;
    }
    const auto baseline_gauges = ExtractGauges(baseline_json);
    const auto candidate_gauges = ExtractGauges(candidate_it->second);
    for (const auto& [name, base_value] : baseline_gauges) {
      if (!options.filter.empty() &&
          name.find(options.filter) == std::string::npos) {
        continue;
      }
      GaugeDelta delta;
      delta.file = file;
      delta.name = name;
      delta.baseline = base_value;
      delta.direction = DirectionFor(name);
      const auto it = candidate_gauges.find(name);
      if (it == candidate_gauges.end()) {
        result.missing_gauges.push_back(delta);
        continue;
      }
      delta.candidate = it->second;
      ++result.compared;
      delta.delta_pct =
          base_value != 0.0
              ? (delta.candidate - base_value) / std::fabs(base_value) * 100.0
              : (delta.candidate == 0.0 ? 0.0 : 100.0);
      if (delta.direction == Direction::kHigherIsBetter) {
        delta.regressed = delta.delta_pct < -options.threshold_pct;
      } else if (delta.direction == Direction::kLowerIsBetter) {
        delta.regressed = delta.delta_pct > options.threshold_pct;
      }
      if (delta.regressed) ++result.regressions;
      result.deltas.push_back(delta);
    }
  }
  return result;
}

}  // namespace hosr::tools
