// Measures the serving-path cost of continuous profiling + time-series
// telemetry (docs/OBSERVABILITY.md): replays a zipf-skewed single-user
// top-10 stream through the hardened executor in interleaved disarmed/armed
// pairs — armed means the SIGPROF sampling profiler (99 Hz) AND the
// timeseries recorder (250ms cadence, far hotter than the 1s default) run
// for the whole replay — and publishes the median QPS of each side plus
// their ratio as gauges. The acceptance bar is parity: the armed replay
// must stay within 5% of disarmed (the profiler is off the request path;
// all it costs is signal delivery + the collector thread's drains).
//
// Run via run_benches.sh (picked up like every bench) or directly:
//   ./build/bench/serve_profile --metrics_out=bench_metrics/serve_profile.json
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/reporter.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace hosr;

constexpr size_t kNumRequests = 4096;
constexpr double kZipf = 0.9;

// More client threads than cores just measures the scheduler (see
// serve_admin.cc); match the replay parallelism to the machine, capped at 4.
size_t NumClients() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(4, hw));
}

// Bounded-Zipf user sampler — the same request mix hosr_serve replays with
// --zipf=0.9.
uint32_t SampleUser(util::Rng* rng, uint32_t num_users, double s) {
  const double n = static_cast<double>(num_users);
  const double u = rng->UniformDouble();
  const double x = std::pow((std::pow(n, 1.0 - s) - 1.0) * u + 1.0,
                            1.0 / (1.0 - s));
  return std::min(static_cast<uint32_t>(x - 1.0), num_users - 1);
}

// Replays the 4k stream across NumClients() threads, looping until the
// phase has run for at least kMinPhaseNanos. Returns QPS.
constexpr int64_t kMinPhaseNanos = 500'000'000;

double ReplayQps(const serve::HardenedExecutor& executor,
                 const std::vector<uint32_t>& requests) {
  const size_t clients = NumClients();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> completed{0};
  const int64_t begin_ns = obs::NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, clients, c] {
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      uint64_t done = 0;
      while (obs::NowNanos() - begin_ns < kMinPhaseNanos) {
        for (size_t i = begin; i < end; ++i) {
          const obs::ScopedRequestContext request_scope(
              obs::RequestContext{static_cast<uint64_t>(i) + 1, requests[i],
                                  10});
          auto response = executor.Execute(requests[i], 10, /*token=*/i);
          HOSR_CHECK(response.ok());
          ++done;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(obs::NowNanos() - begin_ns) / 1e9;
  return static_cast<double>(completed.load()) / elapsed_s;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InitFromFlags(util::Flags::Parse(argc, argv));
  // Span/histogram capture on for BOTH phases so the only delta between
  // them is the profiler + recorder, not instrumentation cost.
  obs::SetEnabled(true);

  auto generated =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.05));
  HOSR_CHECK(generated.ok());
  const data::Dataset dataset = std::move(generated).value();
  models::BprMf::Config config;
  config.embedding_dim = 10;
  models::BprMf model(dataset.num_users(), dataset.num_items(), config);
  auto built = serve::BuildSnapshot(model);
  HOSR_CHECK(built.ok());
  const serve::ModelSnapshot snapshot = std::move(built).value();
  const serve::InferenceEngine engine(snapshot, &dataset.interactions);
  const serve::HardenedExecutor executor(&engine, serve::HardenedOptions{});

  util::Rng rng(17);
  std::vector<uint32_t> requests(kNumRequests);
  for (auto& user : requests) {
    user = SampleUser(&rng, engine.num_users(), kZipf);
  }

  // Warmup.
  (void)ReplayQps(executor, requests);

  // Interleaved pairs + median cancel the drift a single 0.5s window picks
  // up from a busy runner, and the within-pair order flips every pair
  // (disarmed/armed, armed/disarmed, ... — ABBA) so monotonic drift biases
  // neither side. Each armed phase start/stops a fresh profiler session and
  // recorder, which also exercises the rearm path the /profilez window
  // endpoint depends on.
  constexpr int kPairs = 5;
  std::vector<double> off_samples, on_samples;
  uint64_t total_samples = 0;
  uint64_t total_dropped = 0;
  const auto armed_replay = [&] {
    obs::Profiler::Options profiler_options;
    profiler_options.hz = 99;
    HOSR_CHECK(obs::Profiler::Global().Start(profiler_options).ok());
    obs::TimeseriesRecorder::Options recorder_options;
    recorder_options.snapshot_interval_s = 0.25;
    HOSR_CHECK(obs::TimeseriesRecorder::Global().Start(recorder_options).ok());
    const double qps = ReplayQps(executor, requests);
    obs::TimeseriesRecorder::Global().Stop();
    const obs::Profile profile = obs::Profiler::Global().StopAndCollect();
    total_samples += profile.samples;
    total_dropped += profile.dropped;
    return qps;
  };
  for (int pair = 0; pair < kPairs; ++pair) {
    if (pair % 2 == 0) {
      off_samples.push_back(ReplayQps(executor, requests));
      on_samples.push_back(armed_replay());
    } else {
      on_samples.push_back(armed_replay());
      off_samples.push_back(ReplayQps(executor, requests));
    }
  }

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double qps_off = median(off_samples);
  const double qps_on = median(on_samples);
  const double penalty = qps_off / qps_on;
  auto& registry = obs::Registry::Global();
  registry.GetGauge("bench/serve_profile/replay_top10_qps_disarmed")
      ->Set(qps_off);
  registry.GetGauge("bench/serve_profile/replay_top10_qps_armed")
      ->Set(qps_on);
  registry.GetGauge("bench/serve_profile/profile_overhead_penalty")
      ->Set(penalty);
  registry.GetGauge("bench/serve_profile/profile_samples_per_replay")
      ->Set(static_cast<double>(total_samples) / kPairs);
  registry.GetGauge("bench/serve_profile/profile_dropped_samples")
      ->Set(static_cast<double>(total_dropped));
  std::printf(
      "disarmed: %.0f QPS | armed: %.0f QPS (%.1f%% overhead, median of %d "
      "pairs, %llu stack samples, %llu dropped)\n",
      qps_off, qps_on, (penalty - 1.0) * 100.0, kPairs,
      static_cast<unsigned long long>(total_samples),
      static_cast<unsigned long long>(total_dropped));
  return 0;
}
