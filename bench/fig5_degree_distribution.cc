// Reproduces Fig. 5: the user distribution w.r.t. the number of social
// neighbors on both datasets — a long-tail shape where most users have few
// neighbors and a handful of hubs have many.
#include <cstdio>

#include "common/bench_util.h"
#include "graph/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Fig. 5: user distribution vs #social neighbors ===\n\n");

  const std::vector<uint32_t> edges{0,  1,  2,  4,  8,  16,
                                    32, 64, 128, 256};
  util::Table table({"Dataset", "Degree bucket", "#Users", "Share",
                     "Bar"});
  const auto datasets = bench::MakeBothDatasets(options);
  for (const auto& dataset : datasets) {
    const auto hist = graph::ComputeDegreeHistogram(dataset.full.social,
                                                    edges);
    const double total = dataset.full.num_users();
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      std::string bucket =
          b + 1 < hist.bucket_edges.size()
              ? util::StrFormat("[%u, %u)", hist.bucket_edges[b],
                                hist.bucket_edges[b + 1])
              : util::StrFormat(">=%u", hist.bucket_edges[b]);
      const double share = hist.counts[b] / total;
      table.AddRow({dataset.label, bucket,
                    util::StrFormat("%llu",
                                    static_cast<unsigned long long>(
                                        hist.counts[b])),
                    util::StrFormat("%.1f%%", share * 100),
                    std::string(static_cast<size_t>(share * 60), '#')});
    }
    const double gini = graph::DegreeGini(dataset.full.social);
    bench::PublishResultGauge(
        "fig5_degree_distribution",
        util::StrFormat("%s_degree_gini", dataset.label.c_str()), gini);
    table.AddRow({dataset.label, "Gini(degree)", util::Table::Cell(gini, 3),
                  "", ""});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper shape: long tail — the mass sits in low-degree "
              "buckets, with a thin hub tail (high Gini).\n");
  bench::MaybeWriteCsv(options, "fig5_degree_distribution", table.ToCsv());
  return 0;
}
