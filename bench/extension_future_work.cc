// Evaluates the paper's Sec. 5 future-work directions, implemented in this
// repository as extensions:
//  1. HOSR-Joint — jointly propagate user AND item embeddings over the
//     unified social+interaction graph;
//  2. HOSR-GAT — learned per-edge attention weights on user-user
//     connections (close vs normal friends) instead of fixed decay;
// plus a LightGCN-style simplified propagation (no layer weights, no
// nonlinearity) as a design probe, all against the published HOSR.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hosr.h"
#include "core/hosr_gat.h"
#include "core/hosr_joint.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Extensions: the paper's future-work directions ===\n");
  std::printf("(d=%u, up to %u epochs with best-snapshot selection)\n\n",
              options.dim, options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table({"Dataset", "Model", "R@20", "MAP@20"});

  for (const auto& dataset : datasets) {
    {
      core::Hosr::Config config;
      config.embedding_dim = options.dim;
      config.num_layers = 3;
      config.seed = options.seed;
      core::Hosr model(dataset.split.train, config);
      const auto result = bench::TrainModelBest(&model, dataset, options);
      bench::PublishResultGauge(
          "extension_future_work",
          util::StrFormat("%s_hosr_recall_at_20", dataset.label.c_str()),
          result.recall);
      table.AddRow({dataset.label, "HOSR (paper)",
                    util::Table::Cell(result.recall),
                    util::Table::Cell(result.map)});
      std::fprintf(stderr, "  [%s] HOSR: R@20=%.4f\n", dataset.label.c_str(),
                   result.recall);
    }
    {
      core::Hosr::Config config;
      config.embedding_dim = options.dim;
      config.num_layers = 3;
      config.use_layer_weights = false;
      config.use_activation = false;
      config.seed = options.seed;
      core::Hosr model(dataset.split.train, config);
      const auto result = bench::TrainModelBest(&model, dataset, options);
      bench::PublishResultGauge(
          "extension_future_work",
          util::StrFormat("%s_simplified_recall_at_20",
                          dataset.label.c_str()),
          result.recall);
      table.AddRow({dataset.label, "HOSR simplified (no W, linear)",
                    util::Table::Cell(result.recall),
                    util::Table::Cell(result.map)});
      std::fprintf(stderr, "  [%s] simplified: R@20=%.4f\n",
                   dataset.label.c_str(), result.recall);
    }
    {
      core::HosrJoint::Config config;
      config.embedding_dim = options.dim;
      config.num_layers = 3;
      config.seed = options.seed;
      core::HosrJoint model(dataset.split.train, config);
      const auto result = bench::TrainModelBest(&model, dataset, options);
      bench::PublishResultGauge(
          "extension_future_work",
          util::StrFormat("%s_hosr_joint_recall_at_20",
                          dataset.label.c_str()),
          result.recall);
      table.AddRow({dataset.label, "HOSR-Joint (future work 1)",
                    util::Table::Cell(result.recall),
                    util::Table::Cell(result.map)});
      std::fprintf(stderr, "  [%s] HOSR-Joint: R@20=%.4f\n",
                   dataset.label.c_str(), result.recall);
    }
    {
      core::HosrGat::Config config;
      config.embedding_dim = options.dim;
      config.num_layers = 3;
      config.seed = options.seed;
      core::HosrGat model(dataset.split.train, config);
      const auto result = bench::TrainModelBest(&model, dataset, options);
      bench::PublishResultGauge(
          "extension_future_work",
          util::StrFormat("%s_hosr_gat_recall_at_20",
                          dataset.label.c_str()),
          result.recall);
      table.AddRow({dataset.label, "HOSR-GAT (future work 2)",
                    util::Table::Cell(result.recall),
                    util::Table::Cell(result.map)});
      std::fprintf(stderr, "  [%s] HOSR-GAT: R@20=%.4f\n",
                   dataset.label.c_str(), result.recall);
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  bench::MaybeWriteCsv(options, "extension_future_work", table.ToCsv());
  return 0;
}
