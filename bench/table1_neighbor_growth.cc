// Reproduces Table 1: network density and average number of neighbors per
// user at order sizes 1..3 for the Yelp-like and Douban-like datasets.
// The paper's phenomenon: neighbor counts explode with order (e.g. Douban
// third-order reaches ~500x the first-order count), motivating propagation
// over materialized high-order edges.
#include <cstdio>

#include "common/bench_util.h"
#include "graph/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

// Paper values for reference printing (Table 1).
struct PaperRow {
  const char* dataset;
  const char* order;
  double density;
  double neighbors;
};
constexpr PaperRow kPaperRows[] = {
    {"Yelp", "first", 0.0015, 16},    {"Yelp", "second", 0.0914, 969},
    {"Yelp", "third", 0.5716, 6048},  {"Douban", "first", 0.0011, 14},
    {"Douban", "second", 0.1045, 1332}, {"Douban", "third", 0.5815, 7413},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Table 1: density & avg #neighbors/user per order ===\n");
  std::printf("(scale %.2f of paper-size graphs; shapes, not absolute "
              "counts, are the reproduction target)\n\n",
              options.scale);

  util::Table table({"Dataset", "Order", "Density", "#Neighbors/User",
                     "Growth vs 1st", "Paper density", "Paper #nbrs"});
  const auto datasets = bench::MakeBothDatasets(options);
  for (const auto& dataset : datasets) {
    const auto stats = graph::KOrderStats(dataset.full.social, 3);
    const char* names[] = {"first", "second", "third"};
    for (size_t k = 0; k < stats.size(); ++k) {
      const PaperRow* paper = nullptr;
      for (const auto& row : kPaperRows) {
        const bool dataset_match =
            (dataset.label == "Yelp-like" &&
             std::string(row.dataset) == "Yelp") ||
            (dataset.label == "Douban-like" &&
             std::string(row.dataset) == "Douban");
        if (dataset_match && std::string(row.order) == names[k]) paper = &row;
      }
      bench::PublishResultGauge(
          "table1_neighbor_growth",
          util::StrFormat("%s_%s_order_neighbors", dataset.label.c_str(),
                          names[k]),
          stats[k].avg_neighbors_per_user);
      table.AddRow({dataset.label, names[k],
                    util::StrFormat("%.2f%%", stats[k].density * 100),
                    util::Table::Cell(stats[k].avg_neighbors_per_user, 1),
                    util::StrFormat(
                        "%.0fx", stats[k].avg_neighbors_per_user /
                                     stats[0].avg_neighbors_per_user),
                    paper ? util::StrFormat("%.2f%%", paper->density * 100)
                          : "-",
                    paper ? util::Table::Cell(paper->neighbors, 0) : "-"});
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  bench::MaybeWriteCsv(options, "table1_neighbor_growth", table.ToCsv());
  return 0;
}
