// Loopback throughput of the hosr::net serving front end
// (docs/SERVING.md "Network serving"): a NetServer over a tiny frozen
// BprMf snapshot, hammered by persistent-connection clients replaying the
// standard zipf-skewed top-10 stream, against the same stream driven
// straight through the HardenedExecutor in process. Publishes wire QPS,
// exact latency percentiles, and the wire-overhead ratio as gauges:
//
//   bench/net_throughput/loopback_qps     queries/s over real TCP sockets
//   bench/net_throughput/p50_us           wire round-trip percentiles
//   bench/net_throughput/p95_us
//   bench/net_throughput/p99_us
//   bench/net_throughput/inproc_qps       same stream, no sockets
//   bench/net_throughput/overhead_ratio   inproc_qps / loopback_qps
//
// Run via run_benches.sh (picked up like every bench) or directly:
//   ./build/bench/net_throughput --metrics_out=bench_metrics/net_throughput.json
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "models/bpr_mf.h"
#include "net/client.h"
#include "net/server.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

using namespace hosr;

constexpr size_t kNumRequests = 4096;
constexpr uint32_t kNumUsers = 500;
constexpr uint32_t kNumItems = 2000;
constexpr uint32_t kTopK = 10;
constexpr int64_t kMinPhaseNanos = 500'000'000;

// Like hosr_serve's default on small boxes: match the machine, cap at 4.
size_t NumClients() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(4, hw));
}

// Replays `requests` over real sockets until the phase has run at least
// kMinPhaseNanos, recording per-query wire latencies. Returns QPS.
double LoopbackQps(int port, const std::vector<net::StreamRequest>& requests,
                   std::vector<int64_t>* latencies_ns) {
  const size_t clients = NumClients();
  std::vector<std::vector<int64_t>> recorded(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> completed{0};
  const int64_t begin_ns = obs::NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::NetClient::Connect("127.0.0.1", port);
      HOSR_CHECK(client.ok()) << client.status();
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      uint64_t done = 0;
      while (obs::NowNanos() - begin_ns < kMinPhaseNanos) {
        for (size_t i = begin; i < end; ++i) {
          const int64_t start = obs::NowNanos();
          auto result = client->Query(requests[i].user, requests[i].k,
                                      /*trace_id=*/i + 1);
          HOSR_CHECK(result.ok()) << result.status();
          recorded[c].push_back(obs::NowNanos() - start);
          ++done;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(obs::NowNanos() - begin_ns) / 1e9;
  for (auto& per_client : recorded) {
    latencies_ns->insert(latencies_ns->end(), per_client.begin(),
                         per_client.end());
  }
  return static_cast<double>(completed.load()) / elapsed_s;
}

// The same stream through the executor with no sockets — the numerator of
// the overhead ratio.
double InProcessQps(const serve::HardenedExecutor& executor,
                    const std::vector<net::StreamRequest>& requests) {
  const size_t clients = NumClients();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> completed{0};
  const int64_t begin_ns = obs::NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      uint64_t done = 0;
      while (obs::NowNanos() - begin_ns < kMinPhaseNanos) {
        for (size_t i = begin; i < end; ++i) {
          auto response =
              executor.Execute(requests[i].user, requests[i].k, /*token=*/i);
          HOSR_CHECK(response.ok());
          ++done;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(obs::NowNanos() - begin_ns) / 1e9;
  return static_cast<double>(completed.load()) / elapsed_s;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InitFromFlags(util::Flags::Parse(argc, argv));

  models::BprMf::Config config;
  config.embedding_dim = 10;
  models::BprMf model(kNumUsers, kNumItems, config);
  auto built = serve::BuildSnapshot(model);
  HOSR_CHECK(built.ok());
  const serve::InferenceEngine engine(std::move(built).value());
  const serve::HardenedExecutor executor(&engine, serve::HardenedOptions{});

  const auto requests =
      net::SyntheticStream(kNumUsers, kNumRequests, kTopK, /*zipf=*/0.9,
                           /*seed=*/17);

  net::NetServer::Options options;
  options.engine = &engine;
  options.executor = &executor;
  options.worker_threads = static_cast<int>(NumClients());
  net::NetServer server(options);
  HOSR_CHECK(server.Start().ok());

  // Warmup both paths, then measure.
  {
    std::vector<int64_t> scratch;
    (void)LoopbackQps(server.port(), requests, &scratch);
  }
  std::vector<int64_t> latencies_ns;
  const double loopback_qps =
      LoopbackQps(server.port(), requests, &latencies_ns);
  const net::LatencySummary latency =
      net::SummarizeLatencies(&latencies_ns);

  (void)InProcessQps(executor, requests);  // warmup
  const double inproc_qps = InProcessQps(executor, requests);
  const double ratio = loopback_qps > 0.0 ? inproc_qps / loopback_qps : 0.0;

  server.Stop();
  const net::NetServer::Stats stats = server.GetStats();
  HOSR_CHECK(stats.requests == stats.responses)
      << "drain dropped in-flight requests";

  HOSR_GAUGE("bench/net_throughput/loopback_qps").Set(loopback_qps);
  HOSR_GAUGE("bench/net_throughput/p50_us").Set(latency.p50_us);
  HOSR_GAUGE("bench/net_throughput/p95_us").Set(latency.p95_us);
  HOSR_GAUGE("bench/net_throughput/p99_us").Set(latency.p99_us);
  HOSR_GAUGE("bench/net_throughput/inproc_qps").Set(inproc_qps);
  HOSR_GAUGE("bench/net_throughput/overhead_ratio").Set(ratio);

  std::printf(
      "net_throughput: loopback %.0f qps (p50 %.1fus p95 %.1fus p99 %.1fus), "
      "in-process %.0f qps, wire overhead %.2fx\n",
      loopback_qps, latency.p50_us, latency.p95_us, latency.p99_us,
      inproc_qps, ratio);

  obs::FlushArtifacts();
  return 0;
}
