// Reproduces Fig. 7: the learned attention weight of each GCN layer as a
// function of (a) the user's number of social neighbors and (b) the user's
// number of interactions, for a trained HOSR-3.
//
// Reproduction target (shape): the first layer's weight is small; for
// socially sparse users the deepest layer dominates; as degree grows the
// deep-layer weight falls and mid-layer weight rises.
#include <array>
#include <cstdio>

#include "common/bench_util.h"
#include "core/hosr.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

// Bucket boundaries (inclusive lower edges).
std::string BucketLabel(const std::vector<uint32_t>& edges, size_t b) {
  if (b + 1 < edges.size()) {
    return hosr::util::StrFormat("[%u, %u)", edges[b], edges[b + 1]);
  }
  return hosr::util::StrFormat(">=%u", edges[b]);
}

size_t BucketOf(const std::vector<uint32_t>& edges, uint32_t value) {
  size_t b = 0;
  while (b + 1 < edges.size() && value >= edges[b + 1]) ++b;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Fig. 7: attention weight per layer vs user degree / "
              "interactions ===\n");
  std::printf("(trained HOSR-3, d=%u, %u epochs)\n\n", options.dim,
              options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table({"Dataset", "Grouping", "Bucket", "#Users", "w(layer1)",
                     "w(layer2)", "w(layer3)"});

  for (const auto& dataset : datasets) {
    core::Hosr::Config config;
    config.embedding_dim = options.dim;
    config.num_layers = 3;
    config.graph_dropout = 0.2f;
    config.seed = options.seed;
    core::Hosr model(dataset.split.train, config);
    bench::TrainModel(&model, dataset, options);
    const tensor::Matrix weights = model.AttentionWeights();

    for (size_t l = 0; l < 3; ++l) {
      double sum = 0;
      for (uint32_t u = 0; u < dataset.full.num_users(); ++u) {
        sum += weights(u, l);
      }
      bench::PublishResultGauge(
          "fig7_attention_weights",
          util::StrFormat("%s_mean_layer%zu_weight", dataset.label.c_str(),
                          l + 1),
          sum / dataset.full.num_users());
    }

    struct Grouping {
      const char* name;
      std::vector<uint32_t> edges;
      std::vector<uint32_t> values;  // per user
    };
    std::vector<Grouping> groupings(2);
    groupings[0].name = "#Neighbors";
    groupings[0].edges = {0, 4, 8, 16, 32, 64};
    groupings[1].name = "#Interactions";
    groupings[1].edges = {0, 8, 16, 32, 64, 128};
    for (uint32_t u = 0; u < dataset.full.num_users(); ++u) {
      groupings[0].values.push_back(dataset.full.social.Degree(u));
      groupings[1].values.push_back(static_cast<uint32_t>(
          dataset.split.train.interactions.ItemsOf(u).size()));
    }

    for (const auto& grouping : groupings) {
      std::vector<std::array<double, 3>> sums(grouping.edges.size(),
                                              {0, 0, 0});
      std::vector<size_t> counts(grouping.edges.size(), 0);
      for (uint32_t u = 0; u < dataset.full.num_users(); ++u) {
        const size_t b = BucketOf(grouping.edges, grouping.values[u]);
        for (size_t l = 0; l < 3; ++l) sums[b][l] += weights(u, l);
        ++counts[b];
      }
      for (size_t b = 0; b < grouping.edges.size(); ++b) {
        if (counts[b] == 0) continue;
        table.AddRow({dataset.label, grouping.name,
                      BucketLabel(grouping.edges, b),
                      util::StrFormat("%zu", counts[b]),
                      util::Table::Cell(sums[b][0] / counts[b]),
                      util::Table::Cell(sums[b][1] / counts[b]),
                      util::Table::Cell(sums[b][2] / counts[b])});
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper shape: layer-1 weight smallest everywhere; deepest "
              "layer's weight highest for sparse users and decreasing with "
              "degree/interactions.\n");
  bench::MaybeWriteCsv(options, "fig7_attention_weights", table.ToCsv());
  return 0;
}
