// Microbenchmarks for the hosr::kernels dispatch layer (docs/PERFORMANCE.md):
// scalar vs best-available table for axpy, axpy2, dot, and the fused
// score-GEMV, at the dims the models actually use. Besides the google
// benchmark report, the headline scalar-vs-SIMD speedups at d=64 are
// published as gauges so `run_benches.sh` captures them in
// bench_metrics/kernels.json — the perf-trajectory artifact.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace hosr;

const kernels::KernelTable& Table(int64_t level) {
  return level == 0 ? kernels::Scalar() : kernels::Best();
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.Gaussian();
  return v;
}

// Accumulator coefficients are tiny so y never overflows across millions of
// iterations; FMA throughput does not depend on the operand values.
constexpr float kTinyA = 1e-30f;

void BM_Axpy(benchmark::State& state) {
  const auto& kern = Table(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const auto x = RandomVec(d, 1);
  auto y = RandomVec(d, 2);
  for (auto _ : state) {
    kern.axpy(d, kTinyA, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(d));
  state.SetLabel(kern.name);
}
BENCHMARK(BM_Axpy)->ArgsProduct({{0, 1}, {8, 64, 256}});

void BM_Axpy2(benchmark::State& state) {
  const auto& kern = Table(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const auto x0 = RandomVec(d, 3);
  const auto x1 = RandomVec(d, 4);
  auto y = RandomVec(d, 5);
  for (auto _ : state) {
    kern.axpy2(d, kTinyA, x0.data(), kTinyA, x1.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(d));
  state.SetLabel(kern.name);
}
BENCHMARK(BM_Axpy2)->ArgsProduct({{0, 1}, {8, 64, 256}});

void BM_Dot(benchmark::State& state) {
  const auto& kern = Table(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const auto a = RandomVec(d, 6);
  const auto b = RandomVec(d, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern.dot(d, a.data(), b.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(d));
  state.SetLabel(kern.name);
}
BENCHMARK(BM_Dot)->ArgsProduct({{0, 1}, {8, 64, 256}});

// The serving GEMV: score one user against a block of items (the engine's
// per-block fused scoring pass, items = EngineOptions::item_block shape).
void BM_ScoreGemv(benchmark::State& state) {
  const auto& kern = Table(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  constexpr size_t kItems = 512;
  const auto u = RandomVec(d, 8);
  const auto rows = RandomVec(kItems * d, 9);
  const auto bias = RandomVec(kItems, 10);
  std::vector<float> out(kItems);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern.score_block(kItems, d, u.data(), rows.data(),
                                              bias.data(), out.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kItems * d));
  state.SetLabel(kern.name);
}
BENCHMARK(BM_ScoreGemv)->ArgsProduct({{0, 1}, {8, 64, 256}});

// --- headline speedup gauges --------------------------------------------------

// Ops/second for `body` (which performs `ops_per_call` scalar ops), measured
// over ~80ms after warmup. Hand-rolled so the speedup ratios land in the
// metrics registry and thus in bench_metrics/kernels.json.
template <typename Fn>
double MeasureOpsPerSec(size_t ops_per_call, Fn&& body) {
  for (int i = 0; i < 1000; ++i) body();  // warmup
  size_t calls = 0;
  const util::WallTimer timer;
  do {
    for (int i = 0; i < 2000; ++i) body();
    calls += 2000;
  } while (timer.ElapsedMillis() < 80.0);
  return static_cast<double>(calls) * static_cast<double>(ops_per_call) /
         (timer.ElapsedMillis() / 1000.0);
}

void PublishSpeedupGauges() {
  const auto& scalar = kernels::Scalar();
  const auto& best = kernels::Best();
  constexpr size_t d = 64;
  constexpr size_t kItems = 512;
  const auto x = RandomVec(d, 11);
  auto y = RandomVec(d, 12);
  const auto rows = RandomVec(kItems * d, 13);
  std::vector<float> out(kItems);

  const double axpy_scalar = MeasureOpsPerSec(
      d, [&] { scalar.axpy(d, kTinyA, x.data(), y.data()); });
  const double axpy_best =
      MeasureOpsPerSec(d, [&] { best.axpy(d, kTinyA, x.data(), y.data()); });
  float sink = 0.0f;
  const double dot_scalar = MeasureOpsPerSec(
      d, [&] { sink += scalar.dot(d, x.data(), y.data()); });
  const double dot_best =
      MeasureOpsPerSec(d, [&] { sink += best.dot(d, x.data(), y.data()); });
  const double gemv_scalar = MeasureOpsPerSec(kItems * d, [&] {
    sink += scalar.score_block(kItems, d, x.data(), rows.data(), nullptr,
                               out.data());
  });
  const double gemv_best = MeasureOpsPerSec(kItems * d, [&] {
    sink += best.score_block(kItems, d, x.data(), rows.data(), nullptr,
                             out.data());
  });
  benchmark::DoNotOptimize(sink);

  HOSR_GAUGE("kernels/bench/axpy_d64_scalar_gops").Set(axpy_scalar / 1e9);
  HOSR_GAUGE("kernels/bench/axpy_d64_best_gops").Set(axpy_best / 1e9);
  HOSR_GAUGE("kernels/bench/axpy_d64_speedup").Set(axpy_best / axpy_scalar);
  HOSR_GAUGE("kernels/bench/dot_d64_scalar_gops").Set(dot_scalar / 1e9);
  HOSR_GAUGE("kernels/bench/dot_d64_best_gops").Set(dot_best / 1e9);
  HOSR_GAUGE("kernels/bench/dot_d64_speedup").Set(dot_best / dot_scalar);
  HOSR_GAUGE("kernels/bench/gemv_d64_scalar_gops").Set(gemv_scalar / 1e9);
  HOSR_GAUGE("kernels/bench/gemv_d64_best_gops").Set(gemv_best / 1e9);
  HOSR_GAUGE("kernels/bench/gemv_d64_speedup").Set(gemv_best / gemv_scalar);
}

}  // namespace

// Same flag split as micro_complexity: non---benchmark_* flags go to the
// observability layer (--metrics_out= writes bench_metrics/kernels.json).
int main(int argc, char** argv) {
  std::vector<char*> benchmark_args{argv[0]};
  std::vector<char*> hosr_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (hosr::util::StartsWith(argv[i], "--benchmark_")) {
      benchmark_args.push_back(argv[i]);
    } else {
      hosr_args.push_back(argv[i]);
    }
  }
  hosr::obs::InitFromFlags(hosr::util::Flags::Parse(
      static_cast<int>(hosr_args.size()), hosr_args.data()));
  // Resolve dispatch once up front so kernels/dispatch_level lands in the
  // metrics artifact alongside the speedups.
  (void)hosr::kernels::Active();
  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  PublishSpeedupGauges();
  benchmark::Shutdown();
  return 0;
}
