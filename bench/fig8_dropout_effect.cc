// Reproduces Fig. 8: the effect of the embedding-dropout ratio p1 and the
// graph-dropout ratio p2 on HOSR's Recall@20 / MAP@20.
//
// Reproduction target (shape): embedding dropout does not help (it
// discards neighborhood information already mixed into layer outputs);
// moderate graph dropout (~0.2-0.4) helps by making representations robust
// to missing social edges.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hosr.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Fig. 8: effect of embedding dropout (p1) and graph "
              "dropout (p2) ===\n");
  std::printf("(HOSR-3, d=%u, %u epochs)\n\n", options.dim, options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table({"Dataset", "Sweep", "Ratio", "R@20", "MAP@20"});
  const float ratios[] = {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f};

  for (const auto& dataset : datasets) {
    for (const bool sweep_graph : {false, true}) {
      for (const float ratio : ratios) {
        core::Hosr::Config config;
        config.embedding_dim = options.dim;
        config.num_layers = 3;
        config.embedding_dropout = sweep_graph ? 0.0f : ratio;
        config.graph_dropout = sweep_graph ? ratio : 0.0f;
        config.seed = options.seed;
        core::Hosr model(dataset.split.train, config);
        const auto result = bench::TrainModelBest(&model, dataset, options);
        bench::PublishResultGauge(
            "fig8_dropout_effect",
            util::StrFormat("%s_%s_%02d_recall_at_20", dataset.label.c_str(),
                            sweep_graph ? "graph_p2" : "embedding_p1",
                            static_cast<int>(ratio * 10 + 0.5f)),
            result.recall);
        table.AddRow({dataset.label,
                      sweep_graph ? "graph p2" : "embedding p1",
                      util::Table::Cell(ratio, 1),
                      util::Table::Cell(result.recall),
                      util::Table::Cell(result.map)});
        std::fprintf(stderr, "  [%s] %s=%.1f: R@20=%.4f\n",
                     dataset.label.c_str(),
                     sweep_graph ? "p2" : "p1", ratio, result.recall);
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper shape: p1 curves flat-to-degrading; p2 peaks around "
              "0.2-0.4 on Yelp.\n");
  bench::MaybeWriteCsv(options, "fig8_dropout_effect", table.ToCsv());
  return 0;
}
