// Reproduces Fig. 6: Recall@20 / MAP@20 per interaction-sparsity user
// group (four groups of equal total training interactions) for every model.
//
// Reproduction target (shape): HOSR's advantage over the baselines is
// largest on the sparsest groups and vanishes for the most active users,
// where interaction data alone suffices.
#include <cstdio>

#include "common/bench_util.h"
#include "eval/evaluator.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  bench::BenchOptions options = bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Fig. 6: performance per interaction-sparsity group ===\n");
  std::printf("(4 groups of equal total train interactions; d=%u, %u "
              "epochs)\n\n", options.dim, options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table({"Dataset", "Group", "#Users", "Model", "R@20",
                     "MAP@20"});

  for (const auto& dataset : datasets) {
    const auto groups = eval::BuildSparsityGroups(
        dataset.split.train.interactions, dataset.split.test, 4);
    eval::Evaluator evaluator(&dataset.split.train.interactions,
                              &dataset.split.test, 20);
    for (const auto& name : core::AllModelNames()) {
      const auto trained =
          bench::TrainAndEvaluate(name, dataset, options, options.dim);
      for (size_t g = 0; g < groups.size(); ++g) {
        const auto& group = groups[g];
        const auto result = evaluator.EvaluateUsers(
            [&](const std::vector<uint32_t>& users) {
              return trained.model->ScoreAllItems(users);
            },
            group.users);
        bench::PublishResultGauge(
            "fig6_sparsity_groups",
            util::StrFormat("%s_%s_group%zu_recall_at_20",
                            dataset.label.c_str(), name.c_str(), g + 1),
            result.recall);
        table.AddRow({dataset.label, group.Label(),
                      util::StrFormat("%zu", group.users.size()), name,
                      util::Table::Cell(result.recall),
                      util::Table::Cell(result.map)});
      }
      std::fprintf(stderr, "  [%s] %s done (overall R@20=%.4f)\n",
                   dataset.label.c_str(), name.c_str(),
                   trained.result.recall);
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper shape: HOSR wins the sparse groups by the largest "
              "margin; the densest group is a wash across models.\n");
  bench::MaybeWriteCsv(options, "fig6_sparsity_groups", table.ToCsv());
  return 0;
}
