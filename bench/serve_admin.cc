// Measures the serving-path cost of the live admin endpoint
// (docs/OBSERVABILITY.md): replays a zipf-skewed single-user top-10 stream
// through the hardened executor in interleaved off/on pairs — no poller vs
// a poller cycling /metricsz /healthz /readyz /varz /tracez the whole time
// — and publishes the median QPS of each side plus their ratio as gauges.
// The acceptance bar is parity: the admin-on replay must stay within a few
// percent of admin-off.
//
// Run via run_benches.sh (picked up like every bench) or directly:
//   ./build/bench/serve_admin --metrics_out=bench_metrics/serve_admin.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "obs/admin_server.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace hosr;

constexpr size_t kNumRequests = 4096;
constexpr double kZipf = 0.9;

// More client threads than cores just measures the scheduler: on a 1-core
// runner, 4 spinning clients + a poller turn scheduling noise into fake
// "overhead". Match the replay parallelism to the machine (capped at 4,
// like hosr_serve's default clients on small boxes).
size_t NumClients() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(4, hw));
}

// Bounded-Zipf user sampler (inverse-CDF of the continuous analog) — the
// same request mix hosr_serve replays with --zipf=0.9.
uint32_t SampleUser(util::Rng* rng, uint32_t num_users, double s) {
  const double n = static_cast<double>(num_users);
  const double u = rng->UniformDouble();
  const double x = std::pow((std::pow(n, 1.0 - s) - 1.0) * u + 1.0,
                            1.0 / (1.0 - s));
  return std::min(static_cast<uint32_t>(x - 1.0), num_users - 1);
}

// Replays the 4k stream across NumClients() threads through `executor`,
// each request under its own RequestContext (trace id = stream index + 1,
// as in hosr_serve), looping the stream until the phase has run for at
// least kMinPhaseNanos so the QPS number is not startup noise. Returns QPS.
constexpr int64_t kMinPhaseNanos = 500'000'000;

double ReplayQps(const serve::HardenedExecutor& executor,
                 const std::vector<uint32_t>& requests) {
  const size_t clients = NumClients();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> completed{0};
  const int64_t begin_ns = obs::NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, clients, c] {
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      uint64_t done = 0;
      while (obs::NowNanos() - begin_ns < kMinPhaseNanos) {
        for (size_t i = begin; i < end; ++i) {
          const obs::ScopedRequestContext request_scope(
              obs::RequestContext{static_cast<uint64_t>(i) + 1, requests[i],
                                  10});
          auto response = executor.Execute(requests[i], 10, /*token=*/i);
          HOSR_CHECK(response.ok());
          ++done;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(obs::NowNanos() - begin_ns) / 1e9;
  return static_cast<double>(completed.load()) / elapsed_s;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InitFromFlags(util::Flags::Parse(argc, argv));
  // Span/histogram capture on for BOTH phases so the only delta between
  // them is the live admin server + its pollers, not instrumentation cost.
  obs::SetEnabled(true);

  auto generated =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.05));
  HOSR_CHECK(generated.ok());
  const data::Dataset dataset = std::move(generated).value();
  models::BprMf::Config config;
  config.embedding_dim = 10;
  models::BprMf model(dataset.num_users(), dataset.num_items(), config);
  auto built = serve::BuildSnapshot(model);
  HOSR_CHECK(built.ok());
  const serve::ModelSnapshot snapshot = std::move(built).value();
  const serve::InferenceEngine engine(snapshot, &dataset.interactions);
  const serve::HardenedExecutor executor(&engine, serve::HardenedOptions{});

  util::Rng rng(17);
  std::vector<uint32_t> requests(kNumRequests);
  for (auto& user : requests) {
    user = SampleUser(&rng, engine.num_users(), kZipf);
  }

  // Warmup.
  (void)ReplayQps(executor, requests);

  // The admin server stays live the whole time; what alternates per pair is
  // whether a poller is hammering it. Interleaved pairs + median cancel the
  // drift a single 0.5s window picks up from a busy runner (frequency
  // scaling, page cache, unrelated load), and the within-pair order flips
  // every pair (off/on, on/off, ... — ABBA) so monotonic drift biases
  // neither side.
  //
  // The poller cycles all five endpoints at a scraper-like cadence (one
  // request every 100ms — a full cycle over all five endpoints per >=0.5s
  // replay; real scrapers run on multi-second intervals, so this is still
  // an order of magnitude hotter than production). On a single-core runner
  // every handler cycle is stolen directly from the replay threads, which
  // makes this the worst case.
  obs::AdminServer admin(obs::AdminServer::Options{.port = 0});
  HOSR_CHECK(admin.Start().ok());
  admin.SetVar("binary", "serve_admin_bench");
  obs::HealthTracker::Global().SetReady(true);

  constexpr int kPairs = 5;
  std::vector<double> off_samples, on_samples;
  uint64_t total_polls = 0;
  const auto polled_replay = [&] {
    std::atomic<bool> stop_polling{false};
    std::atomic<uint64_t> polls{0};
    std::thread poller([&] {
      const char* paths[] = {"/metricsz", "/healthz", "/readyz", "/varz",
                             "/tracez"};
      size_t i = 0;
      while (!stop_polling.load(std::memory_order_relaxed)) {
        auto response = obs::AdminHttpGet(admin.port(), paths[i % 5]);
        HOSR_CHECK(response.ok());
        ++i;
        polls.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    const double qps = ReplayQps(executor, requests);
    stop_polling.store(true);
    poller.join();
    total_polls += polls.load();
    return qps;
  };
  for (int pair = 0; pair < kPairs; ++pair) {
    if (pair % 2 == 0) {
      off_samples.push_back(ReplayQps(executor, requests));
      on_samples.push_back(polled_replay());
    } else {
      on_samples.push_back(polled_replay());
      off_samples.push_back(ReplayQps(executor, requests));
    }
  }
  admin.Stop();

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double qps_off = median(off_samples);
  const double qps_on = median(on_samples);
  const double penalty = qps_off / qps_on;
  auto& registry = obs::Registry::Global();
  registry.GetGauge("bench/serve_admin/replay_top10_qps_admin_off")
      ->Set(qps_off);
  registry.GetGauge("bench/serve_admin/replay_top10_qps_admin_on")
      ->Set(qps_on);
  registry.GetGauge("bench/serve_admin/admin_overhead_penalty")->Set(penalty);
  registry.GetGauge("bench/serve_admin/admin_polls_per_replay")
      ->Set(static_cast<double>(total_polls) / kPairs);
  std::printf(
      "admin off: %.0f QPS | admin on: %.0f QPS (%.1f%% overhead, median of "
      "%d pairs, %llu endpoint polls total)\n",
      qps_off, qps_on, (penalty - 1.0) * 100.0, kPairs,
      static_cast<unsigned long long>(total_polls));
  return 0;
}
