// Reproduces Table 4: the effect of layer count (HOSR-1..HOSR-4) crossed
// with the layer-aggregation strategy (base = last layer only, average,
// attention).
//
// Reproduction target (shape): the base model peaks at ~2 layers and then
// degrades (over-smoothing), while average/attention tolerate more layers;
// attention is the best aggregate overall.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hosr.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

const char* AggregationName(hosr::core::LayerAggregation aggregation) {
  switch (aggregation) {
    case hosr::core::LayerAggregation::kLast:
      return "Base";
    case hosr::core::LayerAggregation::kAverage:
      return "Average";
    case hosr::core::LayerAggregation::kAttention:
      return "Attention";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Table 4: layer count x aggregation strategy ===\n");
  std::printf("(HOSR-k, k=1..4; attention/average only meaningful for "
              "k>1; d=%u, %u epochs)\n\n", options.dim, options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table(
      {"Dataset", "Model", "Aggregation", "R@20", "MAP@20"});

  for (const auto& dataset : datasets) {
    for (uint32_t layers = 1; layers <= 4; ++layers) {
      for (const auto aggregation :
           {core::LayerAggregation::kLast, core::LayerAggregation::kAverage,
            core::LayerAggregation::kAttention}) {
        if (layers == 1 && aggregation != core::LayerAggregation::kLast) {
          continue;  // aggregation needs >1 layer (as in the paper)
        }
        core::Hosr::Config config;
        config.embedding_dim = options.dim;
        config.num_layers = layers;
        config.aggregation = aggregation;
        config.graph_dropout = 0.2f;
        config.seed = options.seed;
        core::Hosr model(dataset.split.train, config);
        const auto result = bench::TrainModelBest(&model, dataset, options);
        bench::PublishResultGauge(
            "table4_layer_aggregation",
            util::StrFormat("%s_hosr%u_%s_recall_at_20",
                            dataset.label.c_str(), layers,
                            AggregationName(aggregation)),
            result.recall);
        table.AddRow({dataset.label, util::StrFormat("HOSR-%u", layers),
                      AggregationName(aggregation),
                      util::Table::Cell(result.recall),
                      util::Table::Cell(result.map)});
        std::fprintf(stderr, "  [%s] HOSR-%u %s: R@20=%.4f MAP@20=%.4f\n",
                     dataset.label.c_str(), layers,
                     AggregationName(aggregation), result.recall, result.map);
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper shape: Base peaks at HOSR-2 (over-smoothing beyond); "
              "Attention peaks at HOSR-3/4 and is the best aggregate.\n");
  bench::MaybeWriteCsv(options, "table4_layer_aggregation", table.ToCsv());
  return 0;
}
