// Training throughput of the deterministic parallel engine
// (docs/PERFORMANCE.md "Parallel training"): trains BPR-MF on a YelpLike
// synthetic dataset under four trainer configurations —
//
//   seq        1 thread, dense optimizer steps (the classic trainer)
//   par2/par   2/4 workers, sparse optimizer steps (the shipped fast path)
//   par_dense  4 workers, dense optimizer steps (isolates the step change)
//
// — and publishes samples/sec per configuration plus two ratios:
// `speedup` (par vs seq, the headline >=2x acceptance gate) and
// `sparse_step_speedup` (sparse vs dense steps at the same worker count).
// Before measuring, it byte-compares the training state of a short seq run
// against a 4-worker run, so the throughput numbers are only ever reported
// for configurations proven to produce bit-identical trajectories.
//
// Run via run_benches.sh (picked up like every bench) or directly:
//   ./build/bench/train_throughput --metrics_out=bench_metrics/tt.json
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "models/trainer.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

using namespace hosr;

struct BenchResult {
  double samples_per_sec = 0.0;
};

models::TrainConfig MakeConfig(uint32_t epochs) {
  models::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 512;
  config.learning_rate = 0.005f;
  config.weight_decay = 1e-4f;
  config.optimizer = "rmsprop";
  config.seed = 11;
  return config;
}

models::BprMf MakeModel(const data::Dataset& dataset, uint32_t dim) {
  models::BprMf::Config config;
  config.embedding_dim = dim;
  return models::BprMf(dataset.num_users(), dataset.num_items(), config);
}

// Trains a fresh model: one warmup epoch, then `timed_epochs` measured
// ones. Returns sampled triples per wall-clock second over the timed span.
BenchResult Measure(const data::Dataset& dataset, uint32_t dim,
                    models::TrainConfig config, uint32_t timed_epochs) {
  config.epochs = 1 + timed_epochs;
  models::BprMf model = MakeModel(dataset, dim);
  models::BprTrainer trainer(&model, &dataset.interactions, config);
  (void)trainer.RunEpoch();  // warmup: page in tables, spawn threads once
  double seconds = 0.0;
  double samples = 0.0;
  while (trainer.epoch() < config.epochs) {
    const models::EpochStats stats = trainer.RunEpoch();
    seconds += stats.seconds;
    samples += static_cast<double>(stats.samples);
  }
  BenchResult result;
  result.samples_per_sec = seconds > 0.0 ? samples / seconds : 0.0;
  return result;
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// Byte-compares training states of a short sequential run vs a 4-worker
// run; aborts the bench if they diverge (the perf numbers would then be
// comparing different algorithms, not different engines).
void CheckBitIdentity(const data::Dataset& dataset, uint32_t dim) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hosr_train_bench").string();
  std::filesystem::create_directories(dir);
  std::string bytes[2];
  for (int i = 0; i < 2; ++i) {
    models::TrainConfig config = MakeConfig(/*epochs=*/1);
    config.train_threads = i == 0 ? 1 : 4;
    models::BprMf model = MakeModel(dataset, dim);
    models::BprTrainer trainer(&model, &dataset.interactions, config);
    trainer.Train();
    const std::string path = dir + "/state_" + std::to_string(i);
    HOSR_CHECK(trainer.SaveTrainingState(path).ok());
    bytes[i] = ReadRaw(path);
    std::remove(path.c_str());
  }
  HOSR_CHECK(!bytes[0].empty() && bytes[0] == bytes[1])
      << "parallel trainer diverged from sequential; refusing to bench";
  std::printf("bit-identity check: seq == 4-worker training state (%zu "
              "bytes)\n", bytes[0].size());
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags = util::Flags::Parse(argc, argv);
  obs::InitFromFlags(flags);

  const double scale = flags.GetDouble("bench_scale", 0.6);
  const uint32_t dim =
      static_cast<uint32_t>(flags.GetInt("bench_dim", 64));
  const uint32_t timed_epochs =
      static_cast<uint32_t>(flags.GetInt("bench_epochs", 2));

  auto generated =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(scale));
  HOSR_CHECK(generated.ok());
  const data::Dataset dataset = std::move(generated).value();
  std::printf("dataset: %u users, %u items, %zu interactions, dim %u\n",
              dataset.num_users(), dataset.num_items(),
              dataset.interactions.nnz(), dim);

  CheckBitIdentity(dataset, dim);

  models::TrainConfig config = MakeConfig(1);
  const BenchResult seq = Measure(dataset, dim, config, timed_epochs);

  config.train_threads = 2;
  config.sparse_steps = true;
  const BenchResult par2 = Measure(dataset, dim, config, timed_epochs);

  config.train_threads = 4;
  const BenchResult par4 = Measure(dataset, dim, config, timed_epochs);

  config.sparse_steps = false;
  const BenchResult par4_dense = Measure(dataset, dim, config, timed_epochs);

  const double speedup =
      seq.samples_per_sec > 0.0 ? par4.samples_per_sec / seq.samples_per_sec
                                : 0.0;
  const double sparse_step_speedup =
      par4_dense.samples_per_sec > 0.0
          ? par4.samples_per_sec / par4_dense.samples_per_sec
          : 0.0;

  auto& registry = obs::Registry::Global();
  registry.GetGauge("bench/train_throughput/seq_samples_per_sec")
      ->Set(seq.samples_per_sec);
  registry.GetGauge("bench/train_throughput/par2_samples_per_sec")
      ->Set(par2.samples_per_sec);
  registry.GetGauge("bench/train_throughput/par_samples_per_sec")
      ->Set(par4.samples_per_sec);
  registry.GetGauge("bench/train_throughput/par_dense_samples_per_sec")
      ->Set(par4_dense.samples_per_sec);
  registry.GetGauge("bench/train_throughput/speedup")->Set(speedup);
  registry.GetGauge("bench/train_throughput/sparse_step_speedup")
      ->Set(sparse_step_speedup);

  std::printf(
      "seq (1 thread, dense):    %10.0f samples/s\n"
      "par (2 workers, sparse):  %10.0f samples/s\n"
      "par (4 workers, sparse):  %10.0f samples/s\n"
      "par (4 workers, dense):   %10.0f samples/s\n"
      "speedup (par4/seq):       %.2fx\n"
      "sparse step win (4w):     %.2fx\n",
      seq.samples_per_sec, par2.samples_per_sec, par4.samples_per_sec,
      par4_dense.samples_per_sec, speedup, sparse_step_speedup);
  return 0;
}
