// Serving-path benchmarks: single-user top-K latency (the acceptance
// criterion's ≥50k QPS single-user top-10 path), batched top-K, the cached
// hot path, and snapshot (de)serialization. Run via run_benches.sh or:
//   ./build/bench/serve_throughput --benchmark_filter=TopK
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace hosr;

const data::Dataset& BenchDataset() {
  static const data::Dataset* dataset = [] {
    auto result =
        data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.05));
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

// Snapshot of an (untrained) BPR model over the bench dataset — parameter
// values do not affect serving cost, only shapes do.
const serve::ModelSnapshot& BenchSnapshot() {
  static const serve::ModelSnapshot* snapshot = [] {
    const auto& dataset = BenchDataset();
    models::BprMf::Config config;
    config.embedding_dim = 10;
    models::BprMf model(dataset.num_users(), dataset.num_items(), config);
    auto built = serve::BuildSnapshot(model);
    HOSR_CHECK(built.ok());
    return new serve::ModelSnapshot(std::move(built).value());
  }();
  return *snapshot;
}

const serve::InferenceEngine& BenchEngine() {
  static const serve::InferenceEngine* engine = [] {
    return new serve::InferenceEngine(BenchSnapshot(),
                                      &BenchDataset().interactions);
  }();
  return *engine;
}

// The acceptance path: single-user top-10 queries, cache disabled.
void BM_SingleUserTopK(benchmark::State& state) {
  const auto& engine = BenchEngine();
  const auto k = static_cast<uint32_t>(state.range(0));
  util::Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    const auto user =
        static_cast<uint32_t>(rng.UniformInt(engine.num_users()));
    auto ranked = engine.TopKForUser(user, k);
    benchmark::DoNotOptimize(ranked.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleUserTopK)->Arg(10)->Arg(50)->ThreadRange(1, 4)
    ->UseRealTime();

void BM_TopKBatch(benchmark::State& state) {
  const auto& engine = BenchEngine();
  const auto batch_size = static_cast<size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<uint32_t> users(batch_size);
  for (auto& u : users) {
    u = static_cast<uint32_t>(rng.UniformInt(engine.num_users()));
  }
  for (auto _ : state) {
    auto ranked = engine.TopKBatch(users, 10);
    benchmark::DoNotOptimize(ranked.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_TopKBatch)->Arg(16)->Arg(256);

// The cached hot path under a skewed (90% repeat) request mix.
void BM_CachedTopK(benchmark::State& state) {
  const auto& engine = BenchEngine();
  serve::ResultCache cache;
  util::Rng rng(11);
  for (auto _ : state) {
    const bool hot = rng.Bernoulli(0.9);
    const auto user = static_cast<uint32_t>(
        hot ? rng.UniformInt(16) : rng.UniformInt(engine.num_users()));
    if (!cache.Get(user, 10)) {
      cache.Put(user, 10, engine.TopKForUser(user, 10));
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] = cache.HitRate();
}
BENCHMARK(BM_CachedTopK);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  const auto& snapshot = BenchSnapshot();
  const std::string path = "/tmp/hosr_bench_snapshot.bin";
  for (auto _ : state) {
    HOSR_CHECK(serve::SaveSnapshot(snapshot, path).ok());
    auto loaded = serve::LoadSnapshot(path);
    HOSR_CHECK(loaded.ok());
    benchmark::DoNotOptimize(loaded->factors.user_factors.data());
  }
  const double bytes_per_iter = static_cast<double>(
      (snapshot.factors.user_factors.size() +
       snapshot.factors.item_factors.size()) *
      sizeof(float));
  state.SetBytesProcessed(
      static_cast<int64_t>(bytes_per_iter * state.iterations() * 2));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSaveLoad);

// Re-measures the acceptance path outside the benchmark harness and
// publishes the result as a gauge, so bench_metrics/serve_throughput.json
// carries the headline QPS for tools/bench_diff comparisons across runs.
void PublishAcceptanceQps() {
  const auto& engine = BenchEngine();
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {  // warm caches and page in factors
    benchmark::DoNotOptimize(
        engine
            .TopKForUser(
                static_cast<uint32_t>(rng.UniformInt(engine.num_users())), 10)
            .data());
  }
  const int64_t begin_ns = obs::NowNanos();
  constexpr int64_t kMinNanos = 300'000'000;
  int64_t iterations = 0;
  int64_t elapsed_ns = 0;
  while (elapsed_ns < kMinNanos) {
    for (int i = 0; i < 256; ++i) {
      const auto user =
          static_cast<uint32_t>(rng.UniformInt(engine.num_users()));
      benchmark::DoNotOptimize(engine.TopKForUser(user, 10).data());
    }
    iterations += 256;
    elapsed_ns = obs::NowNanos() - begin_ns;
  }
  const double qps =
      static_cast<double>(iterations) / (static_cast<double>(elapsed_ns) / 1e9);
  obs::Registry::Global()
      .GetGauge("bench/serve_throughput/single_user_top10_qps")
      ->Set(qps);
  std::printf("acceptance path: single-user top-10 = %.0f QPS\n", qps);
}

}  // namespace

// Like micro_complexity: --benchmark_* flags go to the benchmark library,
// everything else (--metrics_out, --trace_out, ...) to hosr::obs.
int main(int argc, char** argv) {
  std::vector<char*> benchmark_args{argv[0]};
  std::vector<char*> hosr_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (hosr::util::StartsWith(argv[i], "--benchmark_")) {
      benchmark_args.push_back(argv[i]);
    } else {
      hosr_args.push_back(argv[i]);
    }
  }
  hosr::obs::InitFromFlags(hosr::util::Flags::Parse(
      static_cast<int>(hosr_args.size()), hosr_args.data()));
  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  PublishAcceptanceQps();
  benchmark::Shutdown();
  return 0;
}
