// Microbenchmarks backing the Sec. 2.5 complexity analysis:
//  * SpMM cost is linear in nnz(L) and in d (the k|L|d^2 propagation term);
//  * one HOSR training step scales linearly in the layer count k;
//  * a HOSR epoch is within a small constant of a TrustSVD epoch
//    ("the complexity is compatible to that of TrustSVD").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/hosr.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "models/trust_svd.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace hosr;

const data::Dataset& BenchDataset() {
  static const data::Dataset* dataset = [] {
    auto result =
        data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.08));
    HOSR_CHECK(result.ok());
    return new data::Dataset(std::move(result).value());
  }();
  return *dataset;
}

// --- SpMM scaling in nnz -----------------------------------------------------

void BM_SpmmScalingNnz(benchmark::State& state) {
  const auto edges_per_node = static_cast<uint32_t>(state.range(0));
  const uint32_t n = 4000;
  util::Rng rng(1);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < n; ++i) {
    for (uint32_t e = 0; e < edges_per_node; ++e) {
      edges.emplace_back(i, static_cast<uint32_t>(rng.UniformInt(i)));
    }
  }
  auto graph = graph::SocialGraph::FromEdges(n, edges);
  HOSR_CHECK(graph.ok());
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(graph->adjacency());
  tensor::Matrix dense(n, 10);
  tensor::GaussianInit(&dense, 1.0f, &rng);
  tensor::Matrix out(n, 10);
  for (auto _ : state) {
    graph::Spmm(laplacian, dense, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["nnz"] = static_cast<double>(laplacian.nnz());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(laplacian.nnz()) * 10);
}
BENCHMARK(BM_SpmmScalingNnz)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// --- SpMM scaling in d --------------------------------------------------------

void BM_SpmmScalingDim(benchmark::State& state) {
  const auto d = static_cast<size_t>(state.range(0));
  const data::Dataset& dataset = BenchDataset();
  const graph::CsrMatrix laplacian =
      graph::NormalizedLaplacian(dataset.social.adjacency());
  util::Rng rng(2);
  tensor::Matrix dense(dataset.num_users(), d);
  tensor::GaussianInit(&dense, 1.0f, &rng);
  tensor::Matrix out(dataset.num_users(), d);
  for (auto _ : state) {
    graph::Spmm(laplacian, dense, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(laplacian.nnz() * d));
}
BENCHMARK(BM_SpmmScalingDim)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

// --- GEMM baseline -------------------------------------------------------------

void BM_GemmEmbeddingTransform(benchmark::State& state) {
  const auto d = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  tensor::Matrix a(BenchDataset().num_users(), d), w(d, d);
  tensor::GaussianInit(&a, 1.0f, &rng);
  tensor::GaussianInit(&w, 1.0f, &rng);
  tensor::Matrix out(a.rows(), d);
  for (auto _ : state) {
    tensor::Gemm(a, false, w, false, 1.0f, 0.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.rows() * d * d));
}
BENCHMARK(BM_GemmEmbeddingTransform)->Arg(5)->Arg(10)->Arg(20);

// --- One HOSR training step vs layer count ------------------------------------

void BM_HosrStepVsLayers(benchmark::State& state) {
  const auto layers = static_cast<uint32_t>(state.range(0));
  const data::Dataset& dataset = BenchDataset();
  core::Hosr::Config config;
  config.embedding_dim = 10;
  config.num_layers = layers;
  config.graph_dropout = 0.0f;
  config.seed = 4;
  core::Hosr model(dataset, config);
  data::BprSampler sampler(&dataset.interactions, 5);
  util::Rng rng(6);
  for (auto _ : state) {
    const data::BprBatch batch = sampler.SampleBatch(512);
    autograd::Tape tape;
    autograd::Value loss = model.BuildLoss(&tape, batch, &rng);
    model.params()->ZeroGrad();
    tape.Backward(loss);
    benchmark::DoNotOptimize(model.params()->at(0)->grad.data());
  }
}
BENCHMARK(BM_HosrStepVsLayers)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// --- HOSR vs TrustSVD epoch cost (Sec. 2.5 comparability claim) -----------------

void BM_TrainStepTrustSvd(benchmark::State& state) {
  const data::Dataset& dataset = BenchDataset();
  models::TrustSvd::Config config;
  config.embedding_dim = 10;
  config.seed = 4;
  models::TrustSvd model(dataset, config);
  data::BprSampler sampler(&dataset.interactions, 5);
  util::Rng rng(6);
  for (auto _ : state) {
    const data::BprBatch batch = sampler.SampleBatch(512);
    autograd::Tape tape;
    autograd::Value loss = model.BuildLoss(&tape, batch, &rng);
    model.params()->ZeroGrad();
    tape.Backward(loss);
    benchmark::DoNotOptimize(model.params()->at(0)->grad.data());
  }
}
BENCHMARK(BM_TrainStepTrustSvd);

void BM_TrainStepHosr3(benchmark::State& state) {
  const data::Dataset& dataset = BenchDataset();
  core::Hosr::Config config;
  config.embedding_dim = 10;
  config.num_layers = 3;
  config.graph_dropout = 0.0f;
  config.seed = 4;
  core::Hosr model(dataset, config);
  data::BprSampler sampler(&dataset.interactions, 5);
  util::Rng rng(6);
  for (auto _ : state) {
    const data::BprBatch batch = sampler.SampleBatch(512);
    autograd::Tape tape;
    autograd::Value loss = model.BuildLoss(&tape, batch, &rng);
    model.params()->ZeroGrad();
    tape.Backward(loss);
    benchmark::DoNotOptimize(model.params()->at(0)->grad.data());
  }
}
BENCHMARK(BM_TrainStepHosr3);

// --- Full-score inference (the |Y|d prediction term) ----------------------------

void BM_HosrScoreAllItems(benchmark::State& state) {
  const data::Dataset& dataset = BenchDataset();
  core::Hosr::Config config;
  config.embedding_dim = 10;
  config.num_layers = 3;
  config.seed = 4;
  core::Hosr model(dataset, config);
  std::vector<uint32_t> users(256);
  for (uint32_t i = 0; i < users.size(); ++i) users[i] = i;
  for (auto _ : state) {
    const tensor::Matrix scores = model.ScoreAllItems(users);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()) *
                          dataset.num_items());
}
BENCHMARK(BM_HosrScoreAllItems);

// Times `steps` training steps of `model` directly (outside the benchmark
// harness) and returns the average microseconds per step.
double MeasureStepMicros(models::RankingModel* model, int steps) {
  const data::Dataset& dataset = BenchDataset();
  data::BprSampler sampler(&dataset.interactions, 5);
  util::Rng rng(6);
  const int64_t begin_ns = obs::NowNanos();
  for (int i = 0; i < steps; ++i) {
    const data::BprBatch batch = sampler.SampleBatch(512);
    autograd::Tape tape;
    autograd::Value loss = model->BuildLoss(&tape, batch, &rng);
    model->params()->ZeroGrad();
    tape.Backward(loss);
    benchmark::DoNotOptimize(model->params()->at(0)->grad.data());
  }
  return static_cast<double>(obs::NowNanos() - begin_ns) / 1e3 / steps;
}

// Publishes the headline Sec. 2.5 comparability number — the HOSR-3 /
// TrustSVD per-step cost ratio — as a gauge for bench_diff trajectories.
void PublishStepCostGauges() {
  const data::Dataset& dataset = BenchDataset();
  core::Hosr::Config hosr_config;
  hosr_config.embedding_dim = 10;
  hosr_config.num_layers = 3;
  hosr_config.graph_dropout = 0.0f;
  hosr_config.seed = 4;
  core::Hosr hosr(dataset, hosr_config);
  models::TrustSvd::Config trust_config;
  trust_config.embedding_dim = 10;
  trust_config.seed = 4;
  models::TrustSvd trust(dataset, trust_config);
  constexpr int kSteps = 16;
  MeasureStepMicros(&hosr, 2);   // warmup
  MeasureStepMicros(&trust, 2);  // warmup
  const double hosr_us = MeasureStepMicros(&hosr, kSteps);
  const double trust_us = MeasureStepMicros(&trust, kSteps);
  auto& registry = hosr::obs::Registry::Global();
  registry.GetGauge("bench/micro_complexity/hosr3_step_us")->Set(hosr_us);
  registry.GetGauge("bench/micro_complexity/trustsvd_step_us")->Set(trust_us);
  registry.GetGauge("bench/micro_complexity/hosr3_vs_trustsvd_penalty")
      ->Set(hosr_us / trust_us);
  std::printf("step cost: HOSR-3 %.1f us, TrustSVD %.1f us (%.2fx)\n",
              hosr_us, trust_us, hosr_us / trust_us);
}

}  // namespace

// Like BENCHMARK_MAIN(), but routes non---benchmark_* flags (--metrics_out=,
// --trace_out=, --log_level=) to the observability layer first — google
// benchmark's Initialize rejects flags it does not recognize.
int main(int argc, char** argv) {
  std::vector<char*> benchmark_args{argv[0]};
  std::vector<char*> hosr_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (hosr::util::StartsWith(argv[i], "--benchmark_")) {
      benchmark_args.push_back(argv[i]);
    } else {
      hosr_args.push_back(argv[i]);
    }
  }
  hosr::obs::InitFromFlags(hosr::util::Flags::Parse(
      static_cast<int>(hosr_args.size()), hosr_args.data()));
  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  PublishStepCostGauges();
  benchmark::Shutdown();
  return 0;
}
