// Measures the serving-path cost of hot-reload readiness
// (docs/ROBUSTNESS.md "Hot reload & overload control"): replays a
// zipf-skewed single-user top-10 stream in interleaved off/on pairs —
// a pinned engine + executor vs a SnapshotManager with its mtime watcher
// polling, where every request pays the RCU Acquire() (one atomic
// shared_ptr load) before executing — and publishes the median QPS of each
// side plus their ratio as gauges. The acceptance bar is parity: the
// manager-armed replay must stay within a few percent of static serving
// (the ISSUE gate is <5% QPS overhead).
//
// Run via run_benches.sh (picked up like every bench) or directly:
//   ./build/bench/serve_reload --metrics_out=bench_metrics/serve_reload.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/reload.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace hosr;

constexpr size_t kNumRequests = 4096;
constexpr double kZipf = 0.9;

size_t NumClients() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(4, hw));
}

uint32_t SampleUser(util::Rng* rng, uint32_t num_users, double s) {
  const double n = static_cast<double>(num_users);
  const double u = rng->UniformDouble();
  const double x = std::pow((std::pow(n, 1.0 - s) - 1.0) * u + 1.0,
                            1.0 / (1.0 - s));
  return std::min(static_cast<uint32_t>(x - 1.0), num_users - 1);
}

// Replays the 4k stream across NumClients() threads, looping until the
// phase has run for at least kMinPhaseNanos. `acquire` is the per-request
// entry point under test: the static side returns a pinned executor, the
// reload side does manager->Acquire() exactly as net::NetServer does.
constexpr int64_t kMinPhaseNanos = 500'000'000;

template <typename AcquireFn>
double ReplayQps(const std::vector<uint32_t>& requests, AcquireFn acquire) {
  const size_t clients = NumClients();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> completed{0};
  const int64_t begin_ns = obs::NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, clients, c] {
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      uint64_t done = 0;
      while (obs::NowNanos() - begin_ns < kMinPhaseNanos) {
        for (size_t i = begin; i < end; ++i) {
          const obs::ScopedRequestContext request_scope(
              obs::RequestContext{static_cast<uint64_t>(i) + 1, requests[i],
                                  10});
          auto response = acquire(requests[i], i);
          HOSR_CHECK(response.ok());
          ++done;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(obs::NowNanos() - begin_ns) / 1e9;
  return static_cast<double>(completed.load()) / elapsed_s;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InitFromFlags(util::Flags::Parse(argc, argv));
  obs::SetEnabled(true);

  auto generated =
      data::GenerateSynthetic(data::SyntheticConfig::YelpLike(0.05));
  HOSR_CHECK(generated.ok());
  const data::Dataset dataset = std::move(generated).value();
  models::BprMf::Config config;
  config.embedding_dim = 10;
  models::BprMf model(dataset.num_users(), dataset.num_items(), config);
  auto built = serve::BuildSnapshot(model);
  HOSR_CHECK(built.ok());
  const serve::ModelSnapshot snapshot = std::move(built).value();

  // Static side: the pre-reload serving stack, pinned for the process
  // lifetime, exactly what hosr_serve builds with --reload=0.
  const serve::InferenceEngine engine(snapshot, &dataset.interactions);
  const serve::HardenedExecutor executor(&engine, serve::HardenedOptions{});

  // Reload side: the same snapshot behind a SnapshotManager with its
  // watcher thread polling at the hosr_serve default cadence the whole
  // time — the steady-state cost of being hot-swappable, not of swapping.
  const std::string artifact =
      (std::filesystem::temp_directory_path() / "hosr_serve_reload_bench")
          .string();
  HOSR_CHECK(serve::SaveSnapshot(snapshot, artifact).ok());
  serve::SnapshotManager::Options manager_options;
  manager_options.path = artifact;
  manager_options.seen = &dataset.interactions;
  manager_options.poll_interval_s = 0.5;
  auto manager =
      serve::SnapshotManager::Create(std::move(manager_options), snapshot);
  HOSR_CHECK(manager.ok());
  (*manager)->StartWatcher();

  util::Rng rng(17);
  std::vector<uint32_t> requests(kNumRequests);
  for (auto& user : requests) {
    user = SampleUser(&rng, engine.num_users(), kZipf);
  }

  const auto static_replay = [&] {
    return ReplayQps(requests, [&](uint32_t user, size_t i) {
      return executor.Execute(user, 10, /*token=*/i);
    });
  };
  const auto reload_replay = [&] {
    return ReplayQps(requests, [&](uint32_t user, size_t i) {
      const std::shared_ptr<const serve::ServingState> state =
          (*manager)->Acquire();
      return state->executor().Execute(user, 10, /*token=*/i);
    });
  };

  // Warmup both sides once.
  (void)static_replay();
  (void)reload_replay();

  // Interleaved pairs + median cancel runner drift; the within-pair order
  // flips every pair (ABBA) so monotonic drift biases neither side.
  constexpr int kPairs = 5;
  std::vector<double> static_samples, reload_samples;
  for (int pair = 0; pair < kPairs; ++pair) {
    if (pair % 2 == 0) {
      static_samples.push_back(static_replay());
      reload_samples.push_back(reload_replay());
    } else {
      reload_samples.push_back(reload_replay());
      static_samples.push_back(static_replay());
    }
  }
  (*manager)->Stop();
  std::error_code ec;
  std::filesystem::remove(artifact, ec);

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double qps_static = median(static_samples);
  const double qps_reload = median(reload_samples);
  const double penalty = qps_static / qps_reload;
  auto& registry = obs::Registry::Global();
  registry.GetGauge("bench/serve_reload/replay_top10_qps_static")
      ->Set(qps_static);
  registry.GetGauge("bench/serve_reload/replay_top10_qps_manager")
      ->Set(qps_reload);
  registry.GetGauge("bench/serve_reload/reload_overhead_penalty")
      ->Set(penalty);
  std::printf(
      "static: %.0f QPS | manager-armed: %.0f QPS (%.1f%% overhead, median "
      "of %d ABBA pairs)\n",
      qps_static, qps_reload, (penalty - 1.0) * 100.0, kPairs);
  return 0;
}
