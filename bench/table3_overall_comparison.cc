// Reproduces Table 3: Top-20 recommendation quality (Recall@20, MAP@20) of
// BPR, NCF, TrustSVD, NSCR, IF-BPR+, DeepInf and HOSR at embedding sizes
// 5 and 10 on both datasets, with paired-t-test p-values of HOSR against
// each baseline and the relative improvement over the strongest baseline.
//
// Reproduction target (shape, not absolute numbers): social models beat
// non-social ones; HOSR is best everywhere; HOSR's margin grows with
// embedding size.
#include <cstdio>

#include "common/bench_util.h"
#include "eval/significance.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Table 3: overall Top-20 comparison ===\n");
  std::printf("(scale %.2f, %u epochs; p-values: paired t-test of HOSR vs "
              "baseline over per-user Recall@20)\n\n",
              options.scale, options.epochs);

  const auto datasets = bench::MakeBothDatasets(options);
  util::Table table({"Dataset", "Dim", "Model", "R@20", "MAP@20",
                     "p-value(R)", "Improv."});

  for (const auto& dataset : datasets) {
    for (const uint32_t dim : {5u, 10u}) {
      // Train every model.
      std::vector<std::string> names = core::AllModelNames();
      std::vector<bench::TrainedModel> trained;
      trained.reserve(names.size());
      for (const auto& name : names) {
        trained.push_back(
            bench::TrainAndEvaluate(name, dataset, options, dim));
        std::fprintf(stderr, "  [%s d=%u] %s: R@20=%.4f MAP@20=%.4f\n",
                     dataset.label.c_str(), dim, name.c_str(),
                     trained.back().result.recall,
                     trained.back().result.map);
      }
      const bench::TrainedModel& hosr = trained.back();

      // Strongest baseline by Recall@20.
      double best_baseline_recall = 0.0;
      double best_baseline_map = 0.0;
      for (size_t i = 0; i + 1 < trained.size(); ++i) {
        best_baseline_recall =
            std::max(best_baseline_recall, trained[i].result.recall);
        best_baseline_map = std::max(best_baseline_map, trained[i].result.map);
      }

      for (size_t i = 0; i < trained.size(); ++i) {
        bench::PublishResultGauge(
            "table3_overall_comparison",
            util::StrFormat("%s_d%u_%s_recall_at_20", dataset.label.c_str(),
                            dim, names[i].c_str()),
            trained[i].result.recall);
        const bool is_hosr = i + 1 == trained.size();
        std::string p_value = "-";
        if (!is_hosr) {
          const auto ttest = eval::PairedTTest(
              hosr.result.per_user_recall, trained[i].result.per_user_recall);
          p_value = util::StrFormat("%.2e", ttest.p_value);
        }
        std::string improvement = "-";
        if (is_hosr && best_baseline_recall > 0) {
          improvement = util::StrFormat(
              "%+.2f%% R / %+.2f%% MAP",
              (hosr.result.recall / best_baseline_recall - 1.0) * 100,
              (hosr.result.map / best_baseline_map - 1.0) * 100);
        }
        table.AddRow({dataset.label, util::StrFormat("%u", dim), names[i],
                      util::Table::Cell(trained[i].result.recall),
                      util::Table::Cell(trained[i].result.map), p_value,
                      improvement});
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Paper (d=10): Douban R@20 0.0757 (+5.63%%), MAP 0.0282 "
              "(+15.57%%); Yelp R@20 0.0697 (+22.28%%), MAP 0.0202 "
              "(+29.49%%) over the strongest baseline.\n");
  bench::MaybeWriteCsv(options, "table3_overall_comparison", table.ToCsv());
  return 0;
}
