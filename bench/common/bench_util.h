#ifndef HOSR_BENCH_COMMON_BENCH_UTIL_H_
#define HOSR_BENCH_COMMON_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model_zoo.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/model.h"
#include "models/trainer.h"
#include "util/flags.h"

namespace hosr::bench {

// Options shared by every table/figure bench, populated from command-line
// flags:
//   --scale=F    dataset scale vs the paper's size (default 0.08)
//   --epochs=N   training epochs per model (default 30)
//   --dim=D      embedding size for single-dim benches (default 10)
//   --seed=S     base RNG seed (default 17)
//   --out=DIR    optional directory for CSV dumps
// FromFlags also wires the observability flags (--trace_out=FILE,
// --metrics_out=FILE, --log_level=LEVEL — see docs/OBSERVABILITY.md) so any
// bench can dump a Chrome trace and a metrics-registry JSON at exit.
struct BenchOptions {
  double scale = 0.08;
  uint32_t epochs = 80;
  // Evaluate every `eval_stride` epochs and report each model's best
  // snapshot — models converge at different speeds (HOSR slower than
  // TrustSVD), and the paper tunes every model to its own optimum.
  uint32_t eval_stride = 10;
  uint32_t dim = 10;
  uint64_t seed = 17;
  std::string out_dir;

  static BenchOptions FromFlags(int argc, char** argv);
};

// A generated dataset with its 80/20 split, as used by every experiment.
struct BenchDataset {
  std::string label;  // "Yelp-like" or "Douban-like"
  data::Dataset full;
  data::Split split;
};

// Builds the Yelp-like or Douban-like dataset at the requested scale and
// splits it 80/20 (Sec. 3.1 protocol).
BenchDataset MakeYelpLike(const BenchOptions& options);
BenchDataset MakeDoubanLike(const BenchOptions& options);
std::vector<BenchDataset> MakeBothDatasets(const BenchOptions& options);

// Per-model tuned learning rate (the paper grid-searches lr per model).
float ModelLearningRate(const std::string& model_name);

// Trains `model` on the split's training interactions with the paper's
// protocol (RMSprop at the model's tuned rate, batch 512 scaled down for
// small data). Returns final average loss.
double TrainModel(models::RankingModel* model, const BenchDataset& dataset,
                  const BenchOptions& options);

// Evaluates Recall@20 / MAP@20 over all test users.
eval::EvalResult EvaluateModel(models::RankingModel* model,
                               const BenchDataset& dataset, uint32_t k = 20);

// Trains for options.epochs, evaluating every options.eval_stride epochs,
// and returns the best snapshot's result (by Recall@20). The model is left
// in its final (not necessarily best) state.
eval::EvalResult TrainModelBest(models::RankingModel* model,
                                const BenchDataset& dataset,
                                const BenchOptions& options);

// Convenience: MakeModel + TrainModel + EvaluateModel.
struct TrainedModel {
  std::unique_ptr<models::RankingModel> model;
  eval::EvalResult result;
};
TrainedModel TrainAndEvaluate(const std::string& model_name,
                              const BenchDataset& dataset,
                              const BenchOptions& options, uint32_t dim,
                              uint64_t seed_offset = 0);

// Writes `csv` to <out_dir>/<name>.csv when --out was given.
void MaybeWriteCsv(const BenchOptions& options, const std::string& name,
                   const std::string& csv);

// Publishes a headline result as the gauge `bench/<bench>/<metric>` so the
// --metrics_out artifact (bench_metrics/<bench>.json under run_benches.sh)
// carries the bench's numbers in machine-readable form for tools/bench_diff.
// Both name parts are sanitized to the registry's naming rules (lowercased;
// non-[a-z0-9_] become '_'; a leading non-letter gets an 'n' prefix), so
// free-form labels like "Yelp-like" are safe to pass through.
void PublishResultGauge(const std::string& bench, const std::string& metric,
                        double value);

}  // namespace hosr::bench

#endif  // HOSR_BENCH_COMMON_BENCH_UTIL_H_
