#include "common/bench_util.h"

#include <algorithm>
#include <fstream>

#include "obs/metrics.h"
#include "obs/reporter.h"
#include "util/logging.h"

namespace hosr::bench {

BenchOptions BenchOptions::FromFlags(int argc, char** argv) {
  const util::Flags flags = util::Flags::Parse(argc, argv);
  // Every bench accepts --trace_out / --metrics_out / --log_level; the
  // artifacts are dumped automatically when the bench exits.
  obs::InitFromFlags(flags);
  BenchOptions options;
  options.scale = flags.GetDouble("scale", options.scale);
  options.epochs =
      static_cast<uint32_t>(flags.GetInt("epochs", options.epochs));
  options.eval_stride =
      static_cast<uint32_t>(flags.GetInt("eval_stride", options.eval_stride));
  options.dim = static_cast<uint32_t>(flags.GetInt("dim", options.dim));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  options.out_dir = flags.GetString("out", "");
  return options;
}

namespace {

BenchDataset MakeDataset(data::SyntheticConfig config, std::string label,
                         const BenchOptions& options) {
  config.seed ^= options.seed * 0x9e3779b97f4a7c15ULL;
  auto dataset = data::GenerateSynthetic(config);
  HOSR_CHECK(dataset.ok()) << dataset.status().ToString();
  util::Rng split_rng(options.seed ^ 0x243f6a8885a308d3ULL);
  auto split = data::SplitDataset(*dataset, 0.2, &split_rng);
  HOSR_CHECK(split.ok()) << split.status().ToString();
  BenchDataset result;
  result.label = std::move(label);
  result.full = std::move(dataset).value();
  result.split = std::move(split).value();
  return result;
}

}  // namespace

BenchDataset MakeYelpLike(const BenchOptions& options) {
  return MakeDataset(data::SyntheticConfig::YelpLike(options.scale),
                     "Yelp-like", options);
}

BenchDataset MakeDoubanLike(const BenchOptions& options) {
  return MakeDataset(data::SyntheticConfig::DoubanLike(options.scale),
                     "Douban-like", options);
}

std::vector<BenchDataset> MakeBothDatasets(const BenchOptions& options) {
  std::vector<BenchDataset> datasets;
  datasets.push_back(MakeDoubanLike(options));
  datasets.push_back(MakeYelpLike(options));
  return datasets;
}

float ModelLearningRate(const std::string& model_name) {
  // Per-model tuned rates, mirroring the paper's per-model grid search over
  // {1e-4, 5e-4, 1e-3, 5e-3}: deep propagation models want smaller steps.
  if (model_name == "TrustSVD" || model_name == "DeepInf") return 0.001f;
  if (model_name == "HOSR") return 0.001f;
  return 0.002f;
}

double TrainModel(models::RankingModel* model, const BenchDataset& dataset,
                  const BenchOptions& options) {
  models::TrainConfig config;
  config.epochs = options.epochs;
  // The paper fixes batch size 512; shrink proportionally for small scales
  // so one epoch still makes ~|Y|/batch steps.
  config.batch_size = static_cast<uint32_t>(std::clamp<size_t>(
      dataset.split.train.interactions.nnz() / 40, 64, 512));
  config.learning_rate = ModelLearningRate(model->name());
  config.weight_decay = 1e-5f;
  config.optimizer = "rmsprop";
  config.seed = options.seed;
  models::BprTrainer trainer(model, &dataset.split.train.interactions,
                             config);
  const auto history = trainer.Train();
  return history.empty() ? 0.0 : history.back().avg_loss;
}

eval::EvalResult EvaluateModel(models::RankingModel* model,
                               const BenchDataset& dataset, uint32_t k) {
  eval::Evaluator evaluator(&dataset.split.train.interactions,
                            &dataset.split.test, k);
  return evaluator.Evaluate([&](const std::vector<uint32_t>& users) {
    return model->ScoreAllItems(users);
  });
}

eval::EvalResult TrainModelBest(models::RankingModel* model,
                                const BenchDataset& dataset,
                                const BenchOptions& options) {
  models::TrainConfig config;
  config.epochs = 1;  // stepped manually below
  config.batch_size = static_cast<uint32_t>(std::clamp<size_t>(
      dataset.split.train.interactions.nnz() / 40, 64, 512));
  config.learning_rate = ModelLearningRate(model->name());
  config.weight_decay = 1e-5f;
  config.optimizer = "rmsprop";
  config.seed = options.seed;
  models::BprTrainer trainer(model, &dataset.split.train.interactions,
                             config);
  const uint32_t stride = std::max<uint32_t>(1, options.eval_stride);
  eval::EvalResult best;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    trainer.RunEpoch();
    if ((epoch + 1) % stride == 0 || epoch + 1 == options.epochs) {
      eval::EvalResult snapshot = EvaluateModel(model, dataset);
      if (snapshot.recall >= best.recall) best = std::move(snapshot);
    }
  }
  return best;
}

TrainedModel TrainAndEvaluate(const std::string& model_name,
                              const BenchDataset& dataset,
                              const BenchOptions& options, uint32_t dim,
                              uint64_t seed_offset) {
  core::ZooConfig zoo;
  zoo.embedding_dim = dim;
  zoo.seed = options.seed + seed_offset;
  auto model = core::MakeModel(model_name, dataset.split.train, zoo);
  HOSR_CHECK(model.ok()) << model.status().ToString();
  TrainedModel trained;
  trained.model = std::move(model).value();
  trained.result = TrainModelBest(trained.model.get(), dataset, options);
  return trained;
}

namespace {

std::string SanitizeMetricSegment(const std::string& raw) {
  std::string segment;
  segment.reserve(raw.size());
  for (char c : raw) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    segment.push_back(ok ? c : '_');
  }
  if (segment.empty() || segment[0] < 'a' || segment[0] > 'z') {
    segment.insert(segment.begin(), 'n');
  }
  return segment;
}

}  // namespace

void PublishResultGauge(const std::string& bench, const std::string& metric,
                        double value) {
  // Dynamic names can't use the HOSR_GAUGE macro (it caches per call site);
  // resolve through the registry directly.
  obs::Registry::Global()
      .GetGauge("bench/" + SanitizeMetricSegment(bench) + "/" +
                SanitizeMetricSegment(metric))
      ->Set(value);
}

void MaybeWriteCsv(const BenchOptions& options, const std::string& name,
                   const std::string& csv) {
  if (options.out_dir.empty()) return;
  const std::string path = options.out_dir + "/" + name + ".csv";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    HOSR_LOG(Warning) << "cannot write " << path;
    return;
  }
  out << csv;
  HOSR_LOG(Info) << "wrote " << path;
}

}  // namespace hosr::bench
