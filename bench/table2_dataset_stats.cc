// Reproduces Table 2: dataset statistics (#users, #items, interactions,
// social edges, densities, per-user averages) of the two generated
// datasets, next to the paper's values for the real Yelp / Douban data.
#include <cstdio>

#include "common/bench_util.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Table 2: dataset statistics ===\n");
  std::printf("(generator configured to the paper's shapes at scale %.2f; "
              "per-user averages and densities are scale-invariant "
              "targets)\n\n", options.scale);

  util::Table table({"Statistic", "Yelp-like", "Paper Yelp", "Douban-like",
                     "Paper Douban"});
  const auto douban = bench::MakeDoubanLike(options);
  const auto yelp = bench::MakeYelpLike(options);
  const auto ys = yelp.full.Summarize();
  const auto ds = douban.full.Summarize();

  table.AddRow({"# User", util::StrFormat("%u", ys.num_users), "10,580",
                util::StrFormat("%u", ds.num_users), "12,748"});
  table.AddRow({"# Item", util::StrFormat("%u", ys.num_items), "14,284",
                util::StrFormat("%u", ds.num_items), "22,348"});
  table.AddRow({"# User-Item", util::StrFormat("%zu", ys.num_interactions),
                "171,102", util::StrFormat("%zu", ds.num_interactions),
                "785,272"});
  table.AddRow({"# User-User (undirected)",
                util::StrFormat("%zu", ys.num_social_edges), "169,150*",
                util::StrFormat("%zu", ds.num_social_edges), "181,890*"});
  table.AddRow({"User-Item density",
                util::StrFormat("%.2f%%", ys.interaction_density * 100),
                "0.11%",
                util::StrFormat("%.2f%%", ds.interaction_density * 100),
                "0.28%"});
  table.AddRow({"User-User density",
                util::StrFormat("%.2f%%", ys.social_density * 100), "0.15%",
                util::StrFormat("%.2f%%", ds.social_density * 100), "0.11%"});
  table.AddRow({"Avg. interactions",
                util::Table::Cell(ys.avg_interactions, 2), "16.17",
                util::Table::Cell(ds.avg_interactions, 2), "61.60"});
  table.AddRow({"Avg. relations", util::Table::Cell(ys.avg_relations, 2),
                "15.99", util::Table::Cell(ds.avg_relations, 2), "14.26"});

  bench::PublishResultGauge("table2_dataset_stats", "yelp_avg_interactions",
                            ys.avg_interactions);
  bench::PublishResultGauge("table2_dataset_stats", "yelp_avg_relations",
                            ys.avg_relations);
  bench::PublishResultGauge("table2_dataset_stats", "douban_avg_interactions",
                            ds.avg_interactions);
  bench::PublishResultGauge("table2_dataset_stats", "douban_avg_relations",
                            ds.avg_relations);

  std::printf("%s", table.ToText().c_str());
  std::printf("* paper reports relation counts whose directedness is "
              "ambiguous; we compare per-user averages instead.\n\n");
  bench::MaybeWriteCsv(options, "table2_dataset_stats", table.ToCsv());
  return 0;
}
