// Ablations over HOSR's design choices called out in the paper and in
// DESIGN.md:
//  * Eq. 11 decay factor: 1/sqrt(|I_i|) vs 1/sqrt(|I_i||A_j|) (the paper
//    found the former better);
//  * the item-implicit term itself (on/off);
//  * activation: tanh (Eq. 2) vs ReLU;
//  * self-connections in the propagation operator (Eq. 6's +I) on/off.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hosr.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hosr;
  const bench::BenchOptions options =
      bench::BenchOptions::FromFlags(argc, argv);

  std::printf("=== Ablation: HOSR design choices (Yelp-like) ===\n");
  std::printf("(HOSR-3 attention, d=%u, %u epochs)\n\n", options.dim,
              options.epochs);

  const auto dataset = bench::MakeYelpLike(options);
  util::Table table({"Variant", "R@20", "MAP@20"});

  struct Variant {
    const char* name;
    const char* key;  // stable gauge-name segment for bench_diff
    void (*apply)(core::Hosr::Config*);
  };
  const Variant variants[] = {
      {"paper default (tanh, +I, item term, 1/sqrt|I_i|)", "paper_default",
       [](core::Hosr::Config*) {}},
      {"decay 1/sqrt(|I_i||A_j|)", "decay_sqrt_both",
       [](core::Hosr::Config* c) {
         c->implicit_decay = core::ImplicitDecay::kSqrtBoth;
       }},
      {"no item-implicit term", "no_item_term",
       [](core::Hosr::Config* c) { c->item_implicit_term = false; }},
      {"ReLU activation", "relu_activation",
       [](core::Hosr::Config* c) {
         c->activation = core::Activation::kRelu;
       }},
      {"no self-connections", "no_self_connections",
       [](core::Hosr::Config* c) { c->self_connections = false; }},
      {"no graph dropout", "no_graph_dropout",
       [](core::Hosr::Config* c) { c->graph_dropout = 0.0f; }},
      {"simplified propagation (no W, linear)", "simplified_propagation",
       [](core::Hosr::Config* c) {
         c->use_layer_weights = false;
         c->use_activation = false;
       }},
  };

  for (const Variant& variant : variants) {
    core::Hosr::Config config;
    config.embedding_dim = options.dim;
    config.num_layers = 3;
    config.graph_dropout = 0.2f;
    config.seed = options.seed;
    variant.apply(&config);
    core::Hosr model(dataset.split.train, config);
    const auto result = bench::TrainModelBest(&model, dataset, options);
    bench::PublishResultGauge(
        "ablation_design_choices",
        util::StrFormat("%s_recall_at_20", variant.key), result.recall);
    table.AddRow({variant.name, util::Table::Cell(result.recall),
                  util::Table::Cell(result.map)});
    std::fprintf(stderr, "  %s: R@20=%.4f\n", variant.name, result.recall);
  }

  std::printf("%s\n", table.ToText().c_str());
  bench::MaybeWriteCsv(options, "ablation_design_choices", table.ToCsv());
  return 0;
}
