#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::obs {

namespace {

// ---------------------------------------------------------------------------
// Signal-handler-visible state. Everything the SIGPROF handler touches lives
// here, is preallocated before the handler is installed, and is accessed
// with async-signal-safe patterns only: plain loads/stores of sig_atomic_t,
// relaxed/acq-rel atomics, and writes into fixed arrays. No locks, no
// allocation, no libc calls beyond backtrace().
// ---------------------------------------------------------------------------

struct Sample {
  int32_t depth = 0;
  void* pcs[Profiler::kMaxFrames];
};

struct ThreadRing {
  // Single-producer (the owning thread, inside the handler) / single-
  // consumer (the collector). head is released by the producer after the
  // slot is fully written; tail is released by the consumer after the slot
  // is fully read.
  std::atomic<uint32_t> head{0};
  std::atomic<uint32_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  Sample samples[Profiler::kRingCapacity];
};

// Ring pool: heap-allocated once on the first Start() (never from the
// handler) and leaked — cached thread-local pointers must stay valid for
// the life of every thread.
ThreadRing* g_rings = nullptr;
std::atomic<uint32_t> g_ring_claim{0};
std::atomic<uint64_t> g_unclaimed_drops{0};  // threads beyond kMaxThreads

// Armed flag read by the handler: a SIGPROF that races a concurrent Stop()
// (the timer fires once more while being disarmed) must not touch rings
// that a final drain is consuming.
std::atomic<bool> g_armed{false};

// Per-thread claimed ring. __thread (not thread_local) keeps access to a
// plain TLS load with no lazy-init guard — safe inside the handler.
__thread ThreadRing* t_ring = nullptr;
__thread volatile sig_atomic_t t_in_handler = 0;

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  t_in_handler = 1;
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_relaxed)) {
    ThreadRing* ring = t_ring;
    if (ring == nullptr) {
      const uint32_t index =
          g_ring_claim.fetch_add(1, std::memory_order_relaxed);
      if (index < static_cast<uint32_t>(Profiler::kMaxThreads)) {
        ring = &g_rings[index];
        t_ring = ring;
      }
    }
    if (ring == nullptr) {
      g_unclaimed_drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint32_t head = ring->head.load(std::memory_order_relaxed);
      const uint32_t tail = ring->tail.load(std::memory_order_acquire);
      if (head - tail >=
          static_cast<uint32_t>(Profiler::kRingCapacity)) {
        ring->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        Sample& slot =
            ring->samples[head %
                          static_cast<uint32_t>(Profiler::kRingCapacity)];
        // backtrace() walks via libgcc's unwinder. The unwinder is forced
        // to load (and its one-time allocation done) by the warm-up call in
        // Start(), so this call allocates nothing.
        int depth = backtrace(slot.pcs, Profiler::kMaxFrames);
        // Frames 0..1 are this handler and the kernel's signal trampoline;
        // the application stack starts below them.
        constexpr int kSkip = 2;
        if (depth > kSkip) {
          std::memmove(slot.pcs, slot.pcs + kSkip,
                       static_cast<size_t>(depth - kSkip) * sizeof(void*));
          depth -= kSkip;
        }
        slot.depth = depth;
        ring->head.store(head + 1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
  t_in_handler = 0;
}

// ---------------------------------------------------------------------------
// Collector-side state (ordinary thread context; normal locking rules).
// ---------------------------------------------------------------------------

struct StackKey {
  std::vector<void*> pcs;  // leaf first, as captured
  bool operator<(const StackKey& other) const { return pcs < other.pcs; }
};

struct SessionState {
  std::mutex mutex;  // guards everything below
  bool running = false;
  int hz = 0;
  std::chrono::steady_clock::time_point started_at;
  std::map<StackKey, uint64_t> stacks;  // aggregated sample counts
  uint64_t samples = 0;

  std::thread collector;
  std::mutex collector_mutex;
  std::condition_variable collector_cv;
  bool collector_stop = false;

  struct sigaction previous_action;
  struct itimerval previous_timer;
};

SessionState& Session() {
  static SessionState* state = new SessionState;  // leaked; see Registry
  return *state;
}

// Drains every claimed ring into the aggregate map. Caller holds
// Session().mutex (or has exclusive access via the joined collector).
void DrainRings(SessionState* session) {
  const uint32_t claimed =
      std::min(g_ring_claim.load(std::memory_order_relaxed),
               static_cast<uint32_t>(Profiler::kMaxThreads));
  for (uint32_t r = 0; r < claimed; ++r) {
    ThreadRing& ring = g_rings[r];
    const uint32_t head = ring.head.load(std::memory_order_acquire);
    uint32_t tail = ring.tail.load(std::memory_order_relaxed);
    while (tail != head) {
      const Sample& slot =
          ring.samples[tail % static_cast<uint32_t>(Profiler::kRingCapacity)];
      if (slot.depth > 0) {
        StackKey key;
        key.pcs.assign(slot.pcs, slot.pcs + slot.depth);
        ++session->stacks[key];
        ++session->samples;
      }
      ++tail;
    }
    ring.tail.store(tail, std::memory_order_release);
  }
}

uint64_t TotalDropped() {
  uint64_t dropped = g_unclaimed_drops.load(std::memory_order_relaxed);
  if (g_rings != nullptr) {
    const uint32_t claimed =
        std::min(g_ring_claim.load(std::memory_order_relaxed),
                 static_cast<uint32_t>(Profiler::kMaxThreads));
    for (uint32_t r = 0; r < claimed; ++r) {
      dropped += g_rings[r].dropped.load(std::memory_order_relaxed);
    }
  }
  return dropped;
}

void CollectorLoop(SessionState* session) {
  // Drain cadence well under ring capacity / hz so a busy thread's ring
  // (512 slots at 99Hz ≈ 5s to fill) never wraps between visits.
  constexpr auto kDrainInterval = std::chrono::milliseconds(50);
  std::unique_lock<std::mutex> lock(session->collector_mutex);
  while (!session->collector_stop) {
    session->collector_cv.wait_for(lock, kDrainInterval);
    if (session->collector_stop) break;
    lock.unlock();
    {
      std::lock_guard<std::mutex> state_lock(session->mutex);
      DrainRings(session);
    }
    lock.lock();
  }
}

// Symbolizes one program counter. `caller_frame` (a return address) is
// adjusted back by one byte so calls at the end of a function attribute to
// the caller, not the next symbol.
std::string SymbolizePc(void* pc, bool is_leaf,
                        std::unordered_map<void*, std::string>* cache) {
  if (const auto it = cache->find(pc); it != cache->end()) return it->second;
  void* lookup = is_leaf ? pc
                         : reinterpret_cast<void*>(
                               reinterpret_cast<uintptr_t>(pc) - 1);
  Dl_info info;
  std::string name;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name.assign(demangled);
    } else {
      name.assign(info.dli_sname);
    }
    std::free(demangled);
    // Collapsed-stack separators are ';' and ' '; scrub them from symbols.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
  } else {
    name = util::StrFormat("0x%llx",
                           static_cast<unsigned long long>(
                               reinterpret_cast<uintptr_t>(pc)));
  }
  cache->emplace(pc, name);
  return name;
}

// Renders the aggregate map as collapsed stacks + metadata. Caller holds
// session->mutex.
Profile RenderLocked(SessionState* session) {
  Profile profile;
  profile.hz = session->hz;
  profile.samples = session->samples;
  profile.dropped = TotalDropped();
  profile.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session->started_at)
          .count();
  std::unordered_map<void*, std::string> cache;
  // Re-aggregate by symbolized line: distinct pc stacks can collapse to one
  // symbol stack (inlining, multiple call sites in one function).
  std::map<std::string, uint64_t> lines;
  for (const auto& [key, count] : session->stacks) {
    std::string line;
    // Captured leaf-first; collapsed format wants root-first.
    for (size_t i = key.pcs.size(); i-- > 0;) {
      const bool is_leaf = (i == 0);
      if (!line.empty()) line.push_back(';');
      line.append(SymbolizePc(key.pcs[i], is_leaf, &cache));
    }
    if (!line.empty()) lines[line] += count;
  }
  profile.distinct_stacks = lines.size();
  for (const auto& [line, count] : lines) {
    profile.collapsed.append(line);
    profile.collapsed.append(
        util::StrFormat(" %llu\n", static_cast<unsigned long long>(count)));
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Window-session sharing for /profilez.
// ---------------------------------------------------------------------------

struct WindowShare {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  Profile profile;
  std::string error;
};

std::mutex& WindowMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}
std::shared_ptr<WindowShare>& ActiveWindow() {
  static std::shared_ptr<WindowShare>* active =
      new std::shared_ptr<WindowShare>;
  return *active;
}

}  // namespace

std::string Profile::SummaryJson(size_t top_n) const {
  // Leaf-frame self counts from the collapsed text itself, so the summary
  // always matches the artifact it describes.
  std::map<std::string, uint64_t> self;
  size_t pos = 0;
  while (pos < collapsed.size()) {
    size_t eol = collapsed.find('\n', pos);
    if (eol == std::string::npos) eol = collapsed.size();
    const std::string_view line(collapsed.data() + pos, eol - pos);
    const size_t space = line.rfind(' ');
    if (space != std::string_view::npos) {
      const std::string_view stack = line.substr(0, space);
      const uint64_t count = std::strtoull(
          std::string(line.substr(space + 1)).c_str(), nullptr, 10);
      const size_t semi = stack.rfind(';');
      const std::string_view leaf =
          semi == std::string_view::npos ? stack : stack.substr(semi + 1);
      self[std::string(leaf)] += count;
    }
    pos = eol + 1;
  }
  std::vector<std::pair<std::string, uint64_t>> ranked(self.begin(),
                                                       self.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > top_n) ranked.resize(top_n);

  std::string json = util::StrFormat(
      "{\n  \"duration_seconds\": %.3f,\n  \"hz\": %d,\n"
      "  \"samples\": %llu,\n  \"dropped\": %llu,\n"
      "  \"distinct_stacks\": %llu,\n  \"top\": [",
      duration_seconds, hz, static_cast<unsigned long long>(samples),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(distinct_stacks));
  bool first = true;
  for (const auto& [symbol, count] : ranked) {
    if (!first) json.push_back(',');
    first = false;
    json.append(util::StrFormat(
        "\n    {\"symbol\": \"%s\", \"count\": %llu}",
        JsonEscapeString(symbol).c_str(),
        static_cast<unsigned long long>(count)));
  }
  json.append("\n  ]\n}\n");
  return json;
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler;
  return *profiler;
}

bool Profiler::InHandlerForTesting() { return t_in_handler != 0; }

util::Status Profiler::Start(const Options& options) {
  if (options.hz <= 0 || options.hz > 1000) {
    return util::Status::InvalidArgument(
        util::StrFormat("profile hz %d out of range (1..1000)", options.hz));
  }
  SessionState& session = Session();
  std::lock_guard<std::mutex> lock(session.mutex);
  if (session.running) {
    return util::Status::FailedPrecondition(
        "a profiling session is already running");
  }
  if (g_rings == nullptr) {
    g_rings = new ThreadRing[kMaxThreads];  // leaked; TLS pointers cache it
  }
  // Reset pool bookkeeping. Threads keep their claimed ring across sessions
  // (t_ring survives), which is fine: the claim index only grows and the
  // rings are drained empty below.
  for (uint32_t r = 0; r < g_ring_claim.load(std::memory_order_relaxed) &&
                       r < static_cast<uint32_t>(kMaxThreads);
       ++r) {
    g_rings[r].tail.store(g_rings[r].head.load(std::memory_order_acquire),
                          std::memory_order_release);
    g_rings[r].dropped.store(0, std::memory_order_relaxed);
  }
  g_unclaimed_drops.store(0, std::memory_order_relaxed);
  session.stacks.clear();
  session.samples = 0;
  session.hz = options.hz;
  session.started_at = std::chrono::steady_clock::now();

  // Warm up the unwinder on this (ordinary) thread: backtrace()'s first
  // call may dlopen/allocate inside libgcc. After this, handler-context
  // calls are allocation-free.
  void* warmup[kMaxFrames];
  (void)backtrace(warmup, kMaxFrames);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &SigprofHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &session.previous_action) != 0) {
    return util::Status::Internal(
        util::StrFormat("sigaction(SIGPROF): %s", std::strerror(errno)));
  }
  g_armed.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = 1000000 / options.hz;
  if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &session.previous_timer) != 0) {
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &session.previous_action, nullptr);
    return util::Status::Internal(
        util::StrFormat("setitimer(ITIMER_PROF): %s", std::strerror(errno)));
  }

  {
    std::lock_guard<std::mutex> collector_lock(session.collector_mutex);
    session.collector_stop = false;
  }
  session.collector = std::thread([&session] { CollectorLoop(&session); });
  session.running = true;
  HOSR_LOG(Info) << "profiler armed at " << options.hz << "Hz";
  return util::Status::Ok();
}

Profile Profiler::StopAndCollect() {
  SessionState& session = Session();
  std::thread collector;
  {
    std::lock_guard<std::mutex> lock(session.mutex);
    if (!session.running) return Profile();
    // Disarm the timer first, then the handler flag: a SIGPROF already in
    // flight sees g_armed == false and writes nothing.
    struct itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &session.previous_action, nullptr);
    {
      std::lock_guard<std::mutex> collector_lock(session.collector_mutex);
      session.collector_stop = true;
    }
    session.collector_cv.notify_all();
    collector = std::move(session.collector);
  }
  if (collector.joinable()) collector.join();
  std::lock_guard<std::mutex> lock(session.mutex);
  DrainRings(&session);
  Profile profile = RenderLocked(&session);
  session.running = false;
  HOSR_LOG(Info) << "profiler stopped: " << profile.samples << " samples, "
                 << profile.distinct_stacks << " distinct stacks, "
                 << profile.dropped << " dropped";
  return profile;
}

util::StatusOr<Profile> Profiler::SnapshotNow() {
  SessionState& session = Session();
  std::lock_guard<std::mutex> lock(session.mutex);
  if (!session.running) {
    return util::Status::FailedPrecondition("profiler is not running");
  }
  DrainRings(&session);
  return RenderLocked(&session);
}

bool Profiler::running() const {
  SessionState& session = Session();
  std::lock_guard<std::mutex> lock(session.mutex);
  return session.running;
}

util::StatusOr<Profile> Profiler::CollectWindow(double seconds,
                                                Options options) {
  seconds = std::clamp(seconds, 0.1, 30.0);
  std::shared_ptr<WindowShare> share;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(WindowMutex());
    if (ActiveWindow() != nullptr) {
      share = ActiveWindow();  // join the in-flight window
    } else {
      share = std::make_shared<WindowShare>();
      ActiveWindow() = share;
      leader = true;
    }
  }
  if (!leader) {
    std::unique_lock<std::mutex> lock(share->mutex);
    share->cv.wait(lock, [&share] { return share->done; });
    if (share->ok) return share->profile;
    return util::Status::FailedPrecondition(share->error);
  }

  // Leader path. A live continuous session (--profile_out) is not disturbed:
  // serve the accumulated snapshot instead of stealing the timer.
  util::StatusOr<Profile> result = [&]() -> util::StatusOr<Profile> {
    if (running()) return SnapshotNow();
    if (util::Status started = Start(options); !started.ok()) {
      return started;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return StopAndCollect();
  }();

  {
    std::lock_guard<std::mutex> lock(WindowMutex());
    ActiveWindow().reset();
  }
  {
    std::lock_guard<std::mutex> lock(share->mutex);
    share->done = true;
    share->ok = result.ok();
    if (result.ok()) {
      share->profile = result.value();
    } else {
      share->error = result.status().ToString();
    }
  }
  share->cv.notify_all();
  return result;
}

}  // namespace hosr::obs
