#include "obs/reporter.h"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"

namespace hosr::obs {

util::Status WriteMetricsJson(const std::string& path) {
  // Atomic so a periodic snapshot interrupted by a crash (or an injected
  // fault) never leaves a half-written JSON file for dashboards to choke on.
  return util::WriteFileAtomic(path, Registry::Global().ToJson());
}

StatsReporter::StatsReporter(Options options) : options_(std::move(options)) {
  if (options_.interval_seconds > 0.0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Snapshot() {
  // WriteFileAtomic's temp name is path+pid, so two in-process snapshots of
  // the same path would collide mid-rename without this lock.
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
  if (!options_.metrics_path.empty()) {
    if (auto status = WriteMetricsJson(options_.metrics_path); !status.ok()) {
      HOSR_LOG(Warning) << "metrics snapshot failed: " << status;
    }
  }
  if (options_.log_snapshots) {
    HOSR_LOG(Info) << "metrics snapshot"
                   << (options_.metrics_path.empty()
                           ? ""
                           : " -> " + options_.metrics_path);
  }
}

void StatsReporter::Stop() {
  // Holding stop_mutex_ across join+flush means a Stop() racing another
  // Stop() blocks here until the winner's final snapshot is on disk — a
  // loser returning early would break the shutdown-flush guarantee.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Snapshot();
  stopped_ = true;
}

void StatsReporter::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;  // final snapshot happens in Stop()
    }
    lock.unlock();
    Snapshot();
    lock.lock();
  }
}

namespace {

struct ArtifactConfig {
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  std::string timeseries_path;
  std::unique_ptr<StatsReporter> interval_reporter;
};

// Leaked so the atexit flush can read it during shutdown.
ArtifactConfig& Artifacts() {
  static ArtifactConfig* config = new ArtifactConfig;
  return *config;
}

std::mutex& ArtifactsMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

void AtExitFlush() {
  {
    // Stop the background reporter before the final dump so the two never
    // write the metrics file concurrently.
    std::unique_ptr<StatsReporter> reporter;
    {
      std::lock_guard<std::mutex> lock(ArtifactsMutex());
      reporter = std::move(Artifacts().interval_reporter);
    }
    if (reporter != nullptr) reporter->Stop();
  }
  FlushArtifacts();
}

}  // namespace

void InitFromFlags(const util::Flags& flags) {
  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    if (log_level == "debug") {
      util::SetLogLevel(util::LogLevel::kDebug);
    } else if (log_level == "info") {
      util::SetLogLevel(util::LogLevel::kInfo);
    } else if (log_level == "warning") {
      util::SetLogLevel(util::LogLevel::kWarning);
    } else if (log_level == "error") {
      util::SetLogLevel(util::LogLevel::kError);
    } else {
      HOSR_LOG(Warning) << "flag --log_level=" << log_level
                        << " is not one of debug|info|warning|error; ignored";
    }
  }

  const std::string trace_path = flags.GetString("trace_out", "");
  const std::string metrics_path = flags.GetString("metrics_out", "");
  const double interval = flags.GetDouble("metrics_interval", 0.0);
  const std::string profile_path = flags.GetString("profile_out", "");
  const std::string timeseries_path = flags.GetString("timeseries_out", "");
  if (trace_path.empty() && metrics_path.empty() && profile_path.empty() &&
      timeseries_path.empty()) {
    return;
  }

  SetEnabled(true);
  bool register_atexit = false;
  {
    std::lock_guard<std::mutex> lock(ArtifactsMutex());
    ArtifactConfig& config = Artifacts();
    register_atexit = config.trace_path.empty() &&
                      config.metrics_path.empty() &&
                      config.profile_path.empty() &&
                      config.timeseries_path.empty();
    if (!trace_path.empty()) config.trace_path = trace_path;
    if (!metrics_path.empty()) config.metrics_path = metrics_path;
    if (!profile_path.empty()) config.profile_path = profile_path;
    if (!timeseries_path.empty()) config.timeseries_path = timeseries_path;
    if (interval > 0.0 && !metrics_path.empty() &&
        config.interval_reporter == nullptr) {
      StatsReporter::Options options;
      options.interval_seconds = interval;
      options.metrics_path = metrics_path;
      config.interval_reporter = std::make_unique<StatsReporter>(options);
    }
  }
  if (register_atexit) std::atexit(AtExitFlush);

  if (!profile_path.empty()) {
    Profiler::Options options;
    options.hz = static_cast<int>(flags.GetInt("profile_hz", 99));
    if (auto status = Profiler::Global().Start(options); !status.ok()) {
      HOSR_LOG(Warning) << "could not arm --profile_out profiler: "
                        << status;
    }
  }
  if (!timeseries_path.empty() && !TimeseriesRecorder::Global().running()) {
    TimeseriesRecorder::Options options;
    options.snapshot_interval_s =
        flags.GetDouble("timeseries_interval", 1.0);
    if (auto status = TimeseriesRecorder::Global().Start(options);
        !status.ok()) {
      HOSR_LOG(Warning) << "could not start --timeseries_out recorder: "
                        << status;
    }
  }
}

void FlushArtifacts() {
  std::string trace_path, metrics_path, profile_path, timeseries_path;
  {
    std::lock_guard<std::mutex> lock(ArtifactsMutex());
    trace_path = Artifacts().trace_path;
    metrics_path = Artifacts().metrics_path;
    profile_path = Artifacts().profile_path;
    timeseries_path = Artifacts().timeseries_path;
  }
  // Profiler first: stopping it is what finalizes the sample set, and only
  // a running session writes — a second flush (explicit + atexit) must not
  // overwrite the artifact with an empty re-collection.
  if (!profile_path.empty() && Profiler::Global().running()) {
    const Profile profile = Profiler::Global().StopAndCollect();
    if (auto status = util::WriteFileAtomic(profile_path, profile.collapsed);
        status.ok()) {
      HOSR_LOG(Info) << "wrote collapsed stacks to " << profile_path << " ("
                     << profile.samples << " samples)";
    } else {
      HOSR_LOG(Warning) << "profile dump failed: " << status;
    }
    const std::string summary_path = profile_path + ".summary.json";
    if (auto status =
            util::WriteFileAtomic(summary_path, profile.SummaryJson());
        !status.ok()) {
      HOSR_LOG(Warning) << "profile summary dump failed: " << status;
    }
  }
  if (!timeseries_path.empty()) {
    TimeseriesRecorder::Global().Stop();  // final snapshot; idempotent
    if (auto status = TimeseriesRecorder::Global().DumpToFile(
            timeseries_path);
        status.ok()) {
      HOSR_LOG(Info) << "wrote timeseries history to " << timeseries_path;
    } else {
      HOSR_LOG(Warning) << "timeseries dump failed: " << status;
    }
  }
  if (!metrics_path.empty()) {
    if (auto status = WriteMetricsJson(metrics_path); status.ok()) {
      HOSR_LOG(Info) << "wrote metrics to " << metrics_path;
    } else {
      HOSR_LOG(Warning) << "metrics dump failed: " << status;
    }
  }
  if (!trace_path.empty()) {
    if (const uint64_t dropped = DroppedSpanCount(); dropped > 0) {
      HOSR_LOG(Warning) << "trace ring buffers dropped " << dropped
                        << " spans (oldest-first)";
    }
    if (auto status = WriteTraceJson(trace_path); status.ok()) {
      HOSR_LOG(Info) << "wrote trace to " << trace_path
                     << " (open in chrome://tracing or ui.perfetto.dev)";
    } else {
      HOSR_LOG(Warning) << "trace dump failed: " << status;
    }
  }
}

}  // namespace hosr::obs
