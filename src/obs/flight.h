#ifndef HOSR_OBS_FLIGHT_H_
#define HOSR_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hosr::obs {

// Flight recorder: a fixed-size global ring of recent annotations plus, on a
// trigger, a crash-forensics dump of the process's observability state —
// recent spans (bounded, newest first), the full metrics registry, and the
// annotation ring — written to `<dir>/flight_<seq>_<uptime_ns>.json` via
// util::WriteFileAtomicWithCrc so a dump that survives is never torn.
//
// Triggers:
//   * injected faults — fault::FaultRegistry calls OnFault() on every fire;
//   * deadline-exceeded bursts — the hardened executor calls
//     OnDeadlineExceeded(); enough events inside the burst window dump once;
//   * fatal signals — InstallSignalHandlers() hooks SIGSEGV/SIGABRT/SIGBUS
//     for a best-effort dump (explicitly NOT async-signal-safe: it allocates
//     and locks; acceptable because the process is already dying and the
//     alternative is no forensics at all);
//   * DumpNow() — manual.
//
// Dumps are rate-limited (min interval between dumps, lifetime cap) so a
// fault storm cannot fill the disk. Disarmed (the default) every hook is a
// single relaxed atomic load.
class FlightRecorder {
 public:
  struct Options {
    std::string dir;                   // destination; empty keeps disarmed
    int max_dumps = 8;                 // lifetime cap per process
    double min_interval_seconds = 2.0;  // between consecutive dumps
    // OnDeadlineExceeded() dumps once `burst_threshold` events land within
    // `burst_window_seconds`.
    uint64_t burst_threshold = 32;
    double burst_window_seconds = 1.0;
  };

  static constexpr size_t kNoteCapacity = 256;   // annotation ring size
  static constexpr size_t kMaxDumpSpans = 2048;  // newest spans per dump

  static FlightRecorder& Global();

  // Enables the recorder. Safe to call again to re-point `dir` (counters
  // and the note ring carry over).
  void Arm(Options options);
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Appends a free-form annotation ("snapshot loaded", "replay started") to
  // the ring; the newest kNoteCapacity survive into the next dump. No-op
  // while disarmed.
  void Note(std::string_view event);

  // Trigger hooks. Both Note() the event and then dump, subject to rate
  // limiting (OnDeadlineExceeded only once the burst threshold is crossed).
  void OnFault(std::string_view point);
  void OnDeadlineExceeded();

  // Unconditional dump (still counts toward max_dumps; FailedPrecondition
  // while disarmed or after the cap; ResourceExhausted inside the
  // rate-limit interval unless `force`).
  util::Status DumpNow(std::string_view reason, bool force = false);

  // Best-effort dump on SIGSEGV/SIGABRT/SIGBUS, then re-raise the default
  // disposition so exit codes/cores are unchanged. Idempotent.
  void InstallSignalHandlers();

  // Path of the most recent successful dump ("" if none yet).
  std::string last_dump_path() const;
  uint64_t dump_count() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }

  // Disarms and clears notes, counters, and rate-limit state.
  void ResetForTesting();

 private:
  std::string BuildDumpJson(std::string_view reason);

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> dumps_written_{0};

  // Burst detection: count deadline-exceeded events inside a window keyed
  // by its start time; a new window resets the count.
  std::atomic<int64_t> burst_window_start_ns_{0};
  std::atomic<uint64_t> burst_count_{0};

  mutable std::mutex mutex_;  // options, notes, dump serialization
  Options options_;
  std::vector<std::string> notes_;
  size_t next_note_ = 0;  // ring cursor once notes_ is full
  int64_t last_dump_ns_ = 0;
  std::string last_dump_path_;
};

}  // namespace hosr::obs

#endif  // HOSR_OBS_FLIGHT_H_
