#ifndef HOSR_OBS_TRACE_H_
#define HOSR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace hosr::obs {

namespace internal_trace {
extern std::atomic<bool> g_enabled;
}  // namespace internal_trace

// Global capture switch. Spans check it once at construction, so the
// disabled cost of HOSR_TRACE_SPAN is one relaxed atomic load and a branch.
// Counters/gauges are always live (a single relaxed fetch_add); only bulk
// histogram fills and span capture honour this gate.
inline bool Enabled() {
  return internal_trace::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Interns `name` into a process-lifetime string pool and returns a stable
// pointer — span names must outlive the trace buffers. Call-site string
// literals do not need interning; use this for computed names.
const char* InternName(std::string_view name);

// "prefix<index>" interned, e.g. IndexedSpanName("hosr/layer_", 2) ->
// "hosr/layer_2". Returns `prefix` unchanged (no allocation, no lock) while
// capture is disabled.
const char* IndexedSpanName(const char* prefix, size_t index);

// Records one closed span into the calling thread's ring buffer.
// `trace_id` associates the span with a request (0 = none).
void RecordSpan(const char* name, int64_t begin_ns, int64_t end_ns,
                uint64_t trace_id = 0);

// RAII span. `name` must point to storage that outlives trace export: a
// string literal or an InternName() result. The span inherits the calling
// thread's request context (obs::CurrentTraceId()) at destruction time, so
// all spans closed inside a ScopedRequestContext share its trace id.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(Enabled() ? name : nullptr),
        begin_ns_(name_ != nullptr ? NowNanos() : 0) {}
  ~ScopedSpan() {
    if (name_ != nullptr) {
      RecordSpan(name_, begin_ns_, NowNanos(), CurrentTraceId());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int64_t begin_ns_;
};

#define HOSR_TRACE_SPAN(name)                                        \
  ::hosr::obs::ScopedSpan HOSR_OBS_CONCAT_(hosr_trace_span_at_line_, \
                                           __LINE__)(name)

// A completed span as captured (nanosecond timestamps, steady-clock epoch).
struct SpanRecord {
  std::string name;
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  uint32_t tid = 0;
  // Request the span worked for; 0 when recorded outside a request scope.
  uint64_t trace_id = 0;
};

// Copies every buffered span out of all per-thread ring buffers. Intended
// for tests and export; takes each buffer's lock briefly.
std::vector<SpanRecord> SnapshotSpans();

// SnapshotSpans bounded to the `limit` newest spans (by end time), sorted
// chronologically. The per-thread rings hold 16k spans each, so a full
// snapshot can run to multi-MB JSON — pollable surfaces (/tracez, flight
// dumps) serve this bounded slice instead.
std::vector<SpanRecord> NewestSpans(size_t limit);

// Total spans dropped to ring-buffer wrap-around since the last clear.
uint64_t DroppedSpanCount();

// Chrome trace_event JSON ({"traceEvents": [...]} with "ph": "X" complete
// events, microsecond timestamps) — loads directly in chrome://tracing and
// https://ui.perfetto.dev. Spans recorded inside a request scope carry
// "args": {"trace_id": N}, matching histogram exemplars.
std::string TraceToJson();

// The same Chrome trace_event encoding over an explicit span list (the
// flight recorder dumps a bounded most-recent subset through this).
std::string SpansToJson(const std::vector<SpanRecord>& spans);

util::Status WriteTraceJson(const std::string& path);

// Empties every thread's ring buffer (capture state is left unchanged).
void ClearTrace();

}  // namespace hosr::obs

#endif  // HOSR_OBS_TRACE_H_
