#include "obs/timeseries.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::obs {

namespace {

enum class SeriesKind { kCounter, kGauge, kHistogram };

struct Point {
  int64_t t_ns = 0;        // steady-clock snapshot time (NowNanos epoch)
  double interval_s = 0;   // measured distance to the previous snapshot
  double value = 0;        // counter: rate/sec; gauge: value; hist: mean
  uint64_t delta = 0;      // counter: count delta; hist: observation delta
  double p50 = 0, p95 = 0, p99 = 0;  // histograms only
};

struct Series {
  explicit Series(SeriesKind k) : kind(k) {}
  SeriesKind kind;
  // Cumulative state at the previous snapshot, for windowed deltas.
  uint64_t prev_count = 0;
  double prev_sum = 0.0;
  std::vector<uint64_t> prev_buckets;
  std::deque<Point> points;
};

const char* KindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

struct RecorderState {
  mutable std::mutex mutex;  // guards series + history
  TimeseriesRecorder::Options options;
  std::map<std::string, Series> series;
  int64_t last_snapshot_ns = 0;

  std::mutex thread_mutex;
  std::condition_variable cv;
  bool stop_requested = false;
  bool running = false;
  std::thread thread;
  // Serializes Stop() callers so everyone returns after the final snapshot.
  std::mutex stop_mutex;
};

RecorderState& State() {
  static RecorderState* state = new RecorderState;  // leaked; atexit-safe
  return *state;
}

void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  out->append(util::StrFormat("%.17g", value));
}

// One snapshot pass: visit the registry, compute per-metric window points,
// evict beyond capacity. Runs on the recorder thread (or a test caller).
void SnapshotOnce(RecorderState* state) {
  std::lock_guard<std::mutex> lock(state->mutex);
  const int64_t now_ns = NowNanos();
  const double interval_s =
      state->last_snapshot_ns == 0
          ? state->options.snapshot_interval_s
          : static_cast<double>(now_ns - state->last_snapshot_ns) / 1e9;
  state->last_snapshot_ns = now_ns;
  const size_t capacity = state->options.window_capacity;

  const auto push = [capacity](Series* series, Point point) {
    series->points.push_back(point);
    while (series->points.size() > capacity) series->points.pop_front();
  };

  Registry::Global().VisitMetrics(
      [&](const std::string& name, Counter* counter) {
        Series& series =
            state->series.try_emplace(name, SeriesKind::kCounter)
                .first->second;
        const uint64_t count = counter->Get();
        Point point;
        point.t_ns = now_ns;
        point.interval_s = interval_s;
        // A Reset() between snapshots shows up as count < prev; clamp the
        // window to zero rather than emitting a huge unsigned wraparound.
        point.delta = count >= series.prev_count
                          ? count - series.prev_count
                          : 0;
        point.value = interval_s > 0
                          ? static_cast<double>(point.delta) / interval_s
                          : 0.0;
        series.prev_count = count;
        push(&series, point);
      },
      [&](const std::string& name, Gauge* gauge) {
        Series& series =
            state->series.try_emplace(name, SeriesKind::kGauge)
                .first->second;
        Point point;
        point.t_ns = now_ns;
        point.interval_s = interval_s;
        point.value = gauge->Get();
        push(&series, point);
      },
      [&](const std::string& name, Histogram* histogram) {
        Series& series =
            state->series.try_emplace(name, SeriesKind::kHistogram)
                .first->second;
        const uint64_t count = histogram->Count();
        const double sum = histogram->Sum();
        std::vector<uint64_t> buckets = histogram->BucketSnapshot();
        Point point;
        point.t_ns = now_ns;
        point.interval_s = interval_s;
        if (count >= series.prev_count &&
            series.prev_buckets.size() == buckets.size()) {
          point.delta = count - series.prev_count;
          std::vector<uint64_t> delta_buckets(buckets.size());
          for (size_t i = 0; i < buckets.size(); ++i) {
            delta_buckets[i] = buckets[i] >= series.prev_buckets[i]
                                   ? buckets[i] - series.prev_buckets[i]
                                   : 0;
          }
          if (point.delta > 0) {
            point.value = (sum - series.prev_sum) /
                          static_cast<double>(point.delta);
            point.p50 = QuantileFromBuckets(delta_buckets, 0.50);
            point.p95 = QuantileFromBuckets(delta_buckets, 0.95);
            point.p99 = QuantileFromBuckets(delta_buckets, 0.99);
          }
        } else {
          // First sight of this histogram (or a reset): start a new epoch.
          point.delta = 0;
        }
        series.prev_count = count;
        series.prev_sum = sum;
        series.prev_buckets = std::move(buckets);
        push(&series, point);
      });
}

void RecorderLoop(RecorderState* state) {
  const auto interval =
      std::chrono::duration<double>(state->options.snapshot_interval_s);
  std::unique_lock<std::mutex> lock(state->thread_mutex);
  while (!state->stop_requested) {
    if (state->cv.wait_for(lock, interval,
                           [state] { return state->stop_requested; })) {
      return;  // final snapshot happens in Stop()
    }
    lock.unlock();
    SnapshotOnce(state);
    lock.lock();
  }
}

}  // namespace

TimeseriesRecorder& TimeseriesRecorder::Global() {
  static TimeseriesRecorder* recorder = new TimeseriesRecorder;
  return *recorder;
}

util::Status TimeseriesRecorder::Start(const Options& options) {
  if (options.snapshot_interval_s <= 0.0) {
    return util::Status::InvalidArgument(
        "timeseries snapshot interval must be positive");
  }
  if (options.window_capacity == 0) {
    return util::Status::InvalidArgument(
        "timeseries window capacity must be positive");
  }
  RecorderState& state = State();
  std::lock_guard<std::mutex> stop_lock(state.stop_mutex);
  {
    std::lock_guard<std::mutex> thread_lock(state.thread_mutex);
    if (state.running) {
      return util::Status::FailedPrecondition(
          "timeseries recorder already running");
    }
    state.stop_requested = false;
    state.running = true;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.options = options;
    state.last_snapshot_ns = 0;
  }
  // Baseline snapshot so the first interval window has a delta anchor.
  SnapshotOnce(&state);
  state.thread = std::thread([&state] { RecorderLoop(&state); });
  HOSR_LOG(Info) << "timeseries recorder started ("
                 << options.snapshot_interval_s << "s interval, "
                 << options.window_capacity << " windows)";
  return util::Status::Ok();
}

void TimeseriesRecorder::Stop() {
  RecorderState& state = State();
  std::lock_guard<std::mutex> stop_lock(state.stop_mutex);
  {
    std::lock_guard<std::mutex> thread_lock(state.thread_mutex);
    if (!state.running) return;
    state.stop_requested = true;
  }
  state.cv.notify_all();
  if (state.thread.joinable()) state.thread.join();
  SnapshotOnce(&state);  // shutdown-flush: pre-Stop updates land on disk
  std::lock_guard<std::mutex> thread_lock(state.thread_mutex);
  state.running = false;
}

bool TimeseriesRecorder::running() const {
  RecorderState& state = State();
  std::lock_guard<std::mutex> thread_lock(state.thread_mutex);
  return state.running;
}

std::string TimeseriesRecorder::ToJson(std::string_view metric_filter,
                                       size_t max_windows) const {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  const int64_t now_ns = NowNanos();
  std::string json = util::StrFormat(
      "{\n  \"snapshot_interval_s\": %.3f,\n  \"window_capacity\": %zu,\n"
      "  \"series\": {",
      state.options.snapshot_interval_s, state.options.window_capacity);
  bool first = true;
  for (const auto& [name, series] : state.series) {
    if (!metric_filter.empty() &&
        name.find(metric_filter) == std::string::npos) {
      continue;
    }
    if (!first) json.push_back(',');
    first = false;
    json.append(util::StrFormat("\n    \"%s\": {\"type\": \"%s\", "
                                "\"points\": [",
                                JsonEscapeString(name).c_str(),
                                KindName(series.kind)));
    size_t start = 0;
    if (max_windows > 0 && series.points.size() > max_windows) {
      start = series.points.size() - max_windows;
    }
    bool first_point = true;
    for (size_t i = start; i < series.points.size(); ++i) {
      const Point& point = series.points[i];
      if (!first_point) json.append(", ");
      first_point = false;
      json.append(util::StrFormat(
          "{\"age_s\": %.3f, \"interval_s\": %.3f",
          static_cast<double>(now_ns - point.t_ns) / 1e9, point.interval_s));
      json.append(", \"value\": ");
      AppendJsonNumber(point.value, &json);
      if (series.kind != SeriesKind::kGauge) {
        json.append(util::StrFormat(
            ", \"delta\": %llu",
            static_cast<unsigned long long>(point.delta)));
      }
      if (series.kind == SeriesKind::kHistogram) {
        json.append(", \"p50\": ");
        AppendJsonNumber(point.p50, &json);
        json.append(", \"p95\": ");
        AppendJsonNumber(point.p95, &json);
        json.append(", \"p99\": ");
        AppendJsonNumber(point.p99, &json);
      }
      json.push_back('}');
    }
    json.append("]}");
  }
  json.append("\n  }\n}\n");
  return json;
}

util::Status TimeseriesRecorder::DumpToFile(const std::string& path) const {
  return util::WriteFileAtomicWithCrc(path, ToJson());
}

void TimeseriesRecorder::SnapshotOnceForTesting() { SnapshotOnce(&State()); }

void TimeseriesRecorder::ResetForTesting() {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.series.clear();
  state.last_snapshot_ns = 0;
}

}  // namespace hosr::obs
