#ifndef HOSR_OBS_METRICS_H_
#define HOSR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hosr::obs {

// Lock-free helpers for doubles: std::atomic<double>::fetch_add is C++20 but
// still library-dependent, so the histogram/gauge hot paths use a CAS loop.
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

// Monotonically increasing event count. The hot path is a single relaxed
// fetch_add; construction (registry lookup) is the only locking operation.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins scalar (e.g. the most recent epoch loss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// One observation that landed in a histogram bucket while a request
// context was installed: the request's trace id plus the observed value.
// trace_id == 0 means the slot is empty.
struct Exemplar {
  uint64_t trace_id = 0;
  double value = 0.0;
};

// Distribution with fixed log-scale (power-of-two) buckets covering
// [2^kMinExp, 2^(kMaxExp+1)): bucket i holds values in
// [2^(kMinExp+i), 2^(kMinExp+i+1)). Non-positive values and underflow land
// in bucket 0; overflow lands in the last bucket. Observe() is wait-free on
// the bucket count and uses a short CAS loop for sum/min/max.
//
// Exemplars: every bucket carries one lock-free last-writer-wins exemplar
// slot. When Observe() runs inside a request scope (obs::CurrentTraceId()
// != 0) the bucket's slot is overwritten with that request's trace id and
// value, so tail buckets always name a real recent offending request. The
// id and value are separate atomics — two concurrent writers to one bucket
// may interleave (id from one, value from the other), which is acceptable:
// both belong to real requests that landed in the same bucket.
class Histogram {
 public:
  static constexpr int kMinExp = -30;  // ~1e-9: sub-microsecond latencies
  static constexpr int kMaxExp = 31;   // ~2e9: flop counts, big totals
  static constexpr int kNumBuckets = kMaxExp - kMinExp + 1;

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min/Max are only meaningful when Count() > 0.
  double Min() const { return min_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }

  // Upper bound (exclusive) of bucket `i`: 2^(kMinExp+i+1).
  static double BucketUpperBound(int i);
  // Bucket index a given value falls into.
  static int BucketFor(double value);

  std::vector<uint64_t> BucketSnapshot() const;

  // The exemplar recorded for bucket `i`; trace_id == 0 when no in-scope
  // observation has landed there since the last Reset().
  Exemplar ExemplarFor(int i) const;

  void Reset();

 private:
  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  ExemplarSlot exemplars_[kNumBuckets] = {};
};

// The documented `subsystem/verb_unit` naming convention
// (docs/OBSERVABILITY.md), enforced at registration time: 2 or 3
// slash-separated segments, each `[a-z][a-z0-9_]*`, and no redundant
// `_total` suffix (the counter type already means "total"). Registration
// with an invalid name is a programming error and CHECK-fails.
bool IsValidMetricName(std::string_view name);

// Escapes `text` for embedding inside a JSON string literal (surrounding
// quotes not included). Shared by every obs JSON emitter.
std::string JsonEscapeString(std::string_view text);

// Quantile estimate over log-scale bucket counts (`buckets` indexed like
// Histogram::BucketSnapshot()): nearest-rank walk with linear interpolation
// inside the winning bucket. `q` in [0, 1]; returns 0 when the counts sum
// to zero. Shared by the /metricsz histogram summary fields and the
// timeseries windowed p50/p95/p99 (which feeds it per-window bucket deltas).
double QuantileFromBuckets(const std::vector<uint64_t>& buckets, double q);

// Process-wide named-metric registry. Lookup takes a mutex and returns a
// pointer that stays valid for the life of the process, so callers resolve
// once (the HOSR_COUNTER/... macros cache in a function-local static) and
// then touch only atomics. Names follow the `subsystem/verb_unit` convention
// (docs/OBSERVABILITY.md).
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // One JSON object: {"metrics": {"name": {"type": ..., ...}, ...}}.
  // Histograms export count/sum/min/max, precomputed p50/p95/p99, and the
  // non-empty buckets.
  std::string ToJson() const;

  // Calls the visitors for every registered metric of each kind, under the
  // registry lock, in name order. The pointers handed out are process-
  // lifetime stable, so callers (e.g. the timeseries recorder) may retain
  // them after the visit returns. Null visitors skip that kind.
  void VisitMetrics(
      const std::function<void(const std::string&, Counter*)>& counter_fn,
      const std::function<void(const std::string&, Gauge*)>& gauge_fn,
      const std::function<void(const std::string&, Histogram*)>& histogram_fn)
      const;

  // Zeroes every metric in place; previously returned pointers stay valid.
  void ResetForTesting();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#define HOSR_OBS_CONCAT_INNER_(a, b) a##b
#define HOSR_OBS_CONCAT_(a, b) HOSR_OBS_CONCAT_INNER_(a, b)

// Call-site macros: resolve the named metric once (thread-safe function-local
// static) and return a reference, so repeated executions cost one atomic op.
#define HOSR_COUNTER(name)                                 \
  ([]() -> ::hosr::obs::Counter& {                         \
    static ::hosr::obs::Counter& metric =                  \
        *::hosr::obs::Registry::Global().GetCounter(name); \
    return metric;                                         \
  }())

#define HOSR_GAUGE(name)                                 \
  ([]() -> ::hosr::obs::Gauge& {                         \
    static ::hosr::obs::Gauge& metric =                  \
        *::hosr::obs::Registry::Global().GetGauge(name); \
    return metric;                                       \
  }())

#define HOSR_HISTOGRAM(name)                                 \
  ([]() -> ::hosr::obs::Histogram& {                         \
    static ::hosr::obs::Histogram& metric =                  \
        *::hosr::obs::Registry::Global().GetHistogram(name); \
    return metric;                                           \
  }())

}  // namespace hosr::obs

#endif  // HOSR_OBS_METRICS_H_
