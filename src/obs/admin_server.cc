#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::obs {

namespace {

// Handlers and the test client bound their socket reads so a stalled peer
// cannot pin a thread forever.
constexpr int kSocketTimeoutSeconds = 5;

void SetRecvTimeout(int fd) {
  struct timeval tv;
  tv.tv_sec = kSocketTimeoutSeconds;
  tv.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
    );
    if (n < 0 && errno == EINTR) continue;  // e.g. a SIGPROF sample landed
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// "key=value" lookup in an '&'-separated query string; empty when absent.
std::string_view QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    if (pair.size() > key.size() + 1 &&
        pair.substr(0, key.size()) == key && pair[key.size()] == '=') {
      return pair.substr(key.size() + 1);
    }
    if (amp == std::string_view::npos) break;
    query = query.substr(amp + 1);
  }
  return {};
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

}  // namespace

HealthTracker& HealthTracker::Global() {
  // Leaked: reported from request threads that may outlive static dtors.
  static HealthTracker* tracker = new HealthTracker;
  return *tracker;
}

void HealthTracker::ReportOutcome(bool failed) {
  (failed ? failed_ : ok_).fetch_add(1, std::memory_order_relaxed);
  const uint64_t total = ok_.load(std::memory_order_relaxed) +
                         failed_.load(std::memory_order_relaxed);
  if (total >= 2 * kWindow) {
    // Halve both counts so the rate forgets old traffic. The lock only
    // serializes the (rare) decay; reporting itself stays lock-free.
    std::lock_guard<std::mutex> lock(decay_mutex_);
    if (ok_.load(std::memory_order_relaxed) +
            failed_.load(std::memory_order_relaxed) >=
        2 * kWindow) {
      ok_.store(ok_.load(std::memory_order_relaxed) / 2,
                std::memory_order_relaxed);
      failed_.store(failed_.load(std::memory_order_relaxed) / 2,
                    std::memory_order_relaxed);
    }
  }
}

void HealthTracker::ReportReload(bool ok) {
  if (ok) {
    reload_reject_streak_.store(0, std::memory_order_relaxed);
  } else {
    reload_reject_streak_.fetch_add(1, std::memory_order_relaxed);
  }
}

double HealthTracker::FailureRate() const {
  const uint64_t failed = failed_.load(std::memory_order_relaxed);
  const uint64_t total = failed + ok_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  return static_cast<double>(failed) / static_cast<double>(total);
}

bool HealthTracker::healthy() const {
  if (reload_reject_streak_.load(std::memory_order_relaxed) >=
      kReloadDegradedStreak) {
    return false;
  }
  const uint64_t failed = failed_.load(std::memory_order_relaxed);
  const uint64_t total = failed + ok_.load(std::memory_order_relaxed);
  if (total < kMinSamples) return true;
  return static_cast<double>(failed) / static_cast<double>(total) <
         kDegradedThreshold;
}

void HealthTracker::ResetForTesting() {
  std::lock_guard<std::mutex> lock(decay_mutex_);
  ready_.store(false, std::memory_order_relaxed);
  ok_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  reload_reject_streak_.store(0, std::memory_order_relaxed);
}

AdminServer::AdminServer(Options options) : options_(options) {}

AdminServer::~AdminServer() { Stop(); }

util::Status AdminServer::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("admin server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(
        util::StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(util::StrFormat(
        "bind(127.0.0.1:%d): %s", options_.port, error.c_str()));
  }
  if (listen(listen_fd_, 16) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(
        util::StrFormat("listen(): %s", error.c_str()));
  }
  // Resolve the ephemeral port the kernel picked when Options::port == 0.
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(
        util::StrFormat("getsockname(): %s", error.c_str()));
  }
  port_ = ntohs(addr.sin_port);
  start_ns_ = NowNanos();
  stopping_.store(false, std::memory_order_relaxed);

  const int handler_count = options_.handler_threads > 0
                                ? options_.handler_threads
                                : 1;
  handlers_.reserve(static_cast<size_t>(handler_count));
  for (int i = 0; i < handler_count; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  listener_ = std::thread([this] { ListenLoop(); });
  started_ = true;
  HOSR_LOG(Info) << "admin server listening on 127.0.0.1:" << port_;
  return util::Status::Ok();
}

void AdminServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocked accept() so the listener can observe
  // stopping_; the fd itself is closed only after the thread exits.
  shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (size_t i = 0; i < handlers_.size(); ++i) pending_.push_back(-1);
  }
  queue_cv_.notify_all();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  // Drain connections accepted but never claimed by a handler.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (const int fd : pending_) {
    if (fd >= 0) close(fd);
  }
  pending_.clear();
}

void AdminServer::SetVar(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(vars_mutex_);
  vars_[std::string(key)] = std::string(value);
}

void AdminServer::SetReloadHandler(std::function<HttpResponse()> handler) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  reload_handler_ = std::move(handler);
}

void AdminServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // listener socket is gone; nothing left to accept
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      fd = pending_.front();
      pending_.pop_front();
    }
    if (fd < 0) return;  // shutdown sentinel
    ServeConnection(fd);
    close(fd);
  }
}

HttpResponse AdminServer::HandlePath(std::string_view path) const {
  // Split off the query string: /metricsz?anything hits /metricsz; only
  // /tracez reads it (limit=N).
  std::string_view query_string;
  if (const size_t query = path.find('?'); query != std::string_view::npos) {
    query_string = path.substr(query + 1);
    path = path.substr(0, query);
  }
  HttpResponse response;
  response.status_code = 200;
  if (path == "/metricsz") {
    response.body = Registry::Global().ToJson();
  } else if (path == "/healthz") {
    HealthTracker& health = HealthTracker::Global();
    const bool healthy = health.healthy();
    if (!healthy) response.status_code = 503;
    response.body = util::StrFormat(
        "{\"status\": \"%s\", \"failure_rate\": %.4f, "
        "\"reload_reject_streak\": %llu}\n",
        healthy ? "ok" : "degraded", health.FailureRate(),
        static_cast<unsigned long long>(health.reload_reject_streak()));
  } else if (path == "/readyz") {
    const bool ready = HealthTracker::Global().ready();
    if (!ready) response.status_code = 503;
    response.body =
        util::StrFormat("{\"ready\": %s}\n", ready ? "true" : "false");
  } else if (path == "/varz") {
    std::string body = "{\n  \"vars\": {";
    {
      std::lock_guard<std::mutex> lock(vars_mutex_);
      bool first = true;
      for (const auto& [key, value] : vars_) {
        if (!first) body.push_back(',');
        first = false;
        body.append(util::StrFormat("\n    \"%s\": \"%s\"",
                                    JsonEscapeString(key).c_str(),
                                    JsonEscapeString(value).c_str()));
      }
    }
    body.append(util::StrFormat(
        "\n  },\n  \"uptime_s\": %.3f,\n  \"admin_port\": %d\n}\n",
        static_cast<double>(NowNanos() - start_ns_) / 1e9, port_));
    response.body = std::move(body);
  } else if (path == "/tracez") {
    // The full per-thread rings can hold tens of thousands of spans
    // (multi-MB JSON) — far too heavy to poll. Serve the newest slice;
    // /tracez?limit=N adjusts it.
    constexpr size_t kDefaultTracezSpans = 2048;
    size_t limit = kDefaultTracezSpans;
    if (const std::string value(QueryParam(query_string, "limit"));
        !value.empty()) {
      char* parse_end = nullptr;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &parse_end, 10);
      if (parse_end != value.c_str() && parsed > 0) {
        limit = static_cast<size_t>(parsed);
      }
    }
    response.body = SpansToJson(NewestSpans(limit));
  } else if (path == "/profilez") {
    // Samples this process's CPU for the bounded window and returns the
    // collapsed stacks. The sleep happens on this handler thread, so a
    // window occupies one of the pool's slots — CollectWindow makes
    // concurrent callers share the active window instead of serializing
    // full windows behind each other.
    double seconds = 1.0;
    if (const std::string value(QueryParam(query_string, "seconds"));
        !value.empty()) {
      char* parse_end = nullptr;
      const double parsed = std::strtod(value.c_str(), &parse_end);
      if (parse_end != value.c_str() && parsed > 0.0) seconds = parsed;
    }
    auto profile = Profiler::Global().CollectWindow(seconds);
    if (!profile.ok()) {
      response.status_code = 503;
      response.body = util::StrFormat(
          "{\"error\": \"%s\"}\n",
          JsonEscapeString(profile.status().ToString()).c_str());
    } else if (QueryParam(query_string, "format") == "summary") {
      response.body = profile.value().SummaryJson();
    } else {
      response.content_type = "text/plain";
      response.body = std::move(profile.value().collapsed);
    }
  } else if (path == "/timeseriez") {
    const std::string_view metric = QueryParam(query_string, "metric");
    size_t windows = 0;
    if (const std::string value(QueryParam(query_string, "windows"));
        !value.empty()) {
      char* parse_end = nullptr;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &parse_end, 10);
      if (parse_end != value.c_str()) windows = static_cast<size_t>(parsed);
    }
    response.body = TimeseriesRecorder::Global().ToJson(metric, windows);
  } else if (path == "/reloadz") {
    response.status_code = 405;
    response.body = "{\"error\": \"/reloadz requires POST\"}\n";
  } else {
    response.status_code = 404;
    response.body = util::StrFormat(
        "{\"error\": \"no such endpoint: %s\", \"endpoints\": "
        "[\"/metricsz\", \"/healthz\", \"/readyz\", \"/varz\", "
        "\"/tracez\", \"/profilez\", \"/timeseriez\", "
        "\"/reloadz (POST)\"]}\n",
        JsonEscapeString(path).c_str());
  }
  return response;
}

HttpResponse AdminServer::HandlePost(std::string_view path) const {
  if (const size_t query = path.find('?'); query != std::string_view::npos) {
    path = path.substr(0, query);
  }
  HttpResponse response;
  if (path != "/reloadz") {
    response.status_code = 404;
    response.body = util::StrFormat(
        "{\"error\": \"no such POST endpoint: %s\"}\n",
        JsonEscapeString(path).c_str());
    return response;
  }
  std::function<HttpResponse()> handler;
  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    handler = reload_handler_;
  }
  if (!handler) {
    response.status_code = 404;
    response.body = "{\"error\": \"reload is not enabled on this host\"}\n";
    return response;
  }
  // Runs on this handler thread: a slow snapshot load occupies an admin
  // handler, never a serving worker.
  return handler();
}

void AdminServer::ServeConnection(int fd) const {
  SetRecvTimeout(fd);
  // Read until the end of the request line; the rest of the headers are
  // irrelevant to a GET-only server and may still be in flight.
  std::string request;
  char buffer[1024];
  while (request.find('\n') == std::string::npos &&
         request.size() < 8 * 1024) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;  // e.g. a SIGPROF sample landed
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;  // torn request; just close

  HOSR_COUNTER("admin/requests").Increment();
  std::string_view line(request.data(), line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  HttpResponse response;
  const size_t method_end = line.find(' ');
  const std::string_view method =
      method_end == std::string_view::npos ? std::string_view()
                                           : line.substr(0, method_end);
  if (method != "GET" && method != "POST") {
    response.status_code = 405;
    response.body = "{\"error\": \"only GET and POST are supported\"}\n";
  } else {
    std::string_view target = line.substr(method_end + 1);
    if (const size_t space = target.find(' ');
        space != std::string_view::npos) {
      target = target.substr(0, space);
    }
    response = method == "GET" ? HandlePath(target) : HandlePost(target);
  }
  if (response.status_code != 200) {
    HOSR_COUNTER("admin/request_errors").Increment();
  }

  const std::string header = util::StrFormat(
      "HTTP/1.0 %d %.*s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      response.status_code,
      static_cast<int>(ReasonPhrase(response.status_code).size()),
      ReasonPhrase(response.status_code).data(),
      response.content_type.c_str(), response.body.size());
  if (SendAll(fd, header)) SendAll(fd, response.body);
}

namespace {

util::StatusOr<HttpResponse> AdminHttpRoundTrip(int port,
                                                const std::string& method,
                                                const std::string& path) {
  // The shared socket helpers bound every phase — connect, send, and each
  // recv — so a probe against a wedged or half-up server fails in bounded
  // time instead of pinning the calling thread.
  auto connected = net::ConnectTcp("127.0.0.1", port,
                                   /*connect_timeout_ms=*/
                                   kSocketTimeoutSeconds * 1000);
  if (!connected.ok()) return connected.status();
  net::ScopedFd fd(connected.value());
  net::SetRecvTimeoutMs(fd.get(), kSocketTimeoutSeconds * 1000);
  net::SetSendTimeoutMs(fd.get(), kSocketTimeoutSeconds * 1000);
  const std::string request = util::StrFormat(
      "%s %s HTTP/1.0\r\nHost: 127.0.0.1\r\nContent-Length: 0\r\n\r\n",
      method.c_str(), path.c_str());
  if (util::Status sent = net::SendAll(fd.get(), request); !sent.ok()) {
    return sent;
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd.get(), buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;  // e.g. the caller is being profiled
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Status::DeadlineExceeded(
            util::StrFormat("recv timed out after %ds",
                            kSocketTimeoutSeconds));
      }
      return util::Status::IoError(
          util::StrFormat("recv(): %s", std::strerror(errno)));
    }
    if (n == 0) break;  // HTTP/1.0: server closes after the body
    raw.append(buffer, static_cast<size_t>(n));
  }

  // "HTTP/1.0 <code> <reason>\r\n" headers "\r\n\r\n" body.
  const size_t status_start = raw.find(' ');
  if (status_start == std::string::npos) {
    return util::Status::DataLoss("malformed HTTP response: no status code");
  }
  HttpResponse response;
  response.status_code = std::atoi(raw.c_str() + status_start + 1);
  const size_t body_start = raw.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return util::Status::DataLoss("malformed HTTP response: no header end");
  }
  response.body = raw.substr(body_start + 4);
  return response;
}

}  // namespace

util::StatusOr<HttpResponse> AdminHttpGet(int port, const std::string& path) {
  return AdminHttpRoundTrip(port, "GET", path);
}

util::StatusOr<HttpResponse> AdminHttpPost(int port,
                                           const std::string& path) {
  return AdminHttpRoundTrip(port, "POST", path);
}

}  // namespace hosr::obs
