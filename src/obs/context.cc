#include "obs/context.h"

namespace hosr::obs::internal_context {

thread_local RequestContext g_current;

}  // namespace hosr::obs::internal_context
