#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/context.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::obs {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

int Histogram::BucketFor(double value) {
  if (!(value > 0.0) || std::isinf(value)) {
    return value > 0.0 ? kNumBuckets - 1 : 0;
  }
  const int exp = std::ilogb(value);  // floor(log2(value)) for finite v > 0
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kNumBuckets - 1;
  return exp - kMinExp;
}

double Histogram::BucketUpperBound(int i) {
  return std::ldexp(1.0, kMinExp + i + 1);
}

void Histogram::Observe(double value) {
  const int bucket = BucketFor(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // Exemplar capture: last in-scope observation wins the bucket's slot.
  // One TLS read when no request context is installed.
  if (const uint64_t trace_id = CurrentTraceId(); trace_id != 0) {
    exemplars_[bucket].value.store(value, std::memory_order_relaxed);
    exemplars_[bucket].trace_id.exchange(trace_id,
                                         std::memory_order_relaxed);
  }
  AtomicAddDouble(&sum_, value);
  // First observation seeds min/max; later ones CAS toward the extremes.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    AtomicMinDouble(&min_, value);
    AtomicMaxDouble(&max_, value);
  }
}

std::vector<uint64_t> Histogram::BucketSnapshot() const {
  std::vector<uint64_t> snapshot(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

Exemplar Histogram::ExemplarFor(int i) const {
  Exemplar exemplar;
  exemplar.trace_id = exemplars_[i].trace_id.load(std::memory_order_relaxed);
  exemplar.value = exemplars_[i].value.load(std::memory_order_relaxed);
  return exemplar;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  for (auto& slot : exemplars_) {
    slot.trace_id.store(0, std::memory_order_relaxed);
    slot.value.store(0.0, std::memory_order_relaxed);
  }
}

double QuantileFromBuckets(const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (const uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank (1-based): the smallest rank covering fraction q.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const int index = static_cast<int>(i);
      const double upper = Histogram::BucketUpperBound(index);
      // Bucket 0 also absorbs non-positive values and underflow, so its
      // interpolation floor is 0 rather than its nominal power of two.
      const double lower =
          index == 0 ? 0.0 : Histogram::BucketUpperBound(index - 1);
      const double fraction = static_cast<double>(rank - before) /
                              static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
  }
  return Histogram::BucketUpperBound(static_cast<int>(buckets.size()) - 1);
}

bool IsValidMetricName(std::string_view name) {
  if (name.ends_with("_total")) return false;  // the type already says so
  int segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t end = std::min(name.find('/', start), name.size());
    const std::string_view segment = name.substr(start, end - start);
    if (segment.empty() || segment[0] < 'a' || segment[0] > 'z') return false;
    for (const char c : segment) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
      if (!ok) return false;
    }
    ++segments;
    if (end == name.size()) break;
    start = end + 1;
  }
  return segments >= 2 && segments <= 3;
}

Registry& Registry::Global() {
  // Leaked so metric pointers cached at call sites (and the atexit artifact
  // dump) stay valid throughout static destruction.
  static Registry* registry = new Registry;
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  HOSR_CHECK(IsValidMetricName(name))
      << "metric name \"" << name << "\" violates subsystem/verb_unit";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  HOSR_CHECK(IsValidMetricName(name))
      << "metric name \"" << name << "\" violates subsystem/verb_unit";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  HOSR_CHECK(IsValidMetricName(name))
      << "metric name \"" << name << "\" violates subsystem/verb_unit";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string JsonEscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(util::StrFormat("\\u%04x", c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  out->append(JsonEscapeString(text));
  out->push_back('"');
}

// Strict-JSON number: non-finite values (which %g would print as inf/nan)
// are emitted as null.
void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  out->append(util::StrFormat("%.17g", value));
}

}  // namespace

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string json = "{\n  \"metrics\": {";
  bool first = true;
  const auto begin_entry = [&](std::string_view name) {
    if (!first) json.push_back(',');
    first = false;
    json.append("\n    ");
    AppendJsonString(name, &json);
    json.append(": ");
  };
  for (const auto& [name, counter] : counters_) {
    begin_entry(name);
    json.append(util::StrFormat("{\"type\": \"counter\", \"value\": %llu}",
                                static_cast<unsigned long long>(
                                    counter->Get())));
  }
  for (const auto& [name, gauge] : gauges_) {
    begin_entry(name);
    json.append("{\"type\": \"gauge\", \"value\": ");
    AppendJsonNumber(gauge->Get(), &json);
    json.push_back('}');
  }
  for (const auto& [name, histogram] : histograms_) {
    begin_entry(name);
    const uint64_t count = histogram->Count();
    const std::vector<uint64_t> buckets = histogram->BucketSnapshot();
    json.append(util::StrFormat("{\"type\": \"histogram\", \"count\": %llu",
                                static_cast<unsigned long long>(count)));
    json.append(", \"sum\": ");
    AppendJsonNumber(histogram->Sum(), &json);
    if (count > 0) {
      json.append(", \"min\": ");
      AppendJsonNumber(histogram->Min(), &json);
      json.append(", \"max\": ");
      AppendJsonNumber(histogram->Max(), &json);
      // Precomputed summary quantiles (log-bucket estimates) so dashboards
      // and bench_diff never re-derive them from the bucket list.
      json.append(", \"p50\": ");
      AppendJsonNumber(QuantileFromBuckets(buckets, 0.50), &json);
      json.append(", \"p95\": ");
      AppendJsonNumber(QuantileFromBuckets(buckets, 0.95), &json);
      json.append(", \"p99\": ");
      AppendJsonNumber(QuantileFromBuckets(buckets, 0.99), &json);
    }
    json.append(", \"buckets\": [");
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (!first_bucket) json.append(", ");
      first_bucket = false;
      json.append("{\"le\": ");
      AppendJsonNumber(Histogram::BucketUpperBound(i), &json);
      json.append(util::StrFormat(", \"count\": %llu",
                                  static_cast<unsigned long long>(
                                      buckets[i])));
      // Exemplar: the trace id of a real request that landed in this
      // bucket, resolvable against /tracez (docs/OBSERVABILITY.md).
      if (const Exemplar exemplar = histogram->ExemplarFor(i);
          exemplar.trace_id != 0) {
        json.append(util::StrFormat(
            ", \"exemplar\": {\"trace_id\": %llu, \"value\": ",
            static_cast<unsigned long long>(exemplar.trace_id)));
        AppendJsonNumber(exemplar.value, &json);
        json.push_back('}');
      }
      json.push_back('}');
    }
    json.append("]}");
  }
  json.append("\n  }\n}\n");
  return json;
}

void Registry::VisitMetrics(
    const std::function<void(const std::string&, Counter*)>& counter_fn,
    const std::function<void(const std::string&, Gauge*)>& gauge_fn,
    const std::function<void(const std::string&, Histogram*)>& histogram_fn)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counter_fn) {
    for (const auto& [name, counter] : counters_) {
      counter_fn(name, counter.get());
    }
  }
  if (gauge_fn) {
    for (const auto& [name, gauge] : gauges_) gauge_fn(name, gauge.get());
  }
  if (histogram_fn) {
    for (const auto& [name, histogram] : histograms_) {
      histogram_fn(name, histogram.get());
    }
  }
}

void Registry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hosr::obs
