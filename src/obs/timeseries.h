#ifndef HOSR_OBS_TIMESERIES_H_
#define HOSR_OBS_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace hosr::obs {

// Windowed metric history: a background recorder snapshots every metric in
// Registry::Global() on a wall-clock cadence and keeps a fixed-capacity
// ring of per-window points per metric, so "how did p99 move over the last
// five minutes" is answerable from inside the process (/timeseriez) without
// external scrape infrastructure.
//
// Per window:
//   counters   -> delta since the previous snapshot plus rate/sec
//   gauges     -> the value at snapshot time
//   histograms -> observation delta, windowed mean, and p50/p95/p99
//                 estimated from the window's bucket-count deltas via the
//                 shared QuantileFromBuckets helper
//
// The recorder reads the registry through its lock-free metric accessors
// (one relaxed load per atomic), so recording adds nothing to the hot
// paths being measured. Memory is bounded: window_capacity points per
// metric, oldest evicted first.
class TimeseriesRecorder {
 public:
  struct Options {
    double snapshot_interval_s = 1.0;
    size_t window_capacity = 300;  // e.g. 5 minutes of 1s windows
  };

  static TimeseriesRecorder& Global();

  // Starts the recorder thread. FailedPrecondition if already running.
  util::Status Start(const Options& options);

  // Stops and joins the recorder, taking one final snapshot so updates made
  // just before shutdown land in the history (idempotent).
  void Stop();

  bool running() const;

  // JSON rendering of the history:
  //   {"snapshot_interval_s": ..., "window_capacity": N,
  //    "series": {"name": {"type": ..., "points": [...]}, ...}}
  // `metric_filter` (substring match) limits which series render;
  // `max_windows` > 0 limits each series to its newest N points. Points are
  // oldest-first; each carries "age_s" (seconds before the render call).
  std::string ToJson(std::string_view metric_filter = {},
                     size_t max_windows = 0) const;

  // Writes ToJson() via WriteFileAtomicWithCrc (the CRC-footed artifact
  // format shared with flight dumps) — the shutdown dump for
  // --timeseries_out.
  util::Status DumpToFile(const std::string& path) const;

  // Takes one snapshot immediately on the calling thread — lets tests
  // build deterministic windows without a running recorder thread.
  void SnapshotOnceForTesting();

  // Drops all history and per-metric delta state (not the options).
  void ResetForTesting();

 private:
  TimeseriesRecorder() = default;
};

}  // namespace hosr::obs

#endif  // HOSR_OBS_TIMESERIES_H_
