#include "obs/flight.h"

#include <csignal>
#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::obs {

FlightRecorder& FlightRecorder::Global() {
  // Leaked: the signal path and fault hooks may run during shutdown.
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

void FlightRecorder::Arm(Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  armed_.store(!options_.dir.empty(), std::memory_order_relaxed);
}

void FlightRecorder::Note(std::string_view event) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (notes_.size() < kNoteCapacity) {
    notes_.emplace_back(event);
  } else {
    notes_[next_note_] = std::string(event);
    next_note_ = (next_note_ + 1) % kNoteCapacity;
  }
}

void FlightRecorder::OnFault(std::string_view point) {
  if (!armed()) return;
  Note(util::StrFormat("fault fired: %.*s", static_cast<int>(point.size()),
                       point.data()));
  const util::Status status = DumpNow(
      util::StrFormat("fault:%.*s", static_cast<int>(point.size()),
                      point.data()));
  if (!status.ok() &&
      status.code() != util::StatusCode::kResourceExhausted &&
      status.code() != util::StatusCode::kFailedPrecondition) {
    HOSR_LOG(Warning) << "flight dump on fault failed: " << status;
  }
}

void FlightRecorder::OnDeadlineExceeded() {
  if (!armed()) return;
  const int64_t now_ns = NowNanos();
  int64_t window_ns;
  uint64_t threshold;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    window_ns = static_cast<int64_t>(options_.burst_window_seconds * 1e9);
    threshold = options_.burst_threshold;
  }
  int64_t window_start =
      burst_window_start_ns_.load(std::memory_order_relaxed);
  if (window_start == 0 || now_ns - window_start > window_ns) {
    // A new burst window. Only the thread that wins the CAS resets the
    // count, so a racing event is at worst attributed to the old window.
    if (burst_window_start_ns_.compare_exchange_strong(
            window_start, now_ns, std::memory_order_relaxed)) {
      burst_count_.store(0, std::memory_order_relaxed);
    }
  }
  const uint64_t in_window =
      burst_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (in_window == threshold) {
    Note(util::StrFormat(
        "deadline-exceeded burst: %llu events within window",
        static_cast<unsigned long long>(in_window)));
    const util::Status status = DumpNow("deadline_burst");
    if (!status.ok() &&
        status.code() != util::StatusCode::kResourceExhausted &&
        status.code() != util::StatusCode::kFailedPrecondition) {
      HOSR_LOG(Warning) << "flight dump on deadline burst failed: " << status;
    }
  }
}

std::string FlightRecorder::BuildDumpJson(std::string_view reason) {
  // Newest spans win the bounded slice — the dump reads chronologically
  // and ends at the trigger.
  const std::vector<SpanRecord> spans = NewestSpans(kMaxDumpSpans);

  std::string json = "{\n";
  json.append(util::StrFormat("  \"reason\": \"%s\",\n",
                              JsonEscapeString(reason).c_str()));
  json.append(util::StrFormat("  \"uptime_ns\": %lld,\n",
                              static_cast<long long>(NowNanos())));
  json.append(util::StrFormat(
      "  \"dump_seq\": %llu,\n",
      static_cast<unsigned long long>(
          dumps_written_.load(std::memory_order_relaxed))));
  json.append("  \"notes\": [");
  {
    // Ring order: oldest first. notes_[next_note_..] predate notes_[0..).
    bool first = true;
    const auto append_note = [&](const std::string& note) {
      if (!first) json.push_back(',');
      first = false;
      json.append("\n    \"");
      json.append(JsonEscapeString(note));
      json.push_back('"');
    };
    if (notes_.size() == kNoteCapacity) {
      for (size_t i = next_note_; i < notes_.size(); ++i) {
        append_note(notes_[i]);
      }
      for (size_t i = 0; i < next_note_; ++i) append_note(notes_[i]);
    } else {
      for (const std::string& note : notes_) append_note(note);
    }
  }
  json.append("\n  ],\n");
  json.append("  \"metrics\": ");
  json.append(Registry::Global().ToJson());
  // ToJson ends with '\n'; replace it so the object continues cleanly.
  if (!json.empty() && json.back() == '\n') json.pop_back();
  json.append(",\n  \"trace\": ");
  json.append(SpansToJson(spans));
  if (!json.empty() && json.back() == '\n') json.pop_back();
  json.append("\n}\n");
  return json;
}

util::Status FlightRecorder::DumpNow(std::string_view reason, bool force) {
  if (!armed()) {
    return util::Status::FailedPrecondition("flight recorder is disarmed");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t written = dumps_written_.load(std::memory_order_relaxed);
  if (written >= static_cast<uint64_t>(options_.max_dumps)) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "flight dump cap reached (%d)", options_.max_dumps));
  }
  const int64_t now_ns = NowNanos();
  const int64_t min_gap_ns =
      static_cast<int64_t>(options_.min_interval_seconds * 1e9);
  if (!force && last_dump_ns_ != 0 && now_ns - last_dump_ns_ < min_gap_ns) {
    return util::Status::ResourceExhausted(
        "flight dump suppressed by rate limit");
  }

  const std::string path = util::StrFormat(
      "%s/flight_%llu_%lld.json", options_.dir.c_str(),
      static_cast<unsigned long long>(written),
      static_cast<long long>(now_ns));
  const std::string body = BuildDumpJson(reason);
  HOSR_RETURN_IF_ERROR(util::WriteFileAtomicWithCrc(path, body));
  last_dump_ns_ = now_ns;
  last_dump_path_ = path;
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  HOSR_COUNTER("obs/flight_dumps").Increment();
  HOSR_LOG(Info) << "flight recorder dumped " << path << " (reason: "
                 << reason << ")";
  return util::Status::Ok();
}

std::string FlightRecorder::last_dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_path_;
}

void FlightRecorder::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  options_ = Options();
  notes_.clear();
  next_note_ = 0;
  last_dump_ns_ = 0;
  last_dump_path_.clear();
  dumps_written_.store(0, std::memory_order_relaxed);
  burst_window_start_ns_.store(0, std::memory_order_relaxed);
  burst_count_.store(0, std::memory_order_relaxed);
}

namespace {

void FatalSignalHandler(int signum) {
  // Deliberately not async-signal-safe (allocates, locks): the process is
  // crashing and the forensics are best-effort. A deadlock here only costs
  // the dump, not correctness — the default disposition is restored first,
  // so a re-entrant signal still terminates.
  std::signal(signum, SIG_DFL);
  FlightRecorder::Global().DumpNow(
      util::StrFormat("signal:%d", signum), /*force=*/true);
  std::raise(signum);
}

}  // namespace

void FlightRecorder::InstallSignalHandlers() {
  static bool installed = [] {
    std::signal(SIGSEGV, FatalSignalHandler);
    std::signal(SIGABRT, FatalSignalHandler);
    std::signal(SIGBUS, FatalSignalHandler);
    return true;
  }();
  (void)installed;
}

}  // namespace hosr::obs
