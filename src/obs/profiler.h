#ifndef HOSR_OBS_PROFILER_H_
#define HOSR_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/statusor.h"

namespace hosr::obs {

// One finished profiling session, ready for export.
struct Profile {
  // Flamegraph-ready collapsed stacks: one "frame;frame;leaf count\n" line
  // per distinct stack, root frame first — pipe straight into flamegraph.pl.
  std::string collapsed;
  double duration_seconds = 0.0;
  int hz = 0;
  uint64_t samples = 0;          // stacks captured into the rings
  uint64_t dropped = 0;          // lost to ring overflow or thread-pool cap
  uint64_t distinct_stacks = 0;  // unique collapsed lines

  // {"duration_seconds": ..., "hz": ..., "samples": ..., "dropped": ...,
  //  "distinct_stacks": ..., "top": [{"symbol": ..., "count": ...}, ...]}
  // where "top" ranks leaf frames by sample count (self time).
  std::string SummaryJson(size_t top_n = 20) const;
};

// Sampling CPU profiler: setitimer(ITIMER_PROF) delivers SIGPROF on CPU
// time at `hz`, and the handler walks the interrupted thread's stack with
// backtrace() into a lock-free per-thread sample ring. A collector thread
// drains the rings off the hot path and aggregates stack counts; Stop()
// symbolizes the program counters (dladdr + demangle — never in the
// handler) and renders collapsed stacks.
//
// Async-signal-safety contract: the handler allocates nothing and takes no
// locks — it claims a preallocated ring slot per thread via an atomic pool
// index and publishes samples with a release store (obs_profile_test
// asserts the no-allocation property with an operator-new guard).
//
// One session at a time, process-wide (ITIMER_PROF is a process resource).
// Continuous mode (Start/StopAndCollect) powers --profile_out; bounded
// windows (CollectWindow) power the admin /profilez endpoint. Concurrent
// CollectWindow calls share one active session: joiners block until the
// leader's window closes and receive the same Profile.
class Profiler {
 public:
  struct Options {
    int hz = 99;  // sampling rate; 99 avoids lockstep with 100Hz tickers
  };

  static constexpr int kMaxFrames = 64;     // deepest stack kept per sample
  static constexpr int kRingCapacity = 512;  // samples buffered per thread
  static constexpr int kMaxThreads = 64;     // per-thread rings in the pool

  static Profiler& Global();

  // Arms the timer and installs the SIGPROF handler. FailedPrecondition if
  // a session (continuous or window) is already running.
  util::Status Start(const Options& options);

  // Disarms, drains, symbolizes. Returns the session's profile; a default
  // Profile if no session was running.
  Profile StopAndCollect();

  // Renders the running continuous session's stacks so far without
  // stopping it (FailedPrecondition when not running).
  util::StatusOr<Profile> SnapshotNow();

  bool running() const;

  // Samples for `seconds` (clamped to [0.1, 30]) and returns the collapsed
  // profile. If a continuous session is live, returns its snapshot instead
  // of disturbing it; if another window is in flight, joins it.
  util::StatusOr<Profile> CollectWindow(double seconds, Options options);
  util::StatusOr<Profile> CollectWindow(double seconds) {
    return CollectWindow(seconds, Options());
  }

  // True while the calling thread is inside the SIGPROF handler — lets the
  // signal-safety stress test's operator-new override detect (and fail on)
  // any allocation attempted from the handler path.
  static bool InHandlerForTesting();

 private:
  Profiler() = default;

  // All mutable state is file-static in profiler.cc: the SIGPROF handler
  // can only touch globals with async-signal-safe access patterns, so
  // keeping the rings out of the object removes any temptation to lock.
};

}  // namespace hosr::obs

#endif  // HOSR_OBS_PROFILER_H_
