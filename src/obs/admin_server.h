#ifndef HOSR_OBS_ADMIN_SERVER_H_
#define HOSR_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace hosr::obs {

// Process-wide health and readiness state, surfaced by the admin server's
// /healthz and /readyz endpoints.
//
//  * Readiness is binary and host-driven: the serving binary flips it true
//    once the snapshot is loaded and the engine has answered a probe query.
//  * Health is outcome-driven: request paths report success/failure
//    (deadline-exceeded and shed count as failures) and a sustained failure
//    rate over the recent-outcome window flips health to degraded. Health
//    recovers automatically once the windowed rate drops back down.
//  * Snapshot reloads report too: a streak of kReloadDegradedStreak
//    consecutive rejected reloads flips health to degraded — the serving
//    answers may still be fine, but the model is stuck on a stale snapshot
//    and an operator should look (docs/ROBUSTNESS.md runbook). One
//    successful reload clears the streak.
class HealthTracker {
 public:
  // Window halves once ok+failed reaches 2*kWindow, so the rate tracks
  // roughly the last few hundred requests rather than process lifetime.
  static constexpr uint64_t kWindow = 256;
  // Fewer recent outcomes than this and health stays "ok" (not enough
  // signal to declare degradation).
  static constexpr uint64_t kMinSamples = 32;
  // Windowed failure rate at or above this flips /healthz to degraded/503.
  static constexpr double kDegradedThreshold = 0.5;
  // Consecutive rejected snapshot reloads that flip /healthz to degraded.
  static constexpr uint64_t kReloadDegradedStreak = 2;

  static HealthTracker& Global();

  void SetReady(bool ready) {
    ready_.store(ready, std::memory_order_relaxed);
  }
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

  // `failed` = the request ended deadline-exceeded, shed, or errored.
  void ReportOutcome(bool failed);

  // `ok` = a snapshot reload swapped successfully (clears the reject
  // streak); false = the candidate was rejected by the validation gate.
  void ReportReload(bool ok);
  uint64_t reload_reject_streak() const {
    return reload_reject_streak_.load(std::memory_order_relaxed);
  }

  bool healthy() const;
  // Windowed failure rate in [0, 1] (0 when no outcomes reported yet).
  double FailureRate() const;

  void ResetForTesting();

 private:
  std::atomic<bool> ready_{false};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> reload_reject_streak_{0};
  std::mutex decay_mutex_;
};

// One parsed admin HTTP response (see AdminHttpGet).
struct HttpResponse {
  int status_code = 0;
  std::string body;
  // Response media type; /profilez serves text/plain collapsed stacks,
  // everything else JSON. (Ignored on the client-parse side.)
  std::string content_type = "application/json";
};

// Dependency-free blocking HTTP/1.0 admin endpoint: one listener thread
// accepts loopback connections and a small handler pool serves them. GET
// plus one mutating verb, POST /reloadz; every response closes the
// connection. Endpoints:
//
//   /metricsz  metrics registry JSON (same schema as --metrics_out)
//   /healthz   {"status": "ok"|"degraded", ...}; 503 when degraded
//   /readyz    {"ready": true|false}; 503 until the host flips readiness
//   /varz      build/runtime info: host-set vars + uptime + port
//   /tracez    recent spans as Chrome trace_event JSON (same as --trace_out)
//   /profilez  sample the process CPU for ?seconds=N (default 1, max 30)
//              and return flamegraph-ready collapsed stacks as text/plain;
//              concurrent requests share the active profiling window, and
//              a continuous --profile_out session answers from its
//              accumulated snapshot instead of restarting the timer
//   /timeseriez windowed metric history JSON (?metric=SUBSTR to filter
//              series, ?windows=N to bound points per series)
//   /reloadz   POST only: runs the host-registered reload handler
//              (hosr_serve wires SnapshotManager::ReloadNow) and answers
//              200 on swap / 503 on reject; 404 when no handler is set
//
// The server reads shared observability state (registry, trace buffers,
// HealthTracker) through their own thread-safe interfaces, so it can run
// concurrently with the serving hot path without adding any locking to it.
class AdminServer {
 public:
  struct Options {
    int port = 0;             // 0 = kernel-assigned ephemeral port
    int handler_threads = 2;  // concurrent in-flight responses
  };

  explicit AdminServer(Options options);
  ~AdminServer();  // Stop()s if still running

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds 127.0.0.1:<port>, starts the listener and handler threads.
  util::Status Start();

  // Shuts the listener down and joins all threads (idempotent).
  void Stop();

  // The actually bound port (resolves Options::port == 0); valid after a
  // successful Start().
  int port() const { return port_; }

  // Key/value pairs surfaced verbatim under "vars" in /varz. Hosts publish
  // build info, kernel dispatch level, snapshot version, etc. (obs cannot
  // link hosr_kernels — the dependency points the other way — so dispatch
  // info arrives through here.)
  void SetVar(std::string_view key, std::string_view value);

  // Registers the POST /reloadz action. The handler runs on an admin
  // handler thread (never a serving thread) and returns the full HTTP
  // response; an empty function unregisters.
  void SetReloadHandler(std::function<HttpResponse()> handler);

  // Renders the response for an endpoint path without a socket round trip
  // (the transport-independent core of the handler; exposed for tests).
  HttpResponse HandlePath(std::string_view path) const;

  // Same, for POST requests (today: /reloadz only).
  HttpResponse HandlePost(std::string_view path) const;

 private:
  void ListenLoop();
  void HandlerLoop();
  void ServeConnection(int fd) const;

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  int64_t start_ns_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread listener_;
  std::vector<std::thread> handlers_;

  // Accepted connections waiting for a handler; -1 is the shutdown sentinel.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  mutable std::mutex vars_mutex_;
  std::map<std::string, std::string, std::less<>> vars_;

  mutable std::mutex reload_mutex_;
  std::function<HttpResponse()> reload_handler_;
};

// Minimal blocking HTTP/1.0 GET against 127.0.0.1:<port> — the client half
// used by tests, benches, and smoke scripts that cannot shell out to curl.
// Transport failures (connect/read) come back as a non-OK status; HTTP-level
// errors are an OK status with the response's status_code set (503 from
// /healthz is a successful round trip).
util::StatusOr<HttpResponse> AdminHttpGet(int port, const std::string& path);

// POST counterpart (empty body) — used to fire /reloadz from tests and the
// soak harness.
util::StatusOr<HttpResponse> AdminHttpPost(int port, const std::string& path);

}  // namespace hosr::obs

#endif  // HOSR_OBS_ADMIN_SERVER_H_
