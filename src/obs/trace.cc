#include "obs/trace.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>

#include "util/fileio.h"
#include "util/string_util.h"

namespace hosr::obs {

namespace internal_trace {
std::atomic<bool> g_enabled{false};
}  // namespace internal_trace

void SetEnabled(bool enabled) {
  internal_trace::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

struct TraceEvent {
  const char* name;
  int64_t begin_ns;
  int64_t end_ns;
  uint64_t trace_id;
};

// Per-thread span storage. Writes come only from the owning thread, reads
// from whichever thread exports; a plain mutex keeps both race-free (the
// uncontended lock is tens of nanoseconds, far below span granularity, and
// keeps the buffers clean under -fsanitize=thread).
class ThreadTraceBuffer {
 public:
  static constexpr size_t kCapacity = 1 << 14;  // 16384 spans per thread

  explicit ThreadTraceBuffer(uint32_t tid) : tid_(tid) {
    events_.reserve(kCapacity);
  }

  void Record(const char* name, int64_t begin_ns, int64_t end_ns,
              uint64_t trace_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() < kCapacity) {
      events_.push_back({name, begin_ns, end_ns, trace_id});
    } else {
      // Ring overwrite: keep the newest spans, count what was lost.
      events_[next_overwrite_] = {name, begin_ns, end_ns, trace_id};
      next_overwrite_ = (next_overwrite_ + 1) % kCapacity;
      ++dropped_;
    }
  }

  void AppendSnapshot(std::vector<SpanRecord>* out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent& event : events_) {
      out->push_back({event.name, event.begin_ns, event.end_ns, tid_,
                      event.trace_id});
    }
  }

  // Appends only this ring's `limit` most recently recorded spans. Record
  // order is the ring order ending just before next_overwrite_, so the
  // newest slice is a copy, not a search — NewestSpans runs per /tracez
  // poll and per flight dump while serving continues, and copying a full
  // 16k ring per thread per poll is measurable on small hosts.
  void AppendNewest(size_t limit, std::vector<SpanRecord>* out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = std::min(limit, events_.size());
    if (n == 0) return;
    // Oldest-to-newest: the slot before next_overwrite_ holds the newest
    // record (when not yet full, next_overwrite_ is 0 == wrap to end()).
    size_t i = (next_overwrite_ + events_.size() - n) % events_.size();
    for (size_t k = 0; k < n; ++k) {
      const TraceEvent& event = events_[i];
      out->push_back({event.name, event.begin_ns, event.end_ns, tid_,
                      event.trace_id});
      i = (i + 1) % events_.size();
    }
  }

  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    next_overwrite_ = 0;
    dropped_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  const uint32_t tid_;
  std::vector<TraceEvent> events_;
  size_t next_overwrite_ = 0;
  uint64_t dropped_ = 0;
};

struct BufferList {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers;
};

// Leaked: buffers must outlive worker threads and stay readable from the
// atexit artifact dump.
BufferList& Buffers() {
  static BufferList* list = new BufferList;
  return *list;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer* buffer = [] {
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mutex);
    list.buffers.push_back(std::make_unique<ThreadTraceBuffer>(
        static_cast<uint32_t>(list.buffers.size() + 1)));
    return list.buffers.back().get();
  }();
  return *buffer;
}

}  // namespace

const char* InternName(std::string_view name) {
  static std::mutex* mutex = new std::mutex;
  static std::set<std::string, std::less<>>* pool =
      new std::set<std::string, std::less<>>;
  std::lock_guard<std::mutex> lock(*mutex);
  return pool->emplace(name).first->c_str();
}

const char* IndexedSpanName(const char* prefix, size_t index) {
  if (!Enabled()) return prefix;
  return InternName(util::StrFormat("%s%zu", prefix, index));
}

void RecordSpan(const char* name, int64_t begin_ns, int64_t end_ns,
                uint64_t trace_id) {
  LocalBuffer().Record(name, begin_ns, end_ns, trace_id);
}

std::vector<SpanRecord> SnapshotSpans() {
  std::vector<SpanRecord> spans;
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (const auto& buffer : list.buffers) buffer->AppendSnapshot(&spans);
  return spans;
}

std::vector<SpanRecord> NewestSpans(size_t limit) {
  // Newest spans win the bounded slice, returned chronologically so the
  // result ends at "now". This runs while full-rate serving continues
  // (/tracez polls, flight dumps), so select the tail in O(n) with
  // nth_element and only sort the kept slice — a full sort of several
  // 16k-span rings per poll is measurable on small hosts.
  std::vector<SpanRecord> spans;
  {
    // Only the newest `limit` of each ring can survive the global cut, so
    // copy just those instead of every ring in full (threads × 16k spans).
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mutex);
    for (const auto& buffer : list.buffers) {
      buffer->AppendNewest(limit, &spans);
    }
  }
  const auto ends_earlier = [](const SpanRecord& a, const SpanRecord& b) {
    return a.end_ns < b.end_ns;
  };
  if (spans.size() > limit) {
    const auto cut = spans.end() - static_cast<ptrdiff_t>(limit);
    std::nth_element(spans.begin(), cut, spans.end(), ends_earlier);
    spans.erase(spans.begin(), cut);
  }
  std::sort(spans.begin(), spans.end(), ends_earlier);
  return spans;
}

uint64_t DroppedSpanCount() {
  uint64_t dropped = 0;
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (const auto& buffer : list.buffers) dropped += buffer->dropped();
  return dropped;
}

void ClearTrace() {
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (const auto& buffer : list.buffers) buffer->Clear();
}

std::string SpansToJson(const std::vector<SpanRecord>& spans) {
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) json.push_back(',');
    first = false;
    // Complete ("X") events; ts/dur are microseconds with ns precision.
    json.append(util::StrFormat(
        "\n  {\"name\": \"%s\", \"cat\": \"hosr\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
        span.name.c_str(), static_cast<double>(span.begin_ns) / 1e3,
        static_cast<double>(span.end_ns - span.begin_ns) / 1e3, span.tid));
    if (span.trace_id != 0) {
      json.append(util::StrFormat(
          ", \"args\": {\"trace_id\": %llu}",
          static_cast<unsigned long long>(span.trace_id)));
    }
    json.push_back('}');
  }
  json.append("\n], \"displayTimeUnit\": \"ms\"}\n");
  return json;
}

std::string TraceToJson() { return SpansToJson(SnapshotSpans()); }

util::Status WriteTraceJson(const std::string& path) {
  // Atomic: a crash mid-flush leaves the previous trace intact rather
  // than a truncated JSON array.
  return util::WriteFileAtomic(path, TraceToJson());
}

}  // namespace hosr::obs
