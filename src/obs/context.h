#ifndef HOSR_OBS_CONTEXT_H_
#define HOSR_OBS_CONTEXT_H_

#include <cstdint>

namespace hosr::obs {

// Request-scoped identity, threaded from the serving front end through
// every stage that works on the request's behalf (batcher queue, engine
// scoring, hardened retry pipeline). A nonzero `trace_id` stamps every
// span recorded while the context is installed and fills histogram
// exemplar slots, so a p99 outlier in `serve/request_latency_ms` can be
// resolved to the concrete offending request in `/tracez`
// (docs/OBSERVABILITY.md "Request-scoped tracing").
//
// Propagation rule for new subsystems: whatever thread does work for a
// request installs the request's context with ScopedRequestContext for the
// duration of that work. Contexts do not hop threads by themselves — a
// handoff (queue, thread pool, future) must carry the RequestContext value
// and re-install it on the receiving thread.
struct RequestContext {
  uint64_t trace_id = 0;  // 0 = no request in scope
  uint32_t user = 0;
  uint32_t k = 0;
};

namespace internal_context {
// Direct thread-local access keeps CurrentTraceId() cheap enough for
// histogram hot paths: one TLS read, no function call on the fast path.
extern thread_local RequestContext g_current;
}  // namespace internal_context

// The context installed on the calling thread (all-zero when none is).
inline const RequestContext& CurrentContext() {
  return internal_context::g_current;
}

// Trace id of the request the calling thread currently works for; 0 when
// the thread is not inside a request scope.
inline uint64_t CurrentTraceId() {
  return internal_context::g_current.trace_id;
}

// RAII installation: saves the thread's previous context and restores it on
// destruction, so nested scopes (a request spawning sub-work on the same
// thread) unwind correctly.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& context)
      : previous_(internal_context::g_current) {
    internal_context::g_current = context;
  }
  ~ScopedRequestContext() { internal_context::g_current = previous_; }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext previous_;
};

}  // namespace hosr::obs

#endif  // HOSR_OBS_CONTEXT_H_
