#ifndef HOSR_OBS_REPORTER_H_
#define HOSR_OBS_REPORTER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "util/flags.h"
#include "util/status.h"

namespace hosr::obs {

// Writes Registry::Global().ToJson() to `path`.
util::Status WriteMetricsJson(const std::string& path);

// Snapshots the metrics registry on a cadence. Two usage modes:
//  * interval mode — `interval_seconds > 0` starts a background thread that
//    calls Snapshot() every interval until Stop()/destruction;
//  * epoch mode — `interval_seconds <= 0` starts no thread; the owner calls
//    Snapshot() itself (e.g. once per training epoch).
// Every snapshot rewrites `metrics_path` (when set) so the on-disk JSON is
// always the latest state, and optionally logs a one-line summary.
//
// Shutdown-flush guarantee: any Stop() call — including one racing another
// Stop() or the destructor — returns only after a final Snapshot() that
// started at or after the Stop() call has completed. Metric updates made
// before Stop() is invoked are therefore always present in the on-disk
// artifact once Stop() returns; no samples are lost to shutdown.
class StatsReporter {
 public:
  struct Options {
    double interval_seconds = 0.0;
    std::string metrics_path;
    bool log_snapshots = false;
  };

  explicit StatsReporter(Options options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  // Safe to call from any thread; concurrent snapshots serialize on an
  // internal mutex so two writers never race on the same temp file.
  void Snapshot();

  // Joins the background thread and writes a final snapshot (idempotent and
  // safe to call concurrently: every caller blocks until that flush is
  // done, not just the first one).
  void Stop();

 private:
  void Loop();

  Options options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  // Serializes the join-then-flush sequence across concurrent Stop() calls.
  std::mutex stop_mutex_;
  bool stopped_ = false;
  // Serializes Snapshot() bodies (atomic-write temp files share a name).
  std::mutex snapshot_mutex_;
  std::thread thread_;
};

// One-call wiring for binaries:
//   --metrics_out=FILE        dump the metrics registry JSON at process exit
//   --trace_out=FILE          dump the Chrome trace JSON at process exit
//   --metrics_interval=SECS   also rewrite --metrics_out every SECS seconds
//   --profile_out=FILE        run the sampling CPU profiler for the whole
//                             process lifetime; write collapsed stacks to
//                             FILE and a JSON summary to FILE.summary.json
//                             at exit
//   --profile_hz=N            profiler sampling rate (default 99)
//   --timeseries_out=FILE     run the timeseries recorder; dump the CRC-
//                             footed windowed-history JSON to FILE at exit
//   --timeseries_interval=S   recorder snapshot cadence (default 1.0)
//   --log_level=debug|info|warning|error
// Enables span/histogram capture (SetEnabled(true)) when any output path is
// set, and registers an atexit hook that stops the interval reporter,
// profiler, and recorder, then writes every configured artifact.
void InitFromFlags(const util::Flags& flags);

// Writes whatever InitFromFlags configured, immediately (also runs at exit).
void FlushArtifacts();

}  // namespace hosr::obs

#endif  // HOSR_OBS_REPORTER_H_
