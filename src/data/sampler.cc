#include "data/sampler.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hosr::data {

BprSampler::BprSampler(const InteractionMatrix* train, uint64_t seed,
                       NegativeSampling negative_sampling)
    : train_(train),
      positives_(train->ToList()),
      rng_(seed),
      negative_sampling_(negative_sampling) {
  HOSR_CHECK(!positives_.empty()) << "cannot sample from empty training set";
  HOSR_CHECK(train_->num_items() > 1);
  // Pre-register so the metric shows up in dumps even for runs where no
  // candidate is ever rejected.
  HOSR_COUNTER("sampler/neg_rejections").Increment(0);
  if (negative_sampling_ == NegativeSampling::kPopularity) {
    std::vector<double> weights(train_->num_items(), 0.0);
    for (const Interaction& it : positives_) weights[it.item] += 1.0;
    popularity_cdf_.resize(weights.size());
    double acc = 0.0;
    for (size_t j = 0; j < weights.size(); ++j) {
      // +1 smoothing keeps never-consumed items sampleable.
      acc += std::pow(weights[j] + 1.0, 0.75);
      popularity_cdf_[j] = acc;
    }
  }
}

uint32_t BprSampler::SamplePopularityItem() {
  const double target = rng_.UniformDouble() * popularity_cdf_.back();
  const auto it = std::upper_bound(popularity_cdf_.begin(),
                                   popularity_cdf_.end(), target);
  return static_cast<uint32_t>(
      std::min<ptrdiff_t>(it - popularity_cdf_.begin(),
                          static_cast<ptrdiff_t>(popularity_cdf_.size()) - 1));
}

uint32_t BprSampler::SampleNegative(uint32_t user) {
  const auto& items = train_->ItemsOf(user);
  // A user interacting with every item would loop forever; the datasets
  // the library targets are far sparser, but guard with a cheap check.
  HOSR_CHECK(items.size() < train_->num_items())
      << "user " << user << " interacted with every item";
  while (true) {
    const uint32_t candidate =
        negative_sampling_ == NegativeSampling::kPopularity
            ? SamplePopularityItem()
            : static_cast<uint32_t>(rng_.UniformInt(train_->num_items()));
    if (!train_->Contains(user, candidate)) return candidate;
    HOSR_COUNTER("sampler/neg_rejections").Increment();
  }
}

BprBatch BprSampler::SampleBatch(size_t batch_size) {
  HOSR_COUNTER("sampler/batches").Increment();
  HOSR_COUNTER("sampler/triples").Increment(batch_size);
  BprBatch batch;
  batch.users.reserve(batch_size);
  batch.pos_items.reserve(batch_size);
  batch.neg_items.reserve(batch_size);
  for (size_t k = 0; k < batch_size; ++k) {
    const Interaction& pos =
        positives_[rng_.UniformInt(positives_.size())];
    batch.users.push_back(pos.user);
    batch.pos_items.push_back(pos.item);
    batch.neg_items.push_back(SampleNegative(pos.user));
  }
  return batch;
}

BatchPrefetcher::BatchPrefetcher(BprSampler* sampler, size_t batch_size,
                                 size_t num_batches, bool enabled,
                                 size_t depth)
    : sampler_(sampler),
      batch_size_(batch_size),
      num_batches_(num_batches),
      enabled_(enabled && num_batches > 0),
      depth_(depth > 0 ? depth : 1) {
  HOSR_CHECK(sampler_ != nullptr);
  if (enabled_) {
    producer_ = std::thread([this] { ProducerLoop(); });
  }
}

BatchPrefetcher::~BatchPrefetcher() {
  if (!producer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  space_ready_.notify_all();
  batch_ready_.notify_all();
  producer_.join();
}

void BatchPrefetcher::ProducerLoop() {
  for (size_t i = 0; i < num_batches_; ++i) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_ready_.wait(lock,
                        [this] { return stop_ || queue_.size() < depth_; });
      if (stop_) return;
    }
    // Sample outside the lock: the whole point is overlapping this work
    // with the consumer. Only this thread touches the sampler, and only
    // the consumer pops, so the space observed above cannot vanish.
    BprBatch batch = sampler_->SampleBatch(batch_size_);
    HOSR_COUNTER("sampler/prefetched_batches").Increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
      queue_.push_back(std::move(batch));
    }
    batch_ready_.notify_one();
  }
}

BprBatch BatchPrefetcher::Next() {
  HOSR_CHECK(consumed_ < num_batches_)
      << "epoch exhausted after " << num_batches_ << " batches";
  ++consumed_;
  if (!enabled_) return sampler_->SampleBatch(batch_size_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) {
    // Stall: the consumer outran the producer. Record the time blocked, not
    // just the event, so the training timeline can show stall *time*
    // (trainer/prefetch_stall_ratio) rather than a bare count.
    HOSR_COUNTER("sampler/prefetch_stalls").Increment();
    const int64_t wait_begin_ns = obs::NowNanos();
    batch_ready_.wait(lock, [this] { return !queue_.empty(); });
    HOSR_HISTOGRAM("sampler/prefetch_stall_us")
        .Observe(static_cast<double>(obs::NowNanos() - wait_begin_ns) /
                 1000.0);
  }
  BprBatch batch = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  space_ready_.notify_one();
  return batch;
}

}  // namespace hosr::data
