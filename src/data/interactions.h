#ifndef HOSR_DATA_INTERACTIONS_H_
#define HOSR_DATA_INTERACTIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace hosr::data {

// One observed implicit-feedback event y_ij = 1 (Sec. 2.1).
struct Interaction {
  uint32_t user;
  uint32_t item;

  bool operator==(const Interaction& other) const {
    return user == other.user && item == other.item;
  }
};

// Sparse binary user-item matrix Y stored as per-user sorted item lists.
// Immutable after construction.
class InteractionMatrix {
 public:
  InteractionMatrix() : num_items_(0) {}

  // De-duplicates; rejects out-of-range ids.
  static util::StatusOr<InteractionMatrix> FromInteractions(
      uint32_t num_users, uint32_t num_items,
      std::vector<Interaction> interactions);

  uint32_t num_users() const {
    return static_cast<uint32_t>(user_items_.size());
  }
  uint32_t num_items() const { return num_items_; }
  size_t nnz() const { return total_; }

  // I_i: items user i interacted with, ascending.
  const std::vector<uint32_t>& ItemsOf(uint32_t user) const {
    HOSR_CHECK(user < user_items_.size());
    return user_items_[user];
  }

  // O(log |I_u|).
  bool Contains(uint32_t user, uint32_t item) const;

  // Fraction of (user, item) cells observed — Table 2's user-item density.
  double Density() const;

  // Average interactions per user — Table 2's "Avg. interactions".
  double AvgInteractionsPerUser() const;

  // Inverted index: users that interacted with each item. O(nnz) to build.
  std::vector<std::vector<uint32_t>> BuildItemIndex() const;

  // Flattened (user, item) list in user-major order, for uniform sampling.
  std::vector<Interaction> ToList() const;

 private:
  uint32_t num_items_;
  size_t total_ = 0;
  std::vector<std::vector<uint32_t>> user_items_;
};

}  // namespace hosr::data

#endif  // HOSR_DATA_INTERACTIONS_H_
