#include "data/preprocess.h"

#include <algorithm>
#include <numeric>

namespace hosr::data {

util::StatusOr<FilteredDataset> KCoreFilter(
    const Dataset& dataset, uint32_t min_interactions_per_user,
    uint32_t min_interactions_per_item) {
  const uint32_t n = dataset.num_users();
  const uint32_t m = dataset.num_items();
  std::vector<bool> user_alive(n, true);
  std::vector<bool> item_alive(m, true);
  std::vector<uint32_t> user_degree(n, 0);
  std::vector<uint32_t> item_degree(m, 0);

  for (uint32_t u = 0; u < n; ++u) {
    for (const uint32_t j : dataset.interactions.ItemsOf(u)) {
      ++user_degree[u];
      ++item_degree[j];
    }
  }

  // Iterate to a fixed point. Each pass recomputes degrees over survivors.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t u = 0; u < n; ++u) {
      if (user_alive[u] && user_degree[u] < min_interactions_per_user) {
        user_alive[u] = false;
        changed = true;
        for (const uint32_t j : dataset.interactions.ItemsOf(u)) {
          if (item_alive[j]) --item_degree[j];
        }
      }
    }
    for (uint32_t j = 0; j < m; ++j) {
      if (item_alive[j] && item_degree[j] < min_interactions_per_item) {
        item_alive[j] = false;
        changed = true;
      }
    }
    // Item removals reduce user degrees; recompute lazily.
    if (changed) {
      std::fill(user_degree.begin(), user_degree.end(), 0);
      for (uint32_t u = 0; u < n; ++u) {
        if (!user_alive[u]) continue;
        for (const uint32_t j : dataset.interactions.ItemsOf(u)) {
          if (item_alive[j]) ++user_degree[u];
        }
      }
    }
  }

  FilteredDataset result;
  std::vector<uint32_t> user_new_id(n, UINT32_MAX);
  std::vector<uint32_t> item_new_id(m, UINT32_MAX);
  for (uint32_t u = 0; u < n; ++u) {
    if (user_alive[u]) {
      user_new_id[u] = static_cast<uint32_t>(result.user_origin.size());
      result.user_origin.push_back(u);
    }
  }
  for (uint32_t j = 0; j < m; ++j) {
    if (item_alive[j]) {
      item_new_id[j] = static_cast<uint32_t>(result.item_origin.size());
      result.item_origin.push_back(j);
    }
  }
  if (result.user_origin.empty() || result.item_origin.empty()) {
    return util::Status::InvalidArgument(
        "k-core thresholds eliminated every user or item");
  }

  std::vector<Interaction> interactions;
  for (uint32_t u = 0; u < n; ++u) {
    if (!user_alive[u]) continue;
    for (const uint32_t j : dataset.interactions.ItemsOf(u)) {
      if (item_alive[j]) {
        interactions.push_back({user_new_id[u], item_new_id[j]});
      }
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> social_edges;
  for (const auto& [a, b] : dataset.social.EdgeList()) {
    if (user_alive[a] && user_alive[b]) {
      social_edges.emplace_back(user_new_id[a], user_new_id[b]);
    }
  }

  HOSR_ASSIGN_OR_RETURN(
      InteractionMatrix matrix,
      InteractionMatrix::FromInteractions(
          static_cast<uint32_t>(result.user_origin.size()),
          static_cast<uint32_t>(result.item_origin.size()),
          std::move(interactions)));
  HOSR_ASSIGN_OR_RETURN(
      graph::SocialGraph social,
      graph::SocialGraph::FromEdges(
          static_cast<uint32_t>(result.user_origin.size()), social_edges));
  result.dataset.name = dataset.name + "/kcore";
  result.dataset.interactions = std::move(matrix);
  result.dataset.social = std::move(social);
  return result;
}

std::vector<uint32_t> SocialComponents(const graph::SocialGraph& graph) {
  const uint32_t n = graph.num_users();
  std::vector<uint32_t> labels(n, UINT32_MAX);
  std::vector<uint32_t> stack;
  uint32_t next_label = 0;
  for (uint32_t start = 0; start < n; ++start) {
    if (labels[start] != UINT32_MAX) continue;
    labels[start] = next_label;
    stack.push_back(start);
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      const auto& adj = graph.adjacency();
      for (size_t k = adj.row_begin(u); k < adj.row_end(u); ++k) {
        const uint32_t v = adj.col_idx()[k];
        if (labels[v] == UINT32_MAX) {
          labels[v] = next_label;
          stack.push_back(v);
        }
      }
    }
    ++next_label;
  }
  return labels;
}

uint32_t CountComponents(const std::vector<uint32_t>& labels) {
  if (labels.empty()) return 0;
  return *std::max_element(labels.begin(), labels.end()) + 1;
}

}  // namespace hosr::data
