#ifndef HOSR_DATA_SYNTHETIC_H_
#define HOSR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/statusor.h"

namespace hosr::data {

// Configuration for the synthetic social-recommendation generator that
// substitutes for the paper's Yelp / Douban datasets (see DESIGN.md).
//
// The generator produces:
//  * a social graph grown by preferential attachment, giving the long-tail
//    degree distribution of Fig. 5 and the neighbor explosion of Table 1;
//  * latent user/item preference vectors where user preferences are
//    *diffused* along the social graph for `influence_hops` hops with
//    per-hop blend `social_blend` — planting a genuine "word of mouth"
//    signal in which high-order neighbors carry decaying but real
//    information about a user's taste;
//  * implicit-feedback interactions drawn per user (log-normal activity,
//    so interaction counts are long-tailed too) from a softmax over
//    preference-item affinities with item-popularity skew.
struct SyntheticConfig {
  std::string name = "synthetic";
  uint32_t num_users = 2000;
  uint32_t num_items = 2800;
  // Target mean of the per-user interaction count (log-normal distributed).
  double avg_interactions_per_user = 16.0;
  // Target mean first-order social degree (preferential attachment).
  double avg_relations_per_user = 16.0;
  // Dimensionality of the planted ground-truth preference space.
  uint32_t latent_dim = 16;
  // Per-hop blend toward the neighborhood average during diffusion, in
  // [0, 1). 0 removes all social signal (useful as a control).
  float social_blend = 0.45f;
  // Number of diffusion rounds: preferences carry signal from up to this
  // many hops away.
  uint32_t influence_hops = 3;
  // Std-dev of the item popularity bias (long-tail item popularity). Keep
  // well below the unit-norm personal-preference signal or popularity
  // dominates item choice and all personalized models converge.
  float popularity_stddev = 0.2f;
  // Softmax temperature when sampling interactions; larger = noisier.
  // (At 0.15 the unit-norm personal/social signal dominates the Gumbel
  // sampling noise, keeping planted preferences recoverable.)
  float sampling_temperature = 0.15f;
  // Shape (sigma) of the log-normal per-user activity distribution.
  float activity_sigma = 0.8f;
  uint64_t seed = 42;

  // Mirrors Yelp's Table 2 shape (sparser interactions; at scale=1.0 the
  // exact user/item counts of the paper). `scale` shrinks user and item
  // counts proportionally while preserving per-user averages.
  static SyntheticConfig YelpLike(double scale = 0.2);

  // Mirrors Douban-Book's Table 2 shape (≈4x denser interactions).
  static SyntheticConfig DoubanLike(double scale = 0.2);

  // Validates ranges; returns an error describing the first problem.
  util::Status Validate() const;
};

// Deterministically generates a dataset from the config. Every user has at
// least one interaction and at least one social relation (the paper's
// datasets guarantee both).
util::StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace hosr::data

#endif  // HOSR_DATA_SYNTHETIC_H_
