#ifndef HOSR_DATA_IO_H_
#define HOSR_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/statusor.h"

namespace hosr::data {

// On-disk dataset format, in a directory:
//   meta.tsv          name / num_users / num_items, one "key\tvalue" per line
//   interactions.tsv  "user\titem" per line
//   social.tsv        "user_a\tuser_b" per line (undirected, a < b)
util::Status SaveDataset(const Dataset& dataset, const std::string& dir);
util::StatusOr<Dataset> LoadDataset(const std::string& dir);

}  // namespace hosr::data

#endif  // HOSR_DATA_IO_H_
