#ifndef HOSR_DATA_PREPROCESS_H_
#define HOSR_DATA_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/statusor.h"

namespace hosr::data {

// Result of a dataset filtering pass: the filtered dataset plus the id
// remappings (new id -> original id) needed to interpret its entities.
struct FilteredDataset {
  Dataset dataset;
  std::vector<uint32_t> user_origin;  // new user id -> original user id
  std::vector<uint32_t> item_origin;  // new item id -> original item id
};

// Iterative k-core filtering, the standard preprocessing step of the
// recommendation literature (the paper's datasets are pre-filtered this
// way by their sources): repeatedly drops users with fewer than
// `min_interactions_per_user` interactions and items with fewer than
// `min_interactions_per_item` until a fixed point, then compacts user and
// item ids and rewrites the social graph over the surviving users.
//
// Returns InvalidArgument when the thresholds eliminate everything.
util::StatusOr<FilteredDataset> KCoreFilter(
    const Dataset& dataset, uint32_t min_interactions_per_user,
    uint32_t min_interactions_per_item);

// Connected components of the social graph; entry i is the component id of
// user i (ids are dense, 0-based, ordered by first appearance).
std::vector<uint32_t> SocialComponents(const graph::SocialGraph& graph);

// Number of distinct values in a component labeling.
uint32_t CountComponents(const std::vector<uint32_t>& labels);

}  // namespace hosr::data

#endif  // HOSR_DATA_PREPROCESS_H_
