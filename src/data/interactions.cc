#include "data/interactions.h"

#include <algorithm>

#include "util/string_util.h"

namespace hosr::data {

util::StatusOr<InteractionMatrix> InteractionMatrix::FromInteractions(
    uint32_t num_users, uint32_t num_items,
    std::vector<Interaction> interactions) {
  InteractionMatrix m;
  m.num_items_ = num_items;
  m.user_items_.resize(num_users);
  for (const Interaction& it : interactions) {
    if (it.user >= num_users || it.item >= num_items) {
      return util::Status::InvalidArgument(
          util::StrFormat("interaction (%u,%u) outside %ux%u", it.user,
                          it.item, num_users, num_items));
    }
    m.user_items_[it.user].push_back(it.item);
  }
  for (auto& items : m.user_items_) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    m.total_ += items.size();
  }
  return m;
}

bool InteractionMatrix::Contains(uint32_t user, uint32_t item) const {
  HOSR_CHECK(user < user_items_.size());
  const auto& items = user_items_[user];
  return std::binary_search(items.begin(), items.end(), item);
}

double InteractionMatrix::Density() const {
  const double cells =
      static_cast<double>(num_users()) * static_cast<double>(num_items_);
  return cells > 0 ? static_cast<double>(total_) / cells : 0.0;
}

double InteractionMatrix::AvgInteractionsPerUser() const {
  return num_users() > 0 ? static_cast<double>(total_) / num_users() : 0.0;
}

std::vector<std::vector<uint32_t>> InteractionMatrix::BuildItemIndex() const {
  std::vector<std::vector<uint32_t>> index(num_items_);
  for (uint32_t u = 0; u < num_users(); ++u) {
    for (const uint32_t item : user_items_[u]) index[item].push_back(u);
  }
  return index;
}

std::vector<Interaction> InteractionMatrix::ToList() const {
  std::vector<Interaction> list;
  list.reserve(total_);
  for (uint32_t u = 0; u < num_users(); ++u) {
    for (const uint32_t item : user_items_[u]) list.push_back({u, item});
  }
  return list;
}

}  // namespace hosr::data
