#include "data/io.h"

#include <filesystem>
#include <fstream>

#include "util/string_util.h"

namespace hosr::data {

namespace {

util::StatusOr<std::pair<int64_t, int64_t>> ParsePairLine(
    const std::string& line, const std::string& path) {
  const auto fields = util::Split(line, '\t');
  if (fields.size() != 2) {
    return util::Status::InvalidArgument("bad line in " + path + ": " + line);
  }
  HOSR_ASSIGN_OR_RETURN(const int64_t a, util::ParseInt(fields[0]));
  HOSR_ASSIGN_OR_RETURN(const int64_t b, util::ParseInt(fields[1]));
  if (a < 0 || b < 0) {
    return util::Status::InvalidArgument("negative id in " + path);
  }
  return std::make_pair(a, b);
}

}  // namespace

util::Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return util::Status::IoError("mkdir failed: " + dir);

  {
    std::ofstream meta(dir + "/meta.tsv", std::ios::trunc);
    if (!meta) return util::Status::IoError("cannot write meta.tsv");
    meta << "name\t" << dataset.name << "\n";
    meta << "num_users\t" << dataset.num_users() << "\n";
    meta << "num_items\t" << dataset.num_items() << "\n";
  }
  {
    std::ofstream out(dir + "/interactions.tsv", std::ios::trunc);
    if (!out) return util::Status::IoError("cannot write interactions.tsv");
    for (uint32_t u = 0; u < dataset.num_users(); ++u) {
      for (const uint32_t item : dataset.interactions.ItemsOf(u)) {
        out << u << '\t' << item << '\n';
      }
    }
    if (!out) return util::Status::IoError("interactions.tsv write failed");
  }
  {
    std::ofstream out(dir + "/social.tsv", std::ios::trunc);
    if (!out) return util::Status::IoError("cannot write social.tsv");
    for (const auto& [a, b] : dataset.social.EdgeList()) {
      out << a << '\t' << b << '\n';
    }
    if (!out) return util::Status::IoError("social.tsv write failed");
  }
  return util::Status::Ok();
}

util::StatusOr<Dataset> LoadDataset(const std::string& dir) {
  std::string name;
  int64_t num_users = -1;
  int64_t num_items = -1;
  {
    std::ifstream meta(dir + "/meta.tsv");
    if (!meta) return util::Status::IoError("cannot read " + dir + "/meta.tsv");
    std::string line;
    while (std::getline(meta, line)) {
      if (line.empty()) continue;
      const auto fields = util::Split(line, '\t');
      if (fields.size() != 2) {
        return util::Status::InvalidArgument("bad meta line: " + line);
      }
      if (fields[0] == "name") {
        name = fields[1];
      } else if (fields[0] == "num_users") {
        HOSR_ASSIGN_OR_RETURN(num_users, util::ParseInt(fields[1]));
      } else if (fields[0] == "num_items") {
        HOSR_ASSIGN_OR_RETURN(num_items, util::ParseInt(fields[1]));
      }
    }
  }
  if (num_users <= 0 || num_items <= 0) {
    return util::Status::InvalidArgument("meta.tsv missing user/item counts");
  }

  std::vector<Interaction> interactions;
  {
    std::ifstream in(dir + "/interactions.tsv");
    if (!in) {
      return util::Status::IoError("cannot read " + dir +
                                   "/interactions.tsv");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      HOSR_ASSIGN_OR_RETURN(const auto pair,
                            ParsePairLine(line, "interactions.tsv"));
      interactions.push_back({static_cast<uint32_t>(pair.first),
                              static_cast<uint32_t>(pair.second)});
    }
  }

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  {
    std::ifstream in(dir + "/social.tsv");
    if (!in) return util::Status::IoError("cannot read " + dir + "/social.tsv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      HOSR_ASSIGN_OR_RETURN(const auto pair, ParsePairLine(line, "social.tsv"));
      edges.emplace_back(static_cast<uint32_t>(pair.first),
                         static_cast<uint32_t>(pair.second));
    }
  }

  HOSR_ASSIGN_OR_RETURN(
      InteractionMatrix matrix,
      InteractionMatrix::FromInteractions(static_cast<uint32_t>(num_users),
                                          static_cast<uint32_t>(num_items),
                                          std::move(interactions)));
  HOSR_ASSIGN_OR_RETURN(
      graph::SocialGraph social,
      graph::SocialGraph::FromEdges(static_cast<uint32_t>(num_users), edges));

  Dataset dataset;
  dataset.name = name.empty() ? "unnamed" : name;
  dataset.interactions = std::move(matrix);
  dataset.social = std::move(social);
  return dataset;
}

}  // namespace hosr::data
