#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/init.h"
#include "tensor/matrix.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hosr::data {

namespace {

using tensor::Matrix;

// Grows an undirected graph by preferential attachment with *variable*
// per-node edge budgets: node i joins with 1 + Geometric(mean - 1) edges
// to distinct existing nodes chosen with probability proportional to
// degree (with a uniform admixture). The geometric budgets put most users
// at degree 1-3 while attachment builds hubs — both ends of the Fig. 5
// long tail.
std::vector<std::pair<uint32_t, uint32_t>> GrowPreferentialAttachment(
    uint32_t num_nodes, double mean_edges_per_node, util::Rng* rng) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  if (num_nodes < 2) return edges;
  // Repeated-endpoint list: sampling uniformly from it is degree-biased.
  std::vector<uint32_t> endpoints;
  endpoints.reserve(
      static_cast<size_t>(num_nodes * mean_edges_per_node * 2));
  edges.emplace_back(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  // Geometric "extra edges" with mean (mean_edges_per_node - 1).
  const double extra_mean = std::max(0.0, mean_edges_per_node - 1.0);
  const double continue_prob = extra_mean / (1.0 + extra_mean);
  std::unordered_set<uint32_t> chosen;
  for (uint32_t node = 2; node < num_nodes; ++node) {
    uint32_t want = 1;
    while (rng->Bernoulli(continue_prob) && want < node) ++want;
    chosen.clear();
    uint32_t attempts = 0;
    while (chosen.size() < want && attempts < want * 20) {
      ++attempts;
      // Mix preferential (degree-proportional) with uniform selection to
      // keep a heavy tail without a single dominating hub.
      uint32_t target;
      if (rng->Bernoulli(0.8)) {
        target = endpoints[rng->UniformInt(endpoints.size())];
      } else {
        target = static_cast<uint32_t>(rng->UniformInt(node));
      }
      if (target == node) continue;
      chosen.insert(target);
    }
    for (const uint32_t target : chosen) {
      edges.emplace_back(node, target);
      endpoints.push_back(node);
      endpoints.push_back(target);
    }
  }
  return edges;
}

// One diffusion round: P <- (1 - blend) * P + blend * neighborhood_mean(P).
Matrix DiffuseOnce(const graph::SocialGraph& social, const Matrix& prefs,
                   float blend) {
  Matrix out = prefs;
  const auto& adj = social.adjacency();
  util::ParallelFor(0, prefs.rows(), [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const auto user = static_cast<uint32_t>(u);
      const size_t row_begin = adj.row_begin(user);
      const size_t row_end = adj.row_end(user);
      if (row_begin == row_end) continue;
      const float inv_degree = 1.0f / static_cast<float>(row_end - row_begin);
      float* out_row = out.row(u);
      for (size_t c = 0; c < prefs.cols(); ++c) out_row[c] *= (1.0f - blend);
      for (size_t k = row_begin; k < row_end; ++k) {
        const float* nbr = prefs.row(adj.col_idx()[k]);
        for (size_t c = 0; c < prefs.cols(); ++c) {
          out_row[c] += blend * inv_degree * nbr[c];
        }
      }
    }
  });
  return out;
}

}  // namespace

SyntheticConfig SyntheticConfig::YelpLike(double scale) {
  SyntheticConfig config;
  config.name = util::StrFormat("yelp-like(x%.2f)", scale);
  config.num_users =
      std::max<uint32_t>(64, static_cast<uint32_t>(10580 * scale));
  config.num_items =
      std::max<uint32_t>(64, static_cast<uint32_t>(14284 * scale));
  config.avg_interactions_per_user = 16.17;
  config.avg_relations_per_user = 15.99;
  config.seed = 20230417;
  return config;
}

SyntheticConfig SyntheticConfig::DoubanLike(double scale) {
  SyntheticConfig config;
  config.name = util::StrFormat("douban-like(x%.2f)", scale);
  config.num_users =
      std::max<uint32_t>(64, static_cast<uint32_t>(12748 * scale));
  config.num_items =
      std::max<uint32_t>(64, static_cast<uint32_t>(22348 * scale));
  config.avg_interactions_per_user = 61.60;
  config.avg_relations_per_user = 14.26;
  config.seed = 20230612;
  return config;
}

util::Status SyntheticConfig::Validate() const {
  if (num_users < 2) {
    return util::Status::InvalidArgument("need at least 2 users");
  }
  if (num_items < 2) {
    return util::Status::InvalidArgument("need at least 2 items");
  }
  if (avg_interactions_per_user < 1.0) {
    return util::Status::InvalidArgument(
        "avg_interactions_per_user must be >= 1");
  }
  if (avg_interactions_per_user > num_items / 2.0) {
    return util::Status::InvalidArgument(
        "avg_interactions_per_user too large for item count");
  }
  if (avg_relations_per_user < 1.0 ||
      avg_relations_per_user > num_users / 2.0) {
    return util::Status::InvalidArgument(
        "avg_relations_per_user out of range");
  }
  if (latent_dim == 0) {
    return util::Status::InvalidArgument("latent_dim must be positive");
  }
  if (social_blend < 0.0f || social_blend >= 1.0f) {
    return util::Status::InvalidArgument("social_blend must be in [0,1)");
  }
  if (sampling_temperature <= 0.0f) {
    return util::Status::InvalidArgument(
        "sampling_temperature must be positive");
  }
  return util::Status::Ok();
}

util::StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  HOSR_RETURN_IF_ERROR(config.Validate());
  util::Rng rng(config.seed);

  // 1. Social graph. Each joining node adds ~avg/2 undirected edges in
  //    expectation (each undirected edge contributes 2 to the degree sum).
  const double mean_edges_per_node =
      std::max(1.0, config.avg_relations_per_user / 2.0);
  auto edges =
      GrowPreferentialAttachment(config.num_users, mean_edges_per_node, &rng);
  HOSR_ASSIGN_OR_RETURN(graph::SocialGraph social,
                        graph::SocialGraph::FromEdges(config.num_users,
                                                      edges));

  // 2. Ground-truth preference space with social diffusion.
  Matrix user_prefs(config.num_users, config.latent_dim);
  Matrix item_vecs(config.num_items, config.latent_dim);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config.latent_dim));
  tensor::GaussianInit(&user_prefs, scale, &rng);
  tensor::GaussianInit(&item_vecs, scale, &rng);
  for (uint32_t hop = 0; hop < config.influence_hops; ++hop) {
    user_prefs = DiffuseOnce(social, user_prefs, config.social_blend);
  }
  // Diffusion is an averaging operator and shrinks preference magnitude;
  // renormalize rows so the personal signal keeps a fixed strength relative
  // to popularity regardless of blend/hops.
  for (size_t u = 0; u < user_prefs.rows(); ++u) {
    float* row = user_prefs.row(u);
    float norm_sq = 0.0f;
    for (uint32_t c = 0; c < config.latent_dim; ++c) {
      norm_sq += row[c] * row[c];
    }
    if (norm_sq > 1e-12f) {
      const float inv = 1.0f / std::sqrt(norm_sq);
      for (uint32_t c = 0; c < config.latent_dim; ++c) row[c] *= inv;
    }
  }

  // Item popularity skew (long-tail item exposure).
  std::vector<float> popularity(config.num_items);
  for (auto& b : popularity) b = rng.Gaussian(0.0f, config.popularity_stddev);

  // 3. Interactions: per-user log-normal activity, Gumbel top-k sampling
  //    (equivalent to sampling without replacement from the softmax over
  //    affinities / temperature).
  const double sigma = config.activity_sigma;
  const double mu =
      std::log(config.avg_interactions_per_user) - sigma * sigma / 2.0;
  const auto max_per_user =
      std::max<uint32_t>(1, config.num_items / 4);

  std::vector<std::vector<uint32_t>> picked(config.num_users);
  const uint64_t base_seed = rng.NextUint64();
  util::ParallelFor(
      0, config.num_users,
      [&](size_t begin, size_t end) {
        std::vector<std::pair<float, uint32_t>> keyed(config.num_items);
        for (size_t u = begin; u < end; ++u) {
          util::Rng user_rng(base_seed ^ (0x5851f42d4c957f2dULL * (u + 1)));
          const double draw =
              std::exp(mu + sigma * user_rng.Gaussian());
          const auto count = std::clamp<uint32_t>(
              static_cast<uint32_t>(std::lround(draw)), 1, max_per_user);
          const float* prefs = user_prefs.row(u);
          const float inv_temp = 1.0f / config.sampling_temperature;
          for (uint32_t j = 0; j < config.num_items; ++j) {
            const float* item = item_vecs.row(j);
            float affinity = popularity[j];
            for (uint32_t c = 0; c < config.latent_dim; ++c) {
              affinity += prefs[c] * item[c];
            }
            // Gumbel(0,1) noise.
            float unif = user_rng.UniformFloat();
            if (unif < 1e-12f) unif = 1e-12f;
            const float gumbel = -std::log(-std::log(unif));
            keyed[j] = {affinity * inv_temp + gumbel, j};
          }
          std::partial_sort(keyed.begin(), keyed.begin() + count, keyed.end(),
                            [](const auto& a, const auto& b) {
                              return a.first > b.first;
                            });
          picked[u].reserve(count);
          for (uint32_t k = 0; k < count; ++k) {
            picked[u].push_back(keyed[k].second);
          }
        }
      },
      /*min_chunk=*/16);

  std::vector<Interaction> interactions;
  for (uint32_t u = 0; u < config.num_users; ++u) {
    for (const uint32_t j : picked[u]) interactions.push_back({u, j});
  }
  HOSR_ASSIGN_OR_RETURN(
      InteractionMatrix matrix,
      InteractionMatrix::FromInteractions(config.num_users, config.num_items,
                                          std::move(interactions)));

  Dataset dataset;
  dataset.name = config.name;
  dataset.interactions = std::move(matrix);
  dataset.social = std::move(social);
  return dataset;
}

}  // namespace hosr::data
