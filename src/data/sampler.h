#ifndef HOSR_DATA_SAMPLER_H_
#define HOSR_DATA_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "data/interactions.h"
#include "util/random.h"

namespace hosr::data {

// A mini-batch of BPR triples (i, j+, j-) from D (Eq. 12): each row pairs
// an observed interaction with a sampled unobserved item for the same user.
struct BprBatch {
  std::vector<uint32_t> users;
  std::vector<uint32_t> pos_items;
  std::vector<uint32_t> neg_items;

  size_t size() const { return users.size(); }
};

// How negative items are drawn.
enum class NegativeSampling {
  // Uniform over non-interacted items (the paper's protocol).
  kUniform,
  // Proportional to popularity^0.75 (word2vec-style): harder negatives,
  // counteracts popularity bias in the learned ranking.
  kPopularity,
};

// Uniformly samples observed interactions and rejection-samples negatives
// (items the user never interacted with).
class BprSampler {
 public:
  // `train` must outlive the sampler.
  BprSampler(const InteractionMatrix* train, uint64_t seed,
             NegativeSampling negative_sampling = NegativeSampling::kUniform);

  BprBatch SampleBatch(size_t batch_size);

  // Samples a negative item for `user` per the configured strategy.
  uint32_t SampleNegative(uint32_t user);

  // Number of (user, item) positives available.
  size_t num_positives() const { return positives_.size(); }

  NegativeSampling negative_sampling() const { return negative_sampling_; }

  // RNG state capture/restore so a resumed training run draws the exact
  // same triple sequence it would have uninterrupted.
  util::RngState rng_state() const { return rng_.GetState(); }
  void set_rng_state(const util::RngState& state) { rng_.SetState(state); }

 private:
  // Popularity^0.75-distributed item (ignoring the user constraint).
  uint32_t SamplePopularityItem();

  const InteractionMatrix* train_;
  std::vector<Interaction> positives_;
  util::Rng rng_;
  NegativeSampling negative_sampling_;
  // CDF over items for kPopularity (empty otherwise).
  std::vector<double> popularity_cdf_;
};

}  // namespace hosr::data

#endif  // HOSR_DATA_SAMPLER_H_
