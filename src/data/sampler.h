#ifndef HOSR_DATA_SAMPLER_H_
#define HOSR_DATA_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/interactions.h"
#include "util/random.h"

namespace hosr::data {

// A mini-batch of BPR triples (i, j+, j-) from D (Eq. 12): each row pairs
// an observed interaction with a sampled unobserved item for the same user.
struct BprBatch {
  std::vector<uint32_t> users;
  std::vector<uint32_t> pos_items;
  std::vector<uint32_t> neg_items;

  size_t size() const { return users.size(); }
};

// How negative items are drawn.
enum class NegativeSampling {
  // Uniform over non-interacted items (the paper's protocol).
  kUniform,
  // Proportional to popularity^0.75 (word2vec-style): harder negatives,
  // counteracts popularity bias in the learned ranking.
  kPopularity,
};

// Uniformly samples observed interactions and rejection-samples negatives
// (items the user never interacted with).
class BprSampler {
 public:
  // `train` must outlive the sampler.
  BprSampler(const InteractionMatrix* train, uint64_t seed,
             NegativeSampling negative_sampling = NegativeSampling::kUniform);

  BprBatch SampleBatch(size_t batch_size);

  // Samples a negative item for `user` per the configured strategy.
  uint32_t SampleNegative(uint32_t user);

  // Number of (user, item) positives available.
  size_t num_positives() const { return positives_.size(); }

  NegativeSampling negative_sampling() const { return negative_sampling_; }

  // RNG state capture/restore so a resumed training run draws the exact
  // same triple sequence it would have uninterrupted.
  util::RngState rng_state() const { return rng_.GetState(); }
  void set_rng_state(const util::RngState& state) { rng_.SetState(state); }

 private:
  // Popularity^0.75-distributed item (ignoring the user constraint).
  uint32_t SamplePopularityItem();

  const InteractionMatrix* train_;
  std::vector<Interaction> positives_;
  util::Rng rng_;
  NegativeSampling negative_sampling_;
  // CDF over items for kPopularity (empty otherwise).
  std::vector<double> popularity_cdf_;
};

// Double-buffered background producer of one epoch's batches, overlapping
// BprSampler::SampleBatch with the consumer's backward/step work.
//
// Determinism contract: the producer draws exactly `num_batches` batches —
// one epoch's worth, never across the epoch boundary — in the same order
// the synchronous loop would, so the sampler's RNG state after the epoch
// (and therefore any checkpoint taken between epochs) is bit-identical to
// unprefetched training.
//
// `sampler` must outlive the prefetcher and must not be used elsewhere
// while one is alive (the producer thread owns it). The destructor stops
// the producer and joins even if not all batches were consumed. With
// `enabled` false no thread is started and Next() samples synchronously —
// same sequence, zero overhead — so call sites can flag-toggle freely.
class BatchPrefetcher {
 public:
  BatchPrefetcher(BprSampler* sampler, size_t batch_size, size_t num_batches,
                  bool enabled, size_t depth = 2);
  ~BatchPrefetcher();

  BatchPrefetcher(const BatchPrefetcher&) = delete;
  BatchPrefetcher& operator=(const BatchPrefetcher&) = delete;

  // The next batch of the epoch, in sampling order. Blocks until the
  // producer has it ready. At most `num_batches` calls are valid.
  BprBatch Next();

 private:
  void ProducerLoop();

  BprSampler* sampler_;
  const size_t batch_size_;
  const size_t num_batches_;
  const bool enabled_;
  const size_t depth_;
  size_t consumed_ = 0;

  std::mutex mutex_;
  std::condition_variable batch_ready_;
  std::condition_variable space_ready_;
  std::deque<BprBatch> queue_;
  bool stop_ = false;
  std::thread producer_;
};

}  // namespace hosr::data

#endif  // HOSR_DATA_SAMPLER_H_
