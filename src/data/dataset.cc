#include "data/dataset.h"

#include <algorithm>

namespace hosr::data {

Dataset::Summary Dataset::Summarize() const {
  Summary s;
  s.num_users = num_users();
  s.num_items = num_items();
  s.num_interactions = interactions.nnz();
  s.num_social_edges = social.num_edges();
  s.interaction_density = interactions.Density();
  s.social_density = social.Density();
  s.avg_interactions = interactions.AvgInteractionsPerUser();
  s.avg_relations =
      s.num_users > 0
          ? 2.0 * static_cast<double>(s.num_social_edges) / s.num_users
          : 0.0;
  return s;
}

util::StatusOr<Split> SplitDataset(const Dataset& dataset,
                                   double test_fraction, util::Rng* rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return util::Status::InvalidArgument("test_fraction must be in (0,1)");
  }
  std::vector<Interaction> train_list;
  std::vector<Interaction> test_list;
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    std::vector<uint32_t> items = dataset.interactions.ItemsOf(u);
    if (items.empty()) continue;
    rng->Shuffle(items);
    // Keep at least one interaction in train so every user is trainable.
    auto num_test = static_cast<size_t>(
        static_cast<double>(items.size()) * test_fraction);
    num_test = std::min(num_test, items.size() - 1);
    for (size_t k = 0; k < items.size(); ++k) {
      if (k < num_test) {
        test_list.push_back({u, items[k]});
      } else {
        train_list.push_back({u, items[k]});
      }
    }
  }
  HOSR_ASSIGN_OR_RETURN(
      InteractionMatrix train_matrix,
      InteractionMatrix::FromInteractions(dataset.num_users(),
                                          dataset.num_items(),
                                          std::move(train_list)));
  HOSR_ASSIGN_OR_RETURN(
      InteractionMatrix test_matrix,
      InteractionMatrix::FromInteractions(dataset.num_users(),
                                          dataset.num_items(),
                                          std::move(test_list)));
  Split split;
  split.train.name = dataset.name + "/train";
  split.train.interactions = std::move(train_matrix);
  split.train.social = dataset.social;
  split.test = std::move(test_matrix);
  return split;
}

}  // namespace hosr::data
