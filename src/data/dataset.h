#ifndef HOSR_DATA_DATASET_H_
#define HOSR_DATA_DATASET_H_

#include <string>

#include "data/interactions.h"
#include "graph/social_graph.h"
#include "util/random.h"
#include "util/statusor.h"

namespace hosr::data {

// A social-recommendation dataset: the user-item matrix Y plus the
// user-user social network A (the paper's problem input, Sec. 2.1).
struct Dataset {
  std::string name;
  InteractionMatrix interactions;
  graph::SocialGraph social;

  uint32_t num_users() const { return interactions.num_users(); }
  uint32_t num_items() const { return interactions.num_items(); }

  // The statistics of Table 2.
  struct Summary {
    uint32_t num_users = 0;
    uint32_t num_items = 0;
    size_t num_interactions = 0;
    size_t num_social_edges = 0;     // undirected
    double interaction_density = 0;  // user-item density
    double social_density = 0;       // user-user density
    double avg_interactions = 0;     // per user
    double avg_relations = 0;        // per user (first-order neighbors)
  };
  Summary Summarize() const;
};

// Result of the paper's 80/20 protocol (Sec. 3.1): `train` keeps the full
// social graph with 80% of each interaction set; `test` holds the held-out
// 20%. Users with a single interaction keep it in train.
struct Split {
  Dataset train;
  InteractionMatrix test;
};

// Randomly splits interactions per the protocol above. `test_fraction`
// in (0, 1).
util::StatusOr<Split> SplitDataset(const Dataset& dataset,
                                   double test_fraction, util::Rng* rng);

}  // namespace hosr::data

#endif  // HOSR_DATA_DATASET_H_
