#ifndef HOSR_MODELS_TRAINER_H_
#define HOSR_MODELS_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "models/model.h"
#include "optim/optimizer.h"
#include "util/statusor.h"

namespace hosr::models {

// Hyper-parameters of the paper's training protocol (Sec. 3.1).
struct TrainConfig {
  uint32_t epochs = 30;
  uint32_t batch_size = 512;           // fixed to 512 in the paper
  float learning_rate = 0.001f;        // tuned in {1e-4..5e-3}
  float weight_decay = 0.001f;         // the L2 coefficient lambda
  std::string optimizer = "rmsprop";   // the paper's optimizer
  data::NegativeSampling negative_sampling =
      data::NegativeSampling::kUniform;  // the paper's protocol
  uint64_t seed = 1;
  bool verbose = false;                // log per-epoch loss

  util::Status Validate() const;
};

// Progress record for one epoch.
struct EpochStats {
  uint32_t epoch = 0;
  double avg_loss = 0.0;
  double seconds = 0.0;
  size_t batches = 0;
  // Sampled BPR triples consumed per wall-clock second (0 if unmeasurable).
  double samples_per_sec = 0.0;
};

// Generic mini-batch trainer: samples BPR triples from the training matrix,
// asks the model for its loss, backpropagates, and steps the optimizer.
// Works unchanged for HOSR and all six baselines.
class BprTrainer {
 public:
  // `model` and `train` must outlive the trainer.
  BprTrainer(RankingModel* model, const data::InteractionMatrix* train,
             const TrainConfig& config);

  // Runs the remaining epochs (epoch() .. config.epochs); returns their
  // stats. On a fresh trainer that is all `config.epochs` epochs; after
  // RestoreTrainingState it continues where the checkpoint left off.
  std::vector<EpochStats> Train();

  // Runs a single epoch (one pass worth of sampled batches); exposed so
  // benches can interleave training with evaluation snapshots.
  EpochStats RunEpoch();

  const TrainConfig& config() const { return config_; }

  // Next epoch to run (== number of completed epochs).
  uint32_t epoch() const { return epoch_; }

  // Crash-safe training checkpoint: model parameters, optimizer state,
  // both RNG streams (trainer + sampler), and the epoch counter, written
  // atomically with a CRC-32 footer. A run restored from epoch E produces
  // bit-identical parameters to one that trained straight through — the
  // resume contract robustness_test locks in.
  //
  // RestoreTrainingState refuses checkpoints from a different model,
  // optimizer, or training config (FailedPrecondition) and corrupted files
  // (DataLoss, via the whole-file CRC gate); rejected checkpoints leave
  // the trainer untouched.
  util::Status SaveTrainingState(const std::string& path) const;
  util::Status RestoreTrainingState(const std::string& path);

 private:
  RankingModel* model_;
  const data::InteractionMatrix* train_;
  TrainConfig config_;
  data::BprSampler sampler_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  util::Rng rng_;
  uint32_t epoch_ = 0;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_TRAINER_H_
