#ifndef HOSR_MODELS_TRAINER_H_
#define HOSR_MODELS_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "models/model.h"
#include "optim/optimizer.h"
#include "util/statusor.h"

namespace hosr::models {

// Hyper-parameters of the paper's training protocol (Sec. 3.1).
struct TrainConfig {
  uint32_t epochs = 30;
  uint32_t batch_size = 512;           // fixed to 512 in the paper
  float learning_rate = 0.001f;        // tuned in {1e-4..5e-3}
  float weight_decay = 0.001f;         // the L2 coefficient lambda
  std::string optimizer = "rmsprop";   // the paper's optimizer
  data::NegativeSampling negative_sampling =
      data::NegativeSampling::kUniform;  // the paper's protocol
  uint64_t seed = 1;
  bool verbose = false;                // log per-epoch loss

  // --- Parallel training engine (docs/PERFORMANCE.md) -----------------
  // Worker threads for intra-batch data parallelism: 1 = the sequential
  // loop, >= 2 = the sliced parallel engine (for models that support it),
  // 0 = hardware concurrency. The training trajectory is bit-identical
  // across every value — trainer_parallel_test locks this in — so the
  // checkpoint format deliberately leaves it out: checkpoints move freely
  // between thread counts.
  uint32_t train_threads = 1;
  // Batch rows per worker slice. Any value >= 1 yields the same
  // trajectory; smaller slices balance better, larger amortize per-slice
  // tape overhead.
  uint32_t slice_size = 128;
  // Row-sparse optimizer updates: state and weight decay applied only to
  // embedding rows the batch touched (lazy decay — untouched rows skip a
  // step's decay entirely). CHANGES the trajectory relative to dense
  // steps, so it is part of the checkpoint config identity.
  bool sparse_steps = false;
  // Overlap batch sampling with backward/step via a background prefetch
  // thread. The batch sequence is unchanged (the prefetcher never samples
  // across an epoch boundary), so this never affects the trajectory.
  bool prefetch = true;

  util::Status Validate() const;
};

// Progress record for one epoch.
struct EpochStats {
  uint32_t epoch = 0;
  double avg_loss = 0.0;
  double seconds = 0.0;
  size_t batches = 0;
  // BPR triples actually sampled this epoch (sum of batch sizes).
  size_t samples = 0;
  // Sampled BPR triples consumed per wall-clock second (0 if unmeasurable).
  double samples_per_sec = 0.0;
};

// Generic mini-batch trainer: samples BPR triples from the training matrix,
// asks the model for its loss, backpropagates, and steps the optimizer.
// Works unchanged for HOSR and all six baselines.
class BprTrainer {
 public:
  // `model` and `train` must outlive the trainer.
  BprTrainer(RankingModel* model, const data::InteractionMatrix* train,
             const TrainConfig& config);

  // Runs the remaining epochs (epoch() .. config.epochs); returns their
  // stats. On a fresh trainer that is all `config.epochs` epochs; after
  // RestoreTrainingState it continues where the checkpoint left off.
  std::vector<EpochStats> Train();

  // Runs a single epoch (one pass worth of sampled batches); exposed so
  // benches can interleave training with evaluation snapshots.
  EpochStats RunEpoch();

  const TrainConfig& config() const { return config_; }

  // Next epoch to run (== number of completed epochs).
  uint32_t epoch() const { return epoch_; }

  // Crash-safe training checkpoint: model parameters, optimizer state,
  // both RNG streams (trainer + sampler), and the epoch counter, written
  // atomically with a CRC-32 footer. A run restored from epoch E produces
  // bit-identical parameters to one that trained straight through — the
  // resume contract robustness_test locks in.
  //
  // RestoreTrainingState refuses checkpoints from a different model,
  // optimizer, or training config (FailedPrecondition) and corrupted files
  // (DataLoss, via the whole-file CRC gate); rejected checkpoints leave
  // the trainer untouched.
  util::Status SaveTrainingState(const std::string& path) const;
  util::Status RestoreTrainingState(const std::string& path);

 private:
  // Worker count with train_threads == 0 resolved to the hardware.
  size_t ResolvedWorkers() const;
  // Whether this epoch runs the sliced parallel engine. Logs (once) and
  // counts the fallback when the config asks for it but the model cannot
  // slice its loss.
  bool UseParallelEngine();
  // The classic monolithic loop — exactly the arithmetic the engine must
  // reproduce bit-for-bit.
  void RunBatchesSequential(data::BatchPrefetcher* prefetcher,
                            size_t num_batches, EpochStats* stats);
  void RunBatchesParallel(data::BatchPrefetcher* prefetcher,
                          size_t num_batches, EpochStats* stats);

  RankingModel* model_;
  const data::InteractionMatrix* train_;
  TrainConfig config_;
  data::BprSampler sampler_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  util::Rng rng_;
  uint32_t epoch_ = 0;
  bool warned_fallback_ = false;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_TRAINER_H_
