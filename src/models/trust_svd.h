#ifndef HOSR_MODELS_TRUST_SVD_H_
#define HOSR_MODELS_TRUST_SVD_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"

namespace hosr::models {

// TrustSVD (Guo et al.), optimized with the BPR loss as in the paper's
// experiments (Eq. 13):
//   y_ij = (u_i + |I_i|^{-1/2} sum_{j' in I_i} q_{j'}
//               + |A_i|^{-1/2} sum_{i' in A_i} w_{i'}) . v_j
// where Q holds item-implicit-feedback vectors and W holds the
// trusted-user vectors. First-order social only — the explicit-factoring
// baseline that HOSR generalizes to high orders.
class TrustSvd : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    float init_stddev = 0.1f;
    uint64_t seed = 7;
  };

  // Uses `train.interactions` for I_i and `train.social` for A_i.
  TrustSvd(const data::Dataset& train, const Config& config);

  std::string name() const override { return "TrustSVD"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  // Shares one propagation of the effective user embedding across the
  // positive and negative branches of the BPR loss.
  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  // Sliced loss: the effective user embedding (SpMM terms) is the shared
  // forward; the tail gathers are sliced.
  bool SupportsSlicedLoss() const override { return true; }
  void BuildSharedForward(SharedForward* shared, const data::BprBatch& batch,
                          util::Rng* rng) override;
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  util::StatusOr<FrozenFactors> ExportFactors() const override;

  autograd::ParamStore* params() override { return &params_; }

 private:
  // Effective user embedding on the tape (shared by both Score paths).
  autograd::Value EffectiveUserEmbedding(autograd::Tape* tape);
  // Inference-mode effective user embedding.
  tensor::Matrix EffectiveUserEmbeddingInference() const;

  uint32_t num_users_;
  uint32_t num_items_;
  // (n x m) with row i scaled by 1/sqrt(|I_i|); and its transpose.
  graph::CsrMatrix item_feedback_;
  graph::CsrMatrix item_feedback_t_;
  // (n x n) with row i scaled by 1/sqrt(|A_i|); and its transpose.
  graph::CsrMatrix social_;
  graph::CsrMatrix social_t_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  autograd::Param* implicit_item_;  // Q
  autograd::Param* trusted_user_;   // W
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_TRUST_SVD_H_
