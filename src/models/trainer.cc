#include "models/trainer.h"

#include <sstream>

#include "autograd/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hosr::models {

namespace {

constexpr uint32_t kTrainStateMagic = 0x4854434b;     // "HTCK"
constexpr uint32_t kTrainStateVersion = 1;
constexpr uint32_t kEndianMarker = 0x01020304;
constexpr uint32_t kTrainStateSentinel = 0x4b435448;  // magic reversed

template <typename T>
void WritePod(std::ostream* out, const T& v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream* in, T* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(*in);
}

void WriteString(std::ostream* out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

util::StatusOr<std::string> ReadString(std::istream* in) {
  uint64_t len = 0;
  if (!ReadPod(in, &len) || len > 4096) {
    return util::Status::DataLoss("bad string length in training state");
  }
  std::string s(len, '\0');
  in->read(s.data(), static_cast<std::streamsize>(len));
  if (!*in) return util::Status::DataLoss("truncated string in training state");
  return s;
}

void WriteRngState(std::ostream* out, const util::RngState& state) {
  for (const uint64_t word : state.s) WritePod(out, word);
  WritePod<uint8_t>(out, state.has_spare_gaussian ? 1 : 0);
  WritePod(out, state.spare_gaussian);
}

util::StatusOr<util::RngState> ReadRngState(std::istream* in) {
  util::RngState state;
  for (uint64_t& word : state.s) {
    if (!ReadPod(in, &word)) {
      return util::Status::DataLoss("truncated RNG state");
    }
  }
  uint8_t has_spare = 0;
  if (!ReadPod(in, &has_spare) || !ReadPod(in, &state.spare_gaussian)) {
    return util::Status::DataLoss("truncated RNG state");
  }
  if (has_spare > 1) {
    return util::Status::DataLoss("bad RNG spare flag");
  }
  state.has_spare_gaussian = has_spare == 1;
  if (state.s[0] == 0 && state.s[1] == 0 && state.s[2] == 0 &&
      state.s[3] == 0) {
    return util::Status::DataLoss("all-zero RNG state");
  }
  return state;
}

// The config fields a checkpoint bakes in: restoring under a different
// config would silently train a different run, so they are written out and
// compared verbatim on load.
void WriteConfig(std::ostream* out, const TrainConfig& config) {
  WritePod(out, config.epochs);
  WritePod(out, config.batch_size);
  WritePod(out, config.learning_rate);
  WritePod(out, config.weight_decay);
  WritePod(out, config.seed);
  WritePod<uint32_t>(out,
                     static_cast<uint32_t>(config.negative_sampling));
  WriteString(out, config.optimizer);
}

util::Status CheckConfig(std::istream* in, const TrainConfig& config) {
  TrainConfig saved;
  uint32_t negative_sampling = 0;
  if (!ReadPod(in, &saved.epochs) || !ReadPod(in, &saved.batch_size) ||
      !ReadPod(in, &saved.learning_rate) ||
      !ReadPod(in, &saved.weight_decay) || !ReadPod(in, &saved.seed) ||
      !ReadPod(in, &negative_sampling)) {
    return util::Status::DataLoss("truncated training config");
  }
  HOSR_ASSIGN_OR_RETURN(saved.optimizer, ReadString(in));
  if (saved.epochs != config.epochs ||
      saved.batch_size != config.batch_size ||
      saved.learning_rate != config.learning_rate ||
      saved.weight_decay != config.weight_decay ||
      saved.seed != config.seed ||
      negative_sampling !=
          static_cast<uint32_t>(config.negative_sampling) ||
      saved.optimizer != config.optimizer) {
    return util::Status::FailedPrecondition(
        "training state was written under a different TrainConfig");
  }
  return util::Status::Ok();
}

}  // namespace

util::Status TrainConfig::Validate() const {
  if (epochs == 0) return util::Status::InvalidArgument("epochs must be > 0");
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch_size must be > 0");
  }
  if (learning_rate <= 0.0f) {
    return util::Status::InvalidArgument("learning_rate must be > 0");
  }
  if (weight_decay < 0.0f) {
    return util::Status::InvalidArgument("weight_decay must be >= 0");
  }
  return util::Status::Ok();
}

BprTrainer::BprTrainer(RankingModel* model,
                       const data::InteractionMatrix* train,
                       const TrainConfig& config)
    : model_(model),
      train_(train),
      config_(config),
      sampler_(train, config.seed ^ 0xb5297a4d3f84d5a5ULL,
               config.negative_sampling),
      optimizer_(optim::MakeOptimizer(config.optimizer, config.learning_rate,
                                      config.weight_decay)),
      rng_(config.seed) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
}

EpochStats BprTrainer::RunEpoch() {
  HOSR_TRACE_SPAN("trainer/epoch");
  util::WallTimer timer;
  model_->OnEpochBegin(epoch_, &rng_);

  // One epoch = enough batches to cover every observed interaction once in
  // expectation (the standard BPR protocol).
  const size_t num_batches = std::max<size_t>(
      1, (sampler_.num_positives() + config_.batch_size - 1) /
             config_.batch_size);
  double total_loss = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    const data::BprBatch batch = sampler_.SampleBatch(config_.batch_size);
    autograd::Tape tape;
    autograd::Value loss = [&] {
      HOSR_TRACE_SPAN("trainer/forward");
      return model_->BuildLoss(&tape, batch, &rng_);
    }();
    {
      HOSR_TRACE_SPAN("trainer/backward");
      model_->params()->ZeroGrad();
      tape.Backward(loss);
    }
    {
      HOSR_TRACE_SPAN("trainer/step");
      optimizer_->Step(model_->params());
    }
    total_loss += loss.value()(0, 0);
  }

  EpochStats stats;
  stats.epoch = epoch_;
  stats.avg_loss = total_loss / static_cast<double>(num_batches);
  stats.seconds = timer.ElapsedSeconds();
  stats.batches = num_batches;
  const double samples =
      static_cast<double>(num_batches) * config_.batch_size;
  stats.samples_per_sec = stats.seconds > 0.0 ? samples / stats.seconds : 0.0;

  HOSR_GAUGE("trainer/epoch_loss").Set(stats.avg_loss);
  HOSR_GAUGE("trainer/epoch_seconds").Set(stats.seconds);
  HOSR_GAUGE("trainer/samples_per_sec").Set(stats.samples_per_sec);
  HOSR_COUNTER("trainer/epochs").Increment();
  HOSR_COUNTER("trainer/batches").Increment(num_batches);

  if (config_.verbose) {
    HOSR_LOG(Info) << model_->name() << " epoch " << epoch_ << " loss "
                   << stats.avg_loss << " (" << stats.seconds << "s, "
                   << stats.batches << " batches, " << stats.samples_per_sec
                   << " samples/s)";
  }
  ++epoch_;
  return stats;
}

std::vector<EpochStats> BprTrainer::Train() {
  std::vector<EpochStats> history;
  if (epoch_ >= config_.epochs) return history;
  history.reserve(config_.epochs - epoch_);
  while (epoch_ < config_.epochs) {
    history.push_back(RunEpoch());
  }
  return history;
}

util::Status BprTrainer::SaveTrainingState(const std::string& path) const {
  std::ostringstream body;
  WritePod(&body, kTrainStateMagic);
  WritePod(&body, kTrainStateVersion);
  WritePod(&body, kEndianMarker);
  WritePod(&body, epoch_);
  WriteConfig(&body, config_);
  WriteString(&body, model_->name());
  WriteRngState(&body, rng_.GetState());
  WriteRngState(&body, sampler_.rng_state());
  HOSR_RETURN_IF_ERROR(optimizer_->SaveState(&body));
  HOSR_RETURN_IF_ERROR(autograd::WriteParams(*model_->params(), &body));
  WritePod(&body, kTrainStateSentinel);
  if (!body) return util::Status::IoError("training state serialization failed");
  return util::WriteFileAtomicWithCrc(path, body.str());
}

util::Status BprTrainer::RestoreTrainingState(const std::string& path) {
  HOSR_ASSIGN_OR_RETURN(std::string raw, util::ReadFileVerifyCrc(path));
  std::istringstream in(raw);

  uint32_t magic = 0, version = 0, endian = 0, epoch = 0;
  if (!ReadPod(&in, &magic) || magic != kTrainStateMagic) {
    return util::Status::InvalidArgument("not a HOSR training state: " + path);
  }
  if (!ReadPod(&in, &version) || version != kTrainStateVersion) {
    return util::Status::InvalidArgument(
        util::StrFormat("unsupported training state version %u", version));
  }
  if (!ReadPod(&in, &endian) || endian != kEndianMarker) {
    return util::Status::InvalidArgument(
        "training state written on a foreign-endian machine");
  }
  if (!ReadPod(&in, &epoch) || epoch > config_.epochs) {
    return util::Status::DataLoss("implausible epoch counter");
  }
  HOSR_RETURN_IF_ERROR(CheckConfig(&in, config_));
  HOSR_ASSIGN_OR_RETURN(std::string model_name, ReadString(&in));
  if (model_name != model_->name()) {
    return util::Status::FailedPrecondition(
        "training state is for model '" + model_name + "', trainer has '" +
        model_->name() + "'");
  }
  HOSR_ASSIGN_OR_RETURN(util::RngState trainer_rng, ReadRngState(&in));
  HOSR_ASSIGN_OR_RETURN(util::RngState sampler_rng, ReadRngState(&in));

  // Stage the mutable state: the optimizer and params restore in place
  // only after every header check above has passed, and the stream is
  // validated down to the sentinel before the cheap scalar state flips.
  HOSR_RETURN_IF_ERROR(optimizer_->LoadState(&in));
  HOSR_RETURN_IF_ERROR(autograd::ReadParams(&in, model_->params()));
  uint32_t sentinel = 0;
  if (!ReadPod(&in, &sentinel) || sentinel != kTrainStateSentinel) {
    return util::Status::DataLoss("training state missing trailing sentinel");
  }

  rng_.SetState(trainer_rng);
  sampler_.set_rng_state(sampler_rng);
  epoch_ = epoch;
  HOSR_COUNTER("train/resumes").Increment();
  return util::Status::Ok();
}

}  // namespace hosr::models
