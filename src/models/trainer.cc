#include "models/trainer.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hosr::models {

util::Status TrainConfig::Validate() const {
  if (epochs == 0) return util::Status::InvalidArgument("epochs must be > 0");
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch_size must be > 0");
  }
  if (learning_rate <= 0.0f) {
    return util::Status::InvalidArgument("learning_rate must be > 0");
  }
  if (weight_decay < 0.0f) {
    return util::Status::InvalidArgument("weight_decay must be >= 0");
  }
  return util::Status::Ok();
}

BprTrainer::BprTrainer(RankingModel* model,
                       const data::InteractionMatrix* train,
                       const TrainConfig& config)
    : model_(model),
      train_(train),
      config_(config),
      sampler_(train, config.seed ^ 0xb5297a4d3f84d5a5ULL,
               config.negative_sampling),
      optimizer_(optim::MakeOptimizer(config.optimizer, config.learning_rate,
                                      config.weight_decay)),
      rng_(config.seed) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
}

EpochStats BprTrainer::RunEpoch() {
  HOSR_TRACE_SPAN("trainer/epoch");
  util::WallTimer timer;
  model_->OnEpochBegin(epoch_, &rng_);

  // One epoch = enough batches to cover every observed interaction once in
  // expectation (the standard BPR protocol).
  const size_t num_batches = std::max<size_t>(
      1, (sampler_.num_positives() + config_.batch_size - 1) /
             config_.batch_size);
  double total_loss = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    const data::BprBatch batch = sampler_.SampleBatch(config_.batch_size);
    autograd::Tape tape;
    autograd::Value loss = [&] {
      HOSR_TRACE_SPAN("trainer/forward");
      return model_->BuildLoss(&tape, batch, &rng_);
    }();
    {
      HOSR_TRACE_SPAN("trainer/backward");
      model_->params()->ZeroGrad();
      tape.Backward(loss);
    }
    {
      HOSR_TRACE_SPAN("trainer/step");
      optimizer_->Step(model_->params());
    }
    total_loss += loss.value()(0, 0);
  }

  EpochStats stats;
  stats.epoch = epoch_;
  stats.avg_loss = total_loss / static_cast<double>(num_batches);
  stats.seconds = timer.ElapsedSeconds();
  stats.batches = num_batches;
  const double samples =
      static_cast<double>(num_batches) * config_.batch_size;
  stats.samples_per_sec = stats.seconds > 0.0 ? samples / stats.seconds : 0.0;

  HOSR_GAUGE("trainer/epoch_loss").Set(stats.avg_loss);
  HOSR_GAUGE("trainer/epoch_seconds").Set(stats.seconds);
  HOSR_GAUGE("trainer/samples_per_sec").Set(stats.samples_per_sec);
  HOSR_COUNTER("trainer/epochs").Increment();
  HOSR_COUNTER("trainer/batches").Increment(num_batches);

  if (config_.verbose) {
    HOSR_LOG(Info) << model_->name() << " epoch " << epoch_ << " loss "
                   << stats.avg_loss << " (" << stats.seconds << "s, "
                   << stats.batches << " batches, " << stats.samples_per_sec
                   << " samples/s)";
  }
  ++epoch_;
  return stats;
}

std::vector<EpochStats> BprTrainer::Train() {
  std::vector<EpochStats> history;
  history.reserve(config_.epochs);
  for (uint32_t e = 0; e < config_.epochs; ++e) {
    history.push_back(RunEpoch());
  }
  return history;
}

}  // namespace hosr::models
