#include "models/trainer.h"

#include <algorithm>
#include <condition_variable>
#include <iterator>
#include <limits>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "autograd/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hosr::models {

namespace {

constexpr uint32_t kTrainStateMagic = 0x4854434b;     // "HTCK"
// v2 appends sparse_steps to the config block (v1 states load iff the
// trainer runs with sparse_steps off — dense steps are what v1 recorded).
constexpr uint32_t kTrainStateVersion = 2;
constexpr uint32_t kTrainStateMinVersion = 1;
constexpr uint32_t kEndianMarker = 0x01020304;
constexpr uint32_t kTrainStateSentinel = 0x4b435448;  // magic reversed

// Per-phase timeline counters: cumulative microseconds per training phase,
// turned into windowed rates by the timeseries recorder (/timeseriez) and
// into per-epoch utilization gauges by RunEpoch. Counters are always live
// (unlike spans, which need obs::SetEnabled), so the timeline exists even
// when tracing is off; the cost is two NowNanos() calls per phase.
class PhaseTimer {
 public:
  explicit PhaseTimer(obs::Counter& counter)
      : counter_(counter), begin_ns_(obs::NowNanos()) {}
  ~PhaseTimer() {
    counter_.Increment(
        static_cast<uint64_t>((obs::NowNanos() - begin_ns_) / 1000));
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Counter& counter_;
  int64_t begin_ns_;
};

#define HOSR_PHASE_US(name)                                     \
  PhaseTimer HOSR_OBS_CONCAT_(hosr_phase_timer_at_line_,        \
                              __LINE__)(HOSR_COUNTER(name))

// Every phase counter the per-epoch utilization gauges cover. Sequential
// epochs move forward/backward/step; parallel epochs move the engine's five
// phases; both move sample (prefetcher waits on the consumer side).
constexpr const char* kPhaseCounterNames[] = {
    "trainer/sample_us",         "trainer/forward_us",
    "trainer/backward_us",       "trainer/shared_forward_us",
    "trainer/slice_backward_us", "trainer/reduce_us",
    "trainer/seeded_backward_us", "trainer/step_us",
};

// "trainer/<phase>_us" -> "trainer/<phase>_util".
std::string PhaseUtilName(std::string_view counter_name) {
  std::string name(counter_name.substr(0, counter_name.size() - 3));
  name.append("_util");
  return name;
}

template <typename T>
void WritePod(std::ostream* out, const T& v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream* in, T* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(*in);
}

void WriteString(std::ostream* out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

util::StatusOr<std::string> ReadString(std::istream* in) {
  uint64_t len = 0;
  if (!ReadPod(in, &len) || len > 4096) {
    return util::Status::DataLoss("bad string length in training state");
  }
  std::string s(len, '\0');
  in->read(s.data(), static_cast<std::streamsize>(len));
  if (!*in) return util::Status::DataLoss("truncated string in training state");
  return s;
}

void WriteRngState(std::ostream* out, const util::RngState& state) {
  for (const uint64_t word : state.s) WritePod(out, word);
  WritePod<uint8_t>(out, state.has_spare_gaussian ? 1 : 0);
  WritePod(out, state.spare_gaussian);
}

util::StatusOr<util::RngState> ReadRngState(std::istream* in) {
  util::RngState state;
  for (uint64_t& word : state.s) {
    if (!ReadPod(in, &word)) {
      return util::Status::DataLoss("truncated RNG state");
    }
  }
  uint8_t has_spare = 0;
  if (!ReadPod(in, &has_spare) || !ReadPod(in, &state.spare_gaussian)) {
    return util::Status::DataLoss("truncated RNG state");
  }
  if (has_spare > 1) {
    return util::Status::DataLoss("bad RNG spare flag");
  }
  state.has_spare_gaussian = has_spare == 1;
  if (state.s[0] == 0 && state.s[1] == 0 && state.s[2] == 0 &&
      state.s[3] == 0) {
    return util::Status::DataLoss("all-zero RNG state");
  }
  return state;
}

// The config fields a checkpoint bakes in: restoring under a different
// config would silently train a different run, so they are written out and
// compared verbatim on load. train_threads / slice_size / prefetch are
// deliberately ABSENT: the engine's trajectory is bit-identical across all
// of them (trainer_parallel_test), so checkpoints move freely between
// thread counts. sparse_steps changes the trajectory (lazy weight decay)
// and is part of the identity.
void WriteConfig(std::ostream* out, const TrainConfig& config) {
  WritePod(out, config.epochs);
  WritePod(out, config.batch_size);
  WritePod(out, config.learning_rate);
  WritePod(out, config.weight_decay);
  WritePod(out, config.seed);
  WritePod<uint32_t>(out,
                     static_cast<uint32_t>(config.negative_sampling));
  WriteString(out, config.optimizer);
  WritePod<uint8_t>(out, config.sparse_steps ? 1 : 0);
}

util::Status CheckConfig(std::istream* in, uint32_t version,
                         const TrainConfig& config) {
  TrainConfig saved;
  uint32_t negative_sampling = 0;
  if (!ReadPod(in, &saved.epochs) || !ReadPod(in, &saved.batch_size) ||
      !ReadPod(in, &saved.learning_rate) ||
      !ReadPod(in, &saved.weight_decay) || !ReadPod(in, &saved.seed) ||
      !ReadPod(in, &negative_sampling)) {
    return util::Status::DataLoss("truncated training config");
  }
  HOSR_ASSIGN_OR_RETURN(saved.optimizer, ReadString(in));
  // v1 predates sparse steps: those checkpoints recorded dense-step runs.
  uint8_t sparse_steps = 0;
  if (version >= 2) {
    if (!ReadPod(in, &sparse_steps) || sparse_steps > 1) {
      return util::Status::DataLoss("bad sparse_steps flag");
    }
  }
  if (saved.epochs != config.epochs ||
      saved.batch_size != config.batch_size ||
      saved.learning_rate != config.learning_rate ||
      saved.weight_decay != config.weight_decay ||
      saved.seed != config.seed ||
      negative_sampling !=
          static_cast<uint32_t>(config.negative_sampling) ||
      saved.optimizer != config.optimizer ||
      (sparse_steps == 1) != config.sparse_steps) {
    return util::Status::FailedPrecondition(
        "training state was written under a different TrainConfig");
  }
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Worker team for the parallel engine.
//
// Deliberately NOT util::ThreadPool::Global(): slice bodies run tensor ops
// that may themselves ParallelFor into the global pool, and nesting its
// Wait() can deadlock. All shared state here — the claim cursor included —
// sits behind one mutex: slice/shard tasks are far coarser than a lock
// round-trip, and it keeps the team trivially clean under TSan.
// ---------------------------------------------------------------------------
class WorkerTeam {
 public:
  explicit WorkerTeam(size_t workers) {
    const size_t helpers = workers > 1 ? workers - 1 : 0;
    threads_.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) {
      threads_.emplace_back([this] { HelperLoop(); });
    }
  }

  ~WorkerTeam() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  size_t workers() const { return threads_.size() + 1; }

  // Runs body(0 .. num_tasks-1) across the helpers and the calling thread;
  // returns once every task has finished. Execution order is unspecified:
  // the engine keys all work on the task index, never on schedule.
  void Run(size_t num_tasks, const std::function<void(size_t)>& body) {
    if (num_tasks == 0) return;
    if (threads_.empty()) {
      for (size_t i = 0; i < num_tasks; ++i) body(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      num_tasks_ = num_tasks;
      next_task_ = 0;
      completed_ = 0;
      ++generation_;
    }
    work_ready_.notify_all();
    DrainTasks();
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return completed_ == num_tasks_; });
    body_ = nullptr;
  }

 private:
  void DrainTasks() {
    while (true) {
      size_t task = 0;
      const std::function<void(size_t)>* body = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (body_ == nullptr || next_task_ >= num_tasks_) return;
        task = next_task_++;
        body = body_;
      }
      (*body)(task);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (++completed_ == num_tasks_) all_done_.notify_all();
      }
    }
  }

  void HelperLoop() {
    uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(
            lock, [this, seen] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
      }
      // A helper that wakes late simply finds the claim cursor exhausted
      // (or already helps the next generation) — both are harmless.
      DrainTasks();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  const std::function<void(size_t)>* body_ = nullptr;
  size_t num_tasks_ = 0;
  size_t next_task_ = 0;
  size_t completed_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

uint64_t MixSeed(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic per-slice RNG seed: a pure function of the run seed and the
// (epoch, batch, slice) coordinates. Slice streams therefore never depend on
// worker count or scheduling, and resume needs nothing new checkpointed.
uint64_t SliceSeed(uint64_t seed, uint64_t epoch, uint64_t batch,
                   uint64_t slice) {
  uint64_t z = MixSeed(seed ^ 0x736c696365ULL);  // "slice"
  z = MixSeed(z ^ epoch);
  z = MixSeed(z ^ batch);
  return MixSeed(z ^ slice);
}

// ---------------------------------------------------------------------------
// The intra-batch parallel engine (docs/PERFORMANCE.md "Parallel training").
//
// Per batch: the model builds its batch-shared forward prefix once, workers
// build + backward one slice tape each (sparse leaves route gathered row
// gradients into SparseSink segments instead of dense grads), and a sharded
// reducer replays the monolithic tape's accumulation sequence:
//
//   * sinks reduce in REVERSE creation order — the order the monolithic
//     reverse sweep reaches their leaves;
//   * within a sink, segments fold in (reverse op) x (slice ascending) x
//     (scan) order — exactly the monolithic scatter-add visit sequence,
//     since slices partition the batch contiguously in order;
//   * parameter sinks stage per-row (zero-init, then add — matching the
//     monolithic "0 + c1" first touch) and then transfer each touched row
//     into param->grad with one add per element, as the monolithic leaf
//     transfer would. Untouched rows skip the leaf transfer's "+0.0" —
//     observable only if a gradient held -0.0, which LogSigmoid's backward
//     cannot produce without exp overflow;
//   * shared-forward sinks fold straight into a zero-initialized seed
//     matrix — the seed IS the monolithic interior node's gradient — which
//     then resumes the shared tape via BackwardSeeded.
//
// Every target row is folded and transferred entirely within one row-range
// shard, so neither the shard count nor the worker count can affect a
// single bit of the result. That is the whole determinism argument; the
// rest is bookkeeping.
// ---------------------------------------------------------------------------
class ParallelEngine {
 public:
  ParallelEngine(RankingModel* model, optim::Optimizer* optimizer,
                 const TrainConfig& config, size_t workers)
      : model_(model),
        optimizer_(optimizer),
        config_(config),
        sparse_mode_(config.sparse_steps),
        team_(workers) {
    autograd::ParamStore* params = model_->params();
    for (size_t i = 0; i < params->size(); ++i) {
      param_index_[params->at(i)] = i;
    }
    param_step_stamp_.resize(params->size());
    shard_touched_.resize(team_.workers());
    for (auto& per_param : shard_touched_) per_param.resize(params->size());
  }

  // Trains one batch; returns the batch loss (slice losses summed in slice
  // order — may differ from the monolithic Mean in the last ulp, which is
  // why stats report it but checkpoints never contain it).
  double TrainBatch(const data::BprBatch& batch, uint32_t epoch,
                    size_t batch_index, util::Rng* rng) {
    autograd::ParamStore* params = model_->params();

    SharedForward shared;
    {
      HOSR_TRACE_SPAN("trainer/shared_forward");
      HOSR_PHASE_US("trainer/shared_forward_us");
      model_->BuildSharedForward(&shared, batch, rng);
    }

    const size_t slice_size = config_.slice_size;
    const size_t num_slices = (batch.size() + slice_size - 1) / slice_size;
    slice_tapes_.clear();
    slice_tapes_.resize(num_slices);
    slice_losses_.assign(num_slices, 0.0f);
    {
      HOSR_TRACE_SPAN("trainer/slice_backward");
      HOSR_PHASE_US("trainer/slice_backward_us");
      team_.Run(num_slices, [&](size_t s) {
        const size_t begin = s * slice_size;
        const size_t end = std::min(batch.size(), begin + slice_size);
        auto tape = std::make_unique<autograd::Tape>();
        util::Rng slice_rng(SliceSeed(config_.seed, epoch, batch_index, s));
        autograd::Value loss = model_->BuildLossSlice(
            tape.get(), shared, batch, begin, end, &slice_rng);
        // Slice contract: every parameter a slice reaches must go through
        // a sparse leaf — a dense Param leaf would race on param->grad
        // across workers and break the ordered reduction.
        HOSR_CHECK(tape->param_leaves().empty())
            << model_->name() << " slice tape has dense parameter leaves";
        tape->Backward(loss);
        slice_losses_[s] = loss.value()(0, 0);
        slice_tapes_[s] = std::move(tape);
      });
    }

    const auto& sinks = slice_tapes_[0]->sparse_sinks();
    CheckSinkStructure(sinks);
    EnsureTargets(sinks, shared);

    // Seed accumulators for shared-forward outputs that have a sink.
    std::vector<tensor::Matrix> seeds(shared.outputs.size());
    for (const Target& t : targets_) {
      if (t.param == nullptr && seeds[t.shared_key].empty()) {
        seeds[t.shared_key] = tensor::Matrix(t.rows, t.cols);
      }
    }

    if (!sparse_mode_) params->ZeroGrad();

    {
      HOSR_TRACE_SPAN("trainer/reduce");
      HOSR_PHASE_US("trainer/reduce_us");
      for (auto& per_param : shard_touched_) {
        for (auto& rows : per_param) rows.clear();
      }
      const uint32_t num_sinks = static_cast<uint32_t>(targets_.size());
      const uint32_t stamp_base = NextStampBlock(num_sinks + 1);
      const size_t num_shards = team_.workers();
      team_.Run(num_shards, [&](size_t shard) {
        ReduceShard(shard, num_shards, stamp_base, &seeds);
      });
    }

    {
      HOSR_TRACE_SPAN("trainer/seeded_backward");
      HOSR_PHASE_US("trainer/seeded_backward_us");
      std::vector<std::pair<autograd::Value, tensor::Matrix>> seed_pairs;
      for (size_t key = 0; key < seeds.size(); ++key) {
        if (seeds[key].empty()) continue;
        seed_pairs.emplace_back(shared.outputs[key], std::move(seeds[key]));
      }
      if (!seed_pairs.empty()) {
        shared.tape.BackwardSeeded(std::move(seed_pairs));
      }
    }

    {
      HOSR_TRACE_SPAN("trainer/step");
      HOSR_PHASE_US("trainer/step_us");
      if (sparse_mode_) {
        const size_t plan_rows = BuildPlan(shared);
        HOSR_COUNTER("trainer/sparse_rows").Increment(plan_rows);
        optimizer_->StepRows(params, plan_);
        RezeroTouched(params);
      } else {
        optimizer_->Step(params);
      }
    }

    double batch_loss = 0.0;
    for (const float l : slice_losses_) batch_loss += l;
    return batch_loss;
  }

 private:
  // One reduction destination per sink (structure is stable across batches
  // for a given model; rebuilt if it ever changes).
  struct Target {
    autograd::Param* param = nullptr;
    int shared_key = -1;
    size_t param_index = 0;
    size_t rows = 0;
    size_t cols = 0;
    tensor::Matrix staging;            // param targets: per-row fold buffer
    std::vector<uint32_t> fold_stamp;  // per-row first-touch marker
    size_t num_ops = 0;
  };

  void CheckSinkStructure(
      const std::vector<std::unique_ptr<autograd::SparseSink>>& sinks) {
    for (size_t s = 1; s < slice_tapes_.size(); ++s) {
      const auto& other = slice_tapes_[s]->sparse_sinks();
      HOSR_CHECK(other.size() == sinks.size())
          << "slice tapes disagree on sparse sink count";
      for (size_t k = 0; k < sinks.size(); ++k) {
        HOSR_CHECK(other[k]->param == sinks[k]->param &&
                   other[k]->shared_key == sinks[k]->shared_key &&
                   other[k]->cols == sinks[k]->cols &&
                   other[k]->ops.size() == sinks[k]->ops.size())
            << "slice tapes disagree on sparse sink structure";
      }
    }
  }

  void EnsureTargets(
      const std::vector<std::unique_ptr<autograd::SparseSink>>& sinks,
      const SharedForward& shared) {
    bool match = targets_.size() == sinks.size();
    for (size_t k = 0; match && k < sinks.size(); ++k) {
      const Target& t = targets_[k];
      const size_t rows =
          sinks[k]->param != nullptr
              ? sinks[k]->param->value.rows()
              : shared.outputs[sinks[k]->shared_key].rows();
      match = t.param == sinks[k]->param &&
              t.shared_key == sinks[k]->shared_key &&
              t.cols == sinks[k]->cols && t.rows == rows &&
              t.num_ops == sinks[k]->ops.size();
    }
    if (match) return;
    targets_.clear();
    targets_.resize(sinks.size());
    for (size_t k = 0; k < sinks.size(); ++k) {
      Target& t = targets_[k];
      t.param = sinks[k]->param;
      t.shared_key = sinks[k]->shared_key;
      t.cols = sinks[k]->cols;
      t.num_ops = sinks[k]->ops.size();
      if (t.param != nullptr) {
        t.rows = t.param->value.rows();
        const auto it = param_index_.find(t.param);
        HOSR_CHECK(it != param_index_.end())
            << "sparse sink targets a parameter outside the model's store";
        t.param_index = it->second;
        t.staging = tensor::Matrix(t.rows, t.cols);
        t.fold_stamp.assign(t.rows, 0);
        if (param_step_stamp_[t.param_index].empty()) {
          param_step_stamp_[t.param_index].assign(t.rows, 0);
        }
      } else {
        HOSR_CHECK(t.shared_key >= 0 &&
                   static_cast<size_t>(t.shared_key) < shared.outputs.size())
            << "sparse sink references shared output " << t.shared_key;
        t.rows = shared.outputs[t.shared_key].rows();
        HOSR_CHECK(shared.outputs[t.shared_key].cols() == t.cols);
      }
    }
  }

  // Fresh block of `count` stamp values, never colliding with what any
  // stamp array currently holds (arrays reset on the rare wraparound).
  uint32_t NextStampBlock(uint32_t count) {
    if (stamp_counter_ >= std::numeric_limits<uint32_t>::max() - count) {
      for (Target& t : targets_) {
        std::fill(t.fold_stamp.begin(), t.fold_stamp.end(), 0);
      }
      for (auto& stamps : param_step_stamp_) {
        std::fill(stamps.begin(), stamps.end(), 0);
      }
      stamp_counter_ = 0;
    }
    stamp_counter_ += count;
    return stamp_counter_ - count + 1;
  }

  void ReduceShard(size_t shard, size_t num_shards, uint32_t stamp_base,
                   std::vector<tensor::Matrix>* seeds) {
    const uint32_t step_stamp =
        stamp_base + static_cast<uint32_t>(targets_.size());
    for (size_t k = targets_.size(); k-- > 0;) {
      Target& target = targets_[k];
      const size_t lo = target.rows * shard / num_shards;
      const size_t hi = target.rows * (shard + 1) / num_shards;
      if (lo == hi) continue;
      if (target.param != nullptr) {
        ReduceParamSink(k, &target, lo, hi,
                        stamp_base + static_cast<uint32_t>(k), step_stamp,
                        shard);
      } else {
        ReduceSharedSink(k, target, lo, hi, &(*seeds)[target.shared_key]);
      }
    }
  }

  void ReduceParamSink(size_t k, Target* target, size_t lo, size_t hi,
                       uint32_t stamp, uint32_t step_stamp, size_t shard) {
    const size_t cols = target->cols;
    std::vector<uint32_t> touched;
    for (size_t op = target->num_ops; op-- > 0;) {
      for (const auto& tape : slice_tapes_) {
        const autograd::SparseSink::OpSegment& seg =
            tape->sparse_sinks()[k]->ops[op];
        const float* grads = seg.grads.data();
        for (size_t i = 0; i < seg.rows.size(); ++i) {
          const uint32_t r = seg.rows[i];
          if (r < lo || r >= hi) continue;
          float* dst = target->staging.data() + r * cols;
          if (target->fold_stamp[r] != stamp) {
            target->fold_stamp[r] = stamp;
            touched.push_back(r);
            std::fill(dst, dst + cols, 0.0f);
          }
          const float* src = grads + i * cols;
          for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
        }
      }
    }
    autograd::Param* p = target->param;
    std::vector<uint32_t>& step_stamps = param_step_stamp_[target->param_index];
    std::vector<uint32_t>& plan_rows =
        shard_touched_[shard][target->param_index];
    for (const uint32_t r : touched) {
      const float* src = target->staging.data() + r * cols;
      float* dst = p->grad.data() + r * cols;
      for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
      if (sparse_mode_ && step_stamps[r] != step_stamp) {
        step_stamps[r] = step_stamp;
        plan_rows.push_back(r);
      }
    }
  }

  void ReduceSharedSink(size_t k, const Target& target, size_t lo, size_t hi,
                        tensor::Matrix* seed) {
    const size_t cols = target.cols;
    for (size_t op = target.num_ops; op-- > 0;) {
      for (const auto& tape : slice_tapes_) {
        const autograd::SparseSink::OpSegment& seg =
            tape->sparse_sinks()[k]->ops[op];
        const float* grads = seg.grads.data();
        for (size_t i = 0; i < seg.rows.size(); ++i) {
          const uint32_t r = seg.rows[i];
          if (r < lo || r >= hi) continue;
          float* dst = seed->data() + r * cols;
          const float* src = grads + i * cols;
          for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
        }
      }
    }
  }

  // Assembles the StepRows plan: dense RowSets for the shared tape's dense
  // leaves (their grads are full matrices from BackwardSeeded), sorted
  // unique row lists for sink-touched embeddings, skip for the rest.
  // Returns the number of sparse rows planned.
  size_t BuildPlan(const SharedForward& shared) {
    autograd::ParamStore* params = model_->params();
    plan_.clear();
    plan_.resize(params->size());
    for (autograd::Param* p : shared.tape.param_leaves()) {
      plan_[param_index_.at(p)].dense = true;
    }
    size_t total_rows = 0;
    for (size_t i = 0; i < plan_.size(); ++i) {
      std::vector<uint32_t>& rows = plan_[i].rows;
      for (const auto& per_param : shard_touched_) {
        rows.insert(rows.end(), per_param[i].begin(), per_param[i].end());
      }
      std::sort(rows.begin(), rows.end());
      if (!plan_[i].dense) total_rows += rows.size();
    }
    return total_rows;
  }

  // Re-zeroes exactly the gradients this batch populated, so the next
  // batch starts clean without a dense ZeroGrad sweep.
  void RezeroTouched(autograd::ParamStore* params) {
    for (size_t i = 0; i < plan_.size(); ++i) {
      autograd::Param* p = params->at(i);
      if (plan_[i].dense) {
        p->grad.SetZero();
        continue;
      }
      const size_t cols = p->grad.cols();
      for (const uint32_t r : plan_[i].rows) {
        float* g = p->grad.data() + r * cols;
        std::fill(g, g + cols, 0.0f);
      }
    }
  }

  RankingModel* model_;
  optim::Optimizer* optimizer_;
  const TrainConfig& config_;
  const bool sparse_mode_;
  WorkerTeam team_;
  std::unordered_map<autograd::Param*, size_t> param_index_;
  std::vector<std::unique_ptr<autograd::Tape>> slice_tapes_;
  std::vector<float> slice_losses_;
  std::vector<Target> targets_;
  uint32_t stamp_counter_ = 0;
  // Per-parameter per-row "already in this batch's plan" marker.
  std::vector<std::vector<uint32_t>> param_step_stamp_;
  // [shard][param] -> rows that shard transferred this batch.
  std::vector<std::vector<std::vector<uint32_t>>> shard_touched_;
  std::vector<optim::RowSet> plan_;
};

}  // namespace

util::Status TrainConfig::Validate() const {
  if (epochs == 0) return util::Status::InvalidArgument("epochs must be > 0");
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch_size must be > 0");
  }
  if (learning_rate <= 0.0f) {
    return util::Status::InvalidArgument("learning_rate must be > 0");
  }
  if (weight_decay < 0.0f) {
    return util::Status::InvalidArgument("weight_decay must be >= 0");
  }
  if (slice_size == 0) {
    return util::Status::InvalidArgument("slice_size must be > 0");
  }
  return util::Status::Ok();
}

BprTrainer::BprTrainer(RankingModel* model,
                       const data::InteractionMatrix* train,
                       const TrainConfig& config)
    : model_(model),
      train_(train),
      config_(config),
      sampler_(train, config.seed ^ 0xb5297a4d3f84d5a5ULL,
               config.negative_sampling),
      optimizer_(optim::MakeOptimizer(config.optimizer, config.learning_rate,
                                      config.weight_decay)),
      rng_(config.seed) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
}

size_t BprTrainer::ResolvedWorkers() const {
  if (config_.train_threads != 0) return config_.train_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool BprTrainer::UseParallelEngine() {
  const bool want = ResolvedWorkers() > 1 || config_.sparse_steps;
  if (!want) return false;
  if (model_->SupportsSlicedLoss()) return true;
  if (!warned_fallback_) {
    warned_fallback_ = true;
    HOSR_LOG(Warning) << model_->name()
                      << " does not support sliced losses; training "
                         "sequentially with dense optimizer steps";
  }
  HOSR_COUNTER("trainer/fallback_sequential").Increment();
  return false;
}

void BprTrainer::RunBatchesSequential(data::BatchPrefetcher* prefetcher,
                                      size_t num_batches, EpochStats* stats) {
  double total_loss = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    const data::BprBatch batch = [&] {
      HOSR_PHASE_US("trainer/sample_us");
      return prefetcher->Next();
    }();
    stats->samples += batch.size();
    autograd::Tape tape;
    autograd::Value loss = [&] {
      HOSR_TRACE_SPAN("trainer/forward");
      HOSR_PHASE_US("trainer/forward_us");
      return model_->BuildLoss(&tape, batch, &rng_);
    }();
    {
      HOSR_TRACE_SPAN("trainer/backward");
      HOSR_PHASE_US("trainer/backward_us");
      model_->params()->ZeroGrad();
      tape.Backward(loss);
    }
    {
      HOSR_TRACE_SPAN("trainer/step");
      HOSR_PHASE_US("trainer/step_us");
      optimizer_->Step(model_->params());
    }
    total_loss += loss.value()(0, 0);
  }
  stats->avg_loss = total_loss / static_cast<double>(num_batches);
}

void BprTrainer::RunBatchesParallel(data::BatchPrefetcher* prefetcher,
                                    size_t num_batches, EpochStats* stats) {
  const size_t workers = ResolvedWorkers();
  HOSR_GAUGE("trainer/train_threads").Set(static_cast<double>(workers));
  ParallelEngine engine(model_, optimizer_.get(), config_, workers);
  // The engine assumes clean gradients on entry; in sparse mode it then
  // keeps them clean itself by re-zeroing exactly what each batch touched.
  model_->params()->ZeroGrad();
  double total_loss = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    const data::BprBatch batch = [&] {
      HOSR_PHASE_US("trainer/sample_us");
      return prefetcher->Next();
    }();
    stats->samples += batch.size();
    total_loss += engine.TrainBatch(batch, epoch_, b, &rng_);
    HOSR_COUNTER("trainer/parallel_batches").Increment();
  }
  stats->avg_loss = total_loss / static_cast<double>(num_batches);
}

EpochStats BprTrainer::RunEpoch() {
  HOSR_TRACE_SPAN("trainer/epoch");
  util::WallTimer timer;
  model_->OnEpochBegin(epoch_, &rng_);

  // One epoch = enough batches to cover every observed interaction once in
  // expectation (the standard BPR protocol).
  const size_t num_batches = std::max<size_t>(
      1, (sampler_.num_positives() + config_.batch_size - 1) /
             config_.batch_size);
  // The prefetcher draws exactly this epoch's batches in order, so the
  // sampler's RNG ends the epoch in the same state as synchronous sampling.
  data::BatchPrefetcher prefetcher(&sampler_, config_.batch_size, num_batches,
                                   config_.prefetch);

  // Phase-counter checkpoint: the deltas across this epoch become the
  // per-epoch utilization gauges below. Registry lookups (not the caching
  // macros) because the names vary per loop iteration.
  constexpr size_t kNumPhases = std::size(kPhaseCounterNames);
  uint64_t phase_us_before[kNumPhases];
  for (size_t i = 0; i < kNumPhases; ++i) {
    phase_us_before[i] =
        obs::Registry::Global().GetCounter(kPhaseCounterNames[i])->Get();
  }
  const double stall_us_before =
      obs::Registry::Global().GetHistogram("sampler/prefetch_stall_us")->Sum();

  EpochStats stats;
  stats.epoch = epoch_;
  stats.batches = num_batches;
  if (UseParallelEngine()) {
    RunBatchesParallel(&prefetcher, num_batches, &stats);
  } else {
    RunBatchesSequential(&prefetcher, num_batches, &stats);
  }

  stats.seconds = timer.ElapsedSeconds();
  stats.samples_per_sec =
      stats.seconds > 0.0
          ? static_cast<double>(stats.samples) / stats.seconds
          : 0.0;

  HOSR_GAUGE("trainer/epoch_loss").Set(stats.avg_loss);
  HOSR_GAUGE("trainer/epoch_seconds").Set(stats.seconds);
  HOSR_GAUGE("trainer/samples_per_sec").Set(stats.samples_per_sec);
  HOSR_COUNTER("trainer/epochs").Increment();
  HOSR_COUNTER("trainer/batches").Increment(num_batches);

  // Per-phase epoch timeline: fraction of this epoch's wall clock spent in
  // each phase (wall time per phase, so parallel phases count once, not per
  // worker). Phases the active path never entered read 0.
  const double epoch_us = stats.seconds * 1e6;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const uint64_t delta_us =
        obs::Registry::Global().GetCounter(kPhaseCounterNames[i])->Get() -
        phase_us_before[i];
    obs::Registry::Global()
        .GetGauge(PhaseUtilName(kPhaseCounterNames[i]))
        ->Set(epoch_us > 0.0 ? static_cast<double>(delta_us) / epoch_us
                             : 0.0);
  }
  // Stall time (not just counts) the prefetcher consumer spent blocked on
  // an empty queue, as a fraction of the epoch.
  const double stall_us =
      obs::Registry::Global()
          .GetHistogram("sampler/prefetch_stall_us")
          ->Sum() -
      stall_us_before;
  HOSR_GAUGE("trainer/prefetch_stall_ratio")
      .Set(epoch_us > 0.0 ? stall_us / epoch_us : 0.0);

  if (config_.verbose) {
    HOSR_LOG(Info) << model_->name() << " epoch " << epoch_ << " loss "
                   << stats.avg_loss << " (" << stats.seconds << "s, "
                   << stats.batches << " batches, " << stats.samples_per_sec
                   << " samples/s)";
  }
  ++epoch_;
  return stats;
}

std::vector<EpochStats> BprTrainer::Train() {
  std::vector<EpochStats> history;
  if (epoch_ >= config_.epochs) return history;
  history.reserve(config_.epochs - epoch_);
  while (epoch_ < config_.epochs) {
    history.push_back(RunEpoch());
  }
  return history;
}

util::Status BprTrainer::SaveTrainingState(const std::string& path) const {
  std::ostringstream body;
  WritePod(&body, kTrainStateMagic);
  WritePod(&body, kTrainStateVersion);
  WritePod(&body, kEndianMarker);
  WritePod(&body, epoch_);
  WriteConfig(&body, config_);
  WriteString(&body, model_->name());
  WriteRngState(&body, rng_.GetState());
  WriteRngState(&body, sampler_.rng_state());
  HOSR_RETURN_IF_ERROR(optimizer_->SaveState(&body));
  HOSR_RETURN_IF_ERROR(autograd::WriteParams(*model_->params(), &body));
  WritePod(&body, kTrainStateSentinel);
  if (!body) return util::Status::IoError("training state serialization failed");
  return util::WriteFileAtomicWithCrc(path, body.str());
}

util::Status BprTrainer::RestoreTrainingState(const std::string& path) {
  HOSR_ASSIGN_OR_RETURN(std::string raw, util::ReadFileVerifyCrc(path));
  std::istringstream in(raw);

  uint32_t magic = 0, version = 0, endian = 0, epoch = 0;
  if (!ReadPod(&in, &magic) || magic != kTrainStateMagic) {
    return util::Status::InvalidArgument("not a HOSR training state: " + path);
  }
  if (!ReadPod(&in, &version) || version < kTrainStateMinVersion ||
      version > kTrainStateVersion) {
    return util::Status::InvalidArgument(
        util::StrFormat("unsupported training state version %u", version));
  }
  if (!ReadPod(&in, &endian) || endian != kEndianMarker) {
    return util::Status::InvalidArgument(
        "training state written on a foreign-endian machine");
  }
  if (!ReadPod(&in, &epoch) || epoch > config_.epochs) {
    return util::Status::DataLoss("implausible epoch counter");
  }
  HOSR_RETURN_IF_ERROR(CheckConfig(&in, version, config_));
  HOSR_ASSIGN_OR_RETURN(std::string model_name, ReadString(&in));
  if (model_name != model_->name()) {
    return util::Status::FailedPrecondition(
        "training state is for model '" + model_name + "', trainer has '" +
        model_->name() + "'");
  }
  HOSR_ASSIGN_OR_RETURN(util::RngState trainer_rng, ReadRngState(&in));
  HOSR_ASSIGN_OR_RETURN(util::RngState sampler_rng, ReadRngState(&in));

  // Stage the mutable state: the optimizer and params restore in place
  // only after every header check above has passed, and the stream is
  // validated down to the sentinel before the cheap scalar state flips.
  HOSR_RETURN_IF_ERROR(optimizer_->LoadState(&in));
  HOSR_RETURN_IF_ERROR(autograd::ReadParams(&in, model_->params()));
  uint32_t sentinel = 0;
  if (!ReadPod(&in, &sentinel) || sentinel != kTrainStateSentinel) {
    return util::Status::DataLoss("training state missing trailing sentinel");
  }

  rng_.SetState(trainer_rng);
  sampler_.set_rng_state(sampler_rng);
  epoch_ = epoch;
  HOSR_COUNTER("train/resumes").Increment();
  return util::Status::Ok();
}

}  // namespace hosr::models
