#ifndef HOSR_MODELS_HEURISTICS_H_
#define HOSR_MODELS_HEURISTICS_H_

#include <string>
#include <vector>

#include "data/interactions.h"
#include "tensor/matrix.h"

namespace hosr::models {

// Non-learning reference recommenders. They are not part of the paper's
// Table 3 but are the sanity floor any learned model must clear, and they
// plug into the same BatchScorer-based evaluation.

// Ranks every item by global popularity (training interaction count).
class MostPopular {
 public:
  explicit MostPopular(const data::InteractionMatrix& train);

  std::string name() const { return "MostPopular"; }
  uint32_t num_items() const {
    return static_cast<uint32_t>(item_scores_.size());
  }

  // (|users| x m): identical rows of popularity scores.
  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) const;

 private:
  std::vector<float> item_scores_;
};

// Item-based collaborative filtering with cosine similarity over the
// binary interaction matrix: score(u, j) = sum over j' in I_u of
// sim(j, j'), with similarities truncated to the top `max_neighbors` per
// item for speed and noise control.
class ItemKnn {
 public:
  struct Config {
    uint32_t max_neighbors = 50;
    // Similarity shrinkage: sim = co / (sqrt(|U_a||U_b|) + shrinkage).
    float shrinkage = 1.0f;
  };

  ItemKnn(const data::InteractionMatrix& train, const Config& config);

  std::string name() const { return "ItemKNN"; }
  uint32_t num_items() const { return num_items_; }

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) const;

  // Top similarity list of one item (for tests): (neighbor, similarity).
  const std::vector<std::pair<uint32_t, float>>& NeighborsOf(
      uint32_t item) const {
    return neighbors_[item];
  }

 private:
  const data::InteractionMatrix* train_;
  uint32_t num_items_;
  std::vector<std::vector<std::pair<uint32_t, float>>> neighbors_;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_HEURISTICS_H_
