#include "models/ncf.h"

#include "tensor/ops.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hosr::models {

Ncf::Ncf(uint32_t num_users, uint32_t num_items, const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      config_(config),
      dropout_rng_(config.seed ^ 0xd1b54a32d192ed03ULL) {
  HOSR_CHECK(config.num_hidden_layers >= 1);
  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  gmf_user_ = params_.CreateGaussian("gmf_user", num_users, d,
                                     config.init_stddev, &rng);
  gmf_item_ = params_.CreateGaussian("gmf_item", num_items, d,
                                     config.init_stddev, &rng);
  gmf_out_ = params_.CreateXavier("gmf_out", d, 1, &rng);
  mlp_user_ = params_.CreateGaussian("mlp_user", num_users, d,
                                     config.init_stddev, &rng);
  mlp_item_ = params_.CreateGaussian("mlp_item", num_items, d,
                                     config.init_stddev, &rng);
  uint32_t in_dim = 2 * d;
  for (uint32_t layer = 0; layer < config.num_hidden_layers; ++layer) {
    mlp_weights_.push_back(params_.CreateXavier(
        util::StrFormat("mlp_w%u", layer), in_dim, d, &rng));
    mlp_biases_.push_back(
        params_.Create(util::StrFormat("mlp_b%u", layer), 1, d));
    in_dim = d;
  }
  mlp_out_ = params_.CreateXavier("mlp_out", d, 1, &rng);
}

autograd::Value Ncf::ScorePairs(autograd::Tape* tape,
                                const std::vector<uint32_t>& users,
                                const std::vector<uint32_t>& items,
                                bool training) {
  // GMF branch.
  autograd::Value gu = tape->GatherRows(tape->Param(gmf_user_), users);
  autograd::Value gv = tape->GatherRows(tape->Param(gmf_item_), items);
  autograd::Value gmf_score =
      tape->MatMul(tape->Hadamard(gu, gv), tape->Param(gmf_out_));

  // MLP branch.
  autograd::Value mu = tape->GatherRows(tape->Param(mlp_user_), users);
  autograd::Value mv = tape->GatherRows(tape->Param(mlp_item_), items);
  autograd::Value h = tape->ConcatCols(mu, mv);
  h = tape->Dropout(h, config_.dropout, training, &dropout_rng_);
  for (size_t layer = 0; layer < mlp_weights_.size(); ++layer) {
    h = tape->MatMul(h, tape->Param(mlp_weights_[layer]));
    h = tape->AddRowBroadcast(h, tape->Param(mlp_biases_[layer]));
    h = tape->Relu(h);
  }
  autograd::Value mlp_score = tape->MatMul(h, tape->Param(mlp_out_));

  return tape->Add(gmf_score, mlp_score);
}

tensor::Matrix Ncf::ScoreAllItems(const std::vector<uint32_t>& users) {
  using tensor::Matrix;
  const uint32_t d = config_.embedding_dim;
  Matrix scores(users.size(), num_items_);

  // GMF contribution: (U_g h) per user against all items reduces to a
  // weighted inner product; compute as (U_g diag(h)) V_g^T.
  Matrix gmf_u = tensor::GatherRows(gmf_user_->value, users);
  for (size_t r = 0; r < gmf_u.rows(); ++r) {
    float* row = gmf_u.row(r);
    for (uint32_t c = 0; c < d; ++c) row[c] *= gmf_out_->value(c, 0);
  }
  tensor::Gemm(gmf_u, false, gmf_item_->value, true, 1.0f, 0.0f, &scores);

  // MLP contribution: per user, run all items through the MLP.
  util::ParallelFor(
      0, users.size(),
      [&](size_t begin, size_t end) {
        for (size_t b = begin; b < end; ++b) {
          const float* user_row = mlp_user_->value.row(users[b]);
          Matrix h(num_items_, 2 * d);
          for (uint32_t j = 0; j < num_items_; ++j) {
            float* hr = h.row(j);
            std::copy(user_row, user_row + d, hr);
            const float* item_row = mlp_item_->value.row(j);
            std::copy(item_row, item_row + d, hr + d);
          }
          for (size_t layer = 0; layer < mlp_weights_.size(); ++layer) {
            Matrix next(h.rows(), mlp_weights_[layer]->value.cols());
            tensor::Gemm(h, false, mlp_weights_[layer]->value, false, 1.0f,
                         0.0f, &next);
            const float* bias = mlp_biases_[layer]->value.data();
            for (size_t r = 0; r < next.rows(); ++r) {
              float* nr = next.row(r);
              for (size_t c = 0; c < next.cols(); ++c) {
                nr[c] = std::max(0.0f, nr[c] + bias[c]);
              }
            }
            h = std::move(next);
          }
          float* out_row = scores.row(b);
          for (uint32_t j = 0; j < num_items_; ++j) {
            const float* hr = h.row(j);
            float acc = 0.0f;
            for (uint32_t c = 0; c < d; ++c) {
              acc += hr[c] * mlp_out_->value(c, 0);
            }
            out_row[j] += acc;
          }
        }
      },
      /*min_chunk=*/4);
  return scores;
}

}  // namespace hosr::models
