#ifndef HOSR_MODELS_NCF_H_
#define HOSR_MODELS_NCF_H_

#include <string>
#include <vector>

#include "models/model.h"

namespace hosr::models {

// Neural Collaborative Filtering (He et al., NeuMF variant): a GMF branch
// (element-wise product of user/item embeddings, linearly scored) fused
// with an MLP branch over the concatenated embeddings. The paper's neural
// non-social baseline, configured with 3 hidden layers of equal width.
class Ncf : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    uint32_t num_hidden_layers = 3;  // per the paper's setup
    float init_stddev = 0.1f;
    float dropout = 0.0f;  // embedding dropout on the MLP input
    uint64_t seed = 7;
  };

  Ncf(uint32_t num_users, uint32_t num_items, const Config& config);

  std::string name() const override { return "NCF"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  autograd::ParamStore* params() override { return &params_; }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  util::Rng dropout_rng_;
  autograd::ParamStore params_;
  // GMF branch.
  autograd::Param* gmf_user_;
  autograd::Param* gmf_item_;
  autograd::Param* gmf_out_;  // (d x 1)
  // MLP branch.
  autograd::Param* mlp_user_;
  autograd::Param* mlp_item_;
  std::vector<autograd::Param*> mlp_weights_;
  std::vector<autograd::Param*> mlp_biases_;
  autograd::Param* mlp_out_;  // (d x 1)
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_NCF_H_
