#ifndef HOSR_MODELS_EARLY_STOPPING_H_
#define HOSR_MODELS_EARLY_STOPPING_H_

#include <functional>
#include <vector>

#include "data/interactions.h"
#include "eval/evaluator.h"
#include "models/trainer.h"

namespace hosr::models {

// Early-stopping policy around BprTrainer: train up to `max_epochs`,
// evaluate a validation metric every `eval_stride` epochs, and stop when
// the metric has not improved for `patience` consecutive evaluations. The
// best epoch's parameters are restored into the model before returning.
struct EarlyStoppingConfig {
  uint32_t max_epochs = 200;
  uint32_t eval_stride = 5;
  // Number of consecutive non-improving evaluations tolerated.
  uint32_t patience = 3;
  // Minimum improvement that counts as progress.
  double min_delta = 1e-5;

  util::Status Validate() const;
};

struct EarlyStoppingResult {
  // Value of the validation metric at the restored (best) parameters.
  double best_metric = 0.0;
  uint32_t best_epoch = 0;     // 1-based epoch index of the best snapshot
  uint32_t epochs_run = 0;     // total epochs actually trained
  bool stopped_early = false;  // false when max_epochs was exhausted
  std::vector<EpochStats> history;
};

// Validation metric: higher is better (e.g. Recall@20 on held-out data).
using ValidationMetric = std::function<double(RankingModel*)>;

// Runs the policy. `train_config.epochs` is ignored (max_epochs governs).
EarlyStoppingResult TrainWithEarlyStopping(
    RankingModel* model, const data::InteractionMatrix* train,
    const TrainConfig& train_config, const EarlyStoppingConfig& config,
    const ValidationMetric& metric);

// Convenience: carves a per-user fraction of `train` into a validation set
// (at least one interaction stays in the remainder) and returns both. Used
// to early-stop without touching the test split.
struct ValidationSplit {
  data::InteractionMatrix train_remainder;
  data::InteractionMatrix validation;
};
util::StatusOr<ValidationSplit> CarveValidation(
    const data::InteractionMatrix& train, double validation_fraction,
    util::Rng* rng);

}  // namespace hosr::models

#endif  // HOSR_MODELS_EARLY_STOPPING_H_
