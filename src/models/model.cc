#include "models/model.h"

namespace hosr::models {

autograd::Value RankingModel::BuildLoss(autograd::Tape* tape,
                                        const data::BprBatch& batch,
                                        util::Rng* rng) {
  (void)rng;
  autograd::Value pos =
      ScorePairs(tape, batch.users, batch.pos_items, /*training=*/true);
  autograd::Value neg =
      ScorePairs(tape, batch.users, batch.neg_items, /*training=*/true);
  autograd::Value margin = tape->Sub(pos, neg);
  autograd::Value log_likelihood = tape->Mean(tape->LogSigmoid(margin));
  return tape->Scale(log_likelihood, -1.0f);
}

}  // namespace hosr::models
