#include "models/model.h"

#include "util/logging.h"

namespace hosr::models {

autograd::Value RankingModel::BuildLoss(autograd::Tape* tape,
                                        const data::BprBatch& batch,
                                        util::Rng* rng) {
  (void)rng;
  autograd::Value pos =
      ScorePairs(tape, batch.users, batch.pos_items, /*training=*/true);
  autograd::Value neg =
      ScorePairs(tape, batch.users, batch.neg_items, /*training=*/true);
  autograd::Value margin = tape->Sub(pos, neg);
  autograd::Value log_likelihood = tape->Mean(tape->LogSigmoid(margin));
  return tape->Scale(log_likelihood, -1.0f);
}

autograd::Value RankingModel::BuildLossSlice(autograd::Tape* tape,
                                             const SharedForward& shared,
                                             const data::BprBatch& batch,
                                             size_t begin, size_t end,
                                             util::Rng* slice_rng) {
  (void)tape;
  (void)shared;
  (void)batch;
  (void)begin;
  (void)end;
  (void)slice_rng;
  HOSR_CHECK(false) << name() << " does not support sliced losses";
  return autograd::Value();
}

}  // namespace hosr::models
