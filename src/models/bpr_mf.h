#ifndef HOSR_MODELS_BPR_MF_H_
#define HOSR_MODELS_BPR_MF_H_

#include <string>
#include <vector>

#include "models/model.h"

namespace hosr::models {

// Matrix factorization trained with the BPR loss (Rendle et al.) — the
// paper's non-social baseline. Score: y_ij = u_i . v_j.
class BprMf : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    float init_stddev = 0.1f;
    uint64_t seed = 7;
  };

  BprMf(uint32_t num_users, uint32_t num_items, const Config& config);

  std::string name() const override { return "BPR"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  bool SupportsSlicedLoss() const override { return true; }
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  util::StatusOr<FrozenFactors> ExportFactors() const override;

  autograd::ParamStore* params() override { return &params_; }

  const tensor::Matrix& user_embeddings() const { return user_emb_->value; }
  const tensor::Matrix& item_embeddings() const { return item_emb_->value; }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_BPR_MF_H_
