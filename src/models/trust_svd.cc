#include "models/trust_svd.h"

#include <cmath>

#include "graph/spmm.h"
#include "tensor/ops.h"

namespace hosr::models {

namespace {

// Builds the (n x m) matrix with entry (i, j') = 1/sqrt(|I_i|) for each
// observed interaction — the SVD++ implicit-feedback operator.
graph::CsrMatrix BuildItemFeedbackOperator(
    const data::InteractionMatrix& interactions) {
  std::vector<graph::Triplet> triplets;
  triplets.reserve(interactions.nnz());
  for (uint32_t u = 0; u < interactions.num_users(); ++u) {
    const auto& items = interactions.ItemsOf(u);
    if (items.empty()) continue;
    const float w = 1.0f / std::sqrt(static_cast<float>(items.size()));
    for (const uint32_t j : items) triplets.push_back({u, j, w});
  }
  return graph::CsrMatrix::FromTriplets(interactions.num_users(),
                                        interactions.num_items(),
                                        std::move(triplets));
}

// Builds the (n x n) matrix with entry (i, i') = 1/sqrt(|A_i|) for each
// social edge — TrustSVD's trust operator.
graph::CsrMatrix BuildSocialOperator(const graph::SocialGraph& social) {
  const auto& adj = social.adjacency();
  std::vector<graph::Triplet> triplets;
  triplets.reserve(adj.nnz());
  for (uint32_t i = 0; i < adj.num_rows(); ++i) {
    const size_t degree = adj.row_nnz(i);
    if (degree == 0) continue;
    const float w = 1.0f / std::sqrt(static_cast<float>(degree));
    for (size_t k = adj.row_begin(i); k < adj.row_end(i); ++k) {
      triplets.push_back({i, adj.col_idx()[k], w});
    }
  }
  return graph::CsrMatrix::FromTriplets(adj.num_rows(), adj.num_cols(),
                                        std::move(triplets));
}

}  // namespace

TrustSvd::TrustSvd(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      item_feedback_(BuildItemFeedbackOperator(train.interactions)),
      item_feedback_t_(item_feedback_.Transpose()),
      social_(BuildSocialOperator(train.social)),
      social_t_(social_.Transpose()) {
  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  user_emb_ = params_.CreateGaussian("user_emb", num_users_, d,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_, d,
                                     config.init_stddev, &rng);
  implicit_item_ = params_.CreateGaussian("implicit_item", num_items_, d,
                                          config.init_stddev, &rng);
  trusted_user_ = params_.CreateGaussian("trusted_user", num_users_, d,
                                         config.init_stddev, &rng);
}

autograd::Value TrustSvd::EffectiveUserEmbedding(autograd::Tape* tape) {
  autograd::Value u = tape->Param(user_emb_);
  autograd::Value q_term =
      tape->SpMM(&item_feedback_, &item_feedback_t_,
                 tape->Param(implicit_item_));
  autograd::Value w_term =
      tape->SpMM(&social_, &social_t_, tape->Param(trusted_user_));
  return tape->Add(tape->Add(u, q_term), w_term);
}

tensor::Matrix TrustSvd::EffectiveUserEmbeddingInference() const {
  tensor::Matrix eff = user_emb_->value;
  tensor::Matrix q_term = graph::Spmm(item_feedback_, implicit_item_->value);
  tensor::Matrix w_term = graph::Spmm(social_, trusted_user_->value);
  tensor::Axpy(1.0f, q_term, &eff);
  tensor::Axpy(1.0f, w_term, &eff);
  return eff;
}

autograd::Value TrustSvd::ScorePairs(autograd::Tape* tape,
                                     const std::vector<uint32_t>& users,
                                     const std::vector<uint32_t>& items,
                                     bool training) {
  (void)training;
  autograd::Value eff = EffectiveUserEmbedding(tape);
  autograd::Value u = tape->GatherRows(eff, users);
  autograd::Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

autograd::Value TrustSvd::BuildLoss(autograd::Tape* tape,
                                    const data::BprBatch& batch,
                                    util::Rng* rng) {
  (void)rng;
  autograd::Value eff = EffectiveUserEmbedding(tape);
  autograd::Value u = tape->GatherRows(eff, batch.users);
  autograd::Value item_emb = tape->Param(item_emb_);
  autograd::Value pos =
      tape->RowDot(u, tape->GatherRows(item_emb, batch.pos_items));
  autograd::Value neg =
      tape->RowDot(u, tape->GatherRows(item_emb, batch.neg_items));
  autograd::Value margin = tape->Sub(pos, neg);
  return tape->Scale(tape->Mean(tape->LogSigmoid(margin)), -1.0f);
}

void TrustSvd::BuildSharedForward(SharedForward* shared,
                                  const data::BprBatch& batch,
                                  util::Rng* rng) {
  (void)batch;
  (void)rng;
  shared->outputs.push_back(EffectiveUserEmbedding(&shared->tape));
}

autograd::Value TrustSvd::BuildLossSlice(autograd::Tape* tape,
                                         const SharedForward& shared,
                                         const data::BprBatch& batch,
                                         size_t begin, size_t end,
                                         util::Rng* slice_rng) {
  (void)slice_rng;
  // Mirrors BuildLoss's tail (see Hosr::BuildLossSlice for the contract).
  autograd::Value eff = tape->SparseShared(0, &shared.outputs[0].value());
  autograd::Value u =
      tape->GatherRows(eff, SliceOf(batch.users, begin, end));
  autograd::Value item_emb = tape->SparseParam(item_emb_);
  autograd::Value pos = tape->RowDot(
      u, tape->GatherRows(item_emb, SliceOf(batch.pos_items, begin, end)));
  autograd::Value neg = tape->RowDot(
      u, tape->GatherRows(item_emb, SliceOf(batch.neg_items, begin, end)));
  autograd::Value margin = tape->Sub(pos, neg);
  const float scale = -1.0f / static_cast<float>(batch.size());
  return tape->Scale(tape->Sum(tape->LogSigmoid(margin)), scale);
}

tensor::Matrix TrustSvd::ScoreAllItems(const std::vector<uint32_t>& users) {
  const tensor::Matrix eff = EffectiveUserEmbeddingInference();
  const tensor::Matrix u = tensor::GatherRows(eff, users);
  tensor::Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

util::StatusOr<FrozenFactors> TrustSvd::ExportFactors() const {
  FrozenFactors factors;
  factors.user_factors = EffectiveUserEmbeddingInference();
  factors.item_factors = item_emb_->value;
  return factors;
}

}  // namespace hosr::models
