#include "models/deepinf.h"

#include "graph/sampling.h"
#include "graph/spmm.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace hosr::models {

namespace {

// Fixed-size RWR sample per user, assembled into a row-normalized sparse
// operator with self-loops: row u averages {u} union sample(u).
graph::CsrMatrix BuildSampledOperator(const graph::SocialGraph& social,
                                      uint32_t sample_size,
                                      double return_prob, uint64_t seed) {
  std::vector<graph::Triplet> triplets;
  util::Rng rng(seed);
  for (uint32_t u = 0; u < social.num_users(); ++u) {
    util::Rng walk_rng = rng.Fork(u + 1);
    const auto sample = graph::RandomWalkWithRestart(
        social, u, return_prob, sample_size, &walk_rng);
    const float w = 1.0f / static_cast<float>(sample.size() + 1);
    triplets.push_back({u, u, w});
    for (const uint32_t v : sample) triplets.push_back({u, v, w});
  }
  return graph::CsrMatrix::FromTriplets(social.num_users(),
                                        social.num_users(),
                                        std::move(triplets));
}

}  // namespace

DeepInf::DeepInf(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      dropout_rng_(config.seed ^ 0xe7037ed1a0b428dbULL),
      sampled_adjacency_(BuildSampledOperator(train.social,
                                              config.sample_size,
                                              config.return_prob,
                                              config.seed ^ 0x2545f4914f6cdd1dULL)),
      sampled_adjacency_t_(sampled_adjacency_.Transpose()) {
  HOSR_CHECK(config.num_layers >= 1);
  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  user_emb_ = params_.CreateGaussian("user_emb", num_users_, d,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_, d,
                                     config.init_stddev, &rng);
  for (uint32_t layer = 0; layer < config.num_layers; ++layer) {
    layer_weights_.push_back(params_.CreateXavier(
        util::StrFormat("deepinf_w%u", layer), d, d, &rng));
  }
}

autograd::Value DeepInf::PropagateUsers(autograd::Tape* tape, bool training) {
  autograd::Value h = tape->Param(user_emb_);
  for (size_t layer = 0; layer < layer_weights_.size(); ++layer) {
    h = tape->SpMM(&sampled_adjacency_, &sampled_adjacency_t_, h);
    h = tape->MatMul(h, tape->Param(layer_weights_[layer]));
    h = tape->Relu(h);
    h = tape->Dropout(h, config_.dropout, training, &dropout_rng_);
  }
  return h;
}

tensor::Matrix DeepInf::PropagateUsersInference() const {
  tensor::Matrix h = user_emb_->value;
  for (const autograd::Param* w : layer_weights_) {
    h = graph::Spmm(sampled_adjacency_, h);
    h = tensor::MatMul(h, w->value);
    tensor::Apply(&h, [](float x) { return x > 0.0f ? x : 0.0f; });
  }
  return h;
}

autograd::Value DeepInf::ScorePairs(autograd::Tape* tape,
                                    const std::vector<uint32_t>& users,
                                    const std::vector<uint32_t>& items,
                                    bool training) {
  autograd::Value h = PropagateUsers(tape, training);
  autograd::Value u = tape->GatherRows(h, users);
  autograd::Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

autograd::Value DeepInf::BuildLoss(autograd::Tape* tape,
                                   const data::BprBatch& batch,
                                   util::Rng* rng) {
  (void)rng;
  autograd::Value h = PropagateUsers(tape, /*training=*/true);
  autograd::Value u = tape->GatherRows(h, batch.users);
  autograd::Value item_param = tape->Param(item_emb_);
  autograd::Value pos =
      tape->RowDot(u, tape->GatherRows(item_param, batch.pos_items));
  autograd::Value neg =
      tape->RowDot(u, tape->GatherRows(item_param, batch.neg_items));
  autograd::Value margin = tape->Sub(pos, neg);
  return tape->Scale(tape->Mean(tape->LogSigmoid(margin)), -1.0f);
}

tensor::Matrix DeepInf::ScoreAllItems(const std::vector<uint32_t>& users) {
  const tensor::Matrix h = PropagateUsersInference();
  const tensor::Matrix u = tensor::GatherRows(h, users);
  tensor::Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

util::StatusOr<FrozenFactors> DeepInf::ExportFactors() const {
  FrozenFactors factors;
  factors.user_factors = PropagateUsersInference();
  factors.item_factors = item_emb_->value;
  return factors;
}

}  // namespace hosr::models
