#ifndef HOSR_MODELS_DEEPINF_H_
#define HOSR_MODELS_DEEPINF_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"

namespace hosr::models {

// DeepInf (Qiu et al.) adapted to social recommendation as in the paper's
// experiments: each user's neighborhood is a *fixed-size sample* drawn by
// random walk with restart (sample size 50, return probability 0.5 in the
// paper), a multi-layer GCN with ReLU activations propagates embeddings
// over the sampled graph, and preference is the dot product between the
// final user embedding and the item embedding.
class DeepInf : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    uint32_t num_layers = 3;          // per the paper's setup
    uint32_t sample_size = 50;        // RWR sample size
    double return_prob = 0.5;         // RWR restart probability
    float init_stddev = 0.1f;
    float dropout = 0.0f;
    uint64_t seed = 7;
  };

  DeepInf(const data::Dataset& train, const Config& config);

  std::string name() const override { return "DeepInf"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  // Shares one GCN propagation across positive and negative branches.
  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  util::StatusOr<FrozenFactors> ExportFactors() const override;

  autograd::ParamStore* params() override { return &params_; }

  // Exposed for tests: number of sampled neighbors of `user`.
  size_t SampledNeighborCount(uint32_t user) const {
    return sampled_adjacency_.row_nnz(user);
  }

 private:
  autograd::Value PropagateUsers(autograd::Tape* tape, bool training);
  tensor::Matrix PropagateUsersInference() const;

  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  util::Rng dropout_rng_;
  // Row-normalized operator over the RWR-sampled neighborhoods (self loop
  // included); fixed at construction, as DeepInf samples once per ego.
  graph::CsrMatrix sampled_adjacency_;
  graph::CsrMatrix sampled_adjacency_t_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  std::vector<autograd::Param*> layer_weights_;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_DEEPINF_H_
