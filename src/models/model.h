#ifndef HOSR_MODELS_MODEL_H_
#define HOSR_MODELS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/param.h"
#include "autograd/tape.h"
#include "data/sampler.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/statusor.h"

namespace hosr::models {

// A model's scoring function frozen into bilinear factors for serving:
//   score(u, i) = dot(user_factors.row(u), item_factors.row(i))
//                 + user_bias[u] + item_bias[i] + global_bias.
// Bias vectors may be empty, meaning all-zero. Every dot-product model
// (HOSR, BPR, TrustSVD, IF-BPR+, DeepInf) bakes its social diffusion /
// implicit-feedback terms into `user_factors`, so a frozen export scores
// exactly like ScoreAllItems at a fraction of the cost.
struct FrozenFactors {
  tensor::Matrix user_factors;  // (n x d)
  tensor::Matrix item_factors;  // (m x d)
  std::vector<float> user_bias;  // (n) or empty
  std::vector<float> item_bias;  // (m) or empty
  float global_bias = 0.0f;
};

// Interface shared by HOSR and every baseline: a model that ranks items for
// users, trains on BPR triples via the autograd tape, and supports fast
// (non-differentiable) full scoring for evaluation.
class RankingModel {
 public:
  virtual ~RankingModel() = default;

  virtual std::string name() const = 0;
  virtual uint32_t num_users() const = 0;
  virtual uint32_t num_items() const = 0;

  // Builds the training loss for one mini-batch of triples on `tape` and
  // returns the scalar (1x1) loss Value. The default implementation is the
  // BPR loss of Eq. 12 (without the L2 term, which the optimizer applies as
  // decoupled weight decay): mean over triples of -ln sigmoid(y+ - y-).
  // Models with extra loss terms (NSCR) or a different ranking objective
  // (IF-BPR) override this.
  virtual autograd::Value BuildLoss(autograd::Tape* tape,
                                    const data::BprBatch& batch,
                                    util::Rng* rng);

  // Differentiable scores for (user, item) pairs: returns a (B x 1) Value.
  // `training` enables dropout.
  virtual autograd::Value ScorePairs(autograd::Tape* tape,
                                     const std::vector<uint32_t>& users,
                                     const std::vector<uint32_t>& items,
                                     bool training) = 0;

  // Inference-mode scores of every item for each user: (|users| x m).
  virtual tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) = 0;

  // Exports the current parameters as frozen bilinear factors for snapshot
  // serving (serve::BuildSnapshot). Dot-product models override this;
  // models whose scorer is not bilinear (NCF, NSCR) keep the default
  // Unimplemented and cannot be served from a snapshot.
  virtual util::StatusOr<FrozenFactors> ExportFactors() const {
    return util::Status::Unimplemented(name() +
                                       " cannot export bilinear factors");
  }

  // Called by the trainer at each epoch start (e.g. HOSR re-samples its
  // graph-dropout adjacency here).
  virtual void OnEpochBegin(uint32_t epoch, util::Rng* rng) {
    (void)epoch;
    (void)rng;
  }

  virtual autograd::ParamStore* params() = 0;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_MODEL_H_
