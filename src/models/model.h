#ifndef HOSR_MODELS_MODEL_H_
#define HOSR_MODELS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/param.h"
#include "autograd/tape.h"
#include "data/sampler.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/statusor.h"

namespace hosr::models {

// A model's scoring function frozen into bilinear factors for serving:
//   score(u, i) = dot(user_factors.row(u), item_factors.row(i))
//                 + user_bias[u] + item_bias[i] + global_bias.
// Bias vectors may be empty, meaning all-zero. Every dot-product model
// (HOSR, BPR, TrustSVD, IF-BPR+, DeepInf) bakes its social diffusion /
// implicit-feedback terms into `user_factors`, so a frozen export scores
// exactly like ScoreAllItems at a fraction of the cost.
struct FrozenFactors {
  tensor::Matrix user_factors;  // (n x d)
  tensor::Matrix item_factors;  // (m x d)
  std::vector<float> user_bias;  // (n) or empty
  std::vector<float> item_bias;  // (m) or empty
  float global_bias = 0.0f;
};

// Batch-shared forward state for the parallel trainer's sliced loss path
// (docs/PERFORMANCE.md "Parallel training"). A model that supports slicing
// builds its batch-independent prefix — e.g. HOSR's propagated user
// representations — ONCE per batch on `tape`, exposing the tensors slices
// gather from as `outputs`; slice tapes reference those matrices via
// Tape::SparseShared(key, ...) where `key` is the output's index here. The
// trainer finishes the prefix by seeding `tape` with the reduced gathered
// gradients (Tape::BackwardSeeded).
struct SharedForward {
  autograd::Tape tape;
  std::vector<autograd::Value> outputs;
  // Model-specific per-batch precomputation that must consume the trainer
  // RNG exactly as the monolithic BuildLoss would (e.g. IF-BPR's sampled
  // social items), so sliced and sequential training see identical draws.
  std::vector<uint32_t> scratch_indices;
};

// Contiguous [begin, end) sub-range of a batch index column.
inline std::vector<uint32_t> SliceOf(const std::vector<uint32_t>& v,
                                     size_t begin, size_t end) {
  return std::vector<uint32_t>(v.begin() + static_cast<ptrdiff_t>(begin),
                               v.begin() + static_cast<ptrdiff_t>(end));
}

// Interface shared by HOSR and every baseline: a model that ranks items for
// users, trains on BPR triples via the autograd tape, and supports fast
// (non-differentiable) full scoring for evaluation.
class RankingModel {
 public:
  virtual ~RankingModel() = default;

  virtual std::string name() const = 0;
  virtual uint32_t num_users() const = 0;
  virtual uint32_t num_items() const = 0;

  // Builds the training loss for one mini-batch of triples on `tape` and
  // returns the scalar (1x1) loss Value. The default implementation is the
  // BPR loss of Eq. 12 (without the L2 term, which the optimizer applies as
  // decoupled weight decay): mean over triples of -ln sigmoid(y+ - y-).
  // Models with extra loss terms (NSCR) or a different ranking objective
  // (IF-BPR) override this.
  virtual autograd::Value BuildLoss(autograd::Tape* tape,
                                    const data::BprBatch& batch,
                                    util::Rng* rng);

  // --- Sliced loss (parallel trainer) ---------------------------------
  //
  // A model that returns true here guarantees: BuildSharedForward followed
  // by BuildLossSlice over any partition of [0, batch.size()) into
  // contiguous slices produces — after the trainer's ordered sink
  // reduction — gradients bit-identical to one monolithic BuildLoss, for
  // any slice size and worker count. Each BuildLossSlice call must mirror
  // the monolithic graph's node-creation order over its rows and scale sum
  // reductions by the same per-row constant Mean's backward would use
  // (coefficient divided by the FULL batch size, as a float division).
  virtual bool SupportsSlicedLoss() const { return false; }

  // Builds the batch-independent forward prefix on shared->tape and any
  // per-batch scratch that consumes `rng`. Default: nothing shared.
  virtual void BuildSharedForward(SharedForward* shared,
                                  const data::BprBatch& batch,
                                  util::Rng* rng) {
    (void)shared;
    (void)batch;
    (void)rng;
  }

  // Builds the loss for batch rows [begin, end) on a worker-local tape.
  // `slice_rng` is the slice's deterministic RNG stream (a pure function
  // of seed/epoch/batch/slice); models without per-row slice noise ignore
  // it. Only valid when SupportsSlicedLoss() is true.
  virtual autograd::Value BuildLossSlice(autograd::Tape* tape,
                                         const SharedForward& shared,
                                         const data::BprBatch& batch,
                                         size_t begin, size_t end,
                                         util::Rng* slice_rng);

  // Differentiable scores for (user, item) pairs: returns a (B x 1) Value.
  // `training` enables dropout.
  virtual autograd::Value ScorePairs(autograd::Tape* tape,
                                     const std::vector<uint32_t>& users,
                                     const std::vector<uint32_t>& items,
                                     bool training) = 0;

  // Inference-mode scores of every item for each user: (|users| x m).
  virtual tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) = 0;

  // Exports the current parameters as frozen bilinear factors for snapshot
  // serving (serve::BuildSnapshot). Dot-product models override this;
  // models whose scorer is not bilinear (NCF, NSCR) keep the default
  // Unimplemented and cannot be served from a snapshot.
  virtual util::StatusOr<FrozenFactors> ExportFactors() const {
    return util::Status::Unimplemented(name() +
                                       " cannot export bilinear factors");
  }

  // Called by the trainer at each epoch start (e.g. HOSR re-samples its
  // graph-dropout adjacency here).
  virtual void OnEpochBegin(uint32_t epoch, util::Rng* rng) {
    (void)epoch;
    (void)rng;
  }

  virtual autograd::ParamStore* params() = 0;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_MODEL_H_
