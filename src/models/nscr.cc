#include "models/nscr.h"

#include "graph/spmm.h"
#include "tensor/ops.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hosr::models {

namespace {

// Row-stochastic social operator: row i averages over A_i.
graph::CsrMatrix BuildNeighborhoodMean(const graph::SocialGraph& social) {
  const auto& adj = social.adjacency();
  std::vector<graph::Triplet> triplets;
  triplets.reserve(adj.nnz());
  for (uint32_t i = 0; i < adj.num_rows(); ++i) {
    const size_t degree = adj.row_nnz(i);
    if (degree == 0) continue;
    const float w = 1.0f / static_cast<float>(degree);
    for (size_t k = adj.row_begin(i); k < adj.row_end(i); ++k) {
      triplets.push_back({i, adj.col_idx()[k], w});
    }
  }
  return graph::CsrMatrix::FromTriplets(adj.num_rows(), adj.num_cols(),
                                        std::move(triplets));
}

}  // namespace

Nscr::Nscr(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      dropout_rng_(config.seed ^ 0xa0761d6478bd642fULL),
      social_(train.social),
      neighborhood_mean_(BuildNeighborhoodMean(train.social)),
      neighborhood_mean_t_(neighborhood_mean_.Transpose()) {
  HOSR_CHECK(config.num_hidden_layers >= 1);
  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  user_emb_ = params_.CreateGaussian("user_emb", num_users_, d,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_, d,
                                     config.init_stddev, &rng);
  uint32_t in_dim = 2 * d;
  for (uint32_t layer = 0; layer < config.num_hidden_layers; ++layer) {
    mlp_weights_.push_back(params_.CreateXavier(
        util::StrFormat("nscr_w%u", layer), in_dim, d, &rng));
    mlp_biases_.push_back(
        params_.Create(util::StrFormat("nscr_b%u", layer), 1, d));
    in_dim = d;
  }
  out_weight_ = params_.CreateXavier("nscr_out", d, 1, &rng);
}

autograd::Value Nscr::ScorePairs(autograd::Tape* tape,
                                 const std::vector<uint32_t>& users,
                                 const std::vector<uint32_t>& items,
                                 bool training) {
  autograd::Value u = tape->GatherRows(tape->Param(user_emb_), users);
  autograd::Value v = tape->GatherRows(tape->Param(item_emb_), items);
  autograd::Value h = tape->ConcatCols(u, v);
  h = tape->Dropout(h, config_.dropout, training, &dropout_rng_);
  for (size_t layer = 0; layer < mlp_weights_.size(); ++layer) {
    h = tape->MatMul(h, tape->Param(mlp_weights_[layer]));
    h = tape->AddRowBroadcast(h, tape->Param(mlp_biases_[layer]));
    h = tape->Relu(h);
  }
  return tape->MatMul(h, tape->Param(out_weight_));
}

autograd::Value Nscr::BuildLoss(autograd::Tape* tape,
                                const data::BprBatch& batch, util::Rng* rng) {
  autograd::Value pos =
      ScorePairs(tape, batch.users, batch.pos_items, /*training=*/true);
  autograd::Value neg =
      ScorePairs(tape, batch.users, batch.neg_items, /*training=*/true);
  autograd::Value margin = tape->Sub(pos, neg);
  autograd::Value loss =
      tape->Scale(tape->Mean(tape->LogSigmoid(margin)), -1.0f);

  autograd::Value user_param = tape->Param(user_emb_);
  autograd::Value batch_u = tape->GatherRows(user_param, batch.users);

  // Smoothness: pull each batch user toward one uniformly sampled friend.
  if (config_.smoothness_weight > 0.0f) {
    std::vector<uint32_t> sampled_friends;
    sampled_friends.reserve(batch.users.size());
    for (const uint32_t u : batch.users) {
      const uint32_t degree = social_.Degree(u);
      if (degree == 0) {
        sampled_friends.push_back(u);  // no-op pair
        continue;
      }
      const auto& adj = social_.adjacency();
      const size_t offset =
          adj.row_begin(u) + static_cast<size_t>(rng->UniformInt(degree));
      sampled_friends.push_back(adj.col_idx()[offset]);
    }
    autograd::Value friend_u = tape->GatherRows(user_param, sampled_friends);
    autograd::Value diff = tape->Sub(batch_u, friend_u);
    autograd::Value penalty = tape->Mean(tape->RowDot(diff, diff));
    loss = tape->Add(loss, tape->Scale(penalty, config_.smoothness_weight));
  }

  // Fitting: pull each batch user toward her neighborhood mean.
  if (config_.fitting_weight > 0.0f) {
    autograd::Value mean_emb =
        tape->SpMM(&neighborhood_mean_, &neighborhood_mean_t_, user_param);
    autograd::Value batch_mean = tape->GatherRows(mean_emb, batch.users);
    autograd::Value diff = tape->Sub(batch_u, batch_mean);
    autograd::Value penalty = tape->Mean(tape->RowDot(diff, diff));
    loss = tape->Add(loss, tape->Scale(penalty, config_.fitting_weight));
  }
  return loss;
}

tensor::Matrix Nscr::ScoreAllItems(const std::vector<uint32_t>& users) {
  using tensor::Matrix;
  const uint32_t d = config_.embedding_dim;
  Matrix scores(users.size(), num_items_);
  util::ParallelFor(
      0, users.size(),
      [&](size_t begin, size_t end) {
        for (size_t b = begin; b < end; ++b) {
          const float* user_row = user_emb_->value.row(users[b]);
          Matrix h(num_items_, 2 * d);
          for (uint32_t j = 0; j < num_items_; ++j) {
            float* hr = h.row(j);
            std::copy(user_row, user_row + d, hr);
            const float* item_row = item_emb_->value.row(j);
            std::copy(item_row, item_row + d, hr + d);
          }
          for (size_t layer = 0; layer < mlp_weights_.size(); ++layer) {
            Matrix next(h.rows(), mlp_weights_[layer]->value.cols());
            tensor::Gemm(h, false, mlp_weights_[layer]->value, false, 1.0f,
                         0.0f, &next);
            const float* bias = mlp_biases_[layer]->value.data();
            for (size_t r = 0; r < next.rows(); ++r) {
              float* nr = next.row(r);
              for (size_t c = 0; c < next.cols(); ++c) {
                nr[c] = std::max(0.0f, nr[c] + bias[c]);
              }
            }
            h = std::move(next);
          }
          float* out_row = scores.row(b);
          for (uint32_t j = 0; j < num_items_; ++j) {
            const float* hr = h.row(j);
            float acc = 0.0f;
            for (uint32_t c = 0; c < d; ++c) {
              acc += hr[c] * out_weight_->value(c, 0);
            }
            out_row[j] = acc;
          }
        }
      },
      /*min_chunk=*/4);
  return scores;
}

}  // namespace hosr::models
