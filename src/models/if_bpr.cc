#include "models/if_bpr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace hosr::models {

namespace {

// Top `keep` candidate users by path count, excluding self and explicit
// friends. `counts` maps candidate -> number of connecting paths.
std::vector<uint32_t> TopCandidates(
    const std::unordered_map<uint32_t, uint32_t>& counts, uint32_t self,
    const std::vector<uint32_t>& explicit_friends, uint32_t keep) {
  std::vector<std::pair<uint32_t, uint32_t>> ranked;  // (count, user)
  ranked.reserve(counts.size());
  for (const auto& [candidate, count] : counts) {
    if (candidate == self) continue;
    if (std::binary_search(explicit_friends.begin(), explicit_friends.end(),
                           candidate)) {
      continue;
    }
    ranked.emplace_back(count, candidate);
  }
  const size_t take = std::min<size_t>(keep, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic ties
                    });
  std::vector<uint32_t> result;
  result.reserve(take);
  for (size_t i = 0; i < take; ++i) result.push_back(ranked[i].second);
  return result;
}

}  // namespace

IfBpr::IfBpr(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      implicit_friends_(train.num_users()),
      social_items_(train.num_users()) {
  util::Rng rng(config.seed);
  user_emb_ = params_.CreateGaussian("user_emb", num_users_,
                                     config.embedding_dim,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_,
                                     config.embedding_dim,
                                     config.init_stddev, &rng);

  const auto item_index = train.interactions.BuildItemIndex();
  const auto& social = train.social;

  util::ParallelFor(
      0, num_users_,
      [&](size_t begin, size_t end) {
        std::unordered_map<uint32_t, uint32_t> counts;
        for (size_t uu = begin; uu < end; ++uu) {
          const auto u = static_cast<uint32_t>(uu);
          const auto friends = social.Neighbors(u);

          // U-U-U meta-path: friends of friends, weighted by path count.
          counts.clear();
          for (const uint32_t f : friends) {
            for (const uint32_t ff : social.Neighbors(f)) ++counts[ff];
          }
          auto uuu = TopCandidates(counts, u, friends,
                                   config_.implicit_friends_per_user);

          // U-I-U meta-path: co-consumers, weighted by shared items.
          counts.clear();
          for (const uint32_t item : train.interactions.ItemsOf(u)) {
            for (const uint32_t other : item_index[item]) ++counts[other];
          }
          auto uiu = TopCandidates(counts, u, friends,
                                   config_.implicit_friends_per_user);

          // Merge the two path results (dedup, keep order).
          std::unordered_set<uint32_t> seen;
          auto& merged = implicit_friends_[u];
          for (const auto& source : {uuu, uiu}) {
            for (const uint32_t candidate : source) {
              if (seen.insert(candidate).second) merged.push_back(candidate);
            }
          }

          // Social items: consumed by any friend (explicit or implicit)
          // but not by u.
          std::unordered_set<uint32_t> item_pool;
          auto add_items = [&](uint32_t friend_id) {
            for (const uint32_t item : train.interactions.ItemsOf(friend_id)) {
              if (!train.interactions.Contains(u, item)) {
                item_pool.insert(item);
              }
            }
          };
          for (const uint32_t f : friends) add_items(f);
          for (const uint32_t f : merged) add_items(f);
          auto& pool = social_items_[u];
          pool.assign(item_pool.begin(), item_pool.end());
          std::sort(pool.begin(), pool.end());
          if (pool.size() > config_.max_social_items_per_user) {
            // Deterministic thinning: keep an evenly strided subset.
            std::vector<uint32_t> kept;
            kept.reserve(config_.max_social_items_per_user);
            const double stride = static_cast<double>(pool.size()) /
                                  config_.max_social_items_per_user;
            for (uint32_t k = 0; k < config_.max_social_items_per_user; ++k) {
              kept.push_back(pool[static_cast<size_t>(k * stride)]);
            }
            pool = std::move(kept);
          }
        }
      },
      /*min_chunk=*/32);
}

autograd::Value IfBpr::ScorePairs(autograd::Tape* tape,
                                  const std::vector<uint32_t>& users,
                                  const std::vector<uint32_t>& items,
                                  bool training) {
  (void)training;
  autograd::Value u = tape->GatherRows(tape->Param(user_emb_), users);
  autograd::Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

autograd::Value IfBpr::BuildLoss(autograd::Tape* tape,
                                 const data::BprBatch& batch,
                                 util::Rng* rng) {
  // Sample one social item per triple; users without social items reuse
  // the positive item so the pos>social term vanishes (log sigma(0) const)
  // and the social>neg term degrades to plain BPR.
  std::vector<uint32_t> social_items;
  social_items.reserve(batch.users.size());
  for (size_t b = 0; b < batch.users.size(); ++b) {
    const auto& pool = social_items_[batch.users[b]];
    if (pool.empty()) {
      social_items.push_back(batch.pos_items[b]);
    } else {
      social_items.push_back(pool[rng->UniformInt(pool.size())]);
    }
  }

  autograd::Value user_param = tape->Param(user_emb_);
  autograd::Value item_param = tape->Param(item_emb_);
  autograd::Value u = tape->GatherRows(user_param, batch.users);
  autograd::Value pos =
      tape->RowDot(u, tape->GatherRows(item_param, batch.pos_items));
  autograd::Value soc =
      tape->RowDot(u, tape->GatherRows(item_param, social_items));
  autograd::Value neg =
      tape->RowDot(u, tape->GatherRows(item_param, batch.neg_items));

  autograd::Value pos_over_soc =
      tape->Mean(tape->LogSigmoid(tape->Sub(pos, soc)));
  autograd::Value soc_over_neg =
      tape->Mean(tape->LogSigmoid(tape->Sub(soc, neg)));
  autograd::Value loss = tape->Scale(pos_over_soc, -1.0f);
  return tape->Add(
      loss, tape->Scale(soc_over_neg, -config_.social_term_weight));
}

void IfBpr::BuildSharedForward(SharedForward* shared,
                               const data::BprBatch& batch, util::Rng* rng) {
  // The same social-item draw sequence as BuildLoss, once per batch with
  // the trainer RNG, so sliced and monolithic training see identical
  // samples (empty pools draw nothing, exactly as BuildLoss).
  shared->scratch_indices.reserve(batch.users.size());
  for (size_t b = 0; b < batch.users.size(); ++b) {
    const auto& pool = social_items_[batch.users[b]];
    if (pool.empty()) {
      shared->scratch_indices.push_back(batch.pos_items[b]);
    } else {
      shared->scratch_indices.push_back(pool[rng->UniformInt(pool.size())]);
    }
  }
}

autograd::Value IfBpr::BuildLossSlice(autograd::Tape* tape,
                                      const SharedForward& shared,
                                      const data::BprBatch& batch,
                                      size_t begin, size_t end,
                                      util::Rng* slice_rng) {
  (void)slice_rng;
  // Mirrors BuildLoss node-for-node over this slice's rows; both Mean
  // terms become Sums scaled by their coefficient over the FULL batch
  // size (same float division as Mean's backward).
  autograd::Value user_param = tape->SparseParam(user_emb_);
  autograd::Value item_param = tape->SparseParam(item_emb_);
  autograd::Value u =
      tape->GatherRows(user_param, SliceOf(batch.users, begin, end));
  autograd::Value pos = tape->RowDot(
      u, tape->GatherRows(item_param, SliceOf(batch.pos_items, begin, end)));
  autograd::Value soc = tape->RowDot(
      u, tape->GatherRows(item_param,
                          SliceOf(shared.scratch_indices, begin, end)));
  autograd::Value neg = tape->RowDot(
      u, tape->GatherRows(item_param, SliceOf(batch.neg_items, begin, end)));

  autograd::Value pos_over_soc = tape->Sum(tape->LogSigmoid(tape->Sub(pos, soc)));
  autograd::Value soc_over_neg = tape->Sum(tape->LogSigmoid(tape->Sub(soc, neg)));
  const float batch_size = static_cast<float>(batch.size());
  autograd::Value loss = tape->Scale(pos_over_soc, -1.0f / batch_size);
  return tape->Add(
      loss, tape->Scale(soc_over_neg,
                        -config_.social_term_weight / batch_size));
}

tensor::Matrix IfBpr::ScoreAllItems(const std::vector<uint32_t>& users) {
  const tensor::Matrix u = tensor::GatherRows(user_emb_->value, users);
  tensor::Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

util::StatusOr<FrozenFactors> IfBpr::ExportFactors() const {
  FrozenFactors factors;
  factors.user_factors = user_emb_->value;
  factors.item_factors = item_emb_->value;
  return factors;
}

}  // namespace hosr::models
