#include "models/bpr_mf.h"

#include "tensor/ops.h"

namespace hosr::models {

BprMf::BprMf(uint32_t num_users, uint32_t num_items, const Config& config)
    : num_users_(num_users), num_items_(num_items) {
  util::Rng rng(config.seed);
  user_emb_ = params_.CreateGaussian("user_emb", num_users,
                                     config.embedding_dim,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items,
                                     config.embedding_dim,
                                     config.init_stddev, &rng);
}

autograd::Value BprMf::ScorePairs(autograd::Tape* tape,
                                  const std::vector<uint32_t>& users,
                                  const std::vector<uint32_t>& items,
                                  bool training) {
  (void)training;
  autograd::Value u = tape->GatherRows(tape->Param(user_emb_), users);
  autograd::Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

autograd::Value BprMf::BuildLossSlice(autograd::Tape* tape,
                                      const SharedForward& shared,
                                      const data::BprBatch& batch,
                                      size_t begin, size_t end,
                                      util::Rng* slice_rng) {
  (void)shared;
  (void)slice_rng;
  // Mirrors the default BuildLoss node-for-node over this slice's rows —
  // two ScorePairs-shaped blocks, each with its own user/item leaf — so
  // the parallel trainer's ordered reduction replays the monolithic
  // gradient fold bit-identically. Sum is scaled by -1/B with B the FULL
  // batch size, matching Mean's backward division.
  const std::vector<uint32_t> users = SliceOf(batch.users, begin, end);
  autograd::Value pos_u = tape->GatherRows(tape->SparseParam(user_emb_), users);
  autograd::Value pos_v = tape->GatherRows(tape->SparseParam(item_emb_),
                                           SliceOf(batch.pos_items, begin,
                                                   end));
  autograd::Value pos = tape->RowDot(pos_u, pos_v);
  autograd::Value neg_u = tape->GatherRows(tape->SparseParam(user_emb_), users);
  autograd::Value neg_v = tape->GatherRows(tape->SparseParam(item_emb_),
                                           SliceOf(batch.neg_items, begin,
                                                   end));
  autograd::Value neg = tape->RowDot(neg_u, neg_v);
  autograd::Value margin = tape->Sub(pos, neg);
  const float scale = -1.0f / static_cast<float>(batch.size());
  return tape->Scale(tape->Sum(tape->LogSigmoid(margin)), scale);
}

tensor::Matrix BprMf::ScoreAllItems(const std::vector<uint32_t>& users) {
  const tensor::Matrix u = tensor::GatherRows(user_emb_->value, users);
  tensor::Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

util::StatusOr<FrozenFactors> BprMf::ExportFactors() const {
  FrozenFactors factors;
  factors.user_factors = user_emb_->value;
  factors.item_factors = item_emb_->value;
  return factors;
}

}  // namespace hosr::models
