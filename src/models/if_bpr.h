#ifndef HOSR_MODELS_IF_BPR_H_
#define HOSR_MODELS_IF_BPR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"

namespace hosr::models {

// IF-BPR+ (Yu et al.): matrix factorization trained with an *ordered*
// pairwise ranking objective over item classes derived from explicit and
// heterogeneous-path *implicit* friends:
//   positive items  >  social items  >  unobserved items.
// Implicit friends are identified offline from two meta-paths —
// U-U-U (friends of friends, ranked by shared-friend count) and
// U-I-U (co-consumers, ranked by shared-item count) — mirroring the
// published method's path-based friend discovery. Social items are items
// consumed by any (explicit or implicit) friend but not by the user.
class IfBpr : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    float init_stddev = 0.1f;
    // Implicit friends kept per user per meta-path.
    uint32_t implicit_friends_per_user = 10;
    // Cap on cached social-item candidates per user.
    uint32_t max_social_items_per_user = 200;
    // Weight of the social>negative ranking term relative to pos>social.
    float social_term_weight = 1.0f;
    uint64_t seed = 7;
  };

  IfBpr(const data::Dataset& train, const Config& config);

  std::string name() const override { return "IF-BPR+"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  // Ordered ranking loss over (positive, social, negative) item triples.
  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  // Sliced loss: no shared tensors, but the per-batch social-item sampling
  // moves into the shared forward so it consumes the trainer RNG exactly
  // as the monolithic BuildLoss would regardless of slicing.
  bool SupportsSlicedLoss() const override { return true; }
  void BuildSharedForward(SharedForward* shared, const data::BprBatch& batch,
                          util::Rng* rng) override;
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  util::StatusOr<FrozenFactors> ExportFactors() const override;

  autograd::ParamStore* params() override { return &params_; }

  // Exposed for tests: the discovered implicit friends of `user`.
  const std::vector<uint32_t>& ImplicitFriends(uint32_t user) const {
    return implicit_friends_[user];
  }
  // Exposed for tests: cached social-item candidates of `user`.
  const std::vector<uint32_t>& SocialItems(uint32_t user) const {
    return social_items_[user];
  }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  std::vector<std::vector<uint32_t>> implicit_friends_;
  std::vector<std::vector<uint32_t>> social_items_;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_IF_BPR_H_
