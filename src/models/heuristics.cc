#include "models/heuristics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/thread_pool.h"

namespace hosr::models {

MostPopular::MostPopular(const data::InteractionMatrix& train)
    : item_scores_(train.num_items(), 0.0f) {
  for (uint32_t u = 0; u < train.num_users(); ++u) {
    for (const uint32_t item : train.ItemsOf(u)) item_scores_[item] += 1.0f;
  }
}

tensor::Matrix MostPopular::ScoreAllItems(
    const std::vector<uint32_t>& users) const {
  tensor::Matrix scores(users.size(), item_scores_.size());
  for (size_t b = 0; b < users.size(); ++b) {
    std::copy(item_scores_.begin(), item_scores_.end(), scores.row(b));
  }
  return scores;
}

ItemKnn::ItemKnn(const data::InteractionMatrix& train, const Config& config)
    : train_(&train),
      num_items_(train.num_items()),
      neighbors_(train.num_items()) {
  const auto item_index = train.BuildItemIndex();

  util::ParallelFor(
      0, num_items_,
      [&](size_t begin, size_t end) {
        std::unordered_map<uint32_t, uint32_t> co_counts;
        for (size_t item = begin; item < end; ++item) {
          co_counts.clear();
          const auto& users = item_index[item];
          if (users.empty()) continue;
          for (const uint32_t u : users) {
            for (const uint32_t other : train.ItemsOf(u)) {
              if (other != item) ++co_counts[other];
            }
          }
          std::vector<std::pair<uint32_t, float>> sims;
          sims.reserve(co_counts.size());
          const auto size_a = static_cast<float>(users.size());
          for (const auto& [other, co] : co_counts) {
            const auto size_b =
                static_cast<float>(item_index[other].size());
            const float sim = static_cast<float>(co) /
                              (std::sqrt(size_a * size_b) + config.shrinkage);
            sims.emplace_back(other, sim);
          }
          const size_t keep =
              std::min<size_t>(config.max_neighbors, sims.size());
          std::partial_sort(sims.begin(), sims.begin() + keep, sims.end(),
                            [](const auto& a, const auto& b) {
                              if (a.second != b.second) {
                                return a.second > b.second;
                              }
                              return a.first < b.first;
                            });
          sims.resize(keep);
          neighbors_[item] = std::move(sims);
        }
      },
      /*min_chunk=*/16);
}

tensor::Matrix ItemKnn::ScoreAllItems(
    const std::vector<uint32_t>& users) const {
  tensor::Matrix scores(users.size(), num_items_);
  util::ParallelFor(
      0, users.size(),
      [&](size_t begin, size_t end) {
        for (size_t b = begin; b < end; ++b) {
          float* row = scores.row(b);
          for (const uint32_t consumed : train_->ItemsOf(users[b])) {
            for (const auto& [neighbor, sim] : neighbors_[consumed]) {
              row[neighbor] += sim;
            }
          }
        }
      },
      /*min_chunk=*/8);
  return scores;
}

}  // namespace hosr::models
