#ifndef HOSR_MODELS_NSCR_H_
#define HOSR_MODELS_NSCR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"

namespace hosr::models {

// NSCR (Wang et al., "Item Silk Road"), adapted to implicit feedback as in
// the paper's experiments: a deep network scores user-item interactions,
// and two *social regularization* terms shape the user embeddings —
//  * smoothness: connected users should have close embeddings
//    (sampled-neighbor L2 penalty), and
//  * fitting: a user's embedding should stay close to her neighborhood
//    mean (computed with a row-normalized social operator).
// Representative of the regularization-based family the paper contrasts
// with explicit factoring (first-order social only).
class Nscr : public RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    uint32_t num_hidden_layers = 3;
    float init_stddev = 0.1f;
    float dropout = 0.0f;
    float smoothness_weight = 0.1f;
    float fitting_weight = 0.1f;
    uint64_t seed = 7;
  };

  Nscr(const data::Dataset& train, const Config& config);

  std::string name() const override { return "NSCR"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  // BPR loss plus the two social constraint terms.
  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  autograd::ParamStore* params() override { return &params_; }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  util::Rng dropout_rng_;
  // Neighbor lists for smoothness sampling.
  graph::SocialGraph social_;
  // Row-normalized social operator (mean over neighbors) + transpose.
  graph::CsrMatrix neighborhood_mean_;
  graph::CsrMatrix neighborhood_mean_t_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  std::vector<autograd::Param*> mlp_weights_;
  std::vector<autograd::Param*> mlp_biases_;
  autograd::Param* out_weight_;
};

}  // namespace hosr::models

#endif  // HOSR_MODELS_NSCR_H_
