#include "models/early_stopping.h"

#include "autograd/checkpoint.h"
#include "util/logging.h"

namespace hosr::models {

util::Status EarlyStoppingConfig::Validate() const {
  if (max_epochs == 0) {
    return util::Status::InvalidArgument("max_epochs must be > 0");
  }
  if (eval_stride == 0) {
    return util::Status::InvalidArgument("eval_stride must be > 0");
  }
  if (patience == 0) {
    return util::Status::InvalidArgument("patience must be > 0");
  }
  if (min_delta < 0.0) {
    return util::Status::InvalidArgument("min_delta must be >= 0");
  }
  return util::Status::Ok();
}

EarlyStoppingResult TrainWithEarlyStopping(
    RankingModel* model, const data::InteractionMatrix* train,
    const TrainConfig& train_config, const EarlyStoppingConfig& config,
    const ValidationMetric& metric) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
  BprTrainer trainer(model, train, train_config);

  EarlyStoppingResult result;
  autograd::ParamSnapshot best_params;
  double best = -1.0;
  uint32_t evals_without_improvement = 0;

  for (uint32_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    result.history.push_back(trainer.RunEpoch());
    ++result.epochs_run;
    const bool should_eval = (epoch + 1) % config.eval_stride == 0 ||
                             epoch + 1 == config.max_epochs;
    if (!should_eval) continue;

    const double value = metric(model);
    if (value > best + config.min_delta) {
      best = value;
      result.best_metric = value;
      result.best_epoch = epoch + 1;
      best_params = autograd::ParamSnapshot::Capture(*model->params());
      evals_without_improvement = 0;
    } else {
      ++evals_without_improvement;
      if (evals_without_improvement >= config.patience) {
        result.stopped_early = true;
        break;
      }
    }
  }

  if (!best_params.empty()) {
    best_params.Restore(model->params());
  }
  return result;
}

util::StatusOr<ValidationSplit> CarveValidation(
    const data::InteractionMatrix& train, double validation_fraction,
    util::Rng* rng) {
  if (validation_fraction <= 0.0 || validation_fraction >= 1.0) {
    return util::Status::InvalidArgument(
        "validation_fraction must be in (0,1)");
  }
  std::vector<data::Interaction> remainder_list;
  std::vector<data::Interaction> validation_list;
  for (uint32_t u = 0; u < train.num_users(); ++u) {
    std::vector<uint32_t> items = train.ItemsOf(u);
    if (items.empty()) continue;
    rng->Shuffle(items);
    auto num_validation = static_cast<size_t>(
        static_cast<double>(items.size()) * validation_fraction);
    num_validation = std::min(num_validation, items.size() - 1);
    for (size_t k = 0; k < items.size(); ++k) {
      if (k < num_validation) {
        validation_list.push_back({u, items[k]});
      } else {
        remainder_list.push_back({u, items[k]});
      }
    }
  }
  HOSR_ASSIGN_OR_RETURN(
      data::InteractionMatrix remainder,
      data::InteractionMatrix::FromInteractions(
          train.num_users(), train.num_items(), std::move(remainder_list)));
  HOSR_ASSIGN_OR_RETURN(
      data::InteractionMatrix validation,
      data::InteractionMatrix::FromInteractions(
          train.num_users(), train.num_items(), std::move(validation_list)));
  ValidationSplit split;
  split.train_remainder = std::move(remainder);
  split.validation = std::move(validation);
  return split;
}

}  // namespace hosr::models
