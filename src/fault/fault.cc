#include "fault/fault.h"

#include <chrono>
#include <thread>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace hosr::fault {

namespace {

// SplitMix64 finalizer: decorrelates (seed, point, token) into a uniform
// 64-bit hash so probability triggers are pure functions of their inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

util::StatusOr<util::StatusCode> ParseCodeName(std::string_view name) {
  if (name == "unavailable") return util::StatusCode::kUnavailable;
  if (name == "deadline_exceeded") return util::StatusCode::kDeadlineExceeded;
  if (name == "resource_exhausted") {
    return util::StatusCode::kResourceExhausted;
  }
  if (name == "io_error") return util::StatusCode::kIoError;
  if (name == "internal") return util::StatusCode::kInternal;
  if (name == "data_loss") return util::StatusCode::kDataLoss;
  return util::Status::InvalidArgument(
      util::StrFormat("unknown fault code \"%.*s\"",
                      static_cast<int>(name.size()), name.data()));
}

util::StatusOr<double> ParseFloat(std::string_view text) {
  try {
    size_t consumed = 0;
    const double value = std::stod(std::string(text), &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    return util::Status::InvalidArgument(
        util::StrFormat("bad number \"%.*s\" in fault spec",
                        static_cast<int>(text.size()), text.data()));
  }
}

util::StatusOr<uint64_t> ParseCount(std::string_view text) {
  HOSR_ASSIGN_OR_RETURN(const double value, ParseFloat(text));
  if (value < 1.0 || value != static_cast<double>(
                                  static_cast<uint64_t>(value))) {
    return util::Status::InvalidArgument(
        util::StrFormat("fault spec count must be a positive integer, got "
                        "\"%.*s\"", static_cast<int>(text.size()),
                        text.data()));
  }
  return static_cast<uint64_t>(value);
}

std::vector<std::string_view> SplitView(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

util::StatusOr<InjectionSpec> ParseClause(std::string_view clause) {
  const std::vector<std::string_view> parts = SplitView(clause, ':');
  if (parts.size() < 2 || parts[0].empty()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "fault clause \"%.*s\" must be point:option[:option...]",
        static_cast<int>(clause.size()), clause.data()));
  }
  InjectionSpec spec;
  spec.point = std::string(parts[0]);
  int triggers = 0;
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string_view opt = parts[i];
    const size_t eq = opt.find('=');
    const std::string_view key = opt.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : opt.substr(eq + 1);
    if (key == "p") {
      HOSR_ASSIGN_OR_RETURN(spec.probability, ParseFloat(value));
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        return util::Status::InvalidArgument(
            "fault probability must be in [0, 1]");
      }
      ++triggers;
    } else if (key == "n") {
      HOSR_ASSIGN_OR_RETURN(spec.every_nth, ParseCount(value));
      ++triggers;
    } else if (key == "once") {
      spec.once_at = 1;
      if (eq != std::string_view::npos) {
        HOSR_ASSIGN_OR_RETURN(spec.once_at, ParseCount(value));
      }
      ++triggers;
    } else if (key == "code") {
      HOSR_ASSIGN_OR_RETURN(spec.code, ParseCodeName(value));
      spec.has_code = true;
    } else if (key == "delay_ms") {
      HOSR_ASSIGN_OR_RETURN(spec.delay_ms, ParseFloat(value));
      if (spec.delay_ms < 0.0) {
        return util::Status::InvalidArgument("fault delay_ms must be >= 0");
      }
    } else {
      return util::Status::InvalidArgument(util::StrFormat(
          "unknown fault option \"%.*s\"", static_cast<int>(opt.size()),
          opt.data()));
    }
  }
  if (triggers != 1) {
    return util::Status::InvalidArgument(util::StrFormat(
        "fault clause \"%.*s\" needs exactly one trigger (p=, n=, or once)",
        static_cast<int>(clause.size()), clause.data()));
  }
  return spec;
}

}  // namespace

util::StatusOr<std::vector<InjectionSpec>> ParseFaultSpec(
    std::string_view spec) {
  std::vector<InjectionSpec> specs;
  if (spec.empty()) return specs;
  for (const std::string_view clause : SplitView(spec, ',')) {
    if (clause.empty()) continue;
    HOSR_ASSIGN_OR_RETURN(InjectionSpec parsed, ParseClause(clause));
    specs.push_back(std::move(parsed));
  }
  return specs;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry;
  return *registry;
}

util::Status FaultRegistry::Configure(std::string_view spec, uint64_t seed) {
  HOSR_ASSIGN_OR_RETURN(std::vector<InjectionSpec> specs,
                        ParseFaultSpec(spec));
  Arm(std::move(specs), seed);
  return util::Status::Ok();
}

void FaultRegistry::Arm(std::vector<InjectionSpec> specs, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  seed_ = seed;
  for (InjectionSpec& spec : specs) {
    auto point = std::make_unique<Point>();
    point->seed_hash = Mix64(seed ^ HashString(spec.point));
    const std::string name = spec.point;
    point->spec = std::move(spec);
    points_[name] = std::move(point);
  }
  armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

util::Status FaultRegistry::InjectImpl(std::string_view point,
                                       uint64_t token) {
  Point* p = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end()) return util::Status::Ok();
    p = it->second.get();
  }
  // 1-based hit index; also the default token for probability triggers.
  const uint64_t hit =
      p->hits.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fire = false;
  const InjectionSpec& spec = p->spec;
  if (spec.probability >= 0.0) {
    const uint64_t t = token == kAutoToken ? hit : token;
    const uint64_t h = Mix64(p->seed_hash ^ Mix64(t));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    fire = u < spec.probability;
  } else if (spec.every_nth > 0) {
    fire = hit % spec.every_nth == 0;
  } else if (spec.once_at > 0) {
    fire = hit == spec.once_at;
  }
  if (!fire) return util::Status::Ok();

  p->fired.fetch_add(1, std::memory_order_relaxed);
  HOSR_COUNTER("fault/injected").Increment();
  // Every fired fault is a flight-recorder trigger: when armed, the recorder
  // notes the point and dumps (rate-limited) so the metrics/span state at
  // the moment of injection is preserved for the post-mortem.
  obs::FlightRecorder::Global().OnFault(spec.point);
  if (spec.delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec.delay_ms));
    // A pure latency clause (no explicit code=) succeeds after the sleep.
    if (!spec.has_code) return util::Status::Ok();
  }
  return util::Status(spec.code,
                      util::StrFormat("injected fault at %s (hit %llu)",
                                      spec.point.c_str(),
                                      static_cast<unsigned long long>(hit)));
}

PointStats FaultRegistry::StatsFor(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  PointStats stats;
  if (it != points_.end()) {
    stats.hits = it->second->hits.load(std::memory_order_relaxed);
    stats.fired = it->second->fired.load(std::memory_order_relaxed);
  }
  return stats;
}

uint64_t FaultRegistry::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, point] : points_) {
    total += point->fired.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

}  // namespace hosr::fault
