#ifndef HOSR_FAULT_FAULT_H_
#define HOSR_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace hosr::fault {

// Deterministic, seedable fault injection (docs/ROBUSTNESS.md).
//
// Code under test calls fault::Inject("point.name") at named injection
// points; the registry decides — from the armed spec, the global seed, and
// a deterministic token — whether that hit raises an error Status or
// injects latency. When nothing is armed the check is a single relaxed
// atomic load, so shipping the injection points costs nothing in
// production builds.
//
// Spec grammar (one flag value arms any number of points):
//
//   fault_spec   := clause (',' clause)*
//   clause       := point (':' option)+
//   option       := 'p=' FLOAT          fire with probability p per hit
//                 | 'n=' INT            fire on every Nth hit (1-based)
//                 | 'once' ['=' INT]    fire exactly once, on the Kth hit
//                 | 'code=' NAME        status to raise (default unavailable)
//                 | 'delay_ms=' FLOAT   sleep instead of (or before) failing
//
//   NAME := unavailable | deadline_exceeded | resource_exhausted
//         | io_error | internal | data_loss
//
// Examples:
//   engine.score:p=0.2                     fail 20% of scoring calls
//   engine.score:p=0.05:delay_ms=3        slow 5% of calls by 3ms, then fail
//   cli.train_crash:once=2                 crash after the 2nd epoch
//   snapshot.write:n=3:code=io_error       every 3rd write fails with IoError
//
// Determinism: a probability trigger hashes (seed, point, token). Callers
// on a hot path pass an explicit token (e.g. request index * attempts +
// attempt) so the fire/no-fire decision is a pure function of the request,
// independent of thread interleaving; with no token the per-point hit
// counter is used, which keeps total fire *counts* reproducible even under
// concurrency. Counter triggers (n=, once=) always use the hit counter.

// Token value meaning "use the per-point hit counter".
inline constexpr uint64_t kAutoToken = ~0ull;

struct InjectionSpec {
  std::string point;
  // Exactly one trigger is active per clause.
  double probability = -1.0;  // p=  (in [0,1]); negative = unset
  uint64_t every_nth = 0;     // n=  (fires on hits N, 2N, 3N, ...)
  uint64_t once_at = 0;       // once[=K]  (fires only on hit K)
  util::StatusCode code = util::StatusCode::kUnavailable;
  bool has_code = false;      // explicit code= (delay-only clauses omit it)
  double delay_ms = 0.0;
};

// Parses the grammar above. Returns InvalidArgument with a pointer at the
// offending clause on any malformed input.
util::StatusOr<std::vector<InjectionSpec>> ParseFaultSpec(
    std::string_view spec);

// Per-point observability snapshot.
struct PointStats {
  uint64_t hits = 0;
  uint64_t fired = 0;
};

class FaultRegistry {
 public:
  static FaultRegistry& Global();

  // Parses and arms `spec` under `seed`. Replaces any previous
  // configuration. An empty spec disarms everything.
  util::Status Configure(std::string_view spec, uint64_t seed);

  // Arms pre-parsed specs (test convenience).
  void Arm(std::vector<InjectionSpec> specs, uint64_t seed);

  // Removes every injection point and restores the zero-cost fast path.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // The slow path behind fault::Inject; call that instead.
  util::Status InjectImpl(std::string_view point, uint64_t token);

  // Stats for one point (zeros when the point is not armed) and the
  // process-wide injected total (mirrors the fault/injected counter).
  PointStats StatsFor(std::string_view point) const;
  uint64_t TotalInjected() const;
  std::vector<std::string> ArmedPoints() const;

 private:
  FaultRegistry() = default;

  struct Point {
    InjectionSpec spec;
    uint64_t seed_hash = 0;  // splitmix(seed ^ hash(point))
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fired{0};
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points_;
  uint64_t seed_ = 0;
};

// Evaluates the named injection point: Ok unless an armed trigger fires, in
// which case the configured latency is injected and/or the configured error
// Status is returned. Near-zero cost (one relaxed load) when disarmed.
inline util::Status Inject(std::string_view point,
                           uint64_t token = kAutoToken) {
  FaultRegistry& registry = FaultRegistry::Global();
  if (!registry.armed()) return util::Status::Ok();
  return registry.InjectImpl(point, token);
}

}  // namespace hosr::fault

#endif  // HOSR_FAULT_FAULT_H_
