// AVX2+FMA microkernels. This translation unit is the only one compiled
// with -mavx2 -mfma (see CMakeLists.txt) so the rest of the build stays
// baseline-portable; nothing here is reachable unless dispatch.cc probed
// CPUID and selected this table at process start.
//
// Reduction orders are fixed per kernel (8-lane partial sums combined in a
// fixed tree, scalar remainder folded in last), so results are
// bit-reproducible run-to-run within this dispatch level — they differ from
// the scalar table only by float reassociation (~1e-7 relative; the
// equivalence tests in tests/kernels_test.cc bound it at 1e-5).
#include <cfloat>
#include <immintrin.h>

#include "kernels/kernels.h"

namespace hosr::kernels {
namespace {

// Horizontal sum of an 8-lane register with a fixed combination tree:
// (l0+l4)+(l2+l6) + (l1+l5)+(l3+l7).
inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum4 = _mm_add_ps(lo, hi);
  __m128 sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
  __m128 sum1 = _mm_add_ss(sum2, _mm_movehdup_ps(sum2));
  return _mm_cvtss_f32(sum1);
}

inline float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 max4 = _mm_max_ps(lo, hi);
  __m128 max2 = _mm_max_ps(max4, _mm_movehl_ps(max4, max4));
  __m128 max1 = _mm_max_ss(max2, _mm_movehdup_ps(max2));
  return _mm_cvtss_f32(max1);
}

void AxpyAvx2(size_t n, float alpha, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
    _mm256_storeu_ps(
        y + i + 8, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i + 8),
                                   _mm256_loadu_ps(y + i + 8)));
  }
  if (i + 8 <= n) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
    i += 8;
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Axpy2Avx2(size_t n, float a0, const float* x0, float a1, const float* x1,
               float* y) {
  const __m256 va0 = _mm256_set1_ps(a0);
  const __m256 va1 = _mm256_set1_ps(a1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 acc = _mm256_fmadd_ps(va0, _mm256_loadu_ps(x0 + i),
                                 _mm256_loadu_ps(y + i));
    acc = _mm256_fmadd_ps(va1, _mm256_loadu_ps(x1 + i), acc);
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

float DotAvx2(size_t n, const float* a, const float* b) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return HorizontalSum(_mm256_add_ps(acc0, acc1)) + tail;
}

void ScaleAvx2(size_t n, float alpha, float* x) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

float ReduceMaxAvx2(size_t n, const float* x) {
  size_t i = 0;
  float best = x[0];
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
    }
    best = HorizontalMax(vmax);
  }
  for (; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

float ScoreBlockAvx2(size_t items, size_t d, const float* u,
                     const float* item_rows, const float* bias, float* out) {
  float best = -FLT_MAX;
  size_t j = 0;
  // Two items per pass share each load of u, halving its bandwidth cost.
  // Each item's reduction replays DotAvx2's order exactly (two 8-lane
  // partials over 16-wide steps, 8-wide epilogue into the first partial,
  // scalar tail folded in last), so a blocked serving scan is bit-identical
  // to the Gemm/RowDot paths that score the same pair of vectors.
  for (; j + 2 <= items; j += 2) {
    const float* r0 = item_rows + j * d;
    const float* r1 = r0 + d;
    __m256 acc0a = _mm256_setzero_ps();
    __m256 acc0b = _mm256_setzero_ps();
    __m256 acc1a = _mm256_setzero_ps();
    __m256 acc1b = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m256 vu0 = _mm256_loadu_ps(u + i);
      const __m256 vu1 = _mm256_loadu_ps(u + i + 8);
      acc0a = _mm256_fmadd_ps(vu0, _mm256_loadu_ps(r0 + i), acc0a);
      acc0b = _mm256_fmadd_ps(vu1, _mm256_loadu_ps(r0 + i + 8), acc0b);
      acc1a = _mm256_fmadd_ps(vu0, _mm256_loadu_ps(r1 + i), acc1a);
      acc1b = _mm256_fmadd_ps(vu1, _mm256_loadu_ps(r1 + i + 8), acc1b);
    }
    if (i + 8 <= d) {
      const __m256 vu = _mm256_loadu_ps(u + i);
      acc0a = _mm256_fmadd_ps(vu, _mm256_loadu_ps(r0 + i), acc0a);
      acc1a = _mm256_fmadd_ps(vu, _mm256_loadu_ps(r1 + i), acc1a);
      i += 8;
    }
    float t0 = 0.0f, t1 = 0.0f;
    for (; i < d; ++i) {
      t0 += u[i] * r0[i];
      t1 += u[i] * r1[i];
    }
    float s0 = HorizontalSum(_mm256_add_ps(acc0a, acc0b)) + t0;
    float s1 = HorizontalSum(_mm256_add_ps(acc1a, acc1b)) + t1;
    if (bias != nullptr) {
      s0 += bias[j];
      s1 += bias[j + 1];
    }
    out[j] = s0;
    out[j + 1] = s1;
    if (s0 > best) best = s0;
    if (s1 > best) best = s1;
  }
  if (j < items) {
    float score = DotAvx2(d, u, item_rows + j * d);
    if (bias != nullptr) score += bias[j];
    out[j] = score;
    if (score > best) best = score;
  }
  return best;
}

constexpr KernelTable kAvx2Table = {
    "avx2",        kLevelAvx2, AxpyAvx2,      Axpy2Avx2,
    DotAvx2,       ScaleAvx2,  ReduceMaxAvx2, ScoreBlockAvx2,
};

}  // namespace

// Referenced by dispatch.cc behind the HOSR_KERNELS_HAVE_AVX2 define.
const KernelTable& Avx2Table() { return kAvx2Table; }

}  // namespace hosr::kernels
