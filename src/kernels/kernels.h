#ifndef HOSR_KERNELS_KERNELS_H_
#define HOSR_KERNELS_KERNELS_H_

#include <cstddef>

namespace hosr::kernels {

// Runtime-dispatched dense microkernels backing every dense hot path in the
// library (tensor::Gemm/Axpy/RowDot, graph::Spmm, the serving GEMV, the
// evaluator's top-K scan). The instruction set is probed once per process
// (CPUID) and every call site reads the same resolved table, so a process
// never mixes ISA levels: each kernel has a fixed reduction order within a
// level, which preserves the train-resume and snapshot bit-identity
// contracts (docs/ROBUSTNESS.md) for any fixed dispatch mode.
//
// Setting the environment variable HOSR_FORCE_SCALAR (to anything but "0")
// before the first kernel call pins dispatch to the portable scalar table —
// the knob the forced-scalar ctest matrix and cross-ISA debugging use.
// docs/PERFORMANCE.md documents the dispatch table and measured speedups.

// Dispatch levels, exported through the kernels/dispatch_level gauge.
inline constexpr int kLevelScalar = 0;
inline constexpr int kLevelAvx2 = 2;  // AVX2 + FMA

// One ISA level's implementation of every microkernel. All pointers are
// non-null in every table. Buffers may be unaligned; x/y/out must not alias
// unless a kernel says otherwise.
struct KernelTable {
  const char* name;  // "scalar" or "avx2"
  int level;         // kLevelScalar / kLevelAvx2

  // y[i] += alpha * x[i] for i in [0, n).
  void (*axpy)(size_t n, float alpha, const float* x, float* y);

  // y[i] += a0 * x0[i] + a1 * x1[i] — one pass over y; the 2-way unrolled
  // rank-1 update used by the SpMM gather and GEMM inner loops to halve the
  // y load/store traffic.
  void (*axpy2)(size_t n, float a0, const float* x0, float a1,
                const float* x1, float* y);

  // Returns sum_i a[i] * b[i].
  float (*dot)(size_t n, const float* a, const float* b);

  // x[i] *= alpha.
  void (*scale)(size_t n, float alpha, float* x);

  // Returns max_i x[i]; n must be >= 1. Feeds the top-K block fast-reject.
  float (*reduce_max)(size_t n, const float* x);

  // Fused scoring GEMV over `items` consecutive d-dim rows starting at
  // `item_rows` (row-major, stride d):
  //   out[j] = dot(u, item_rows + j*d) + (bias != nullptr ? bias[j] : 0)
  // Returns the maximum score of the block (-FLT_MAX when items == 0) so
  // serving can reject a whole block against the current top-K threshold
  // without a second pass.
  float (*score_block)(size_t items, size_t d, const float* u,
                       const float* item_rows, const float* bias, float* out);
};

// The table every hot path uses. Resolved exactly once per process from
// CPUID + HOSR_FORCE_SCALAR; afterwards this is a single atomic load.
// Publishes the chosen level through the kernels/dispatch_level gauge.
const KernelTable& Active();

// The portable scalar table; always available, bit-reproducible anywhere.
const KernelTable& Scalar();

// The best table this CPU supports, ignoring HOSR_FORCE_SCALAR. Tests
// compare Best() against Scalar() for numerical agreement.
const KernelTable& Best();

// True when HOSR_FORCE_SCALAR pinned dispatch to the scalar table.
bool ForcedScalar();

// Test-only: overrides Active() (nullptr restores normal resolution).
// Production dispatch stays fixed for the process lifetime; this hook exists
// so one test process can run a workload under both tables and compare.
void SetActiveForTesting(const KernelTable* table);

}  // namespace hosr::kernels

#endif  // HOSR_KERNELS_KERNELS_H_
