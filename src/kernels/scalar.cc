// Portable scalar reference kernels. Every loop accumulates strictly
// left-to-right with a single accumulator, so results are bit-identical on
// any platform and any compiler that honors IEEE float semantics — this is
// the table HOSR_FORCE_SCALAR pins and the baseline the SIMD tables are
// tested against.
#include <cfloat>

#include "kernels/kernels.h"

namespace hosr::kernels {
namespace {

void AxpyScalar(size_t n, float alpha, const float* x, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Axpy2Scalar(size_t n, float a0, const float* x0, float a1,
                 const float* x1, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

float DotScalar(size_t n, const float* a, const float* b) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void ScaleScalar(size_t n, float alpha, float* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float ReduceMaxScalar(size_t n, const float* x) {
  float best = x[0];
  for (size_t i = 1; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

float ScoreBlockScalar(size_t items, size_t d, const float* u,
                       const float* item_rows, const float* bias, float* out) {
  float best = -FLT_MAX;
  for (size_t j = 0; j < items; ++j) {
    float score = DotScalar(d, u, item_rows + j * d);
    if (bias != nullptr) score += bias[j];
    out[j] = score;
    if (score > best) best = score;
  }
  return best;
}

constexpr KernelTable kScalarTable = {
    "scalar",        kLevelScalar, AxpyScalar,      Axpy2Scalar,
    DotScalar,       ScaleScalar,  ReduceMaxScalar, ScoreBlockScalar,
};

}  // namespace

const KernelTable& Scalar() { return kScalarTable; }

}  // namespace hosr::kernels
