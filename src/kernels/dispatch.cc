// Runtime kernel dispatch: probe the CPU once, honor HOSR_FORCE_SCALAR, and
// hand every hot path the same table for the life of the process.
#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace hosr::kernels {

#ifdef HOSR_KERNELS_HAVE_AVX2
// Defined in avx2.cc (the only TU built with -mavx2 -mfma). Safe to *call*
// only after a CPUID check.
const KernelTable& Avx2Table();
#endif

namespace {

bool CpuSupportsAvx2Fma() {
#ifdef HOSR_KERNELS_HAVE_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Test-only override; null in production, so Active() costs one relaxed
// atomic load on top of the resolved function-local static.
std::atomic<const KernelTable*> g_active_override{nullptr};

void PublishLevel(const KernelTable& table) {
  HOSR_GAUGE("kernels/dispatch_level").Set(static_cast<double>(table.level));
}

}  // namespace

const KernelTable& Best() {
#ifdef HOSR_KERNELS_HAVE_AVX2
  if (CpuSupportsAvx2Fma()) return Avx2Table();
#endif
  return Scalar();
}

bool ForcedScalar() {
  static const bool forced = [] {
    const char* value = std::getenv("HOSR_FORCE_SCALAR");
    return value != nullptr && *value != '\0' &&
           std::strcmp(value, "0") != 0;
  }();
  return forced;
}

const KernelTable& Active() {
  const KernelTable* override_table =
      g_active_override.load(std::memory_order_acquire);
  if (override_table != nullptr) return *override_table;
  static const KernelTable* resolved = [] {
    const KernelTable& table = ForcedScalar() ? Scalar() : Best();
    PublishLevel(table);
    return &table;
  }();
  return *resolved;
}

void SetActiveForTesting(const KernelTable* table) {
  g_active_override.store(table, std::memory_order_release);
  PublishLevel(table != nullptr ? *table : Active());
}

}  // namespace hosr::kernels
