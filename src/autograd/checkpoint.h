#ifndef HOSR_AUTOGRAD_CHECKPOINT_H_
#define HOSR_AUTOGRAD_CHECKPOINT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "autograd/param.h"
#include "tensor/matrix.h"
#include "util/statusor.h"

namespace hosr::autograd {

// In-memory snapshot of every parameter's values (not gradients).
// Used by early stopping to restore the best epoch's weights.
class ParamSnapshot {
 public:
  ParamSnapshot() = default;

  // Captures the current values of `store`.
  static ParamSnapshot Capture(const ParamStore& store);

  // Writes the captured values back. The store must have the same number,
  // order, and shapes of parameters as at capture time.
  void Restore(ParamStore* store) const;

  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

 private:
  std::vector<tensor::Matrix> values_;
};

// Stream-level body of a parameter checkpoint: magic, count, then named
// matrices. Embedded verbatim inside trainer checkpoints; ReadParams
// matches parameters by name and validates shapes before mutating the
// store, so a checkpoint survives reordering but not renaming.
util::Status WriteParams(const ParamStore& store, std::ostream* out);
util::Status ReadParams(std::istream* in, ParamStore* store);

// On-disk checkpoint of a ParamStore: the WriteParams body wrapped in a
// CRC-32 file envelope and written atomically (temp file + rename), so a
// crash mid-save never clobbers the previous checkpoint and a corrupted
// file loads as DataLoss instead of garbage weights.
util::Status SaveCheckpoint(const ParamStore& store, const std::string& path);
util::Status LoadCheckpoint(const std::string& path, ParamStore* store);

}  // namespace hosr::autograd

#endif  // HOSR_AUTOGRAD_CHECKPOINT_H_
