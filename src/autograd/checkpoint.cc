#include "autograd/checkpoint.h"

#include <cstdint>
#include <map>
#include <sstream>

#include "tensor/serialize.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace hosr::autograd {

namespace {
constexpr uint32_t kCheckpointMagic = 0x48435054;  // "HCPT"
}  // namespace

ParamSnapshot ParamSnapshot::Capture(const ParamStore& store) {
  ParamSnapshot snapshot;
  snapshot.values_.reserve(store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    snapshot.values_.push_back(store.at(i)->value);
  }
  return snapshot;
}

void ParamSnapshot::Restore(ParamStore* store) const {
  HOSR_CHECK(store->size() == values_.size())
      << "store has " << store->size() << " params, snapshot has "
      << values_.size();
  for (size_t i = 0; i < values_.size(); ++i) {
    Param* p = store->at(i);
    HOSR_CHECK(p->value.SameShape(values_[i]))
        << "shape mismatch restoring " << p->name;
    p->value = values_[i];
  }
}

util::Status WriteParams(const ParamStore& store, std::ostream* out) {
  const uint32_t magic = kCheckpointMagic;
  const uint64_t count = store.size();
  out->write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (size_t i = 0; i < store.size(); ++i) {
    const Param* p = store.at(i);
    const uint64_t name_len = p->name.size();
    out->write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out->write(p->name.data(), static_cast<std::streamsize>(name_len));
    HOSR_RETURN_IF_ERROR(tensor::WriteMatrix(p->value, out));
  }
  if (!*out) return util::Status::IoError("parameter write failed");
  return util::Status::Ok();
}

util::Status ReadParams(std::istream* in, ParamStore* store) {
  uint32_t magic = 0;
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!*in || magic != kCheckpointMagic) {
    return util::Status::InvalidArgument("not a HOSR parameter checkpoint");
  }
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!*in) return util::Status::IoError("checkpoint header read failed");

  std::map<std::string, tensor::Matrix> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in->read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!*in || name_len > 4096) {
      return util::Status::InvalidArgument("bad parameter name length");
    }
    std::string name(name_len, '\0');
    in->read(name.data(), static_cast<std::streamsize>(name_len));
    if (!*in) return util::Status::IoError("parameter name read failed");
    HOSR_ASSIGN_OR_RETURN(tensor::Matrix value, tensor::ReadMatrix(in));
    loaded.emplace(std::move(name), std::move(value));
  }

  // Validate everything before mutating the store.
  for (size_t i = 0; i < store->size(); ++i) {
    Param* p = store->at(i);
    const auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      return util::Status::NotFound("checkpoint missing parameter: " +
                                    p->name);
    }
    if (!it->second.SameShape(p->value)) {
      return util::Status::InvalidArgument(util::StrFormat(
          "shape mismatch for %s: checkpoint %zux%zu vs model %zux%zu",
          p->name.c_str(), it->second.rows(), it->second.cols(),
          p->value.rows(), p->value.cols()));
    }
  }
  for (size_t i = 0; i < store->size(); ++i) {
    Param* p = store->at(i);
    p->value = loaded.at(p->name);
  }
  return util::Status::Ok();
}

util::Status SaveCheckpoint(const ParamStore& store,
                            const std::string& path) {
  std::ostringstream body;
  HOSR_RETURN_IF_ERROR(WriteParams(store, &body));
  return util::WriteFileAtomicWithCrc(path, body.str());
}

util::Status LoadCheckpoint(const std::string& path, ParamStore* store) {
  HOSR_ASSIGN_OR_RETURN(std::string body, util::ReadFileVerifyCrc(path));
  std::istringstream in(body);
  return ReadParams(&in, store);
}

}  // namespace hosr::autograd
