#include "autograd/param.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace hosr::autograd {

Param* ParamStore::Create(std::string name, size_t rows, size_t cols) {
  params_.push_back(std::make_unique<Param>(std::move(name), rows, cols));
  return params_.back().get();
}

Param* ParamStore::CreateXavier(std::string name, size_t rows, size_t cols,
                                util::Rng* rng) {
  Param* p = Create(std::move(name), rows, cols);
  tensor::XavierUniformInit(&p->value, rng);
  return p;
}

Param* ParamStore::CreateGaussian(std::string name, size_t rows, size_t cols,
                                  float stddev, util::Rng* rng) {
  Param* p = Create(std::move(name), rows, cols);
  tensor::GaussianInit(&p->value, stddev, rng);
  return p;
}

Param* ParamStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

void ParamStore::ZeroGrad() {
  for (auto& p : params_) p->grad.SetZero();
}

double ParamStore::SquaredNorm() const {
  double acc = 0.0;
  for (const auto& p : params_) acc += tensor::SquaredNorm(p->value);
  return acc;
}

size_t ParamStore::NumScalars() const {
  size_t acc = 0;
  for (const auto& p : params_) acc += p->value.size();
  return acc;
}

}  // namespace hosr::autograd
