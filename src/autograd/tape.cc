#include "autograd/tape.h"

#include <cmath>
#include <utility>

#include "graph/spmm.h"
#include "tensor/ops.h"

namespace hosr::autograd {

using tensor::Matrix;

internal::Node* Tape::NewNode(Matrix value, bool requires_grad) {
  auto node = std::make_unique<internal::Node>();
  node->owned_value = std::move(value);
  node->value_ptr = &node->owned_value;
  node->requires_grad = requires_grad;
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

internal::Node* Tape::NewParamNode(autograd::Param* param) {
  auto node = std::make_unique<internal::Node>();
  node->value_ptr = &param->value;
  node->requires_grad = true;
  node->param = param;
  param_leaves_.push_back(param);
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

Matrix* Tape::GradFor(internal::Node* node) {
  HOSR_CHECK(node->sparse_sink < 0)
      << "sparse leaves support only GatherRows consumers";
  if (!node->grad_live) {
    node->grad = Matrix(node->value().rows(), node->value().cols());
    node->grad_live = true;
  }
  return &node->grad;
}

Value Tape::Param(autograd::Param* param) {
  internal::Node* node = NewParamNode(param);
  node->backward = [node] {
    tensor::Axpy(1.0f, node->grad, &node->param->grad);
  };
  return Value(node);
}

Value Tape::Constant(Matrix m) {
  return Value(NewNode(std::move(m), /*requires_grad=*/false));
}

Value Tape::SparseParam(autograd::Param* param) {
  HOSR_CHECK(param != nullptr);
  auto sink = std::make_unique<SparseSink>();
  sink->param = param;
  sink->cols = param->value.cols();
  auto node = std::make_unique<internal::Node>();
  node->value_ptr = &param->value;
  node->requires_grad = true;
  node->sparse_sink = static_cast<int>(sinks_.size());
  sinks_.push_back(std::move(sink));
  nodes_.push_back(std::move(node));
  return Value(nodes_.back().get());
}

Value Tape::SparseShared(int key, const tensor::Matrix* values) {
  HOSR_CHECK(values != nullptr);
  HOSR_CHECK(key >= 0) << "shared keys are non-negative";
  auto sink = std::make_unique<SparseSink>();
  sink->shared_key = key;
  sink->cols = values->cols();
  auto node = std::make_unique<internal::Node>();
  node->value_ptr = values;
  node->requires_grad = true;
  node->sparse_sink = static_cast<int>(sinks_.size());
  sinks_.push_back(std::move(sink));
  nodes_.push_back(std::move(node));
  return Value(nodes_.back().get());
}

Value Tape::MatMul(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  internal::Node* out = NewNode(tensor::MatMul(an->value(), bn->value()),
                                an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) {
        tensor::Gemm(out->grad, false, bn->value(), true, 1.0f, 1.0f,
                     GradFor(an));
      }
      if (bn->requires_grad) {
        tensor::Gemm(an->value(), true, out->grad, false, 1.0f, 1.0f,
                     GradFor(bn));
      }
    };
  }
  return Value(out);
}

Value Tape::SpMM(const graph::CsrMatrix* matrix,
                 const graph::CsrMatrix* transpose, Value dense) {
  HOSR_CHECK(matrix != nullptr && transpose != nullptr);
  HOSR_CHECK(transpose->num_rows() == matrix->num_cols() &&
             transpose->num_cols() == matrix->num_rows())
      << "transpose shape mismatch";
  internal::Node* dn = dense.node_;
  internal::Node* out =
      NewNode(graph::Spmm(*matrix, dn->value()), dn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, dn, transpose] {
      Matrix partial = graph::Spmm(*transpose, out->grad);
      tensor::Axpy(1.0f, partial, GradFor(dn));
    };
  }
  return Value(out);
}

Value Tape::GatherRows(Value a, std::vector<uint32_t> indices) {
  internal::Node* an = a.node_;
  internal::Node* out = NewNode(tensor::GatherRows(an->value(), indices),
                                an->requires_grad);
  if (an->sparse_sink >= 0) {
    // Sparse leaf: instead of scatter-adding into a dense grad, hand the
    // (rows, grad rows) pair — already in scan order — to the leaf's sink
    // segment registered at creation time. Pure moves; the caller (the
    // parallel trainer's reducer) owns the accumulation order.
    SparseSink* sink = sinks_[an->sparse_sink].get();
    const size_t op_index = sink->ops.size();
    sink->ops.emplace_back();
    out->backward = [out, sink, op_index,
                     indices = std::move(indices)]() mutable {
      SparseSink::OpSegment& seg = sink->ops[op_index];
      seg.rows = std::move(indices);
      seg.grads = std::move(out->grad);
    };
  } else if (out->requires_grad) {
    out->backward = [out, an, indices = std::move(indices)] {
      tensor::ScatterAddRows(out->grad, indices, GradFor(an));
    };
  }
  return Value(out);
}

Value Tape::Add(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  internal::Node* out = NewNode(tensor::Add(an->value(), bn->value()),
                                an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) tensor::Axpy(1.0f, out->grad, GradFor(an));
      if (bn->requires_grad) tensor::Axpy(1.0f, out->grad, GradFor(bn));
    };
  }
  return Value(out);
}

Value Tape::Sub(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  internal::Node* out = NewNode(tensor::Sub(an->value(), bn->value()),
                                an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) tensor::Axpy(1.0f, out->grad, GradFor(an));
      if (bn->requires_grad) tensor::Axpy(-1.0f, out->grad, GradFor(bn));
    };
  }
  return Value(out);
}

Value Tape::Hadamard(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  internal::Node* out = NewNode(tensor::Hadamard(an->value(), bn->value()),
                                an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) {
        Matrix partial = tensor::Hadamard(out->grad, bn->value());
        tensor::Axpy(1.0f, partial, GradFor(an));
      }
      if (bn->requires_grad) {
        Matrix partial = tensor::Hadamard(out->grad, an->value());
        tensor::Axpy(1.0f, partial, GradFor(bn));
      }
    };
  }
  return Value(out);
}

Value Tape::Scale(Value a, float s) {
  internal::Node* an = a.node_;
  internal::Node* out =
      NewNode(tensor::Scale(an->value(), s), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, s] { tensor::Axpy(s, out->grad, GradFor(an)); };
  }
  return Value(out);
}

Value Tape::Tanh(Value a) {
  internal::Node* an = a.node_;
  internal::Node* out =
      NewNode(tensor::Tanh(an->value()), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      Matrix* ga = GradFor(an);
      const Matrix& y = out->value();
      const float* yp = y.data();
      const float* gp = out->grad.data();
      float* gap = ga->data();
      for (size_t i = 0; i < y.size(); ++i) {
        gap[i] += gp[i] * (1.0f - yp[i] * yp[i]);
      }
    };
  }
  return Value(out);
}

Value Tape::Relu(Value a) {
  internal::Node* an = a.node_;
  internal::Node* out =
      NewNode(tensor::Relu(an->value()), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      Matrix* ga = GradFor(an);
      const float* xp = an->value().data();
      const float* gp = out->grad.data();
      float* gap = ga->data();
      for (size_t i = 0; i < out->value().size(); ++i) {
        if (xp[i] > 0.0f) gap[i] += gp[i];
      }
    };
  }
  return Value(out);
}

Value Tape::LeakyRelu(Value a, float slope) {
  HOSR_CHECK(slope >= 0.0f && slope < 1.0f) << slope;
  internal::Node* an = a.node_;
  Matrix y = an->value();
  float* yp = y.data();
  for (size_t i = 0; i < y.size(); ++i) {
    if (yp[i] < 0.0f) yp[i] *= slope;
  }
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, slope] {
      Matrix* ga = GradFor(an);
      const float* xp = an->value().data();
      const float* gp = out->grad.data();
      float* gap = ga->data();
      for (size_t i = 0; i < out->value().size(); ++i) {
        gap[i] += gp[i] * (xp[i] > 0.0f ? 1.0f : slope);
      }
    };
  }
  return Value(out);
}

Value Tape::Sigmoid(Value a) {
  internal::Node* an = a.node_;
  internal::Node* out =
      NewNode(tensor::Sigmoid(an->value()), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      Matrix* ga = GradFor(an);
      const float* yp = out->value().data();
      const float* gp = out->grad.data();
      float* gap = ga->data();
      for (size_t i = 0; i < out->value().size(); ++i) {
        gap[i] += gp[i] * yp[i] * (1.0f - yp[i]);
      }
    };
  }
  return Value(out);
}

Value Tape::LogSigmoid(Value a) {
  internal::Node* an = a.node_;
  // log(sigmoid(x)) = min(x, 0) - log1p(exp(-|x|)), stable for all x.
  Matrix y = an->value();
  float* yp = y.data();
  for (size_t i = 0; i < y.size(); ++i) {
    const float x = yp[i];
    yp[i] = std::min(x, 0.0f) - std::log1p(std::exp(-std::fabs(x)));
  }
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      // d/dx log(sigmoid(x)) = sigmoid(-x).
      Matrix* ga = GradFor(an);
      const float* xp = an->value().data();
      const float* gp = out->grad.data();
      float* gap = ga->data();
      for (size_t i = 0; i < out->value().size(); ++i) {
        gap[i] += gp[i] / (1.0f + std::exp(xp[i]));
      }
    };
  }
  return Value(out);
}

Value Tape::AddRowBroadcast(Value a, Value bias) {
  internal::Node* an = a.node_;
  internal::Node* bn = bias.node_;
  HOSR_CHECK(bn->value().rows() == 1 &&
             bn->value().cols() == an->value().cols())
      << "bias must be (1 x " << an->value().cols() << ")";
  Matrix y = an->value();
  const float* bp = bn->value().data();
  for (size_t r = 0; r < y.rows(); ++r) {
    float* yr = y.row(r);
    for (size_t c = 0; c < y.cols(); ++c) yr[c] += bp[c];
  }
  internal::Node* out =
      NewNode(std::move(y), an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) tensor::Axpy(1.0f, out->grad, GradFor(an));
      if (bn->requires_grad) {
        Matrix col_sum = tensor::ColSum(out->grad);
        tensor::Axpy(1.0f, col_sum, GradFor(bn));
      }
    };
  }
  return Value(out);
}

Value Tape::BroadcastColMul(Value a, Value s) {
  internal::Node* an = a.node_;
  internal::Node* sn = s.node_;
  internal::Node* out =
      NewNode(tensor::BroadcastColMul(an->value(), sn->value()),
              an->requires_grad || sn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, sn] {
      if (an->requires_grad) {
        Matrix partial = tensor::BroadcastColMul(out->grad, sn->value());
        tensor::Axpy(1.0f, partial, GradFor(an));
      }
      if (sn->requires_grad) {
        Matrix partial = tensor::RowDot(out->grad, an->value());
        tensor::Axpy(1.0f, partial, GradFor(sn));
      }
    };
  }
  return Value(out);
}

Value Tape::ConcatCols(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  const Matrix& av = an->value();
  const Matrix& bv = bn->value();
  HOSR_CHECK(av.rows() == bv.rows());
  Matrix y(av.rows(), av.cols() + bv.cols());
  for (size_t r = 0; r < av.rows(); ++r) {
    float* yr = y.row(r);
    const float* ar = av.row(r);
    const float* br = bv.row(r);
    std::copy(ar, ar + av.cols(), yr);
    std::copy(br, br + bv.cols(), yr + av.cols());
  }
  internal::Node* out =
      NewNode(std::move(y), an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      const size_t a_cols = an->value().cols();
      const size_t b_cols = bn->value().cols();
      if (an->requires_grad) {
        Matrix* ga = GradFor(an);
        for (size_t r = 0; r < ga->rows(); ++r) {
          const float* gr = out->grad.row(r);
          float* gar = ga->row(r);
          for (size_t c = 0; c < a_cols; ++c) gar[c] += gr[c];
        }
      }
      if (bn->requires_grad) {
        Matrix* gb = GradFor(bn);
        for (size_t r = 0; r < gb->rows(); ++r) {
          const float* gr = out->grad.row(r) + a_cols;
          float* gbr = gb->row(r);
          for (size_t c = 0; c < b_cols; ++c) gbr[c] += gr[c];
        }
      }
    };
  }
  return Value(out);
}

Value Tape::SliceCols(Value a, size_t col_begin, size_t num_cols) {
  internal::Node* an = a.node_;
  const Matrix& av = an->value();
  HOSR_CHECK(col_begin + num_cols <= av.cols())
      << "slice [" << col_begin << ", " << col_begin + num_cols << ") of "
      << av.cols() << " cols";
  Matrix y(av.rows(), num_cols);
  for (size_t r = 0; r < av.rows(); ++r) {
    const float* ar = av.row(r) + col_begin;
    std::copy(ar, ar + num_cols, y.row(r));
  }
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, col_begin, num_cols] {
      Matrix* ga = GradFor(an);
      for (size_t r = 0; r < ga->rows(); ++r) {
        const float* gr = out->grad.row(r);
        float* gar = ga->row(r) + col_begin;
        for (size_t c = 0; c < num_cols; ++c) gar[c] += gr[c];
      }
    };
  }
  return Value(out);
}

Value Tape::RowDot(Value a, Value b) {
  internal::Node* an = a.node_;
  internal::Node* bn = b.node_;
  internal::Node* out = NewNode(tensor::RowDot(an->value(), bn->value()),
                                an->requires_grad || bn->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, bn] {
      if (an->requires_grad) {
        Matrix partial = tensor::BroadcastColMul(bn->value(), out->grad);
        tensor::Axpy(1.0f, partial, GradFor(an));
      }
      if (bn->requires_grad) {
        Matrix partial = tensor::BroadcastColMul(an->value(), out->grad);
        tensor::Axpy(1.0f, partial, GradFor(bn));
      }
    };
  }
  return Value(out);
}

Value Tape::RowSoftmax(Value a) {
  internal::Node* an = a.node_;
  internal::Node* out =
      NewNode(tensor::RowSoftmax(an->value()), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      // dx_rc = s_rc * (g_rc - sum_j g_rj s_rj).
      Matrix* ga = GradFor(an);
      const Matrix& s = out->value();
      const Matrix& g = out->grad;
      for (size_t r = 0; r < s.rows(); ++r) {
        const float* sr = s.row(r);
        const float* gr = g.row(r);
        float* gar = ga->row(r);
        float dot = 0.0f;
        for (size_t c = 0; c < s.cols(); ++c) dot += gr[c] * sr[c];
        for (size_t c = 0; c < s.cols(); ++c) {
          gar[c] += sr[c] * (gr[c] - dot);
        }
      }
    };
  }
  return Value(out);
}

namespace {

void CheckSegmentOffsets(const std::vector<size_t>& offsets, size_t total) {
  HOSR_CHECK(offsets.size() >= 2) << "need at least one segment";
  HOSR_CHECK(offsets.front() == 0 && offsets.back() == total)
      << "offsets must span [0, " << total << "]";
  for (size_t s = 1; s < offsets.size(); ++s) {
    HOSR_CHECK(offsets[s - 1] <= offsets[s]) << "offsets must be ascending";
  }
}

}  // namespace

Value Tape::SegmentSoftmax(Value scores, std::vector<size_t> offsets) {
  internal::Node* an = scores.node_;
  const Matrix& x = an->value();
  HOSR_CHECK(x.cols() == 1) << "SegmentSoftmax expects an (E x 1) column";
  CheckSegmentOffsets(offsets, x.rows());

  Matrix y(x.rows(), 1);
  const size_t num_segments = offsets.size() - 1;
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t begin = offsets[s];
    const size_t end = offsets[s + 1];
    if (begin == end) continue;
    float max_val = x(begin, 0);
    for (size_t e = begin + 1; e < end; ++e) {
      max_val = std::max(max_val, x(e, 0));
    }
    float denom = 0.0f;
    for (size_t e = begin; e < end; ++e) {
      y(e, 0) = std::exp(x(e, 0) - max_val);
      denom += y(e, 0);
    }
    const float inv = 1.0f / denom;
    for (size_t e = begin; e < end; ++e) y(e, 0) *= inv;
  }
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, offsets = std::move(offsets)] {
      // Per segment: dx_e = s_e * (g_e - sum_j g_j s_j).
      Matrix* ga = GradFor(an);
      const Matrix& s_val = out->value();
      const Matrix& g = out->grad;
      for (size_t s = 0; s + 1 < offsets.size(); ++s) {
        const size_t begin = offsets[s];
        const size_t end = offsets[s + 1];
        float dot = 0.0f;
        for (size_t e = begin; e < end; ++e) dot += g(e, 0) * s_val(e, 0);
        for (size_t e = begin; e < end; ++e) {
          (*ga)(e, 0) += s_val(e, 0) * (g(e, 0) - dot);
        }
      }
    };
  }
  return Value(out);
}

Value Tape::SegmentWeightedSum(Value alpha, Value feats,
                               std::vector<size_t> offsets) {
  internal::Node* alpha_node = alpha.node_;
  internal::Node* feats_node = feats.node_;
  const Matrix& a_val = alpha_node->value();
  const Matrix& f_val = feats_node->value();
  HOSR_CHECK(a_val.cols() == 1) << "alpha must be (E x 1)";
  HOSR_CHECK(a_val.rows() == f_val.rows())
      << a_val.rows() << " vs " << f_val.rows();
  CheckSegmentOffsets(offsets, a_val.rows());

  const size_t num_segments = offsets.size() - 1;
  const size_t d = f_val.cols();
  Matrix y(num_segments, d);
  for (size_t s = 0; s < num_segments; ++s) {
    float* out_row = y.row(s);
    for (size_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      const float w = a_val(e, 0);
      const float* fr = f_val.row(e);
      for (size_t c = 0; c < d; ++c) out_row[c] += w * fr[c];
    }
  }
  internal::Node* out =
      NewNode(std::move(y),
              alpha_node->requires_grad || feats_node->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, alpha_node, feats_node,
                     offsets = std::move(offsets)] {
      const Matrix& a_v = alpha_node->value();
      const Matrix& f_v = feats_node->value();
      const size_t dim = f_v.cols();
      Matrix* ga = alpha_node->requires_grad ? GradFor(alpha_node) : nullptr;
      Matrix* gf = feats_node->requires_grad ? GradFor(feats_node) : nullptr;
      for (size_t s = 0; s + 1 < offsets.size(); ++s) {
        const float* grad_row = out->grad.row(s);
        for (size_t e = offsets[s]; e < offsets[s + 1]; ++e) {
          if (ga != nullptr) {
            const float* fr = f_v.row(e);
            float acc = 0.0f;
            for (size_t c = 0; c < dim; ++c) acc += grad_row[c] * fr[c];
            (*ga)(e, 0) += acc;
          }
          if (gf != nullptr) {
            const float w = a_v(e, 0);
            float* gfr = gf->row(e);
            for (size_t c = 0; c < dim; ++c) gfr[c] += w * grad_row[c];
          }
        }
      }
    };
  }
  return Value(out);
}

Value Tape::Dropout(Value a, float p, bool training, util::Rng* rng) {
  internal::Node* an = a.node_;
  if (!training || p <= 0.0f) return a;
  HOSR_CHECK(p < 1.0f) << "dropout probability must be < 1";
  HOSR_CHECK(rng != nullptr);
  const float keep_scale = 1.0f / (1.0f - p);
  Matrix mask(an->value().rows(), an->value().cols());
  float* mp = mask.data();
  for (size_t i = 0; i < mask.size(); ++i) {
    mp[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
  internal::Node* out = NewNode(tensor::Hadamard(an->value(), mask),
                                an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an, mask = std::move(mask)] {
      Matrix partial = tensor::Hadamard(out->grad, mask);
      tensor::Axpy(1.0f, partial, GradFor(an));
    };
  }
  return Value(out);
}

Value Tape::Mean(Value a) {
  internal::Node* an = a.node_;
  Matrix y(1, 1);
  y(0, 0) = static_cast<float>(tensor::Mean(an->value()));
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      Matrix* ga = GradFor(an);
      const float g = out->grad(0, 0) / static_cast<float>(ga->size());
      float* gap = ga->data();
      for (size_t i = 0; i < ga->size(); ++i) gap[i] += g;
    };
  }
  return Value(out);
}

Value Tape::Sum(Value a) {
  internal::Node* an = a.node_;
  Matrix y(1, 1);
  y(0, 0) = static_cast<float>(tensor::Sum(an->value()));
  internal::Node* out = NewNode(std::move(y), an->requires_grad);
  if (out->requires_grad) {
    out->backward = [out, an] {
      Matrix* ga = GradFor(an);
      const float g = out->grad(0, 0);
      float* gap = ga->data();
      for (size_t i = 0; i < ga->size(); ++i) gap[i] += g;
    };
  }
  return Value(out);
}

void Tape::Backward(Value loss) {
  internal::Node* loss_node = loss.node_;
  HOSR_CHECK(loss_node != nullptr);
  HOSR_CHECK(loss_node->value().rows() == 1 &&
             loss_node->value().cols() == 1)
      << "Backward requires a scalar (1x1) loss";
  HOSR_CHECK(loss_node->requires_grad)
      << "loss does not depend on any parameter";
  Matrix* g = GradFor(loss_node);
  (*g)(0, 0) += 1.0f;
  // Creation order is a topological order, so a single reverse sweep
  // propagates complete gradients.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    internal::Node* node = it->get();
    if (node->grad_live && node->backward) node->backward();
  }
}

void Tape::BackwardSeeded(std::vector<std::pair<Value, Matrix>> seeds) {
  for (auto& seed : seeds) {
    internal::Node* node = seed.first.node_;
    HOSR_CHECK(node != nullptr && node->requires_grad);
    HOSR_CHECK(!node->grad_live) << "seeded node already has a gradient";
    HOSR_CHECK(seed.second.rows() == node->value().rows() &&
               seed.second.cols() == node->value().cols())
        << "seed shape mismatch";
    node->grad = std::move(seed.second);
    node->grad_live = true;
  }
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    internal::Node* node = it->get();
    if (node->grad_live && node->backward) node->backward();
  }
}

}  // namespace hosr::autograd
