#ifndef HOSR_AUTOGRAD_GRADCHECK_H_
#define HOSR_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/param.h"
#include "autograd/tape.h"

namespace hosr::autograd {

struct GradCheckResult {
  bool passed = true;
  // Worst relative error observed across all checked entries.
  double max_relative_error = 0.0;
  std::string worst_entry;  // "param[r,c]" of the worst error
};

// Verifies analytic gradients against central finite differences.
//
// `build_loss` must construct a fresh forward graph on the given tape from
// the current parameter values and return the scalar loss Value. It must be
// deterministic (same params -> same loss).
//
// For every parameter in `params`, every entry is perturbed by +/- eps and
// the numeric gradient compared to the analytic one. Entries where both
// gradients are below `zero_tol` are accepted outright.
GradCheckResult CheckGradients(
    const std::function<Value(Tape*)>& build_loss,
    const std::vector<Param*>& params, double eps = 1e-3,
    double tolerance = 5e-2, double zero_tol = 1e-7);

}  // namespace hosr::autograd

#endif  // HOSR_AUTOGRAD_GRADCHECK_H_
