#ifndef HOSR_AUTOGRAD_TAPE_H_
#define HOSR_AUTOGRAD_TAPE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/param.h"
#include "graph/csr.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace hosr::autograd {

class Tape;

// Row-sparse gradient destination for the parallel trainer's slice tapes
// (docs/PERFORMANCE.md "Parallel training"). A sparse leaf created with
// Tape::SparseParam / Tape::SparseShared routes the backward pass of every
// GatherRows over it into one of these sinks instead of a dense grad
// matrix: each gather op gets its own segment holding (row, grad-row)
// pairs in the exact scan order the monolithic scatter-add would have
// visited them, so the trainer can replay the monolithic accumulation
// fold bit-identically across slices.
struct SparseSink {
  struct OpSegment {
    std::vector<uint32_t> rows;  // target rows, batch scan order
    tensor::Matrix grads;        // (rows.size() x cols), matching order
  };

  Param* param = nullptr;  // target: exactly one of param / shared_key
  int shared_key = -1;     // trainer-assigned id of a shared-forward output
  size_t cols = 0;
  std::vector<OpSegment> ops;  // one per GatherRows, creation order
};

namespace internal {

// One recorded operation. Nodes are heap-allocated so pointers stay stable
// while the tape grows; Value handles wrap these pointers.
struct Node {
  // Interior nodes own their value; Param leaves alias the Param's matrix.
  tensor::Matrix owned_value;
  const tensor::Matrix* value_ptr = nullptr;
  tensor::Matrix grad;          // allocated lazily on first accumulation
  bool grad_live = false;       // true once grad holds real data
  bool requires_grad = false;
  Param* param = nullptr;       // set for Param leaves
  int sparse_sink = -1;         // index into the tape's sinks, if a sparse leaf
  // Accumulates input gradients given this node's complete gradient.
  std::function<void()> backward;

  const tensor::Matrix& value() const { return *value_ptr; }
};

}  // namespace internal

// Lightweight handle to a tape node; valid for the tape's lifetime.
class Value {
 public:
  Value() : node_(nullptr) {}

  const tensor::Matrix& value() const { return node_->value(); }
  size_t rows() const { return node_->value().rows(); }
  size_t cols() const { return node_->value().cols(); }

 private:
  friend class Tape;
  explicit Value(internal::Node* node) : node_(node) {}
  internal::Node* node_;
};

// Reverse-mode automatic differentiation over Matrix values.
//
// Usage per training step:
//   Tape tape;
//   Value u = tape.Param(user_embeddings);
//   ... build the forward graph ...
//   Value loss = tape.Mean(...);            // scalar (1x1)
//   tape.Backward(loss);                    // accumulates into Param::grad
//
// Gradients *accumulate* across Backward calls until ParamStore::ZeroGrad.
// All shape mismatches abort (programming errors).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Leaves ---------------------------------------------------------

  // Trainable leaf aliasing `param->value`; Backward adds to `param->grad`.
  Value Param(autograd::Param* param);

  // Non-trainable leaf (moves the matrix in).
  Value Constant(tensor::Matrix m);

  // --- Sparse leaves (parallel trainer slice tapes) --------------------
  //
  // Like Param / a borrowed constant, except the backward pass does not
  // touch `param->grad` (or any dense matrix): every GatherRows over the
  // leaf records its per-row gradients into a SparseSink segment instead,
  // in batch scan order, and the caller replays the accumulation in
  // whatever order reproduces the monolithic tape (trainer.cc owns that
  // fold). Sparse leaves support ONLY GatherRows consumers — any op that
  // would need a dense gradient for the leaf aborts.

  // Sparse trainable leaf aliasing `param->value`.
  Value SparseParam(autograd::Param* param);

  // Sparse leaf over a borrowed value from another tape (a shared-forward
  // output); `key` identifies the source node to the reducer. `values`
  // must outlive this tape.
  Value SparseShared(int key, const tensor::Matrix* values);

  // --- Linear algebra --------------------------------------------------

  // (n x k) * (k x m) -> (n x m).
  Value MatMul(Value a, Value b);

  // sparse (r x c) times dense (c x d) -> (r x d). `transpose` must be the
  // CSR transpose of `matrix` (pass the same pointer when symmetric); it is
  // used for the backward pass. Both must outlive the tape. The tape only
  // borrows these pointers: build the transpose ONCE per graph (models
  // cache it as a member next to the forward operator) and share it across
  // every epoch, layer, and backward call — never rebuild it per step. The
  // spmm/transpose_builds counter audits this: it must stay flat during
  // training (tests/hosr_test.cc TransposeBuiltOncePerGraph).
  Value SpMM(const graph::CsrMatrix* matrix, const graph::CsrMatrix* transpose,
             Value dense);

  // out(i, :) = a(indices[i], :). Backward scatter-adds.
  Value GatherRows(Value a, std::vector<uint32_t> indices);

  // --- Element-wise ----------------------------------------------------

  Value Add(Value a, Value b);
  Value Sub(Value a, Value b);
  Value Hadamard(Value a, Value b);
  Value Scale(Value a, float s);
  Value Tanh(Value a);
  Value Relu(Value a);
  // max(x, slope * x) with slope in [0, 1) (GAT's edge-score activation).
  Value LeakyRelu(Value a, float slope = 0.2f);
  Value Sigmoid(Value a);
  // Numerically stable log(sigmoid(x)).
  Value LogSigmoid(Value a);

  // --- Broadcast / shape ops -------------------------------------------

  // a (n x d) + bias (1 x d), bias broadcast over rows.
  Value AddRowBroadcast(Value a, Value bias);

  // a (n x d) scaled per-row by s (n x 1).
  Value BroadcastColMul(Value a, Value s);

  // Column-wise concatenation: (n x d1), (n x d2) -> (n x (d1 + d2)).
  Value ConcatCols(Value a, Value b);

  // Columns [col_begin, col_begin + num_cols) of a -> (n x num_cols).
  Value SliceCols(Value a, size_t col_begin, size_t num_cols);

  // Row-wise dot product of equally shaped (n x d) -> (n x 1).
  Value RowDot(Value a, Value b);

  // Numerically-stable softmax along each row of (n x k).
  Value RowSoftmax(Value a);

  // --- Ragged (per-edge) ops for graph attention -------------------------

  // Softmax within each contiguous segment of an (E x 1) column: entries
  // [offsets[s], offsets[s+1]) form segment s. offsets.front() must be 0
  // and offsets.back() == E. Empty segments are allowed.
  Value SegmentSoftmax(Value scores, std::vector<size_t> offsets);

  // out(s, :) = sum over e in segment s of alpha(e, 0) * feats(e, :).
  // alpha is (E x 1), feats is (E x d), result is (num_segments x d) where
  // num_segments == offsets.size() - 1.
  Value SegmentWeightedSum(Value alpha, Value feats,
                           std::vector<size_t> offsets);

  // --- Regularization / reductions -------------------------------------

  // Inverted dropout: keeps entries with prob (1-p), scaling by 1/(1-p).
  // Identity when `training` is false or p == 0.
  Value Dropout(Value a, float p, bool training, util::Rng* rng);

  // Mean over all entries -> (1 x 1).
  Value Mean(Value a);

  // Sum over all entries -> (1 x 1).
  Value Sum(Value a);

  // --- Differentiation --------------------------------------------------

  // Seeds d(loss)/d(loss) = 1 (loss must be 1x1) and runs the reverse
  // sweep, accumulating into every reachable Param's grad.
  void Backward(Value loss);

  // Resumes a shared-forward tape: installs each seed matrix as the
  // complete gradient of its node (which must not already have one), then
  // runs the reverse sweep from the end of the tape. Used by the parallel
  // trainer to finish the shared prefix after reducing the slices' sink
  // gradients; equivalent to the monolithic sweep reaching those interior
  // nodes with the same accumulated grads.
  void BackwardSeeded(std::vector<std::pair<Value, tensor::Matrix>> seeds);

  // Sparse sinks in leaf creation order (stable pointers).
  const std::vector<std::unique_ptr<SparseSink>>& sparse_sinks() const {
    return sinks_;
  }

  // Params with a dense leaf on this tape (creation order, may repeat if
  // Param() was called twice for the same parameter).
  const std::vector<autograd::Param*>& param_leaves() const {
    return param_leaves_;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  internal::Node* NewNode(tensor::Matrix value, bool requires_grad);
  internal::Node* NewParamNode(autograd::Param* param);

  // Ensures `node->grad` exists and is zeroed, ready for accumulation.
  static tensor::Matrix* GradFor(internal::Node* node);

  std::vector<std::unique_ptr<internal::Node>> nodes_;
  std::vector<std::unique_ptr<SparseSink>> sinks_;
  std::vector<autograd::Param*> param_leaves_;
};

}  // namespace hosr::autograd

#endif  // HOSR_AUTOGRAD_TAPE_H_
