#include "autograd/gradcheck.h"

#include <cmath>

#include "util/string_util.h"

namespace hosr::autograd {

namespace {

double EvalLoss(const std::function<Value(Tape*)>& build_loss) {
  Tape tape;
  Value loss = build_loss(&tape);
  HOSR_CHECK(loss.rows() == 1 && loss.cols() == 1);
  return loss.value()(0, 0);
}

}  // namespace

GradCheckResult CheckGradients(const std::function<Value(Tape*)>& build_loss,
                               const std::vector<Param*>& params, double eps,
                               double tolerance, double zero_tol) {
  GradCheckResult result;

  // Analytic gradients.
  for (Param* p : params) p->grad.SetZero();
  {
    Tape tape;
    Value loss = build_loss(&tape);
    tape.Backward(loss);
  }

  for (Param* p : params) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        const float original = p->value(r, c);
        p->value(r, c) = original + static_cast<float>(eps);
        const double loss_plus = EvalLoss(build_loss);
        p->value(r, c) = original - static_cast<float>(eps);
        const double loss_minus = EvalLoss(build_loss);
        p->value(r, c) = original;

        const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
        const double analytic = p->grad(r, c);
        if (std::fabs(numeric) < zero_tol && std::fabs(analytic) < zero_tol) {
          continue;
        }
        const double denom =
            std::max({std::fabs(numeric), std::fabs(analytic), 1e-8});
        const double rel_error = std::fabs(numeric - analytic) / denom;
        if (rel_error > result.max_relative_error) {
          result.max_relative_error = rel_error;
          result.worst_entry =
              util::StrFormat("%s[%zu,%zu] analytic=%.6g numeric=%.6g",
                              p->name.c_str(), r, c, analytic, numeric);
        }
        if (rel_error > tolerance) result.passed = false;
      }
    }
  }
  return result;
}

}  // namespace hosr::autograd
