#ifndef HOSR_AUTOGRAD_PARAM_H_
#define HOSR_AUTOGRAD_PARAM_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/random.h"

namespace hosr::autograd {

// A trainable parameter: persistent value plus accumulated gradient.
// Owned by a ParamStore; pointers remain stable for the store's lifetime,
// so optimizers key their per-parameter state on the store index.
struct Param {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;

  Param(std::string name_in, size_t rows, size_t cols)
      : name(std::move(name_in)), value(rows, cols), grad(rows, cols) {}
};

// Owns a model's parameters. Models register parameters at construction;
// the trainer hands the same store to the optimizer.
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  // Creates a zero-initialized (rows x cols) parameter.
  Param* Create(std::string name, size_t rows, size_t cols);

  // Creates with Xavier-uniform init (weight matrices).
  Param* CreateXavier(std::string name, size_t rows, size_t cols,
                      util::Rng* rng);

  // Creates with N(0, stddev) init (embedding tables).
  Param* CreateGaussian(std::string name, size_t rows, size_t cols,
                        float stddev, util::Rng* rng);

  size_t size() const { return params_.size(); }
  Param* at(size_t i) { return params_[i].get(); }
  const Param* at(size_t i) const { return params_[i].get(); }

  // Nullptr when absent.
  Param* Find(const std::string& name);

  void ZeroGrad();

  // Sum over parameters of squared Frobenius norm (the ||Theta||^2 term).
  double SquaredNorm() const;

  // Total scalar count across all parameters.
  size_t NumScalars() const;

 private:
  std::vector<std::unique_ptr<Param>> params_;
};

}  // namespace hosr::autograd

#endif  // HOSR_AUTOGRAD_PARAM_H_
