#ifndef HOSR_GRAPH_LAPLACIAN_H_
#define HOSR_GRAPH_LAPLACIAN_H_

#include "graph/csr.h"

namespace hosr::graph {

// Builds the paper's propagation operator (Eq. 6):
//   L = D^{-1/2} (A + I) D^{-1/2},
// where A is a symmetric binary adjacency and D_tt = max(|A_t|, 1) (the
// paper guarantees every user has >= 1 relation; the clamp keeps isolated
// users well-defined after graph dropout). Off-diagonal entries are
// 1/sqrt(|A_i||A_j|) — the decay factor of Eq. 1 — and the diagonal
// self-connection entry is 1/|A_i|.
CsrMatrix NormalizedLaplacian(const CsrMatrix& adjacency);

// Variant without the self-loop: D^{-1/2} A D^{-1/2}. Used by the
// self-connection ablation bench.
CsrMatrix NormalizedAdjacency(const CsrMatrix& adjacency);

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_LAPLACIAN_H_
