#include "graph/sampling.h"

#include <unordered_set>

namespace hosr::graph {

SocialGraph GraphDropout(const SocialGraph& graph, double drop_prob,
                         util::Rng* rng) {
  HOSR_CHECK(drop_prob >= 0.0 && drop_prob < 1.0) << drop_prob;
  if (drop_prob == 0.0) return graph;
  std::vector<std::pair<uint32_t, uint32_t>> kept;
  for (const auto& edge : graph.EdgeList()) {
    if (!rng->Bernoulli(drop_prob)) kept.push_back(edge);
  }
  auto thinned = SocialGraph::FromEdges(graph.num_users(), kept);
  HOSR_CHECK(thinned.ok()) << thinned.status().ToString();
  return std::move(thinned).value();
}

std::vector<uint32_t> RandomWalkWithRestart(const SocialGraph& graph,
                                            uint32_t start,
                                            double return_prob,
                                            uint32_t sample_size,
                                            util::Rng* rng,
                                            uint32_t max_steps) {
  HOSR_CHECK(start < graph.num_users());
  std::vector<uint32_t> sample;
  std::unordered_set<uint32_t> seen;
  sample.reserve(sample_size);

  uint32_t current = start;
  for (uint32_t step = 0;
       step < max_steps && sample.size() < sample_size; ++step) {
    if (rng->Bernoulli(return_prob)) {
      current = start;
      continue;
    }
    const uint32_t degree = graph.Degree(current);
    if (degree == 0) {
      // Dead end (possible after dropout); restart.
      current = start;
      continue;
    }
    const auto& adj = graph.adjacency();
    const size_t offset =
        adj.row_begin(current) + static_cast<size_t>(rng->UniformInt(degree));
    current = adj.col_idx()[offset];
    if (current != start && seen.insert(current).second) {
      sample.push_back(current);
    }
  }
  return sample;
}

}  // namespace hosr::graph
