#ifndef HOSR_GRAPH_CSR_H_
#define HOSR_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace hosr::graph {

// One (row, col, value) entry used when assembling a sparse matrix.
struct Triplet {
  uint32_t row;
  uint32_t col;
  float value;
};

// Compressed-sparse-row float matrix. Immutable after construction; all
// mutation paths go through FromTriplets / the named builders so invariants
// (sorted, de-duplicated column indices per row) always hold.
class CsrMatrix {
 public:
  CsrMatrix() : num_rows_(0), num_cols_(0) { row_ptr_.push_back(0); }

  // Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(uint32_t num_rows, uint32_t num_cols,
                                std::vector<Triplet> triplets);

  // Identity-like diagonal matrix with the given values (size n x n).
  static CsrMatrix Diagonal(const std::vector<float>& diag);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }
  size_t nnz() const { return col_idx_.size(); }

  // Row r occupies [row_begin(r), row_end(r)) in col_idx()/values().
  size_t row_begin(uint32_t r) const { return row_ptr_[r]; }
  size_t row_end(uint32_t r) const { return row_ptr_[r + 1]; }
  size_t row_nnz(uint32_t r) const { return row_end(r) - row_begin(r); }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  // Value at (r, c), 0 if absent. O(log nnz(r)).
  float At(uint32_t r, uint32_t c) const;

  // Out-degree (stored entries) per row.
  std::vector<uint32_t> RowDegrees() const;

  CsrMatrix Transpose() const;

  // Structural equality (same shape, pattern and values).
  bool operator==(const CsrMatrix& other) const;

 private:
  uint32_t num_rows_;
  uint32_t num_cols_;
  std::vector<size_t> row_ptr_;     // size num_rows_ + 1
  std::vector<uint32_t> col_idx_;   // size nnz
  std::vector<float> values_;       // size nnz
};

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_CSR_H_
