#include "graph/laplacian.h"

#include <cmath>

namespace hosr::graph {

namespace {

CsrMatrix Normalize(const CsrMatrix& adjacency, bool add_self_loops) {
  HOSR_CHECK(adjacency.num_rows() == adjacency.num_cols());
  const uint32_t n = adjacency.num_rows();

  std::vector<float> inv_sqrt_degree(n);
  for (uint32_t i = 0; i < n; ++i) {
    const auto degree = static_cast<float>(adjacency.row_nnz(i));
    inv_sqrt_degree[i] = 1.0f / std::sqrt(std::max(degree, 1.0f));
  }

  std::vector<Triplet> triplets;
  triplets.reserve(adjacency.nnz() + (add_self_loops ? n : 0));
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t k = adjacency.row_begin(i); k < adjacency.row_end(i); ++k) {
      const uint32_t j = adjacency.col_idx()[k];
      triplets.push_back({i, j,
                          adjacency.values()[k] * inv_sqrt_degree[i] *
                              inv_sqrt_degree[j]});
    }
    if (add_self_loops) {
      triplets.push_back({i, i, inv_sqrt_degree[i] * inv_sqrt_degree[i]});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace

CsrMatrix NormalizedLaplacian(const CsrMatrix& adjacency) {
  return Normalize(adjacency, /*add_self_loops=*/true);
}

CsrMatrix NormalizedAdjacency(const CsrMatrix& adjacency) {
  return Normalize(adjacency, /*add_self_loops=*/false);
}

}  // namespace hosr::graph
