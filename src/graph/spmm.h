#ifndef HOSR_GRAPH_SPMM_H_
#define HOSR_GRAPH_SPMM_H_

#include "graph/csr.h"
#include "tensor/matrix.h"

namespace hosr::graph {

// out = sparse * dense. dense is (sparse.num_cols x d); out must be
// pre-sized to (sparse.num_rows x d). Threaded over output rows; cost
// O(nnz * d) — the linear-in-|A| propagation cost of Sec. 2.5.
void Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense,
          tensor::Matrix* out);

// Convenience allocating form.
tensor::Matrix Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense);

// out = sparse^T * dense without materializing the transpose; used by the
// autograd backward pass of Spmm. dense is (sparse.num_rows x d); out must
// be pre-sized to (sparse.num_cols x d). Single-threaded scatter (kept
// deterministic); prefer passing an explicit transposed CSR for hot paths.
void SpmmTranspose(const CsrMatrix& sparse, const tensor::Matrix& dense,
                   tensor::Matrix* out);

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_SPMM_H_
