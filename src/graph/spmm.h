#ifndef HOSR_GRAPH_SPMM_H_
#define HOSR_GRAPH_SPMM_H_

#include "graph/csr.h"
#include "tensor/matrix.h"

namespace hosr::graph {

// out = sparse * dense. dense is (sparse.num_cols x d); out must be
// pre-sized to (sparse.num_rows x d). Threaded over output rows; cost
// O(nnz * d) — the linear-in-|A| propagation cost of Sec. 2.5.
void Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense,
          tensor::Matrix* out);

// Convenience allocating form.
tensor::Matrix Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense);

// out = sparse^T * dense. dense is (sparse.num_rows x d); out must be
// pre-sized to (sparse.num_cols x d). Materializes the transpose CSR per
// call (O(nnz), counted by spmm/transpose_builds) and routes through the
// row-parallel Spmm gather, so it threads and vectorizes like the forward
// pass; hot paths that reuse the operator should build the transpose once
// and call Spmm on it directly (as autograd::Tape::SpMM does).
void SpmmTranspose(const CsrMatrix& sparse, const tensor::Matrix& dense,
                   tensor::Matrix* out);

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_SPMM_H_
