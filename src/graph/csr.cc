#include "graph/csr.h"

#include <algorithm>

#include "obs/metrics.h"

namespace hosr::graph {

CsrMatrix CsrMatrix::FromTriplets(uint32_t num_rows, uint32_t num_cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    HOSR_CHECK(t.row < num_rows && t.col < num_cols)
        << "(" << t.row << "," << t.col << ") outside " << num_rows << "x"
        << num_cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.num_rows_ = num_rows;
  m.num_cols_ = num_cols;
  m.row_ptr_.assign(num_rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  size_t i = 0;
  for (uint32_t r = 0; r < num_rows; ++r) {
    m.row_ptr_[r] = m.col_idx_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const uint32_t c = triplets[i].col;
      float v = 0.0f;
      // Sum duplicates.
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[num_rows] = m.col_idx_.size();
  return m;
}

CsrMatrix CsrMatrix::Diagonal(const std::vector<float>& diag) {
  CsrMatrix m;
  const auto n = static_cast<uint32_t>(diag.size());
  m.num_rows_ = n;
  m.num_cols_ = n;
  m.row_ptr_.assign(n + 1, 0);
  m.col_idx_.resize(n);
  m.values_ = diag;
  for (uint32_t i = 0; i < n; ++i) {
    m.row_ptr_[i] = i;
    m.col_idx_[i] = i;
  }
  m.row_ptr_[n] = n;
  return m;
}

float CsrMatrix::At(uint32_t r, uint32_t c) const {
  HOSR_CHECK(r < num_rows_ && c < num_cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_begin(r));
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_end(r));
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

std::vector<uint32_t> CsrMatrix::RowDegrees() const {
  std::vector<uint32_t> degrees(num_rows_);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    degrees[r] = static_cast<uint32_t>(row_nnz(r));
  }
  return degrees;
}

CsrMatrix CsrMatrix::Transpose() const {
  // Transposes are meant to be built once per graph and reused across
  // epochs/layers (models cache them as members; autograd::Tape::SpMM only
  // borrows pointers). This counter is the audit: it must stay flat while
  // training runs (tests/hosr_test.cc TransposeBuiltOncePerGraph).
  HOSR_COUNTER("spmm/transpose_builds").Increment();
  CsrMatrix t;
  t.num_rows_ = num_cols_;
  t.num_cols_ = num_rows_;
  t.row_ptr_.assign(num_cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());

  // Counting sort by column.
  for (const uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (uint32_t c = 0; c < num_cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];

  std::vector<size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    for (size_t k = row_begin(r); k < row_end(r); ++k) {
      const uint32_t c = col_idx_[k];
      const size_t pos = cursor[c]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  return num_rows_ == other.num_rows_ && num_cols_ == other.num_cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

}  // namespace hosr::graph
