#include "graph/spmm.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hosr::graph {

void Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense,
          tensor::Matrix* out) {
  HOSR_TRACE_SPAN("spmm/forward");
  HOSR_CHECK(dense.rows() == sparse.num_cols())
      << dense.rows() << " vs " << sparse.num_cols();
  HOSR_CHECK(out->rows() == sparse.num_rows() && out->cols() == dense.cols());
  HOSR_CHECK(out != &dense) << "Spmm does not support aliasing";
  const size_t d = dense.cols();
  HOSR_COUNTER("spmm/calls").Increment();
  HOSR_COUNTER("spmm/rows_processed").Increment(sparse.num_rows());
  HOSR_COUNTER("spmm/flops").Increment(2 * sparse.nnz() * d);

  const size_t avg_row_nnz =
      std::max<size_t>(1, sparse.nnz() / std::max<uint32_t>(1, sparse.num_rows()));
  const size_t grain = std::max<size_t>(16, 16384 / std::max<size_t>(1, avg_row_nnz * d));

  util::ParallelFor(
      0, sparse.num_rows(),
      [&](size_t row_begin, size_t row_end) {
        for (size_t r = row_begin; r < row_end; ++r) {
          float* out_row = out->row(r);
          std::fill(out_row, out_row + d, 0.0f);
          for (size_t k = sparse.row_begin(static_cast<uint32_t>(r));
               k < sparse.row_end(static_cast<uint32_t>(r)); ++k) {
            const float v = sparse.values()[k];
            const float* in_row = dense.row(sparse.col_idx()[k]);
            for (size_t c = 0; c < d; ++c) out_row[c] += v * in_row[c];
          }
        }
      },
      grain);
}

tensor::Matrix Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense) {
  tensor::Matrix out(sparse.num_rows(), dense.cols());
  Spmm(sparse, dense, &out);
  return out;
}

void SpmmTranspose(const CsrMatrix& sparse, const tensor::Matrix& dense,
                   tensor::Matrix* out) {
  HOSR_TRACE_SPAN("spmm/transpose");
  HOSR_COUNTER("spmm/calls").Increment();
  HOSR_COUNTER("spmm/rows_processed").Increment(sparse.num_rows());
  HOSR_COUNTER("spmm/flops").Increment(2 * sparse.nnz() * dense.cols());
  HOSR_CHECK(dense.rows() == sparse.num_rows());
  HOSR_CHECK(out->rows() == sparse.num_cols() && out->cols() == dense.cols());
  HOSR_CHECK(out != &dense) << "SpmmTranspose does not support aliasing";
  out->SetZero();
  const size_t d = dense.cols();
  for (uint32_t r = 0; r < sparse.num_rows(); ++r) {
    const float* in_row = dense.row(r);
    for (size_t k = sparse.row_begin(r); k < sparse.row_end(r); ++k) {
      const float v = sparse.values()[k];
      float* out_row = out->row(sparse.col_idx()[k]);
      for (size_t c = 0; c < d; ++c) out_row[c] += v * in_row[c];
    }
  }
}

}  // namespace hosr::graph
