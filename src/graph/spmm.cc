#include "graph/spmm.h"

#include <algorithm>

#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hosr::graph {

void Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense,
          tensor::Matrix* out) {
  HOSR_TRACE_SPAN("spmm/forward");
  HOSR_CHECK(dense.rows() == sparse.num_cols())
      << dense.rows() << " vs " << sparse.num_cols();
  HOSR_CHECK(out->rows() == sparse.num_rows() && out->cols() == dense.cols());
  HOSR_CHECK(out != &dense) << "Spmm does not support aliasing";
  const size_t d = dense.cols();
  HOSR_COUNTER("spmm/calls").Increment();
  HOSR_COUNTER("spmm/rows_processed").Increment(sparse.num_rows());
  HOSR_COUNTER("spmm/flops").Increment(2 * sparse.nnz() * d);

  const size_t avg_row_nnz =
      std::max<size_t>(1, sparse.nnz() / std::max<uint32_t>(1, sparse.num_rows()));
  const size_t grain = util::GrainFor(avg_row_nnz * d, /*min_grain=*/16);
  const kernels::KernelTable& kern = kernels::Active();

  // Row-parallel gather: each output row accumulates its neighbors' dense
  // rows, two at a time through the axpy2 microkernel.
  util::ParallelFor(
      0, sparse.num_rows(),
      [&](size_t row_begin, size_t row_end) {
        const float* values = sparse.values().data();
        const uint32_t* cols = sparse.col_idx().data();
        for (size_t r = row_begin; r < row_end; ++r) {
          float* out_row = out->row(r);
          std::fill(out_row, out_row + d, 0.0f);
          size_t k = sparse.row_begin(static_cast<uint32_t>(r));
          const size_t end = sparse.row_end(static_cast<uint32_t>(r));
          for (; k + 2 <= end; k += 2) {
            kern.axpy2(d, values[k], dense.row(cols[k]), values[k + 1],
                       dense.row(cols[k + 1]), out_row);
          }
          if (k < end) {
            kern.axpy(d, values[k], dense.row(cols[k]), out_row);
          }
        }
      },
      grain);
}

tensor::Matrix Spmm(const CsrMatrix& sparse, const tensor::Matrix& dense) {
  tensor::Matrix out(sparse.num_rows(), dense.cols());
  Spmm(sparse, dense, &out);
  return out;
}

void SpmmTranspose(const CsrMatrix& sparse, const tensor::Matrix& dense,
                   tensor::Matrix* out) {
  HOSR_TRACE_SPAN("spmm/transpose");
  HOSR_CHECK(dense.rows() == sparse.num_rows());
  HOSR_CHECK(out->rows() == sparse.num_cols() && out->cols() == dense.cols());
  HOSR_CHECK(out != &dense) << "SpmmTranspose does not support aliasing";
  // Materialize the transpose and reuse the row-parallel gather kernel: the
  // O(nnz) transpose build costs the same order as the multiply itself and
  // buys a deterministic, threaded gather in place of the old serial
  // scatter. Hot paths that apply the same operator repeatedly should build
  // the transpose CSR once and call Spmm on it directly (autograd::Tape
  // does; the spmm/transpose_builds counter proves nothing rebuilds).
  const CsrMatrix transposed = sparse.Transpose();
  Spmm(transposed, dense, out);
}

}  // namespace hosr::graph
