#ifndef HOSR_GRAPH_STATS_H_
#define HOSR_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"

namespace hosr::graph {

// Per-order-size statistics of the k-order closure of the social network —
// Table 1 of the paper. Order k counts, for each user, the distinct users
// reachable within <= k hops (excluding the user herself).
struct OrderStats {
  uint32_t order = 0;
  // Fraction of ordered user pairs connected within <= order hops.
  double density = 0.0;
  // Average number of <=k-hop neighbors per user.
  double avg_neighbors_per_user = 0.0;
};

// Exact BFS-based computation up to `max_order` hops. O(n * (n + |A|)).
std::vector<OrderStats> KOrderStats(const SocialGraph& graph,
                                    uint32_t max_order);

// Number of distinct users within <= order hops of `user` (excluding it).
uint64_t CountNeighborsWithinOrder(const SocialGraph& graph, uint32_t user,
                                   uint32_t order);

// Histogram of users by first-order neighbor count — Fig. 5. Bucket i
// counts users whose degree falls in [edges[i], edges[i+1]); a final
// overflow bucket counts degrees >= edges.back().
struct DegreeHistogram {
  std::vector<uint32_t> bucket_edges;  // ascending
  std::vector<uint64_t> counts;        // size bucket_edges.size()
};

DegreeHistogram ComputeDegreeHistogram(const SocialGraph& graph,
                                       std::vector<uint32_t> bucket_edges);

// Gini coefficient of the degree distribution: ~0 for regular graphs,
// -> 1 for extreme long-tail hubs. Used in tests to assert the generator
// produces the paper's long-tail shape (Fig. 5).
double DegreeGini(const SocialGraph& graph);

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_STATS_H_
