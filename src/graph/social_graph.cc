#include "graph/social_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace hosr::graph {

util::StatusOr<SocialGraph> SocialGraph::FromEdges(
    uint32_t num_users,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    if (a == b) {
      return util::Status::InvalidArgument(
          util::StrFormat("self-loop on user %u", a));
    }
    if (a >= num_users || b >= num_users) {
      return util::Status::InvalidArgument(
          util::StrFormat("edge (%u,%u) outside %u users", a, b, num_users));
    }
    triplets.push_back({a, b, 1.0f});
    triplets.push_back({b, a, 1.0f});
  }
  CsrMatrix adjacency =
      CsrMatrix::FromTriplets(num_users, num_users, std::move(triplets));
  // FromTriplets sums duplicates; clamp values back to 1 so repeated input
  // edges do not create weighted adjacency.
  std::vector<Triplet> clamped;
  bool had_duplicates = false;
  for (const float v : adjacency.values()) {
    if (v != 1.0f) {
      had_duplicates = true;
      break;
    }
  }
  if (had_duplicates) {
    clamped.reserve(adjacency.nnz());
    for (uint32_t r = 0; r < adjacency.num_rows(); ++r) {
      for (size_t k = adjacency.row_begin(r); k < adjacency.row_end(r); ++k) {
        clamped.push_back({r, adjacency.col_idx()[k], 1.0f});
      }
    }
    adjacency =
        CsrMatrix::FromTriplets(num_users, num_users, std::move(clamped));
  }
  return SocialGraph(std::move(adjacency));
}

std::vector<uint32_t> SocialGraph::Neighbors(uint32_t user) const {
  HOSR_CHECK(user < num_users());
  return {adjacency_.col_idx().begin() +
              static_cast<ptrdiff_t>(adjacency_.row_begin(user)),
          adjacency_.col_idx().begin() +
              static_cast<ptrdiff_t>(adjacency_.row_end(user))};
}

std::vector<std::pair<uint32_t, uint32_t>> SocialGraph::EdgeList() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges());
  for (uint32_t r = 0; r < adjacency_.num_rows(); ++r) {
    for (size_t k = adjacency_.row_begin(r); k < adjacency_.row_end(r); ++k) {
      const uint32_t c = adjacency_.col_idx()[k];
      if (r < c) edges.emplace_back(r, c);
    }
  }
  return edges;
}

double SocialGraph::Density() const {
  const double n = num_users();
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1) / 2.0);
}

}  // namespace hosr::graph
