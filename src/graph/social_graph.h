#ifndef HOSR_GRAPH_SOCIAL_GRAPH_H_
#define HOSR_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "util/statusor.h"

namespace hosr::graph {

// Undirected user-user social network: the paper's adjacency matrix A
// (Sec. 2.1). Stored as a symmetric binary CSR with no self-loops.
class SocialGraph {
 public:
  SocialGraph() = default;

  // Builds from an undirected edge list. Duplicate edges (in either
  // direction) collapse to one; self-loops are rejected.
  static util::StatusOr<SocialGraph> FromEdges(
      uint32_t num_users, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  uint32_t num_users() const { return adjacency_.num_rows(); }
  // Number of undirected edges |A| (each stored twice in the CSR).
  size_t num_edges() const { return adjacency_.nnz() / 2; }

  // Symmetric binary adjacency (value 1.0 per stored direction).
  const CsrMatrix& adjacency() const { return adjacency_; }

  // |A_i|: number of first-order neighbors of user i.
  uint32_t Degree(uint32_t user) const {
    return static_cast<uint32_t>(adjacency_.row_nnz(user));
  }

  // Neighbors of `user` in ascending order.
  std::vector<uint32_t> Neighbors(uint32_t user) const;

  bool HasEdge(uint32_t a, uint32_t b) const {
    return adjacency_.At(a, b) != 0.0f;
  }

  // Undirected edge list with a < b, ascending. Round-trips with FromEdges.
  std::vector<std::pair<uint32_t, uint32_t>> EdgeList() const;

  // Fraction of possible (unordered) user pairs that are connected —
  // Table 2's "User-User density".
  double Density() const;

 private:
  explicit SocialGraph(CsrMatrix adjacency)
      : adjacency_(std::move(adjacency)) {}

  CsrMatrix adjacency_;
};

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_SOCIAL_GRAPH_H_
