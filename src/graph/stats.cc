#include "graph/stats.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "util/thread_pool.h"

namespace hosr::graph {

namespace {

// Breadth-first counts of distinct nodes within <= k hops for every
// k in [1, max_order], from a single source. `visited` and `frontier`
// are caller-provided scratch to avoid per-source allocation.
void BfsOrderCounts(const CsrMatrix& adj, uint32_t source, uint32_t max_order,
                    std::vector<uint32_t>* visited_epoch, uint32_t epoch,
                    std::vector<uint32_t>* frontier,
                    std::vector<uint32_t>* next_frontier,
                    std::vector<uint64_t>* counts_by_order) {
  (*visited_epoch)[source] = epoch;
  frontier->clear();
  frontier->push_back(source);
  uint64_t reached = 0;
  for (uint32_t depth = 1; depth <= max_order; ++depth) {
    next_frontier->clear();
    for (const uint32_t u : *frontier) {
      for (size_t k = adj.row_begin(u); k < adj.row_end(u); ++k) {
        const uint32_t v = adj.col_idx()[k];
        if ((*visited_epoch)[v] != epoch) {
          (*visited_epoch)[v] = epoch;
          next_frontier->push_back(v);
        }
      }
    }
    reached += next_frontier->size();
    (*counts_by_order)[depth - 1] += reached;
    std::swap(*frontier, *next_frontier);
    if (frontier->empty()) {
      // Remaining orders see the same closure.
      for (uint32_t d = depth + 1; d <= max_order; ++d) {
        (*counts_by_order)[d - 1] += reached;
      }
      break;
    }
  }
}

}  // namespace

std::vector<OrderStats> KOrderStats(const SocialGraph& graph,
                                    uint32_t max_order) {
  HOSR_CHECK(max_order >= 1);
  const CsrMatrix& adj = graph.adjacency();
  const uint32_t n = graph.num_users();

  // Partition users into chunks; each chunk accumulates its own counters.
  const size_t num_chunks =
      std::min<size_t>(std::max<uint32_t>(1, n / 64),
                       util::ThreadPool::Global().num_threads() * 4);
  const size_t chunk_size = (n + num_chunks - 1) / std::max<size_t>(1, num_chunks);
  std::vector<std::vector<uint64_t>> partials(
      num_chunks, std::vector<uint64_t>(max_order, 0));

  util::ParallelFor(
      0, n,
      [&](size_t begin, size_t end) {
        const size_t chunk = begin / std::max<size_t>(1, chunk_size);
        std::vector<uint64_t>& counts =
            partials[std::min(chunk, partials.size() - 1)];
        std::vector<uint32_t> visited_epoch(n, 0);
        std::vector<uint32_t> frontier, next_frontier;
        uint32_t epoch = 0;
        for (size_t u = begin; u < end; ++u) {
          ++epoch;
          BfsOrderCounts(adj, static_cast<uint32_t>(u), max_order,
                         &visited_epoch, epoch, &frontier, &next_frontier,
                         &counts);
        }
      },
      chunk_size);

  std::vector<uint64_t> totals(max_order, 0);
  for (const auto& partial : partials) {
    for (uint32_t k = 0; k < max_order; ++k) totals[k] += partial[k];
  }

  std::vector<OrderStats> stats(max_order);
  const double pairs = static_cast<double>(n) * (n > 0 ? n - 1 : 0);
  for (uint32_t k = 0; k < max_order; ++k) {
    stats[k].order = k + 1;
    stats[k].avg_neighbors_per_user =
        n > 0 ? static_cast<double>(totals[k]) / n : 0.0;
    stats[k].density = pairs > 0 ? static_cast<double>(totals[k]) / pairs : 0.0;
  }
  return stats;
}

uint64_t CountNeighborsWithinOrder(const SocialGraph& graph, uint32_t user,
                                   uint32_t order) {
  HOSR_CHECK(user < graph.num_users());
  HOSR_CHECK(order >= 1);
  const uint32_t n = graph.num_users();
  std::vector<uint32_t> visited_epoch(n, 0);
  std::vector<uint32_t> frontier, next_frontier;
  std::vector<uint64_t> counts(order, 0);
  BfsOrderCounts(graph.adjacency(), user, order, &visited_epoch, 1, &frontier,
                 &next_frontier, &counts);
  return counts[order - 1];
}

DegreeHistogram ComputeDegreeHistogram(const SocialGraph& graph,
                                       std::vector<uint32_t> bucket_edges) {
  HOSR_CHECK(!bucket_edges.empty());
  HOSR_CHECK(std::is_sorted(bucket_edges.begin(), bucket_edges.end()));
  DegreeHistogram hist;
  hist.bucket_edges = std::move(bucket_edges);
  hist.counts.assign(hist.bucket_edges.size(), 0);
  for (uint32_t u = 0; u < graph.num_users(); ++u) {
    const uint32_t degree = graph.Degree(u);
    // Find the last bucket whose lower edge is <= degree.
    const auto it = std::upper_bound(hist.bucket_edges.begin(),
                                     hist.bucket_edges.end(), degree);
    if (it == hist.bucket_edges.begin()) continue;  // below the first edge
    const size_t bucket =
        static_cast<size_t>(it - hist.bucket_edges.begin()) - 1;
    ++hist.counts[bucket];
  }
  return hist;
}

double DegreeGini(const SocialGraph& graph) {
  const uint32_t n = graph.num_users();
  if (n == 0) return 0.0;
  std::vector<uint32_t> degrees(n);
  for (uint32_t u = 0; u < n; ++u) degrees[u] = graph.Degree(u);
  std::sort(degrees.begin(), degrees.end());
  const double total =
      std::accumulate(degrees.begin(), degrees.end(), 0.0);
  if (total == 0.0) return 0.0;
  double weighted = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * degrees[i];
  }
  return (2.0 * weighted) / (n * total) - (static_cast<double>(n) + 1) / n;
}

}  // namespace hosr::graph
