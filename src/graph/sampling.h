#ifndef HOSR_GRAPH_SAMPLING_H_
#define HOSR_GRAPH_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/random.h"

namespace hosr::graph {

// Graph dropout (Sec. 2.4): independently drops each *undirected* social
// edge with probability `drop_prob` (both directions removed together), so
// only (1 - p2) of the nonzero elements of A remain for the epoch.
SocialGraph GraphDropout(const SocialGraph& graph, double drop_prob,
                         util::Rng* rng);

// Random walk with restart (DeepInf's sampler): starting from `start`,
// repeatedly either restarts at `start` with `return_prob` or steps to a
// uniform neighbor, collecting distinct visited users (excluding `start`)
// until `sample_size` are found or `max_steps` walk steps elapse. Returns
// the distinct sample in visit order.
std::vector<uint32_t> RandomWalkWithRestart(const SocialGraph& graph,
                                            uint32_t start,
                                            double return_prob,
                                            uint32_t sample_size,
                                            util::Rng* rng,
                                            uint32_t max_steps = 10000);

}  // namespace hosr::graph

#endif  // HOSR_GRAPH_SAMPLING_H_
