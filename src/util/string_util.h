#ifndef HOSR_UTIL_STRING_UTIL_H_
#define HOSR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace hosr::util {

// Splits on `delim`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

// Joins with `delim` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict numeric parsing: the whole string must be consumed.
StatusOr<int64_t> ParseInt(std::string_view text);
StatusOr<double> ParseDouble(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hosr::util

#endif  // HOSR_UTIL_STRING_UTIL_H_
