#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace hosr::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void EmitLine(LogLevel level, const char* file, int line,
              const std::string& body) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t now_t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&now_t, &tm_buf);
  char time_buf[32];
  std::strftime(time_buf, sizeof(time_buf), "%H:%M:%S", &tm_buf);

  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }

  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s %s %s:%d] %s\n", LevelTag(level), time_buf, base,
               line, body.c_str());
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    EmitLine(level_, file_, line_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  EmitLine(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging

}  // namespace hosr::util
